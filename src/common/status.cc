#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cloudviews {

namespace internal {

void AbortWithStatus(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kExpired:
      return "Expired";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kViewUnavailable:
      return "View unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cloudviews
