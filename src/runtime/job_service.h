#ifndef CLOUDVIEWS_RUNTIME_JOB_SERVICE_H_
#define CLOUDVIEWS_RUNTIME_JOB_SERVICE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/exec_options.h"
#include "exec/executor.h"
#include "metadata/metadata_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "runtime/inflight_sharing.h"
#include "runtime/plan_cache.h"
#include "runtime/workload_repository.h"

namespace cloudviews {

/// \brief One job submission: a parameter-bound logical plan plus the
/// metadata the service keeps about it.
struct JobDefinition {
  std::string template_id;
  std::string cluster;
  std::string business_unit;
  std::string vc;
  std::string user;
  int recurring_instance = 0;
  LogicalTime recurrence_period = kSecondsPerDay;
  PlanNodePtr logical_plan;
  /// Tags for the metadata-service inverted index; defaulted from
  /// template/vc/user when empty.
  std::vector<std::string> tags;
};

/// Outcome of one job run.
struct JobResult {
  uint64_t job_id = 0;
  PlanNodePtr executed_plan;
  JobRunStats run_stats;
  double compile_seconds = 0;           // optimizer wall time
  double metadata_lookup_seconds = 0;   // simulated service latency
  int views_reused = 0;
  int views_materialized = 0;
  int reuse_rejected_by_cost = 0;
  int materialize_lock_denied = 0;
  /// Containment-match funnel (docs/job_profile_schema.md): all zeros for
  /// exact-only compiles and for plans served from the plan cache (the
  /// matching work done for a cached submission is zero).
  int candidates_filtered = 0;
  int containment_verified = 0;
  int containment_rejected = 0;
  /// Subset of views_reused served through containment + compensation.
  int views_reused_subsumed = 0;
  int compensation_nodes_added = 0;
  /// View reads abandoned mid-run: the rewritten plan's views were
  /// unavailable, so the job transparently re-ran its original plan
  /// (ReStore-style fallback). The job still succeeded; views_reused is
  /// reset to 0 for the plan that actually executed.
  int views_fallback = 0;
  /// The metadata lookup failed persistently and the job ran without any
  /// reuse information instead of failing.
  bool lookup_degraded = false;
  /// The plan came from the plan cache (full or skeleton tier): parse +
  /// logical optimize were skipped — the recurring-job fast path.
  bool plan_cache_hit = false;
  /// Metadata-service catalog epoch observed at submit (0 when the plan
  /// cache was disabled for this submission).
  uint64_t catalog_epoch = 0;
  /// This job adopted a concurrent identical job's execution (work
  /// sharing): compile + execute were skipped and executed_plan/run_stats
  /// are the leader's. The result is byte-identical to independent
  /// execution by construction (same plan, same data).
  bool shared_execution = false;
  /// Leader whose outcome this follower adopted (0 when not a follower,
  /// or when this job was itself the leader).
  uint64_t share_leader_job_id = 0;
  /// Leader side: followers that adopted this job's execution.
  int share_followers = 0;
  /// Piggyback funnel (work sharing on the materialization path): build-
  /// lock denials this job waited out, and how each wait ended. hits
  /// trigger one re-optimize against the freshly registered view;
  /// timeouts/abandoned keep the reuse-blind plan ("do no harm").
  int piggyback_waits = 0;
  int piggyback_hits = 0;
  int piggyback_timeouts = 0;
  int piggyback_abandoned = 0;
  double estimated_cost = 0;
  /// The job's finished lifecycle trace (root span "job" with
  /// metadata_lookup / optimize / execute / record children); null when
  /// the service runs without a tracer.
  std::shared_ptr<const obs::SpanRecord> trace;
};

struct JobServiceOptions {
  /// The per-job opt-in flag of Sec 4: "the runtime part is triggered by
  /// providing a command line flag during job submission".
  bool enable_cloudviews = false;
  /// Record the executed plan + stats in the workload repository (feedback
  /// loop); normally on.
  bool record_in_repository = true;
  /// Use the repository's observed statistics during optimization; ablation
  /// knob for the feedback loop (Sec 5.1).
  bool use_feedback_statistics = true;
  /// Recurring-job fast path: serve repeated templates from the
  /// signature-keyed plan cache (epoch-validated; byte-identical results).
  /// Off forces a full parse + optimize on every submission.
  bool enable_plan_cache = true;
  /// Per-submission override of the service-wide execution options (worker
  /// threads, morsel size); unset uses the options the service was built
  /// with.
  std::optional<ExecOptions> exec;
  /// Work sharing across concurrent in-flight jobs: submissions whose
  /// whole-plan signature matches an in-flight execution adopt its result
  /// (one leader executes, followers wait) instead of recomputing it.
  /// Opt-in; results stay byte-identical either way.
  bool enable_inflight_sharing = false;
  /// Upper bound on a follower's wait for its leader (real wall seconds);
  /// on expiry the follower degrades to independent execution.
  double sharing_wait_seconds = 30;
  /// Build piggybacking: a job denied a build lock by a live builder waits
  /// (bounded) for the builder's ReportMaterialized and re-optimizes
  /// against the fresh view instead of running reuse-blind. Opt-in; every
  /// wait outcome other than "view registered" falls back to the
  /// pre-sharing behavior.
  bool enable_piggyback = false;
  /// Total real-wall-clock budget for all piggyback waits of one job.
  double piggyback_wait_seconds = 10;
  /// When set, the "job" span is created as a child of this span instead of
  /// a new trace root, so wire submissions nest the whole compile/execute
  /// lifecycle under the server's "net.request" span. The caller owns the
  /// parent and must keep it alive for the duration of SubmitJob; with a
  /// parent set, JobResult::trace stays null (only root spans yield a
  /// finished tree — the caller finishes its own root).
  obs::Span* parent_span = nullptr;
};

/// \brief The always-online job service: compile (with metadata lookup and
/// CloudViews rewriting), execute, publish views early, record history.
///
/// Thread-safe: concurrent SubmitJob calls model concurrent jobs on the
/// cluster, which is how the build-build synchronization of Sec 6.4 is
/// exercised.
class JobService {
 public:
  /// `fault` / `retry` / `sleeper` wire the fault-tolerance machinery:
  /// injection points, the transient-retry backoff schedule, and the sleep
  /// seam between attempts (null sleeper = real sleeps). All optional.
  JobService(SimulatedClock* clock, StorageManager* storage,
             MetadataService* metadata, WorkloadRepository* repository,
             OptimizerConfig optimizer_config = {},
             ExecOptions exec_options = {},
             fault::FaultInjector* fault = nullptr,
             fault::RetryPolicy retry = {},
             fault::Sleeper* sleeper = nullptr)
      : clock_(clock),
        storage_(storage),
        metadata_(metadata),
        repository_(repository),
        optimizer_(optimizer_config),
        exec_options_(exec_options),
        fault_(fault),
        retry_(retry),
        sleeper_(sleeper) {}

  /// Publishes job/stage metrics into `metrics` and emits one lifecycle
  /// trace per submission into `tracer` (either may be null to disable).
  /// `wall_clock` drives latency histograms and span times; null uses the
  /// real monotonic clock. Call before the first submission — instruments
  /// are registered here, not on the hot path.
  void SetObservability(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                        MonotonicClock* wall_clock = nullptr);

  Result<JobResult> SubmitJob(const JobDefinition& def,
                              const JobServiceOptions& options = {});

  /// Submits all jobs from worker threads simultaneously (concurrent
  /// recurring jobs with the same overlapping computation).
  std::vector<Result<JobResult>> SubmitConcurrent(
      const std::vector<JobDefinition>& defs,
      const JobServiceOptions& options = {});

  /// Offline materialization mode (Sec 6.2): extracts the annotated
  /// overlapping subgraphs of `def`'s plan "while excluding any remaining
  /// operation in the job" and materializes just those, before the actual
  /// workload runs. Returns the number of views built. Annotations marked
  /// offline never materialize inline; this is how they get built.
  Result<int> MaterializeOfflineViews(const JobDefinition& def);

  uint64_t NumSubmitted() const { return next_job_id_.load() - 1; }

  /// Default tags used for the metadata inverted index.
  static std::vector<std::string> DefaultTags(const JobDefinition& def);

  /// Plan-cache introspection (hit/miss/invalidation statistics).
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Work-sharing registry introspection; NumPending() must be 0 once all
  /// submissions have returned (no leaked share entries).
  const InflightSharing& inflight_sharing() const { return sharing_; }

 private:
  /// Returns the shared worker pool for a job running with `opts`, creating
  /// it on first use; null when the job runs single-threaded. The pool is
  /// shared by every concurrently running job, mirroring the shared
  /// execution slots of the cluster.
  ThreadPool* ExecutionPool(const ExecOptions& opts) EXCLUDES(pool_mu_);

  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* succeeded = nullptr;
    obs::Counter* failed = nullptr;
    obs::Gauge* active = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Histogram* stage_lookup = nullptr;
    obs::Histogram* stage_optimize = nullptr;
    obs::Histogram* stage_execute = nullptr;
    obs::Histogram* stage_record = nullptr;
    obs::Counter* views_reused = nullptr;
    obs::Counter* views_materialized = nullptr;
    obs::Counter* reuse_rejected = nullptr;
    obs::Counter* candidates_filtered = nullptr;
    obs::Counter* containment_verified = nullptr;
    obs::Counter* containment_rejected = nullptr;
    obs::Counter* views_subsumed = nullptr;
    obs::Counter* compensation_nodes = nullptr;
    obs::Counter* lock_denied = nullptr;
    obs::Counter* mat_skipped = nullptr;
    obs::Counter* views_fallback = nullptr;
    obs::Counter* fallback_jobs = nullptr;
    obs::Counter* lookup_degraded = nullptr;
    obs::Counter* views_abandoned = nullptr;
    obs::Counter* stale_registrations = nullptr;
    obs::Counter* sharing_leaders = nullptr;
    obs::Counter* sharing_followers = nullptr;
    obs::Counter* sharing_leader_failures = nullptr;
    obs::Counter* sharing_degraded = nullptr;
    obs::Counter* piggyback_waits = nullptr;
    obs::Counter* piggyback_hits = nullptr;
    obs::Counter* piggyback_timeouts = nullptr;
    obs::Counter* piggyback_abandoned = nullptr;
  };

  /// Releases the build locks held by every Spool node under `root` that
  /// `job_id` still owns (idempotent per lock). Called whenever a plan
  /// carrying locks is discarded: execution failure, view-read fallback.
  void AbandonSpoolLocks(const PlanNodePtr& root, uint64_t job_id);

  /// Registers a finished view with the metadata service; on rejection
  /// (stale lease, lost registration race) deletes the written file — the
  /// metadata decision is authoritative.
  void RegisterMaterializedView(const SpoolNode& spool,
                                const StreamData& view, uint64_t job_id);

  /// True when every ViewRead under `root` still resolves to the same live
  /// view in the metadata service. Guards serving a cached rewritten plan:
  /// clock-driven view expiry bumps no catalog epoch, so the epoch check
  /// alone cannot rule out a stale view scan.
  bool CachedViewReadsLive(const PlanNodePtr& root);

  SimulatedClock* clock_;
  StorageManager* storage_;
  MetadataService* metadata_;  // may be null (CloudViews unavailable)
  WorkloadRepository* repository_;
  Optimizer optimizer_;
  ExecOptions exec_options_;
  fault::FaultInjector* fault_ = nullptr;
  fault::RetryPolicy retry_;
  fault::Sleeper* sleeper_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  MonotonicClock* wall_clock_ = nullptr;
  Instruments obs_;
  /// Recurring-job fast path (thread-safe; see PlanCache).
  PlanCache plan_cache_;
  /// Work sharing across concurrent in-flight submissions (thread-safe).
  InflightSharing sharing_;
  std::atomic<uint64_t> next_job_id_{1};
  Mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_ GUARDED_BY(pool_mu_);  // lazily created
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_RUNTIME_JOB_SERVICE_H_
