// Integration tests for the observability subsystem: job lifecycle span
// trees (deterministic under a fake clock), the metrics the stack emits end
// to end, per-job profile rendering, and the executor's run-once guarantee
// for shared (DAG) subtrees.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/cloudviews.h"
#include "core/explain.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"
#include "tests/test_util.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

double CounterValue(obs::MetricsRegistry* registry, const std::string& name,
                    obs::Labels labels = {}) {
  return static_cast<double>(
      registry->GetCounter(name, std::move(labels))->value());
}

// ---------------------------------------------------------------------------
// Span-tree shape over one TPC-DS job, with an injected fake clock so the
// trace is byte-deterministic.
// ---------------------------------------------------------------------------

class TpcdsProfileTest : public ::testing::Test {
 protected:
  TpcdsProfileTest() {
    CloudViewsConfig config;
    config.exec.worker_threads = 2;
    config.wall_clock = &wall_clock_;
    cv_ = std::make_unique<CloudViews>(config);
    tpcds::TpcdsOptions options;
    options.store_sales_rows = 500;
    options.web_sales_rows = 200;
    options.catalog_sales_rows = 200;
    options.customers = 50;
    tpcds::TpcdsGenerator gen(options);
    EXPECT_TRUE(gen.WriteTables(cv_->storage()).ok());
  }

  FakeMonotonicClock wall_clock_{5.0};
  std::unique_ptr<CloudViews> cv_;
};

TEST_F(TpcdsProfileTest, JobTraceHasTheDocumentedShape) {
  auto result = cv_->Submit(tpcds::MakeQueryJob(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);

  const obs::SpanRecord& job = *result->trace;
  EXPECT_EQ(job.name, "job");
  // The fake clock never advances, so every timestamp is the injected
  // start value — this is what makes profile output deterministic.
  EXPECT_DOUBLE_EQ(job.start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(job.end_seconds, 5.0);

  ASSERT_EQ(job.children.size(), 4u);
  EXPECT_EQ(job.children[0]->name, "metadata_lookup");
  EXPECT_EQ(job.children[1]->name, "optimize");
  EXPECT_EQ(job.children[2]->name, "execute");
  EXPECT_EQ(job.children[3]->name, "record");

  const obs::SpanRecord& optimize = *job.children[1];
  ASSERT_EQ(optimize.children.size(), 4u);
  EXPECT_EQ(optimize.children[0]->name, "logical_rewrite");
  EXPECT_EQ(optimize.children[1]->name, "physical_plan");
  EXPECT_EQ(optimize.children[2]->name, "reuse");
  EXPECT_EQ(optimize.children[3]->name, "materialize");

  // Root attributes identify the job.
  bool saw_job_id = false, saw_template = false;
  for (const auto& [key, value] : job.attributes) {
    saw_job_id |= key == "job_id";
    saw_template |= key == "template_id";
  }
  EXPECT_TRUE(saw_job_id);
  EXPECT_TRUE(saw_template);

  // The execute span carries the run statistics.
  const obs::SpanRecord* execute = job.Find("execute");
  ASSERT_NE(execute, nullptr);
  bool saw_rows = false;
  for (const auto& [key, value] : execute->attributes) {
    saw_rows |= key == "output_rows";
  }
  EXPECT_TRUE(saw_rows);

  // The tracer retains the same finished trace.
  EXPECT_EQ(cv_->tracer()->LatestTrace().get(), result->trace.get());
}

TEST_F(TpcdsProfileTest, RegistryReflectsTheWorkload) {
  obs::MetricsRegistry* m = cv_->metrics();
  constexpr int kJobs = 3;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(cv_->Submit(tpcds::MakeQueryJob(1 + i)).ok());
  }
  EXPECT_EQ(CounterValue(m, "cv_jobs_submitted_total"), kJobs);
  EXPECT_EQ(CounterValue(m, "cv_jobs_succeeded_total"), kJobs);
  EXPECT_EQ(CounterValue(m, "cv_jobs_failed_total"), 0);
  EXPECT_DOUBLE_EQ(m->GetGauge("cv_jobs_active")->value(), 0.0);
  EXPECT_GE(CounterValue(m, "cv_metadata_lookups_total"), kJobs);
  EXPECT_GT(CounterValue(m, "cv_exec_rows_total"), 0);
  EXPECT_EQ(m->GetHistogram("cv_job_latency_seconds")->count(),
            static_cast<uint64_t>(kJobs));
  for (const char* stage :
       {"metadata_lookup", "optimize", "execute", "record"}) {
    EXPECT_EQ(m->GetHistogram("cv_job_stage_seconds", {{"stage", stage}})
                  ->count(),
              static_cast<uint64_t>(kJobs))
        << stage;
  }
  // worker_threads=2 gives a one-worker shared pool named "exec".
  EXPECT_DOUBLE_EQ(
      m->GetGauge("cv_threadpool_threads", {{"pool", "exec"}})->value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      m->GetGauge("cv_threadpool_busy_workers", {{"pool", "exec"}})->value(),
      0.0);
  EXPECT_GT(
      m->GetCounter("cv_threadpool_tasks_total", {{"pool", "exec"}})->value(),
      0u);

  // The whole registry renders in both exposition formats.
  std::string prom = obs::RenderPrometheus(*m);
  EXPECT_NE(prom.find("# TYPE cv_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("cv_job_stage_seconds_bucket{stage=\"execute\",le="),
            std::string::npos);
  std::string json = obs::RenderMetricsJson(*m);
  EXPECT_NE(json.find("\"cv_threadpool_tasks_total\""), std::string::npos);
}

TEST_F(TpcdsProfileTest, ExplainAnalyzeAndJsonProfileRender) {
  auto result = cv_->Submit(tpcds::MakeQueryJob(2));
  ASSERT_TRUE(result.ok());

  std::string text = ExplainAnalyze(*result);
  EXPECT_NE(text.find("EXPLAIN ANALYZE job"), std::string::npos) << text;
  EXPECT_NE(text.find("lifecycle:"), std::string::npos) << text;
  EXPECT_NE(text.find("optimize"), std::string::npos) << text;
  EXPECT_NE(text.find("plan:"), std::string::npos) << text;
  EXPECT_NE(text.find("actual:"), std::string::npos) << text;

  std::string json = JobProfileJson(*result);
  EXPECT_NE(json.find("\"job_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":{"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\":{"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_seconds\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The reuse feedback loop shows up in the registry: materializations and
// reuses land in the cv_rewrite_* counters.
// ---------------------------------------------------------------------------

TEST(ReuseMetricsTest, RewriteDecisionsReachTheRegistry) {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  CloudViews cv(config);
  WriteClickStream(cv.storage(), "clicks_2018-01-01", 1500, 1, "2018-01-01");

  auto job = [&](const std::string& id, PlanNodePtr plan) {
    JobDefinition def;
    def.template_id = id;
    def.vc = "vc";
    def.user = "u-" + id;
    def.logical_plan = std::move(plan);
    return def;
  };
  auto plan_a = [&] {
    return PlanBuilder::From(SharedAggPlan("2018-01-01"))
        .Sort({{"n", false}})
        .Output("A")
        .Build();
  };
  auto plan_b = [&] {
    return PlanBuilder::From(SharedAggPlan("2018-01-01"))
        .Filter(Gt(Col("n"), Lit(int64_t{0})))
        .Output("B")
        .Build();
  };
  // Day 1: plain runs feed the repository; then analyze.
  ASSERT_TRUE(cv.Submit(job("jobA", plan_a()), false).ok());
  ASSERT_TRUE(cv.Submit(job("jobB", plan_b()), false).ok());
  cv.RunAnalyzerAndLoad();

  // Day 2: first job materializes the shared aggregate, second reuses it.
  auto first = cv.Submit(job("jobA", plan_a()));
  ASSERT_TRUE(first.ok());
  auto second = cv.Submit(job("jobB", plan_b()));
  ASSERT_TRUE(second.ok());
  ASSERT_GE(first->views_materialized, 1);
  ASSERT_GE(second->views_reused, 1);

  obs::MetricsRegistry* m = cv.metrics();
  EXPECT_GE(CounterValue(m, "cv_rewrite_views_materialized_total"), 1);
  EXPECT_GE(CounterValue(m, "cv_rewrite_views_reused_total"), 1);
  EXPECT_GE(CounterValue(m, "cv_metadata_views_registered_total"), 1);
  EXPECT_GE(m->GetGauge("cv_metadata_registered_views")->value(), 1.0);
  EXPECT_GE(m->GetGauge("cv_storage_views")->value(), 1.0);
  EXPECT_GT(m->GetGauge("cv_storage_view_bytes")->value(), 0.0);
  EXPECT_GE(m->GetHistogram("cv_metadata_lock_wait_seconds")->count(), 1u);
}

// ---------------------------------------------------------------------------
// DAG execution: a subtree shared by two parents runs exactly once, so
// executor counters and per-node cpu attribution are not double counted.
// ---------------------------------------------------------------------------

class DagExecTest : public ::testing::Test {
 protected:
  DagExecTest() : storage_(&clock_) {
    Schema schema({{"k", DataType::kInt64}, {"v", DataType::kDouble}});
    Batch b(schema);
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(b.AppendRow({Value::Int64(i % 7),
                               Value::Double(static_cast<double>(i))})
                      .ok());
    }
    EXPECT_TRUE(storage_
                    .WriteStream(MakeStreamData("t", "g-t", schema, {b},
                                                clock_.Now()))
                    .ok());
    schema_ = schema;
  }

  /// agg(k -> sum v) over the base table; the candidate shared subtree.
  PlanNodePtr Agg() {
    return PlanBuilder::Extract("t", "t", "g-t", schema_)
        .Aggregate({"k"}, {{AggFunc::kSum, Col("v"), "sv"}})
        .Build();
  }

  /// Join of the aggregate with a renamed projection of `right_input`;
  /// sharing `Agg()` on both sides makes the plan a DAG.
  static PlanNodePtr SelfJoin(PlanNodePtr left, PlanNodePtr right_input) {
    auto renamed = std::make_shared<ProjectNode>(
        std::move(right_input),
        std::vector<NamedExpr>{{Col("k"), "k2"}, {Col("sv"), "sv2"}});
    return std::make_shared<JoinNode>(
        std::move(left), renamed, JoinType::kInner,
        std::vector<std::pair<std::string, std::string>>{{"k", "k2"}});
  }

  JobRunStats Run(const PlanNodePtr& plan, obs::MetricsRegistry* metrics,
                  ThreadPool* pool = nullptr) {
    EXPECT_TRUE(plan->Bind().ok());
    AssignNodeIds(plan.get());
    ExecContext ctx;
    ctx.storage = &storage_;
    ctx.metrics = metrics;
    ctx.pool = pool;
    if (pool != nullptr) ctx.options.worker_threads = 4;
    ctx.options.morsel_rows = 64;
    Executor exec(ctx);
    auto result = exec.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  SimulatedClock clock_;
  StorageManager storage_;
  Schema schema_;
};

TEST_F(DagExecTest, SharedSubtreeExecutesOnce) {
  auto shared = Agg();
  auto dag_plan = SelfJoin(shared, shared);  // two parents for `shared`
  auto tree_plan = SelfJoin(Agg(), Agg());   // same shape, no sharing

  obs::MetricsRegistry dag_metrics;
  obs::MetricsRegistry tree_metrics;
  JobRunStats dag = Run(dag_plan, &dag_metrics);
  JobRunStats tree = Run(tree_plan, &tree_metrics);

  // Same answer either way.
  EXPECT_EQ(dag.output_rows, tree.output_rows);
  EXPECT_EQ(dag.output_bytes, tree.output_bytes);

  // The DAG touches fewer unique operators: extract + agg appear once.
  EXPECT_EQ(dag.operators.size(), 4u);   // extract, agg, project, join
  EXPECT_EQ(tree.operators.size(), 6u);  // both subtrees duplicated

  // Executor counters see the shared subtree once, so the DAG run
  // processes strictly fewer rows/morsels than the cloned-tree run.
  EXPECT_LT(CounterValue(&dag_metrics, "cv_exec_rows_total"),
            CounterValue(&tree_metrics, "cv_exec_rows_total"));
  EXPECT_LT(CounterValue(&dag_metrics, "cv_exec_morsels_total"),
            CounterValue(&tree_metrics, "cv_exec_morsels_total"));

  // cpu_seconds is the sum over per-operator entries — each written once.
  double op_cpu = 0;
  for (const auto& [id, op] : dag.operators) op_cpu += op.cpu_seconds;
  EXPECT_DOUBLE_EQ(dag.cpu_seconds, op_cpu);
}

TEST_F(DagExecTest, SharedSubtreeIsRaceFreeUnderThreadPool) {
  // Both join inputs are schedulable concurrently, so two workers can
  // arrive at the shared aggregate at once; the run-once latch must hold
  // (verified for data races by the TSan build).
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) {
    auto shared = Agg();
    auto plan = SelfJoin(shared, shared);
    obs::MetricsRegistry metrics;
    JobRunStats stats = Run(plan, &metrics, &pool);
    EXPECT_EQ(stats.operators.size(), 4u) << "iteration " << i;
  }
}

}  // namespace
}  // namespace cloudviews
