#include "types/batch.h"

#include <cassert>

#include "common/string_util.h"

namespace cloudviews {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kBool:
      data_ = std::vector<uint8_t>();
      break;
    case DataType::kInt64:
    case DataType::kDate:
      data_ = std::vector<int64_t>();
      break;
    case DataType::kDouble:
      data_ = std::vector<double>();
      break;
    case DataType::kString:
      data_ = std::vector<std::string>();
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

void Column::MarkValid() {
  if (!validity_.empty()) validity_.push_back(1);
}

void Column::AppendBool(bool v) {
  std::get<std::vector<uint8_t>>(data_).push_back(v ? 1 : 0);
  MarkValid();
}

void Column::AppendInt64(int64_t v) {
  std::get<std::vector<int64_t>>(data_).push_back(v);
  MarkValid();
}

void Column::AppendDouble(double v) {
  std::get<std::vector<double>>(data_).push_back(v);
  MarkValid();
}

void Column::AppendString(std::string v) {
  std::get<std::vector<std::string>>(data_).push_back(std::move(v));
  MarkValid();
}

void Column::AppendNull() {
  if (validity_.empty()) validity_.assign(size(), 1);
  std::visit([](auto& v) { v.emplace_back(); }, data_);
  validity_.push_back(0);
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  assert(v.type() == type_ ||
         // int64 and date share representation
         ((v.type() == DataType::kInt64 || v.type() == DataType::kDate) &&
          (type_ == DataType::kInt64 || type_ == DataType::kDate)));
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.bool_value());
      break;
    case DataType::kInt64:
    case DataType::kDate:
      AppendInt64(v.type() == DataType::kDate ? v.date_value()
                                              : v.int64_value());
      break;
    case DataType::kDouble:
      AppendDouble(v.double_value());
      break;
    case DataType::kString:
      AppendString(v.string_value());
      break;
  }
}

void Column::AppendFrom(const Column& other, size_t i) {
  assert(other.type_ == type_);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      AppendBool(other.bool_data()[i] != 0);
      break;
    case DataType::kInt64:
    case DataType::kDate:
      AppendInt64(other.int64_data()[i]);
      break;
    case DataType::kDouble:
      AppendDouble(other.double_data()[i]);
      break;
    case DataType::kString:
      AppendString(other.string_data()[i]);
      break;
  }
}

void Column::AppendRangeFrom(const Column& other, size_t begin, size_t end) {
  assert(other.type_ == type_);
  assert(begin <= end && end <= other.size());
  if (begin >= end) return;
  size_t old_size = size();
  std::visit(
      [&](auto& dst) {
        using Vec = std::remove_reference_t<decltype(dst)>;
        const Vec& src = std::get<Vec>(other.data_);
        dst.insert(dst.end(),
                   src.begin() + static_cast<ptrdiff_t>(begin),
                   src.begin() + static_cast<ptrdiff_t>(end));
      },
      data_);
  bool range_has_nulls = false;
  if (!other.validity_.empty()) {
    for (size_t i = begin; i < end; ++i) {
      if (other.validity_[i] == 0) {
        range_has_nulls = true;
        break;
      }
    }
  }
  if (range_has_nulls) {
    if (validity_.empty()) validity_.assign(old_size, 1);
    validity_.insert(validity_.end(),
                     other.validity_.begin() + static_cast<ptrdiff_t>(begin),
                     other.validity_.begin() + static_cast<ptrdiff_t>(end));
  } else if (!validity_.empty()) {
    validity_.insert(validity_.end(), end - begin, 1);
  }
}

bool Column::HasNulls() const {
  for (uint8_t v : validity_) {
    if (v == 0) return true;
  }
  return false;
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(bool_data()[i] != 0);
    case DataType::kInt64:
      return Value::Int64(int64_data()[i]);
    case DataType::kDate:
      return Value::Date(int64_data()[i]);
    case DataType::kDouble:
      return Value::Double(double_data()[i]);
    case DataType::kString:
      return Value::String(string_data()[i]);
  }
  return Value();
}

int64_t Column::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(validity_.size());
  switch (type_) {
    case DataType::kBool:
      bytes += static_cast<int64_t>(bool_data().size());
      break;
    case DataType::kInt64:
    case DataType::kDate:
      bytes += static_cast<int64_t>(int64_data().size()) * 8;
      break;
    case DataType::kDouble:
      bytes += static_cast<int64_t>(double_data().size()) * 8;
      break;
    case DataType::kString:
      for (const auto& s : string_data()) {
        bytes += static_cast<int64_t>(s.size()) + 8;
      }
      break;
  }
  return bytes;
}

Batch::Batch(const Schema& schema) : schema_(schema) {
  columns_.reserve(schema.num_fields());
  for (const auto& f : schema.fields()) {
    columns_.emplace_back(f.type);
  }
}

size_t Batch::num_rows() const {
  return columns_.empty() ? 0 : columns_[0].size();
}

Status Batch::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  return Status::OK();
}

void Batch::AppendRowFrom(const Batch& other, size_t i) {
  assert(other.num_columns() == num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], i);
  }
}

void Batch::AppendRowsFrom(const Batch& other, size_t begin, size_t end) {
  assert(other.num_columns() == num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendRangeFrom(other.columns_[c], begin, end);
  }
}

std::vector<Value> Batch::GetRow(size_t i) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& c : columns_) row.push_back(c.GetValue(i));
  return row;
}

int64_t Batch::ByteSize() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) bytes += c.ByteSize();
  return bytes;
}

std::string Batch::ToString(size_t limit) const {
  std::string out = StrFormat("Batch[%zu rows](%s)\n", num_rows(),
                              schema_.ToString().c_str());
  size_t n = std::min(limit, num_rows());
  for (size_t i = 0; i < n; ++i) {
    out += "  ";
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ", ";
      out += columns_[c].GetValue(i).ToString();
    }
    out += "\n";
  }
  if (n < num_rows()) out += StrFormat("  ... %zu more rows\n", num_rows() - n);
  return out;
}

}  // namespace cloudviews
