#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/guid.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing stream");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing stream");
  EXPECT_EQ(st.ToString(), "Not found: missing stream");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Aborted("lock lost");
  Status copy = st;
  EXPECT_TRUE(copy.IsAborted());
  EXPECT_EQ(copy.message(), "lock lost");
  st = Status::OK();
  EXPECT_TRUE(copy.IsAborted());  // deep copy, not aliased
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    CV_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool ok) -> Result<std::string> {
    if (!ok) return Status::NotFound("nope");
    return std::string("value");
  };
  auto use = [&](bool ok) -> Result<size_t> {
    CV_ASSIGN_OR_RETURN(std::string s, get(ok));
    return s.size();
  };
  EXPECT_EQ(*use(true), 5u);
  EXPECT_TRUE(use(false).status().IsNotFound());
}

// --- Hashing -----------------------------------------------------------------

TEST(HashTest, DeterministicAcrossBuilders) {
  HashBuilder a, b;
  a.Add(uint64_t{42}).Add(std::string_view("hello")).Add(3.14);
  b.Add(uint64_t{42}).Add(std::string_view("hello")).Add(3.14);
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(HashTest, OrderSensitive) {
  HashBuilder a, b;
  a.Add(uint64_t{1}).Add(uint64_t{2});
  b.Add(uint64_t{2}).Add(uint64_t{1});
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(HashTest, StringBoundariesMatter) {
  // "ab" + "c" must differ from "a" + "bc".
  HashBuilder a, b;
  a.Add(std::string_view("ab")).Add(std::string_view("c"));
  b.Add(std::string_view("a")).Add(std::string_view("bc"));
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(HashTest, EmptyBuilderIsStable) {
  EXPECT_EQ(HashBuilder().Finish(), HashBuilder().Finish());
  EXPECT_FALSE(HashBuilder().Finish().IsZero());
}

TEST(HashTest, SeedChangesResult) {
  HashBuilder a(1), b(2);
  a.Add(uint64_t{7});
  b.Add(uint64_t{7});
  EXPECT_NE(a.Finish(), b.Finish());
}

TEST(HashTest, HexRoundTrip) {
  HashBuilder hb;
  hb.Add(std::string_view("roundtrip"));
  Hash128 h = hb.Finish();
  std::string hex = h.ToHex();
  EXPECT_EQ(hex.size(), 32u);
  Hash128 parsed;
  ASSERT_TRUE(Hash128::FromHex(hex, &parsed));
  EXPECT_EQ(parsed, h);
}

TEST(HashTest, FromHexRejectsMalformed) {
  Hash128 h;
  EXPECT_FALSE(Hash128::FromHex("short", &h));
  EXPECT_FALSE(Hash128::FromHex(std::string(32, 'z'), &h));
}

TEST(HashTest, NoCollisionsOnSmallDomain) {
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    HashBuilder hb;
    hb.Add(i);
    seen.insert(hb.Finish().ToHex());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

// --- Rng / Zipf ----------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, SkewsTowardsLowRanks) {
  ZipfGenerator zipf(1000, 1.1);
  Rng rng(5);
  int rank0 = 0, high_ranks = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t s = zipf.Sample(&rng);
    ASSERT_LT(s, 1000u);
    if (s == 0) ++rank0;
    if (s > 500) ++high_ranks;
  }
  EXPECT_GT(rank0, high_ranks);  // heavy head
  EXPECT_GT(rank0, 1000);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

// --- DistributionSummary --------------------------------------------------------

TEST(StatsTest, PercentilesOnKnownData) {
  DistributionSummary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 100);
  EXPECT_NEAR(s.Median(), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.01);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
}

TEST(StatsTest, CdfSemantics) {
  DistributionSummary s;
  s.AddAll({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.CdfAt(0), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(2), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(10), 1.0);
  EXPECT_DOUBLE_EQ(s.FractionAtLeast(3), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAtLeast(5), 0.0);
}

TEST(StatsTest, EmptySummaryIsSafe) {
  DistributionSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1), 0);
}

TEST(StatsTest, AddAfterQueryResorts) {
  DistributionSummary s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Max(), 10);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Max(), 20);
}

TEST(StatsTest, LogSpaceCoversRange) {
  auto xs = LogSpace(1, 1000, 2);
  EXPECT_DOUBLE_EQ(xs.front(), 1);
  EXPECT_GE(xs.back(), 1000);
  for (size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
}

// --- Strings -------------------------------------------------------------------

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringUtilTest, StartsEndsReplace) {
  EXPECT_TRUE(StartsWith("/views/abc", "/views/"));
  EXPECT_FALSE(StartsWith("x", "xx"));
  EXPECT_TRUE(EndsWith("file.ss", ".ss"));
  EXPECT_EQ(ReplaceAll("a{d}b{d}", "{d}", "X"), "aXbX");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
}

// --- Misc ---------------------------------------------------------------------

TEST(ClockTest, AdvanceAndSet) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceSeconds(kSecondsPerHour);
  EXPECT_EQ(clock.Now(), 100 + 3600);
  clock.AdvanceTo(5);
  EXPECT_EQ(clock.Now(), 5);
}

TEST(GuidTest, UniqueAcrossCallsAndThreads) {
  std::set<std::string> guids;
  Mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        std::string g = GenerateGuid();
        MutexLock lock(mu);
        guids.insert(g);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(guids.size(), 400u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"longer", "22"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowsUsePrecision) {
  TablePrinter tp({"series", "a", "b"});
  tp.AddRow("row", {1.23456, 2.0}, 3);
  std::string s = tp.ToString();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

}  // namespace
}  // namespace cloudviews
