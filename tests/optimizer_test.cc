#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/rules.h"
#include "signature/signature.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::ClickSchema;

PlanBuilder Clicks(const std::string& date = "2018-01-01") {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                              "g-" + date, ClickSchema());
}

/// Finds the first node of the given kind, pre-order; nullptr if absent.
PlanNode* FindNode(const PlanNodePtr& root, OpKind kind) {
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == kind) return n;
  }
  return nullptr;
}

int CountNodes(const PlanNodePtr& root, OpKind kind) {
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &nodes);
  int c = 0;
  for (PlanNode* n : nodes) c += n->kind() == kind ? 1 : 0;
  return c;
}

// --- Logical rules ---------------------------------------------------------------

TEST(RulesTest, FilterPushesBelowSortAndExchange) {
  auto plan = Clicks()
                  .Exchange(Partitioning::Hash({"user"}, 4))
                  .Sort({{"user", true}})
                  .Filter(Gt(Col("latency"), Lit(int64_t{10})))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  // Expected: Sort -> Exchange -> Filter -> Extract.
  EXPECT_EQ(plan->kind(), OpKind::kSort);
  EXPECT_EQ(plan->child()->kind(), OpKind::kExchange);
  EXPECT_EQ(plan->child()->child()->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->child()->child()->child()->kind(), OpKind::kExtract);
}

TEST(RulesTest, FilterPushesThroughProjectWithSubstitution) {
  auto plan = Clicks()
                  .Project({{Col("user"), "u"},
                            {Mul(Col("latency"), Lit(int64_t{2})), "lat2"}})
                  .Filter(Gt(Col("lat2"), Lit(int64_t{100})))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  ASSERT_EQ(plan->kind(), OpKind::kProject);
  ASSERT_EQ(plan->child()->kind(), OpKind::kFilter);
  auto* filter = static_cast<FilterNode*>(plan->child().get());
  // The predicate now references the base column.
  EXPECT_NE(filter->predicate()->ToString().find("latency"),
            std::string::npos);
  ASSERT_TRUE(plan->Bind().ok());  // still type-correct
}

TEST(RulesTest, FilterSplitsAcrossJoinSides) {
  Schema users({{"uid", DataType::kInt64}, {"country", DataType::kString}});
  auto plan =
      Clicks()
          .Join(PlanBuilder::Extract("users", "users", "g2", users),
                JoinType::kInner, {{"user", "uid"}})
          .Filter(And(Gt(Col("latency"), Lit(int64_t{5})),
                      Eq(Col("country"), Lit("de"))))
          .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  ASSERT_EQ(plan->kind(), OpKind::kJoin);
  EXPECT_EQ(plan->children()[0]->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->children()[1]->kind(), OpKind::kFilter);
}

TEST(RulesTest, LeftOuterJoinKeepsRightFilterAbove) {
  Schema users({{"uid", DataType::kInt64}, {"country", DataType::kString}});
  auto plan = Clicks()
                  .Join(PlanBuilder::Extract("users", "users", "g2", users),
                        JoinType::kLeftOuter, {{"user", "uid"}})
                  .Filter(Eq(Col("country"), Lit("de")))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  // The right-side predicate must stay above the outer join.
  EXPECT_EQ(plan->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->child()->kind(), OpKind::kJoin);
  EXPECT_EQ(plan->child()->children()[1]->kind(), OpKind::kExtract);
}

TEST(RulesTest, FilterOnGroupKeysPushesBelowAggregate) {
  auto plan = Clicks()
                  .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                  .Filter(And(Eq(Col("page"), Lit("/home")),
                              Gt(Col("n"), Lit(int64_t{1}))))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  // page-predicate below the aggregate, n-predicate above.
  ASSERT_EQ(plan->kind(), OpKind::kFilter);
  auto* top = static_cast<FilterNode*>(plan.get());
  EXPECT_NE(top->predicate()->ToString().find("n"), std::string::npos);
  ASSERT_EQ(plan->child()->kind(), OpKind::kAggregate);
  EXPECT_EQ(plan->child()->child()->kind(), OpKind::kFilter);
}

TEST(RulesTest, MergeAdjacentFiltersCombines) {
  auto plan = Clicks()
                  .Filter(Gt(Col("latency"), Lit(int64_t{1})))
                  .Filter(Lt(Col("latency"), Lit(int64_t{100})))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = MergeAdjacentFilters(plan);
  EXPECT_EQ(plan->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->child()->kind(), OpKind::kExtract);
}

TEST(RulesTest, RedundantExchangeRemoved) {
  auto plan = Clicks()
                  .Exchange(Partitioning::Hash({"user"}, 4))
                  .Exchange(Partitioning::Hash({"user"}, 4))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = RemoveRedundantEnforcers(plan);
  EXPECT_EQ(plan->kind(), OpKind::kExchange);
  EXPECT_EQ(plan->child()->kind(), OpKind::kExtract);
}

// --- Physical planning ----------------------------------------------------------

TEST(PhysicalPlannerTest, HashAggGetsExchangeEnforcer) {
  Optimizer opt;
  auto logical = Clicks()
                     .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto* agg = FindNode(result->root, OpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(static_cast<AggregateNode*>(agg)->algorithm(),
            AggAlgorithm::kHash);
  EXPECT_EQ(agg->child()->kind(), OpKind::kExchange);
}

TEST(PhysicalPlannerTest, JoinGetsExchangesOnBothSides) {
  Schema users({{"uid", DataType::kInt64}});
  Optimizer opt;
  auto logical = Clicks()
                     .Join(PlanBuilder::Extract("users", "users", "g", users),
                           JoinType::kInner, {{"user", "uid"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, {});
  ASSERT_TRUE(result.ok());
  auto* join = FindNode(result->root, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->children()[0]->kind(), OpKind::kExchange);
  EXPECT_EQ(join->children()[1]->kind(), OpKind::kExchange);
  EXPECT_EQ(static_cast<JoinNode*>(join)->algorithm(), JoinAlgorithm::kHash);
}

TEST(PhysicalPlannerTest, SortedInputsPickMergeJoinAndStreamAgg) {
  Schema users({{"uid", DataType::kInt64}});
  Optimizer opt;
  auto left = Clicks().Sort({{"user", true}});
  auto right = PlanBuilder::Extract("users", "users", "g", users)
                   .Sort({{"uid", true}});
  auto logical = std::move(left)
                     .Join(std::move(right), JoinType::kInner,
                           {{"user", "uid"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, {});
  ASSERT_TRUE(result.ok());
  auto* join = FindNode(result->root, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<JoinNode*>(join)->algorithm(),
            JoinAlgorithm::kMerge);

  auto agg_logical = Clicks()
                         .Sort({{"page", true}})
                         .Aggregate({"page"}, {{AggFunc::kCount, nullptr,
                                                "n"}})
                         .Output("out")
                         .Build();
  auto agg_result = opt.Optimize(agg_logical, {});
  ASSERT_TRUE(agg_result.ok());
  auto* agg = FindNode(agg_result->root, OpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(static_cast<AggregateNode*>(agg)->algorithm(),
            AggAlgorithm::kStream);
}

TEST(PhysicalPlannerTest, DeterministicAcrossRecurringInstances) {
  Optimizer opt;
  auto make = [&](const std::string& date) {
    auto logical =
        Clicks(date)
            .Filter(Ge(Col("when"),
                       Param("date", Value::DateFromString(date))))
            .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
            .Output("out_" + date)
            .Build();
    auto r = opt.Optimize(logical, {});
    EXPECT_TRUE(r.ok());
    return r->root;
  };
  auto day1 = make("2018-01-01");
  auto day2 = make("2018-01-02");
  EXPECT_EQ(day1->SubtreeHash(SignatureMode::kNormalized),
            day2->SubtreeHash(SignatureMode::kNormalized));
  EXPECT_NE(day1->SubtreeHash(SignatureMode::kPrecise),
            day2->SubtreeHash(SignatureMode::kPrecise));
}

// --- Cost model --------------------------------------------------------------------

class FakeFeedback : public StatsProviderInterface {
 public:
  std::optional<SubgraphObservedStats> Lookup(
      const Hash128& sig) const override {
    auto it = stats_.find(sig);
    if (it == stats_.end()) return std::nullopt;
    return it->second;
  }
  void Set(const Hash128& sig, SubgraphObservedStats stats) {
    stats_[sig] = stats;
  }

 private:
  std::unordered_map<Hash128, SubgraphObservedStats, Hash128Hasher> stats_;
};

TEST(CostModelTest, AnnotatesEstimatesBottomUp) {
  auto plan = Clicks().Filter(Eq(Col("page"), Lit("/home"))).Build();
  ASSERT_TRUE(plan->Bind().ok());
  CostModel model;
  model.Annotate(plan.get(), nullptr, nullptr);
  EXPECT_GT(plan->estimates().cost, 0);
  EXPECT_GT(plan->child()->estimates().rows, 0);
  // Equality filter selectivity: far fewer rows than the scan.
  EXPECT_LT(plan->estimates().rows, plan->child()->estimates().rows);
}

TEST(CostModelTest, StorageSuppliesInputCardinality) {
  SimulatedClock clock;
  StorageManager storage(&clock);
  testing_util::WriteClickStream(&storage, "clicks_2018-01-01", 500, 1,
                                 "2018-01-01");
  auto plan = Clicks().Build();
  ASSERT_TRUE(plan->Bind().ok());
  CostModel model;
  model.Annotate(plan.get(), nullptr, &storage);
  EXPECT_DOUBLE_EQ(plan->estimates().rows, 500);
}

TEST(CostModelTest, FeedbackOverridesEstimates) {
  auto plan = Clicks().Filter(Eq(Col("page"), Lit("/home"))).Build();
  ASSERT_TRUE(plan->Bind().ok());
  FakeFeedback feedback;
  SubgraphObservedStats observed;
  observed.rows = 7;
  observed.bytes = 123;
  observed.observations = 3;
  feedback.Set(plan->SubtreeHash(SignatureMode::kNormalized), observed);
  CostModel model;
  model.Annotate(plan.get(), &feedback, nullptr);
  EXPECT_DOUBLE_EQ(plan->estimates().rows, 7);
  EXPECT_TRUE(plan->estimates().from_feedback);
}

TEST(CostModelTest, SelectivityHeuristics) {
  EXPECT_LT(CostModel::PredicateSelectivity(
                *Eq(Col("a"), Lit(int64_t{1}))),
            CostModel::PredicateSelectivity(*Ne(Col("a"), Lit(int64_t{1}))));
  auto conj = And(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2})));
  EXPECT_NEAR(CostModel::PredicateSelectivity(*conj), 0.01, 1e-9);
}

// --- View rewriting ------------------------------------------------------------------

class FakeCatalog : public ViewCatalogInterface {
 public:
  std::optional<MaterializedViewInfo> FindMaterialized(
      const Hash128& normalized, const Hash128& precise) override {
    auto it = views_.find(precise);
    if (it == views_.end() ||
        !(it->second.normalized_signature == normalized)) {
      return std::nullopt;
    }
    return it->second;
  }
  bool ProposeMaterialize(const Hash128&, const Hash128& precise, uint64_t,
                          double) override {
    if (views_.count(precise) > 0 || locked_.count(precise) > 0) {
      return false;
    }
    locked_.insert(precise);
    return true;
  }
  void AddView(MaterializedViewInfo info) {
    views_[info.precise_signature] = std::move(info);
  }
  std::unordered_map<Hash128, MaterializedViewInfo, Hash128Hasher> views_;
  std::set<Hash128> locked_;
};

ViewAnnotation AnnotationFor(const PlanNodePtr& subgraph) {
  ViewAnnotation ann;
  ann.normalized_signature =
      subgraph->SubtreeHash(SignatureMode::kNormalized);
  ann.expected_rows = 10;
  ann.expected_bytes = 100;
  ann.avg_runtime_seconds = 1.0;
  ann.frequency = 5;
  ann.lifetime_seconds = kSecondsPerDay;
  return ann;
}

TEST(ViewRewriteTest, MaterializationInsertsSpoolUnderLimit) {
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  FakeCatalog catalog;
  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.job_id = 11;
  ctx.annotations.push_back(AnnotationFor(shared));

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone())
                     .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->views_materialized, 1);
  EXPECT_EQ(result->views_reused, 0);
  auto* spool = FindNode(result->root, OpKind::kSpool);
  ASSERT_NE(spool, nullptr);
  EXPECT_EQ(static_cast<SpoolNode*>(spool)->lifetime_seconds(),
            kSecondsPerDay);
  uint64_t job = 0;
  Hash128 n, p;
  EXPECT_TRUE(ParseViewPath(static_cast<SpoolNode*>(spool)->view_path(), &n,
                            &p, &job));
  EXPECT_EQ(job, 11u);
}

TEST(ViewRewriteTest, SecondCompilationIsDeniedTheLock) {
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  FakeCatalog catalog;
  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(shared));

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone()).Output("out").Build();
  ASSERT_TRUE(opt.Optimize(logical, ctx).ok());
  auto second = opt.Optimize(logical, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->views_materialized, 0);
  EXPECT_EQ(second->materialize_lock_denied, 1);
}

TEST(ViewRewriteTest, ReuseReplacesSubtreeWithViewRead) {
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  Hash128 norm = shared->SubtreeHash(SignatureMode::kNormalized);
  Hash128 precise = shared->SubtreeHash(SignatureMode::kPrecise);

  FakeCatalog catalog;
  MaterializedViewInfo info;
  info.path = EncodeViewPath(norm, precise, 1);
  info.normalized_signature = norm;
  info.precise_signature = precise;
  info.rows = 5;
  info.bytes = 50;
  catalog.AddView(info);

  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(shared));

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone())
                     .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views_reused, 1);
  EXPECT_EQ(result->views_materialized, 0);
  EXPECT_NE(FindNode(result->root, OpKind::kViewRead), nullptr);
  EXPECT_EQ(FindNode(result->root, OpKind::kFilter), nullptr);
}

TEST(ViewRewriteTest, ExpensiveViewRejectedByCost) {
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  Hash128 norm = shared->SubtreeHash(SignatureMode::kNormalized);
  Hash128 precise = shared->SubtreeHash(SignatureMode::kPrecise);

  FakeCatalog catalog;
  MaterializedViewInfo info;
  info.path = EncodeViewPath(norm, precise, 1);
  info.normalized_signature = norm;
  info.precise_signature = precise;
  info.rows = 1e12;  // reading this would dwarf recomputing
  info.bytes = 1e15;
  catalog.AddView(info);

  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(shared));

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone()).Output("out").Build();
  auto result = opt.Optimize(logical, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views_reused, 0);
  EXPECT_EQ(result->reuse_rejected_by_cost, 1);
  // And it must not try to re-materialize an existing view.
  EXPECT_EQ(result->views_materialized, 0);
}

TEST(ViewRewriteTest, StaleViewNotReusedAfterDataChanges) {
  // View built for day-1 data; the day-2 job must not match it.
  auto day1 = Clicks("2018-01-01")
                  .Filter(Gt(Col("latency"), Lit(int64_t{10})))
                  .Build();
  ASSERT_TRUE(day1->Bind().ok());
  FakeCatalog catalog;
  MaterializedViewInfo info;
  info.normalized_signature = day1->SubtreeHash(SignatureMode::kNormalized);
  info.precise_signature = day1->SubtreeHash(SignatureMode::kPrecise);
  info.path = "/views/x/y_1.ss";
  info.rows = 5;
  info.bytes = 50;
  catalog.AddView(info);

  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(day1));

  Optimizer opt;
  auto day2_logical = Clicks("2018-01-02")
                          .Filter(Gt(Col("latency"), Lit(int64_t{10})))
                          .Output("out")
                          .Build();
  auto result = opt.Optimize(day2_logical, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views_reused, 0);
  // Instead it wins the lock and materializes the day-2 instance.
  EXPECT_EQ(result->views_materialized, 1);
}

TEST(ViewRewriteTest, PerJobMaterializationLimitHonored) {
  auto v1 = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  auto v2 = Clicks().Filter(Lt(Col("latency"), Lit(int64_t{400}))).Build();
  ASSERT_TRUE(v1->Bind().ok());
  ASSERT_TRUE(v2->Bind().ok());

  FakeCatalog catalog;
  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(v1));
  ctx.annotations.push_back(AnnotationFor(v2));

  auto logical = PlanBuilder::From(v1->Clone())
                     .UnionAll(PlanBuilder::From(v2->Clone()))
                     .Output("out")
                     .Build();

  OptimizerConfig config;
  config.max_materialized_views_per_job = 1;
  Optimizer opt1(config);
  auto r1 = opt1.Optimize(logical, ctx);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->views_materialized, 1);
  EXPECT_EQ(CountNodes(r1->root, OpKind::kSpool), 1);

  config.max_materialized_views_per_job = 2;
  Optimizer opt2(config);
  FakeCatalog catalog2;
  ctx.view_catalog = &catalog2;
  auto r2 = opt2.Optimize(logical, ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->views_materialized, 2);
}

TEST(ViewRewriteTest, MaterializationCostGateProtectsCheapJobs) {
  // The annotated subgraph is nearly the whole job; with a strict gate the
  // cheap job refuses to pay for the view build.
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  FakeCatalog catalog;
  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(shared));
  auto logical = PlanBuilder::From(shared->Clone()).Output("out").Build();

  OptimizerConfig strict;
  strict.max_materialize_cost_fraction = 0.01;
  auto gated = Optimizer(strict).Optimize(logical, ctx);
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->views_materialized, 0);
  EXPECT_EQ(gated->materialize_skipped_by_cost, 1);

  OptimizerConfig off;
  off.max_materialize_cost_fraction = 0;  // gate disabled
  FakeCatalog catalog2;
  ctx.view_catalog = &catalog2;
  auto ungated = Optimizer(off).Optimize(logical, ctx);
  ASSERT_TRUE(ungated.ok());
  EXPECT_EQ(ungated->views_materialized, 1);
}

TEST(RulesTest, FilterPushesIntoUnionBranches) {
  auto plan = Clicks()
                  .UnionAll(Clicks("2018-01-02"))
                  .Filter(Gt(Col("latency"), Lit(int64_t{7})))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  ASSERT_EQ(plan->kind(), OpKind::kUnionAll);
  for (const auto& branch : plan->children()) {
    EXPECT_EQ(branch->kind(), OpKind::kFilter);
  }
}

TEST(RulesTest, FilterStopsAtOpaqueOperators) {
  // Process is opaque user code: nothing may move below it.
  auto plan = Clicks()
                  .Process("identity", "lib", "1.0",
                           testing_util::ClickSchema())
                  .Filter(Gt(Col("latency"), Lit(int64_t{7})))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = PushDownFilters(plan);
  EXPECT_EQ(plan->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->child()->kind(), OpKind::kProcess);

  // Top changes results if a filter crosses it.
  auto top_plan = Clicks()
                      .Top(3)
                      .Filter(Gt(Col("latency"), Lit(int64_t{7})))
                      .Build();
  ASSERT_TRUE(top_plan->Bind().ok());
  top_plan = PushDownFilters(top_plan);
  EXPECT_EQ(top_plan->kind(), OpKind::kFilter);
  EXPECT_EQ(top_plan->child()->kind(), OpKind::kTop);
}

TEST(RulesTest, TripleFilterStackMergesToOne) {
  auto plan = Clicks()
                  .Filter(Gt(Col("latency"), Lit(int64_t{1})))
                  .Filter(Lt(Col("latency"), Lit(int64_t{100})))
                  .Filter(Ne(Col("page"), Lit("/none")))
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = MergeAdjacentFilters(plan);
  EXPECT_EQ(plan->kind(), OpKind::kFilter);
  EXPECT_EQ(plan->child()->kind(), OpKind::kExtract);
}

TEST(RulesTest, RedundantSortRemoved) {
  auto plan = Clicks()
                  .Sort({{"user", true}})
                  .Sort({{"user", true}})
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  plan = RemoveRedundantEnforcers(plan);
  EXPECT_EQ(plan->kind(), OpKind::kSort);
  EXPECT_EQ(plan->child()->kind(), OpKind::kExtract);
  // A *different* sort must stay.
  auto different = Clicks()
                       .Sort({{"user", true}})
                       .Sort({{"latency", false}})
                       .Build();
  ASSERT_TRUE(different->Bind().ok());
  different = RemoveRedundantEnforcers(different);
  EXPECT_EQ(different->child()->kind(), OpKind::kSort);
}

TEST(PhysicalPlannerTest, OutputDesignGetsEnforcers) {
  Optimizer opt;
  auto out = std::make_shared<OutputNode>(Clicks().Build(), "dest");
  out->set_declared_design(PhysicalProperties{
      Partitioning::Hash({"user"}, 8), {{{"latency", true}}}});
  auto result = opt.Optimize(out, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Output -> Sort -> Exchange -> Extract.
  EXPECT_EQ(result->root->kind(), OpKind::kOutput);
  EXPECT_EQ(result->root->child()->kind(), OpKind::kSort);
  EXPECT_EQ(result->root->child()->child()->kind(), OpKind::kExchange);
}

TEST(PhysicalPlannerTest, ReduceGetsExchangeAndSort) {
  Optimizer opt;
  auto reduce = std::make_shared<ReduceNode>(
      Clicks().Build(), std::vector<std::string>{"page"}, "first_of_group",
      "lib", "1.0", Schema());
  auto logical = PlanBuilder::From(reduce).Output("out").Build();
  auto result = opt.Optimize(logical, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto* r = FindNode(result->root, OpKind::kReduce);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->child()->kind(), OpKind::kSort);
  EXPECT_EQ(r->child()->child()->kind(), OpKind::kExchange);
}

TEST(ViewRewriteTest, OfflineAnnotationSkipsInlineMaterialization) {
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  FakeCatalog catalog;
  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ViewAnnotation ann = AnnotationFor(shared);
  ann.offline = true;
  ctx.annotations.push_back(ann);

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone()).Output("out").Build();
  auto result = opt.Optimize(logical, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->views_materialized, 0);
}

TEST(ViewRewriteTest, ViewDesignMismatchGetsEnforcerRepair) {
  // The view delivers no useful properties, but the consumer aggregates on
  // "page", so an exchange must be re-inserted above the ViewRead.
  auto shared = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(shared->Bind().ok());
  Hash128 norm = shared->SubtreeHash(SignatureMode::kNormalized);
  Hash128 precise = shared->SubtreeHash(SignatureMode::kPrecise);
  FakeCatalog catalog;
  MaterializedViewInfo info;
  info.path = EncodeViewPath(norm, precise, 1);
  info.normalized_signature = norm;
  info.precise_signature = precise;
  info.rows = 5;
  info.bytes = 50;
  catalog.AddView(info);

  OptimizeContext ctx;
  ctx.view_catalog = &catalog;
  ctx.annotations.push_back(AnnotationFor(shared));

  Optimizer opt;
  auto logical = PlanBuilder::From(shared->Clone())
                     .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                     .Output("out")
                     .Build();
  auto result = opt.Optimize(logical, ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views_reused, 1);
  auto* agg = FindNode(result->root, OpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->child()->kind(), OpKind::kExchange);
  EXPECT_EQ(agg->child()->child()->kind(), OpKind::kViewRead);
}

}  // namespace
}  // namespace cloudviews
