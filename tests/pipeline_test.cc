// Cross-VC data pipeline integration: a producer job cooks data with a
// declared output design; consumer jobs in other VCs extract it. Covers
// the Sec 8 lessons "Improving data sharing across VCs" and "Reusing
// existing outputs", end to end through scripts.
#include <gtest/gtest.h>

#include "analyzer/overlap_analyzer.h"
#include "common/guid.h"
#include "common/random.h"
#include "core/cloudviews.h"
#include "parser/parser.h"

namespace cloudviews {
namespace {

const char* kProducerScript = R"(
raw    = EXTRACT user:int, page:string, latency:int, when:date
         FROM "raw_events_{date}";
clean  = PROCESS raw USING cleanse("cooking", "5.0");
cooked = SELECT user, page, latency FROM clean WHERE latency > 0;
OUTPUT cooked TO "cooked_{date}" CLUSTERED BY user INTO 4 SORTED BY user;
)";

const char* kConsumerScript = R"(
cooked = EXTRACT user:int, page:string, latency:int
         FROM "cooked_{date}";
stats  = SELECT user, COUNT(*) AS n, MAX(latency) AS worst
         FROM cooked GROUP BY user;
OUTPUT stats TO "user_stats_{date}";
)";

// A second consumer whose whole computation duplicates the first, writing
// a different output stream (the "redundant outputs" situation).
const char* kDuplicateConsumerScript = R"(
cooked = EXTRACT user:int, page:string, latency:int
         FROM "cooked_{date}";
stats  = SELECT user, COUNT(*) AS n, MAX(latency) AS worst
         FROM cooked GROUP BY user;
OUTPUT stats TO "user_stats_copy_{date}";
)";

class PipelineTest : public ::testing::Test {
 protected:
  void WriteRaw(const std::string& date, uint64_t seed) {
    Schema schema({{"user", DataType::kInt64},
                   {"page", DataType::kString},
                   {"latency", DataType::kInt64},
                   {"when", DataType::kDate}});
    Rng rng(seed);
    int64_t day = 0;
    ParseDate(date, &day);
    Batch b(schema);
    for (int i = 0; i < 900; ++i) {
      ASSERT_TRUE(
          b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(50))),
                       Value::String("/p" + std::to_string(rng.Uniform(9))),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(300))),
                       Value::Date(day)})
              .ok());
    }
    ASSERT_TRUE(cv_.storage()
                    ->WriteStream(MakeStreamData("raw_events_" + date,
                                                 GenerateGuid(), schema, {b},
                                                 cv_.clock()->Now()))
                    .ok());
  }

  Result<JobResult> RunScript(const char* script, const std::string& id,
                              const std::string& vc,
                              const std::string& date,
                              bool enable_cv = true) {
    ScopeScriptParser parser;
    ParamMap params;
    params["date"] = DateParam(date);
    StorageManager* storage = cv_.storage();
    auto plan =
        parser.Parse(script, params, [storage](const std::string& name) {
          auto handle = storage->OpenStream(name);
          return handle.ok() ? (*handle)->guid : std::string();
        });
    if (!plan.ok()) return plan.status();
    JobDefinition def;
    def.template_id = id;
    def.vc = vc;
    def.user = "owner-" + id;
    def.logical_plan = *plan;
    return cv_.Submit(def, enable_cv);
  }

  CloudViews cv_;
};

TEST_F(PipelineTest, ProducerOutputCarriesDeclaredDesign) {
  WriteRaw("2018-01-01", 5);
  auto r = RunScript(kProducerScript, "producer", "vc-cook", "2018-01-01");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto cooked = cv_.storage()->OpenStream("cooked_2018-01-01");
  ASSERT_TRUE(cooked.ok());
  // The declared layout was enforced and recorded.
  EXPECT_EQ((*cooked)->props.partitioning.scheme, PartitionScheme::kHash);
  EXPECT_EQ((*cooked)->props.partitioning.columns,
            std::vector<std::string>{"user"});
  EXPECT_TRUE((*cooked)->props.sort_order.IsSorted());
  // And the data is physically sorted on user.
  Batch data = CombineBatches((*cooked)->schema, (*cooked)->batches);
  for (size_t i = 1; i < data.num_rows(); ++i) {
    EXPECT_LE(data.column(0).GetValue(i - 1).Compare(
                  data.column(0).GetValue(i)),
              0);
  }
}

TEST_F(PipelineTest, ConsumersDownstreamOfProducerWork) {
  WriteRaw("2018-01-01", 5);
  ASSERT_TRUE(
      RunScript(kProducerScript, "producer", "vc-cook", "2018-01-01").ok());
  auto consumer =
      RunScript(kConsumerScript, "consumer", "vc-an", "2018-01-01");
  ASSERT_TRUE(consumer.ok()) << consumer.status().ToString();
  EXPECT_TRUE(cv_.storage()->StreamExists("user_stats_2018-01-01"));
  // The producer's declared sort order lets the optimizer pick stream
  // aggregation for the consumer's GROUP BY user.
  std::vector<PlanNode*> nodes;
  CollectNodes(consumer->executed_plan, &nodes);
  bool has_agg = false;
  for (PlanNode* n : nodes) {
    has_agg |= n->kind() == OpKind::kAggregate;
  }
  EXPECT_TRUE(has_agg);
}

TEST_F(PipelineTest, DuplicateConsumersDetectedAndReused) {
  // Day 1: both consumers run; the analyzer flags the redundant output
  // and selects the shared computation.
  WriteRaw("2018-01-01", 5);
  ASSERT_TRUE(
      RunScript(kProducerScript, "producer", "vc-cook", "2018-01-01").ok());
  ASSERT_TRUE(
      RunScript(kConsumerScript, "consumer", "vc-an", "2018-01-01").ok());
  ASSERT_TRUE(RunScript(kDuplicateConsumerScript, "consumer2", "vc-ml",
                        "2018-01-01")
                  .ok());

  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());
  OverlapReport report = overlap.BuildReport();
  EXPECT_GE(report.redundant_output_groups, 1u);
  EXPECT_GE(report.jobs_with_redundant_output, 2u);

  auto analysis = cv_.RunAnalyzerAndLoad();
  ASSERT_FALSE(analysis.annotations.empty());

  // Day 2: first consumer builds the shared stats computation, the
  // duplicate reuses it wholesale.
  WriteRaw("2018-01-02", 6);
  ASSERT_TRUE(
      RunScript(kProducerScript, "producer", "vc-cook", "2018-01-02").ok());
  auto c1 = RunScript(kConsumerScript, "consumer", "vc-an", "2018-01-02");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->views_materialized, 1);
  auto c2 = RunScript(kDuplicateConsumerScript, "consumer2", "vc-ml",
                      "2018-01-02");
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c2->views_reused, 1);

  // Both outputs exist and agree.
  auto a = *cv_.storage()->OpenStream("user_stats_2018-01-02");
  auto b = *cv_.storage()->OpenStream("user_stats_copy_2018-01-02");
  Batch ab = SortBatch(CombineBatches(a->schema, a->batches),
                       {{"user", true}});
  Batch bb = SortBatch(CombineBatches(b->schema, b->batches),
                       {{"user", true}});
  ASSERT_EQ(ab.num_rows(), bb.num_rows());
  for (size_t r = 0; r < ab.num_rows(); ++r) {
    for (size_t c = 0; c < ab.num_columns(); ++c) {
      EXPECT_EQ(ab.column(c).GetValue(r).Compare(bb.column(c).GetValue(r)),
                0);
    }
  }
}

TEST_F(PipelineTest, ReduceScriptEndToEnd) {
  WriteRaw("2018-01-01", 5);
  const char* script = R"(
raw = EXTRACT user:int, page:string, latency:int, when:date
      FROM "raw_events_{date}";
d   = REDUCE raw ON user USING first_of_group("dedup", "1.0");
OUTPUT d TO "deduped_{date}";
)";
  auto r = RunScript(script, "dedup-job", "vc", "2018-01-01", false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = *cv_.storage()->OpenStream("deduped_2018-01-01");
  Batch data = CombineBatches(out->schema, out->batches);
  // One row per distinct user.
  std::set<int64_t> users;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_TRUE(users.insert(data.column(0).GetValue(i).int64_value())
                    .second);
  }
  EXPECT_EQ(users.size(), data.num_rows());
  EXPECT_GT(data.num_rows(), 10u);
}

}  // namespace
}  // namespace cloudviews
