file(REMOVE_RECURSE
  "libcv_plan.a"
)
