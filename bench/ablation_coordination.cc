// Ablation (Sec 6.5): job coordination. Analyzer-ordered sequential
// submission vs uncoordinated concurrent submission of the same instance.
#include <cstdio>
#include <iostream>

#include "analyzer/analyzer.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

struct PassResult {
  double total_cpu = 0;
  int built = 0;
  int reused = 0;
  int lock_denied = 0;
};

PassResult RunPass(bool coordinated) {
  ProductionWorkload workload;
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 3;
  config.analyzer.selection.min_cost_fraction_of_job = 0.2;
  config.analyzer.selection.max_per_job = 1;
  CloudViews cv(config);

  workload.WriteInputs(cv.storage(), "2018-01-01");
  std::map<uint64_t, size_t> job_to_index;
  auto day1 = workload.Instance("2018-01-01");
  for (size_t i = 0; i < day1.size(); ++i) {
    auto r = cv.Submit(day1[i], false);
    if (r.ok()) job_to_index[r->job_id] = i;
  }
  auto analysis = cv.RunAnalyzerAndLoad();

  workload.WriteInputs(cv.storage(), "2018-01-02");
  auto day2 = workload.Instance("2018-01-02");

  PassResult result;
  auto account = [&](const Result<JobResult>& r) {
    if (!r.ok()) return;
    result.total_cpu += r->run_stats.cpu_seconds;
    result.built += r->views_materialized;
    result.reused += r->views_reused;
    result.lock_denied += r->materialize_lock_denied;
  };

  if (coordinated) {
    // Analyzer hints: per view, the cheapest containing job runs first and
    // builds for everyone else; then the rest may run concurrently.
    std::vector<JobDefinition> builders, rest;
    std::set<size_t> builder_idx;
    size_t n_builders = analysis.annotations.size();
    for (uint64_t job_id : analysis.submission_order) {
      if (builder_idx.size() >= n_builders) break;
      auto it = job_to_index.find(job_id);
      if (it != job_to_index.end()) builder_idx.insert(it->second);
    }
    for (size_t i = 0; i < day2.size(); ++i) {
      (builder_idx.count(i) ? builders : rest).push_back(day2[i]);
    }
    JobServiceOptions options;
    options.enable_cloudviews = true;
    for (const auto& def : builders) account(cv.Submit(def, true));
    for (auto& r : cv.job_service()->SubmitConcurrent(rest, options)) {
      account(r);
    }
  } else {
    // Uncoordinated: everything lands at once; concurrent jobs recompute
    // the same subgraphs and race for the build locks.
    JobServiceOptions options;
    options.enable_cloudviews = true;
    for (auto& r : cv.job_service()->SubmitConcurrent(day2, options)) {
      account(r);
    }
  }
  return result;
}

int Run() {
  FigureHeader(
      "Ablation: job coordination",
      "analyzer-ordered submission vs uncoordinated concurrency (Sec 6.5)",
      "\"multiple jobs containing the same overlapping computation could "
      "be scheduled concurrently ... they will recompute the same "
      "subgraph\"; ordering the shortest builder first maximizes reuse");

  PassResult coordinated = RunPass(true);
  PassResult uncoordinated = RunPass(false);

  TablePrinter table({"variant", "total CPU (ms)", "views built",
                      "jobs reusing", "lock denials"});
  table.AddRow({"coordinated (builders first)",
                StrFormat("%.1f", coordinated.total_cpu * 1000),
                StrFormat("%d", coordinated.built),
                StrFormat("%d", coordinated.reused),
                StrFormat("%d", coordinated.lock_denied)});
  table.AddRow({"uncoordinated (all concurrent)",
                StrFormat("%.1f", uncoordinated.total_cpu * 1000),
                StrFormat("%d", uncoordinated.built),
                StrFormat("%d", uncoordinated.reused),
                StrFormat("%d", uncoordinated.lock_denied)});
  table.Print(std::cout);

  std::printf("\nsummary\n");
  PaperVsMeasured(
      "reuse lost without coordination", "recompute + lock contention",
      StrFormat("%d -> %d jobs reusing", coordinated.reused,
                uncoordinated.reused));
  PaperVsMeasured(
      "CPU overhead without coordination", "> 0",
      StrFormat("%+.1f%%",
                100.0 * (uncoordinated.total_cpu - coordinated.total_cpu) /
                    coordinated.total_cpu));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
