file(REMOVE_RECURSE
  "CMakeFiles/cv_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/cv_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/cv_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/cv_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/cv_optimizer.dir/physical_planner.cc.o"
  "CMakeFiles/cv_optimizer.dir/physical_planner.cc.o.d"
  "CMakeFiles/cv_optimizer.dir/rules.cc.o"
  "CMakeFiles/cv_optimizer.dir/rules.cc.o.d"
  "CMakeFiles/cv_optimizer.dir/view_rewriter.cc.o"
  "CMakeFiles/cv_optimizer.dir/view_rewriter.cc.o.d"
  "libcv_optimizer.a"
  "libcv_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
