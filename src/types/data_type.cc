#include "types/data_type.h"

namespace cloudviews {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

bool DataTypeFromString(const std::string& name, DataType* out) {
  if (name == "bool") {
    *out = DataType::kBool;
  } else if (name == "int" || name == "long" || name == "int64") {
    *out = DataType::kInt64;
  } else if (name == "double" || name == "float") {
    *out = DataType::kDouble;
  } else if (name == "string") {
    *out = DataType::kString;
  } else if (name == "date") {
    *out = DataType::kDate;
  } else {
    return false;
  }
  return true;
}

int DataTypeWidth(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      return 8;
    case DataType::kString:
      return 16;  // average estimate; refined from actual data when known
  }
  return 8;
}

}  // namespace cloudviews
