#include "tools/invariant_analyzer_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "tools/token.h"

namespace cloudviews {
namespace lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Invariant groups
// ---------------------------------------------------------------------------

struct GroupDef {
  const char* name;
  std::vector<const char*> functions;
};

const std::vector<GroupDef>& Groups() {
  static const std::vector<GroupDef> kGroups = {
      {"hash",
       {"Hash", "HashInto", "HashLocal", "SubtreeHash", "Fingerprint",
        "Normalize"}},
      {"equals", {"operator==", "Equals"}},
      {"clone", {"Clone"}},
      {"rebind", {"RebindInstance"}},
      {"serialize", {"Serialize", "SerializeTo", "ToJson"}},
  };
  return kGroups;
}

const GroupDef* FindGroup(const std::string& name) {
  for (const auto& g : Groups()) {
    if (name == g.name) return &g;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

bool IsIdentTok(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsAccessSpecifier(const std::string& s) {
  return s == "public" || s == "private" || s == "protected";
}

/// An ALL_CAPS identifier followed by parens is treated as an attribute
/// macro (GUARDED_BY, REQUIRES, CLOUDVIEWS_*), transparent to declaration
/// parsing.
bool IsAttrMacroName(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
    if (!(c == '_' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z'))) {
      return false;
    }
  }
  return has_alpha;
}

int CloseAngleCount(const Token& t) {
  if (t.kind != TokenKind::kPunct) return 0;
  if (t.text == ">") return 1;
  if (t.text == ">>") return 2;
  return 0;
}

// ---------------------------------------------------------------------------
// Declaration parser
// ---------------------------------------------------------------------------

/// An out-of-line definition ("Hash128 PlanNode::SubtreeHash(...) {...}")
/// waiting to be attached to its class once every file has been parsed.
struct PendingFunction {
  std::string qualifier;  // "PlanNode" or "PlanCache::Key"
  Function fn;
};

class DeclParser {
 public:
  DeclParser(std::vector<Token> toks, std::string file,
             std::map<std::string, ClassInfo>* classes,
             std::vector<PendingFunction>* pending)
      : t_(std::move(toks)),
        file_(std::move(file)),
        classes_(classes),
        pending_(pending) {}

  void Parse() {
    i_ = 0;
    ParseRegion(t_.size(), "", nullptr);
  }

 private:
  /// Index of the matching '}' for the '{' at `open`, or `end`.
  size_t MatchBrace(size_t open, size_t end) const {
    int depth = 0;
    for (size_t j = open; j < end; ++j) {
      if (t_[j].kind != TokenKind::kPunct) continue;
      if (t_[j].text == "{") ++depth;
      if (t_[j].text == "}") {
        --depth;
        if (depth == 0) return j;
      }
    }
    return end;
  }

  ClassInfo* GetClass(const std::string& qualified) {
    ClassInfo& info = (*classes_)[qualified];
    if (info.name.empty()) info.name = qualified;
    return &info;
  }

  /// Walks `head` (indices into t_) tracking angle/bracket depth and
  /// skipping attribute-macro argument lists; returns the index *into
  /// head* of the first top-level '(' (a function parameter list), or
  /// npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t TopLevelParen(const std::vector<size_t>& head) const {
    int angle = 0;
    int bracket = 0;
    for (size_t h = 0; h < head.size(); ++h) {
      const Token& tok = t_[head[h]];
      if (angle == 0 && bracket == 0 && IsIdentTok(tok) &&
          IsAttrMacroName(tok.text) && h + 1 < head.size() &&
          t_[head[h + 1]].IsPunct("(")) {
        // Skip the macro's balanced parens.
        int depth = 0;
        size_t j = h + 1;
        for (; j < head.size(); ++j) {
          if (t_[head[j]].IsPunct("(")) ++depth;
          if (t_[head[j]].IsPunct(")")) {
            --depth;
            if (depth == 0) break;
          }
        }
        h = j;
        continue;
      }
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "[") ++bracket;
        if (tok.text == "]" && bracket > 0) --bracket;
        if (angle > 0) {
          angle -= std::min(angle, CloseAngleCount(tok));
        }
        if (tok.text == "(" && angle == 0 && bracket == 0) return h;
      }
      // Angle opening needs the token before it; reconstruct locally.
      if (tok.kind == TokenKind::kPunct && tok.text == "<" && h > 0) {
        const Token& prev = t_[head[h - 1]];
        if (IsIdentTok(prev) && prev.text != "operator") ++angle;
      }
    }
    return kNpos;
  }

  bool HeadHasIdent(const std::vector<size_t>& head, const char* word,
                    size_t* where = nullptr) const {
    for (size_t h = 0; h < head.size(); ++h) {
      if (t_[head[h]].IsIdent(word)) {
        if (where != nullptr) *where = h;
        return true;
      }
    }
    return false;
  }

  /// Last top-level (angle-depth 0) `class`/`struct`/`union` keyword in
  /// head that is not `enum class`; npos if none.
  size_t ClassKeyword(const std::vector<size_t>& head) const {
    int angle = 0;
    size_t found = kNpos;
    for (size_t h = 0; h < head.size(); ++h) {
      const Token& tok = t_[head[h]];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "<" && h > 0 && IsIdentTok(t_[head[h - 1]]) &&
            t_[head[h - 1]].text != "operator") {
          ++angle;
        } else if (angle > 0) {
          angle -= std::min(angle, CloseAngleCount(tok));
        }
        continue;
      }
      if (angle != 0 || !IsIdentTok(tok)) continue;
      if (tok.text == "class" || tok.text == "struct" ||
          tok.text == "union") {
        bool after_enum = h > 0 && t_[head[h - 1]].IsIdent("enum");
        if (!after_enum) found = h;
      }
    }
    return found;
  }

  /// Function name from the tokens before the top-level '('.
  std::string FunctionName(const std::vector<size_t>& head,
                           size_t paren) const {
    if (paren == 0) return "";
    const Token& before = t_[head[paren - 1]];
    if (before.kind == TokenKind::kPunct) {
      if (paren >= 2 && t_[head[paren - 2]].IsIdent("operator")) {
        return "operator" + before.text;
      }
      return "";
    }
    if (before.text == "operator") return "operator()";
    if (paren >= 2 && t_[head[paren - 2]].IsPunct("~")) {
      return "~" + before.text;
    }
    if (paren >= 2 && t_[head[paren - 2]].IsIdent("operator")) {
      return "operator " + before.text;  // conversion operator
    }
    return before.text;
  }

  /// For an out-of-line definition, the `A::B` qualifier chain directly
  /// before the function name; empty for a free function.
  std::string Qualifier(const std::vector<size_t>& head,
                        size_t paren) const {
    // head[paren-1] is the name (or the punct of operator@, in which case
    // the qualifier sits before `operator`).
    size_t name_at = paren - 1;
    if (t_[head[name_at]].kind == TokenKind::kPunct && name_at > 0 &&
        t_[head[name_at - 1]].IsIdent("operator")) {
      name_at -= 1;
    } else if (name_at > 0 && t_[head[name_at - 1]].IsIdent("operator")) {
      name_at -= 1;  // conversion operator: name is "operator <type>"
    }
    std::vector<std::string> parts;
    size_t h = name_at;
    while (h >= 2 && t_[head[h - 1]].IsPunct("::") &&
           IsIdentTok(t_[head[h - 2]])) {
      parts.push_back(t_[head[h - 2]].text);
      h -= 2;
    }
    std::string out;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      if (!out.empty()) out += "::";
      out += *it;
    }
    return out;
  }

  /// Collects every identifier in head[from_h..] plus every identifier in
  /// the token range (body_open, body_close) — the function's parameters,
  /// constructor-initializer list, and body.
  std::vector<std::string> BodyIdents(const std::vector<size_t>& head,
                                      size_t from_h, size_t body_open,
                                      size_t body_close) const {
    std::set<std::string> seen;
    for (size_t h = from_h; h < head.size(); ++h) {
      if (IsIdentTok(t_[head[h]])) seen.insert(t_[head[h]].text);
    }
    for (size_t j = body_open + 1; j < body_close && j < t_.size(); ++j) {
      if (IsIdentTok(t_[j])) seen.insert(t_[j].text);
    }
    return std::vector<std::string>(seen.begin(), seen.end());
  }

  /// Member names declared by a head that ended in ';' (or in a brace
  /// initializer when `trailing_open_brace`): identifiers at top level
  /// whose next token is one of `, = [` or the end of the declarator.
  std::vector<std::pair<std::string, int>> MemberNames(
      const std::vector<size_t>& head, bool trailing_open_brace) const {
    std::vector<std::pair<std::string, int>> out;
    int angle = 0;
    int paren = 0;
    int bracket = 0;
    bool in_init = false;  // skipping "= ..." until top-level ','
    for (size_t h = 0; h < head.size(); ++h) {
      const Token& tok = t_[head[h]];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "<" && h > 0 && IsIdentTok(t_[head[h - 1]]) &&
            t_[head[h - 1]].text != "operator") {
          ++angle;
        } else if (angle > 0) {
          angle -= std::min(angle, CloseAngleCount(tok));
        }
        if (tok.text == "(") ++paren;
        if (tok.text == ")" && paren > 0) --paren;
        if (tok.text == "[") ++bracket;
        if (tok.text == "]" && bracket > 0) --bracket;
        if (in_init && tok.text == "," && angle == 0 && paren == 0 &&
            bracket == 0) {
          in_init = false;
        }
        continue;
      }
      if (in_init || angle != 0 || paren != 0 || bracket != 0) continue;
      if (!IsIdentTok(tok)) continue;
      if (IsAttrMacroName(tok.text)) continue;
      // Find the next token at this level.
      const Token* next = h + 1 < head.size() ? &t_[head[h + 1]] : nullptr;
      bool terminator = false;
      if (next == nullptr) {
        terminator = true;  // end of declarator ("int x;" / "int x{0}")
      } else if (next->kind == TokenKind::kPunct) {
        if (next->text == "," || next->text == "=" || next->text == "[") {
          terminator = true;
        }
      } else if (IsIdentTok(*next) && IsAttrMacroName(next->text)) {
        terminator = true;  // "Type name_ GUARDED_BY(mu_);"
      }
      if (terminator) {
        out.emplace_back(tok.text, tok.line);
        if (next != nullptr && next->IsPunct("=")) in_init = true;
      }
    }
    (void)trailing_open_brace;
    return out;
  }

  void ClassifySemicolonDecl(const std::vector<size_t>& head,
                             ClassInfo* cls) {
    if (head.empty()) return;
    if (HeadHasIdent(head, "using") || HeadHasIdent(head, "typedef") ||
        HeadHasIdent(head, "friend") || HeadHasIdent(head, "static") ||
        HeadHasIdent(head, "enum")) {
      return;
    }
    if (ClassKeyword(head) != kNpos) return;  // forward declaration
    size_t paren = TopLevelParen(head);
    if (paren != kNpos) {
      // Function declaration without inline body: pure virtual, defaulted,
      // or defined out of line.
      std::string name = FunctionName(head, paren);
      if (name.empty()) return;
      Function fn;
      fn.name = name;
      fn.line = t_[head[paren]].line;
      fn.file = file_;
      size_t n = head.size();
      fn.defaulted = n >= 2 && t_[head[n - 1]].IsIdent("default") &&
                     t_[head[n - 2]].IsPunct("=");
      fn.has_body = false;
      cls->functions.push_back(std::move(fn));
      return;
    }
    for (auto& [name, line] : MemberNames(head, false)) {
      Member m;
      m.name = name;
      m.line = line;
      m.file = file_;
      cls->members.push_back(std::move(m));
    }
  }

  void HandleBlock(const std::vector<size_t>& head, size_t open,
                   size_t close, const std::string& prefix,
                   ClassInfo* cls) {
    if (HeadHasIdent(head, "namespace")) {
      size_t saved = i_;
      i_ = open + 1;
      ParseRegion(close, prefix, nullptr);
      i_ = saved;
      return;
    }
    if (HeadHasIdent(head, "enum")) return;
    size_t ckw = ClassKeyword(head);
    size_t paren = TopLevelParen(head);
    if (ckw != kNpos && paren == kNpos) {
      // Class/struct/union definition. Name = next identifier after the
      // keyword (anonymous aggregates are skipped but their body is still
      // scanned so nested named classes are found).
      std::string name;
      size_t name_at = kNpos;
      for (size_t h = ckw + 1; h < head.size(); ++h) {
        if (IsIdentTok(t_[head[h]]) && !IsAttrMacroName(t_[head[h]].text) &&
            t_[head[h]].text != "alignas" && t_[head[h]].text != "final") {
          name = t_[head[h]].text;
          name_at = h;
          break;
        }
      }
      if (name.empty()) return;
      std::string qualified = prefix.empty() ? name : prefix + "::" + name;
      ClassInfo* info = GetClass(qualified);
      // Bases: tokens after a ':' following the name.
      for (size_t h = name_at + 1; h < head.size(); ++h) {
        if (!t_[head[h]].IsPunct(":")) continue;
        std::string last;
        int angle = 0;
        for (size_t b = h + 1; b < head.size(); ++b) {
          const Token& tok = t_[head[b]];
          if (tok.kind == TokenKind::kPunct) {
            if (tok.text == "<" && b > 0 && IsIdentTok(t_[head[b - 1]])) {
              if (angle == 0 && !last.empty()) {
                info->bases.push_back(last);
                last.clear();
              }
              ++angle;
            } else if (angle > 0) {
              angle -= std::min(angle, CloseAngleCount(tok));
            } else if (tok.text == ",") {
              if (!last.empty()) info->bases.push_back(last);
              last.clear();
            }
            continue;
          }
          if (angle != 0 || !IsIdentTok(tok)) continue;
          const std::string& s = tok.text;
          if (IsAccessSpecifier(s) || s == "virtual" || s == "std") {
            continue;
          }
          last = s;
        }
        if (!last.empty()) info->bases.push_back(last);
        break;
      }
      size_t saved = i_;
      i_ = open + 1;
      ParseRegion(close, qualified, info);
      i_ = saved;
      return;
    }
    if (paren != kNpos) {
      std::string name = FunctionName(head, paren);
      if (name.empty()) return;
      Function fn;
      fn.name = name;
      fn.line = t_[head[paren]].line;
      fn.file = file_;
      fn.has_body = true;
      fn.body_idents = BodyIdents(head, paren + 1, open, close);
      if (cls != nullptr) {
        cls->functions.push_back(std::move(fn));
        return;
      }
      std::string qual = Qualifier(head, paren);
      if (!qual.empty()) {
        pending_->push_back({std::move(qual), std::move(fn)});
      }
      return;
    }
    if (cls != nullptr) {
      // Member with a brace initializer: "std::atomic<int> hits_{0};".
      for (auto& [name, line] : MemberNames(head, true)) {
        Member m;
        m.name = name;
        m.line = line;
        m.file = file_;
        cls->members.push_back(std::move(m));
      }
    }
    // Anything else at namespace scope (free function, initializer) is
    // opaque to the class model.
  }

  void ParseRegion(size_t end, const std::string& prefix, ClassInfo* cls) {
    std::vector<size_t> head;
    while (i_ < end) {
      const Token& tok = t_[i_];
      if (tok.IsPunct("{")) {
        size_t close = MatchBrace(i_, end);
        HandleBlock(head, i_, close, prefix, cls);
        head.clear();
        i_ = close < end ? close + 1 : end;
        continue;
      }
      if (tok.IsPunct("}")) {
        ++i_;
        continue;
      }
      if (tok.IsPunct(";")) {
        if (cls != nullptr) ClassifySemicolonDecl(head, cls);
        head.clear();
        ++i_;
        continue;
      }
      if (tok.IsPunct(":") && cls != nullptr && head.size() == 1 &&
          IsIdentTok(t_[head[0]]) && IsAccessSpecifier(t_[head[0]].text)) {
        head.clear();
        ++i_;
        continue;
      }
      head.push_back(i_);
      ++i_;
    }
  }

  std::vector<Token> t_;
  size_t i_ = 0;
  std::string file_;
  std::map<std::string, ClassInfo>* classes_;
  std::vector<PendingFunction>* pending_;
};

std::vector<Token> CodeTokens(const std::vector<Token>& all) {
  std::vector<Token> out;
  for (const Token& t : all) {
    if (t.kind == TokenKind::kComment ||
        t.kind == TokenKind::kPreprocessor || t.in_directive) {
      continue;
    }
    out.push_back(t);
  }
  return out;
}

void ResolvePending(const std::vector<PendingFunction>& pending,
                    std::map<std::string, ClassInfo>* classes) {
  auto matches = [](const std::string& key, const std::string& qual) {
    if (key == qual) return true;
    if (qual.size() > key.size() + 2 &&
        qual.compare(qual.size() - key.size() - 2, 2, "::") == 0 &&
        qual.compare(qual.size() - key.size(), key.size(), key) == 0) {
      return true;  // qualifier carries namespace prefixes
    }
    if (key.size() > qual.size() + 2 &&
        key.compare(key.size() - qual.size() - 2, 2, "::") == 0 &&
        key.compare(key.size() - qual.size(), qual.size(), qual) == 0) {
      return true;  // class nested deeper than the qualifier spells
    }
    return false;
  };
  for (const PendingFunction& p : pending) {
    ClassInfo* best = nullptr;
    size_t best_len = 0;
    for (auto& [key, info] : *classes) {
      if (matches(key, p.qualifier) && key.size() >= best_len) {
        best = &info;
        best_len = key.size();
      }
    }
    if (best != nullptr) best->functions.push_back(p.fn);
  }
}

// ---------------------------------------------------------------------------
// sig-skip comments
// ---------------------------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

struct SkipComment {
  int start_line = 0;
  int end_line = 0;
  std::vector<std::string> groups;  // validated slugs only
  std::string reason;
  bool malformed = false;
  std::string malformed_why;
};

/// Parses every "sig-skip" occurrence in one comment token.
std::vector<SkipComment> ParseSkipComments(const Token& comment) {
  std::vector<SkipComment> out;
  const std::string& text = comment.text;
  int newlines = static_cast<int>(
      std::count(text.begin(), text.end(), '\n'));
  size_t pos = 0;
  while ((pos = text.find("sig-skip", pos)) != std::string::npos) {
    SkipComment sc;
    sc.start_line = comment.line;
    sc.end_line = comment.line + newlines;
    size_t p = pos + 8;  // past "sig-skip"
    pos = p;
    // Prose mentioning "sig-skips" or "sig-skipped" is not a marker; only
    // a bare "sig-skip" (ideally followed by '(') is.
    if (p < text.size() && IsIdentChar(text[p])) continue;
    if (p >= text.size() || text[p] != '(') {
      sc.malformed = true;
      sc.malformed_why = "expected 'sig-skip(<group>[, <group>]): <why>'";
      out.push_back(std::move(sc));
      continue;
    }
    size_t close = text.find(')', p);
    if (close == std::string::npos) {
      sc.malformed = true;
      sc.malformed_why = "unterminated sig-skip group list";
      out.push_back(std::move(sc));
      continue;
    }
    std::string list = text.substr(p + 1, close - p - 1);
    std::istringstream groups(list);
    std::string item;
    bool any_unknown = false;
    while (std::getline(groups, item, ',')) {
      std::string slug = Trim(item);
      if (slug.empty()) continue;
      if (FindGroup(slug) == nullptr) {
        sc.malformed = true;
        sc.malformed_why = "unknown invariant group '" + slug +
                           "' (known: hash, equals, clone, rebind, "
                           "serialize)";
        any_unknown = true;
        break;
      }
      sc.groups.push_back(slug);
    }
    if (!any_unknown) {
      if (sc.groups.empty()) {
        sc.malformed = true;
        sc.malformed_why = "sig-skip lists no group";
      } else {
        size_t after = close + 1;
        while (after < text.size() &&
               std::isspace(static_cast<unsigned char>(text[after]))) {
          ++after;
        }
        if (after >= text.size() || text[after] != ':') {
          sc.malformed = true;
          sc.malformed_why = "sig-skip needs a reason: 'sig-skip(" + list +
                             "): <why>'";
        } else {
          size_t eol = text.find('\n', after);
          std::string reason = text.substr(
              after + 1,
              eol == std::string::npos ? std::string::npos
                                       : eol - after - 1);
          sc.reason = Trim(reason);
          if (sc.reason.empty()) {
            sc.malformed = true;
            sc.malformed_why = "sig-skip reason is empty";
          }
        }
      }
    }
    out.push_back(std::move(sc));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Determinism lint: unordered iteration
// ---------------------------------------------------------------------------

bool IsUnorderedContainerName(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

/// Skips a template-argument list starting at the '<' at `j`; returns the
/// index just past the matching close.
size_t SkipAngles(const std::vector<Token>& t, size_t j) {
  int depth = 0;
  for (; j < t.size(); ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    int close = CloseAngleCount(t[j]);
    if (close > 0) {
      depth -= close;
      if (depth <= 0) return j + 1;
    }
  }
  return j;
}

void ScanUnorderedIteration(const std::string& display_path,
                            const std::vector<Token>& code,
                            const std::vector<Token>& comments,
                            std::vector<Violation>* out) {
  // Pass 1: type aliases of unordered containers.
  std::set<std::string> unordered_types;
  for (size_t j = 0; j + 3 < code.size(); ++j) {
    if (!code[j].IsIdent("using") || !IsIdentTok(code[j + 1]) ||
        !code[j + 2].IsPunct("=")) {
      continue;
    }
    for (size_t k = j + 3; k < code.size(); ++k) {
      if (code[k].IsPunct(";")) break;
      if (IsIdentTok(code[k]) && IsUnorderedContainerName(code[k].text)) {
        unordered_types.insert(code[j + 1].text);
        break;
      }
    }
  }
  // Pass 2: variables (members, locals, params) of unordered type.
  std::set<std::string> unordered_vars;
  for (size_t j = 0; j < code.size(); ++j) {
    if (!IsIdentTok(code[j])) continue;
    bool is_unordered = IsUnorderedContainerName(code[j].text) ||
                        unordered_types.count(code[j].text) > 0;
    if (!is_unordered) continue;
    size_t k = j + 1;
    if (k < code.size() && code[k].IsPunct("<")) {
      k = SkipAngles(code, k);
    }
    while (k < code.size() &&
           (code[k].IsPunct("&") || code[k].IsPunct("*") ||
            code[k].IsIdent("const"))) {
      ++k;
    }
    if (k < code.size() && IsIdentTok(code[k]) &&
        !IsAttrMacroName(code[k].text) &&
        !IsUnorderedContainerName(code[k].text)) {
      unordered_vars.insert(code[k].text);
    }
  }
  if (unordered_vars.empty()) return;
  // Pass 3: range-for loops whose range expression names one of them.
  for (size_t j = 0; j + 1 < code.size(); ++j) {
    if (!code[j].IsIdent("for") || !code[j + 1].IsPunct("(")) continue;
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t k = j + 1; k < code.size(); ++k) {
      if (code[k].kind != TokenKind::kPunct) continue;
      if (code[k].text == "(") ++depth;
      if (code[k].text == ")") {
        --depth;
        if (depth == 0) {
          close = k;
          break;
        }
      }
      if (code[k].text == ":" && depth == 1 && colon == 0) colon = k;
      if (code[k].text == ";" && depth == 1) {
        colon = 0;  // classic for loop, not range-for
        break;
      }
    }
    if (colon == 0 || close == 0) continue;
    std::string hit;
    for (size_t k = colon + 1; k < close; ++k) {
      if (IsIdentTok(code[k]) && unordered_vars.count(code[k].text) > 0) {
        hit = code[k].text;
        break;
      }
    }
    if (hit.empty()) continue;
    int for_line = code[j].line;
    bool justified = false;
    for (const Token& c : comments) {
      if (c.text.find("order-insensitive") == std::string::npos) continue;
      int c_end = c.line + static_cast<int>(std::count(
                               c.text.begin(), c.text.end(), '\n'));
      if (c_end >= for_line - 3 && c.line <= for_line) {
        justified = true;
        break;
      }
    }
    if (!justified) {
      out->push_back(
          {display_path, for_line, "unordered-iteration",
           "range-for over unordered container '" + hit +
               "': hash order must never reach signatures or results — "
               "sort first, or add a nearby '// order-insensitive: <why>' "
               "comment"});
    }
  }
}

// ---------------------------------------------------------------------------
// Coverage audit
// ---------------------------------------------------------------------------

std::string SimpleName(const std::string& qualified) {
  size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// Classes reachable through base-class edges (suffix-matched against the
/// class map), including `c` itself.
std::vector<const ClassInfo*> ClassAndAncestors(
    const ClassInfo& c, const std::map<std::string, ClassInfo>& classes) {
  std::vector<const ClassInfo*> out;
  std::set<const ClassInfo*> seen;
  std::vector<const ClassInfo*> frontier = {&c};
  while (!frontier.empty()) {
    const ClassInfo* cur = frontier.back();
    frontier.pop_back();
    if (!seen.insert(cur).second) continue;
    out.push_back(cur);
    for (const std::string& base : cur->bases) {
      for (const auto& [key, info] : classes) {
        if (SimpleName(key) == base) frontier.push_back(&info);
      }
    }
  }
  return out;
}

/// The transitive identifier closure of one invariant group: the union of
/// the group functions' body identifiers, expanded through same-class (and
/// ancestor) method calls so delegation like operator== -> Compare counts.
std::set<std::string> GroupClosure(
    const ClassInfo& c, const GroupDef& group,
    const std::map<std::string, ClassInfo>& classes) {
  std::set<std::string> idents;
  for (const Function& fn : c.functions) {
    if (!fn.has_body) continue;
    bool in_group = false;
    for (const char* g : group.functions) {
      if (fn.name == g) in_group = true;
    }
    if (!in_group) continue;
    idents.insert(fn.body_idents.begin(), fn.body_idents.end());
  }
  // Method-name -> body map over the class and its ancestors, excluding
  // constructors and destructors (a Clone that merely names the class for
  // make_shared<T>(...) must not inherit coverage from T's constructor).
  std::map<std::string, std::vector<const Function*>> methods;
  for (const ClassInfo* k : ClassAndAncestors(c, classes)) {
    std::string simple = SimpleName(k->name);
    for (const Function& fn : k->functions) {
      if (!fn.has_body) continue;
      if (fn.name == simple || fn.name.rfind('~', 0) == 0) continue;
      methods[fn.name].push_back(&fn);
    }
  }
  std::vector<std::string> frontier(idents.begin(), idents.end());
  std::set<std::string> expanded;
  while (!frontier.empty()) {
    std::string name = frontier.back();
    frontier.pop_back();
    if (!expanded.insert(name).second) continue;
    auto it = methods.find(name);
    if (it == methods.end()) continue;
    for (const Function* fn : it->second) {
      for (const std::string& ident : fn->body_idents) {
        if (idents.insert(ident).second) frontier.push_back(ident);
      }
    }
  }
  return idents;
}

/// External hash functors: a class named `<Target>Hasher` (possibly nested,
/// e.g. PlanCache::KeyHasher hashing PlanCache::Key) whose operator() has a
/// body is treated as the hash implementation of Target. This is the
/// std::unordered_* support idiom: identity-bearing keys of shared state
/// (caches, in-flight registries) keep their hash in a sibling functor, which
/// the plain field-coverage audit cannot see. Target resolves by stripping
/// the "Hasher" suffix from the qualified name; when that exact name is
/// unknown, a unique simple-name match is accepted (ambiguity disables the
/// pairing rather than guessing).
std::map<const ClassInfo*, std::vector<const ClassInfo*>> FindExternalHashers(
    const std::map<std::string, ClassInfo>& classes) {
  std::map<const ClassInfo*, std::vector<const ClassInfo*>> out;
  const std::string kSuffix = "Hasher";
  for (const auto& [key, info] : classes) {
    if (key.size() <= kSuffix.size() ||
        key.compare(key.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    bool has_call_body = false;
    for (const Function& fn : info.functions) {
      if (fn.name == "operator()" && fn.has_body) has_call_body = true;
    }
    if (!has_call_body) continue;
    std::string target_name = key.substr(0, key.size() - kSuffix.size());
    const ClassInfo* target = nullptr;
    auto exact = classes.find(target_name);
    if (exact != classes.end()) {
      target = &exact->second;
    } else {
      std::string simple = SimpleName(target_name);
      if (!simple.empty()) {
        for (const auto& [other_key, other] : classes) {
          if (SimpleName(other_key) != simple) continue;
          if (target != nullptr) {
            target = nullptr;  // ambiguous: don't guess
            break;
          }
          target = &other;
        }
      }
    }
    if (target != nullptr && target != &info) out[target].push_back(&info);
  }
  return out;
}

/// Identifier closure of an external hasher's operator(), expanded through
/// the methods of both the hasher and its target class so delegation like
/// `operator()` calling a target helper inherits that method's coverage.
std::set<std::string> HasherClosure(
    const ClassInfo& hasher, const ClassInfo& target,
    const std::map<std::string, ClassInfo>& classes) {
  std::set<std::string> idents;
  for (const Function& fn : hasher.functions) {
    if (fn.name == "operator()" && fn.has_body) {
      idents.insert(fn.body_idents.begin(), fn.body_idents.end());
    }
  }
  std::map<std::string, std::vector<const Function*>> methods;
  for (const ClassInfo* side : {&hasher, &target}) {
    for (const ClassInfo* k : ClassAndAncestors(*side, classes)) {
      std::string simple = SimpleName(k->name);
      for (const Function& fn : k->functions) {
        if (!fn.has_body) continue;
        if (fn.name == simple || fn.name.rfind('~', 0) == 0) continue;
        methods[fn.name].push_back(&fn);
      }
    }
  }
  std::vector<std::string> frontier(idents.begin(), idents.end());
  std::set<std::string> expanded;
  while (!frontier.empty()) {
    std::string name = frontier.back();
    frontier.pop_back();
    if (!expanded.insert(name).second) continue;
    auto it = methods.find(name);
    if (it == methods.end()) continue;
    for (const Function* fn : it->second) {
      for (const std::string& ident : fn->body_idents) {
        if (idents.insert(ident).second) frontier.push_back(ident);
      }
    }
  }
  return idents;
}

/// Audits a class whose hash implementation lives in external functor(s):
/// every member must appear in some hasher's operator() closure or carry a
/// sig-skip(hash); a skip on a member the hashers DO reference is stale.
void AuditExternalHash(const ClassInfo& c,
                       const std::vector<const ClassInfo*>& hashers,
                       const std::map<std::string, ClassInfo>& classes,
                       std::vector<Violation>* out) {
  std::set<std::string> closure;
  std::string hasher_names;
  for (const ClassInfo* h : hashers) {
    std::set<std::string> one = HasherClosure(*h, c, classes);
    closure.insert(one.begin(), one.end());
    if (!hasher_names.empty()) hasher_names += "/";
    hasher_names += SimpleName(h->name) + "::operator()";
  }
  for (const Member& m : c.members) {
    bool covered = closure.count(m.name) > 0;
    const MemberSkip* skip = nullptr;
    for (const MemberSkip& s : m.skips) {
      if (s.group == "hash") skip = &s;
    }
    if (covered && skip != nullptr) {
      out->push_back({m.file, skip->line, "stale-sig-skip",
                      "member '" + m.name + "' of " + c.name +
                          " IS referenced by " + hasher_names +
                          "; drop the sig-skip(hash)"});
    } else if (!covered && skip == nullptr) {
      out->push_back(
          {m.file, m.line, "hasher-coverage",
           "member '" + m.name + "' of " + c.name +
               " is not referenced by its external hash functor " +
               hasher_names +
               " — two keys differing only in this member would collide in "
               "shared state; include it, or annotate '// sig-skip(hash): "
               "<why identity is preserved>'"});
    }
  }
}

void AuditClass(const ClassInfo& c,
                const std::map<std::string, ClassInfo>& classes,
                const std::map<const ClassInfo*,
                               std::vector<const ClassInfo*>>& hashers,
                std::vector<Violation>* out) {
  for (const auto& group : Groups()) {
    std::vector<const Function*> fns;
    bool any_body = false;
    bool any_default = false;
    for (const Function& fn : c.functions) {
      for (const char* g : group.functions) {
        if (fn.name != g) continue;
        fns.push_back(&fn);
        any_body |= fn.has_body;
        any_default |= fn.defaulted;
      }
    }
    if (!any_body && !any_default) {
      if (std::string("hash") == group.name) {
        auto hit = hashers.find(&c);
        if (hit != hashers.end()) {
          // Hashing is implemented externally (<Name>Hasher functor); audit
          // coverage against the functor instead of declaring the group
          // unimplemented.
          AuditExternalHash(c, hit->second, classes, out);
          continue;
        }
      }
      // Group not implemented here: any sig-skip naming it is stale.
      for (const Member& m : c.members) {
        for (const MemberSkip& s : m.skips) {
          if (s.group != group.name) continue;
          out->push_back(
              {m.file, s.line, "stale-sig-skip",
               "member '" + m.name + "' of " + c.name + " skips group '" +
                   group.name +
                   "' but the class implements no function of that group"});
        }
      }
      continue;
    }
    std::set<std::string> closure;
    if (!any_default) closure = GroupClosure(c, group, classes);
    std::string fn_names;
    for (const Function* fn : fns) {
      if (!fn->has_body && !fn->defaulted) continue;
      if (!fn_names.empty()) fn_names += "/";
      fn_names += fn->name;
    }
    for (const Member& m : c.members) {
      bool covered = any_default || closure.count(m.name) > 0;
      const MemberSkip* skip = nullptr;
      for (const MemberSkip& s : m.skips) {
        if (s.group == group.name) skip = &s;
      }
      if (covered && skip != nullptr) {
        out->push_back(
            {m.file, skip->line, "stale-sig-skip",
             "member '" + m.name + "' of " + c.name + " IS referenced by " +
                 fn_names + "; drop the sig-skip(" + group.name + ")"});
      } else if (!covered && skip == nullptr) {
        out->push_back(
            {m.file, m.line, "field-coverage",
             "member '" + m.name + "' of " + c.name +
                 " is not referenced by " + fn_names +
                 " — include it, or annotate '// sig-skip(" + group.name +
                 "): <why identity is preserved>'"});
      }
    }
  }
}

}  // namespace

const std::vector<AnalyzerRule>& AllAnalyzerRules() {
  static const std::vector<AnalyzerRule> kRules = {
      {"field-coverage",
       "every data member of an identity-bearing class must be referenced "
       "by each implemented invariant group (hash/equals/clone/rebind/"
       "serialize) or carry a reasoned sig-skip",
       "missing_hash_field.h"},
      {"unknown-sig-skip",
       "sig-skip must name known groups and carry a reason: "
       "// sig-skip(<group>[, <group>]): <why>",
       "unknown_sig_skip.h"},
      {"stale-sig-skip",
       "a sig-skip whose member is actually referenced, whose group the "
       "class does not implement, or that attaches to no member, is an "
       "error",
       "stale_sig_skip.h"},
      {"unordered-iteration",
       "range-for over a std::unordered_* variable needs a nearby "
       "'// order-insensitive: <why>' justification",
       "unordered_iteration.cc"},
      {"hasher-coverage",
       "a class whose hashing lives in an external '<Name>Hasher' functor "
       "(the std::unordered_* key idiom used by shared-state registries) "
       "must have every member referenced by that functor's operator() or "
       "carry a reasoned sig-skip(hash)",
       "missing_hasher_field.h"},
  };
  return kRules;
}

void ParseClasses(const SourceFile& file,
                  std::map<std::string, ClassInfo>* classes) {
  std::vector<PendingFunction> pending;
  std::vector<Token> code = CodeTokens(Tokenize(file.content));
  DeclParser parser(std::move(code), file.display_path, classes, &pending);
  parser.Parse();
  ResolvePending(pending, classes);
}

std::vector<Violation> AnalyzeSources(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  std::map<std::string, ClassInfo> classes;
  std::vector<PendingFunction> pending;

  struct FileTokens {
    const SourceFile* file;
    std::vector<Token> comments;
    std::vector<Token> code;
  };
  std::vector<FileTokens> tokenized;
  tokenized.reserve(files.size());
  for (const SourceFile& f : files) {
    FileTokens ft;
    ft.file = &f;
    std::vector<Token> all = Tokenize(f.content);
    for (const Token& t : all) {
      if (t.kind == TokenKind::kComment) ft.comments.push_back(t);
    }
    ft.code = CodeTokens(all);
    DeclParser parser(ft.code, f.display_path, &classes, &pending);
    parser.Parse();
    tokenized.push_back(std::move(ft));
  }
  ResolvePending(pending, &classes);

  // Attach sig-skips: a skip on the member's own line, or in a comment
  // ending at most two lines above it. Dangling skips are stale.
  for (const FileTokens& ft : tokenized) {
    std::vector<Member*> file_members;
    for (auto& [key, info] : classes) {
      for (Member& m : info.members) {
        if (m.file == ft.file->display_path) file_members.push_back(&m);
      }
    }
    for (const Token& comment : ft.comments) {
      for (SkipComment& sc : ParseSkipComments(comment)) {
        if (sc.malformed) {
          out.push_back({ft.file->display_path, sc.start_line,
                         "unknown-sig-skip", sc.malformed_why});
          continue;
        }
        Member* target = nullptr;
        for (Member* m : file_members) {
          if (m->line == sc.start_line) {
            target = m;
            break;
          }
        }
        if (target == nullptr) {
          for (Member* m : file_members) {
            if (m->line > sc.end_line && m->line <= sc.end_line + 2 &&
                (target == nullptr || m->line < target->line)) {
              target = m;
            }
          }
        }
        if (target == nullptr) {
          out.push_back(
              {ft.file->display_path, sc.start_line, "stale-sig-skip",
               "sig-skip comment attaches to no member declaration (the "
               "member may have been renamed or removed)"});
          continue;
        }
        for (const std::string& g : sc.groups) {
          target->skips.push_back({g, sc.reason, sc.start_line});
        }
      }
    }
    ScanUnorderedIteration(ft.file->display_path, ft.code, ft.comments,
                           &out);
  }

  std::map<const ClassInfo*, std::vector<const ClassInfo*>> hashers =
      FindExternalHashers(classes);
  for (const auto& [key, info] : classes) {
    AuditClass(info, classes, hashers, &out);
  }

  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Violation> AnalyzeTree(const std::vector<std::string>& roots) {
  std::vector<Violation> out;
  std::vector<SourceFile> files;
  for (const auto& root : roots) {
    std::error_code ec;
    fs::path root_path(root);
    std::string prefix = root_path.filename().string();
    if (prefix.empty()) prefix = root_path.parent_path().filename().string();
    if (!fs::is_directory(root_path, ec)) {
      out.push_back({root, 0, "io-error", "not a directory"});
      continue;
    }
    std::vector<fs::path> paths;
    for (fs::recursive_directory_iterator it(root_path, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::string p = it->path().string();
      if (p.find("fixtures") != std::string::npos) continue;
      paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        out.push_back({path.string(), 0, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      SourceFile f;
      f.display_path = path.string();
      f.rel_path =
          prefix + "/" + fs::relative(path, root_path, ec).generic_string();
      f.content = ss.str();
      files.push_back(std::move(f));
    }
  }
  std::vector<Violation> analyzed = AnalyzeSources(files);
  out.insert(out.end(), analyzed.begin(), analyzed.end());
  return out;
}

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream js;
  js << "[\n";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    js << "  {\"path\": \"" << escape(v.path) << "\", \"line\": " << v.line
       << ", \"rule\": \"" << escape(v.rule) << "\", \"message\": \""
       << escape(v.message) << "\"}";
    if (i + 1 < violations.size()) js << ",";
    js << "\n";
  }
  js << "]\n";
  return js.str();
}

}  // namespace lint
}  // namespace cloudviews
