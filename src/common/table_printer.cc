#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace cloudviews {

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  measure(headers_);
  for (const auto& r : rows_) measure(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "  ";
      os << c;
      os << std::string(widths[i] - c.size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::string rule;
  for (size_t i = 0; i < ncols; ++i) {
    rule += "  " + std::string(widths[i], '-');
  }
  os << rule << "\n";
  for (const auto& r : rows_) emit(r);
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace cloudviews
