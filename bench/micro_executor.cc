// Microbenchmarks: executor operator throughput and thread scaling.
//
// Besides the google-benchmark operator suite (now parameterized by worker
// count), main() runs a scan->filter->aggregate thread-scaling sweep over
// 1/2/4/8 workers, verifies the outputs are byte-identical across worker
// counts, measures the wall-clock overhead of metrics instrumentation, and
// writes the measurements (plus the instrumented run's metric registry)
// to BENCH_executor.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"

namespace cloudviews {
namespace {

struct Env {
  SimulatedClock clock;
  StorageManager storage{&clock};

  explicit Env(int64_t rows) {
    Schema schema({{"k", DataType::kInt64},
                   {"g", DataType::kString},
                   {"v", DataType::kDouble}});
    Rng rng(7);
    static const char* kGroups[] = {"a", "b", "c", "d", "e", "f", "g", "h"};
    Batch b(schema);
    for (int64_t i = 0; i < rows; ++i) {
      (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(
                             static_cast<uint64_t>(rows)))),
                         Value::String(kGroups[rng.Uniform(8)]),
                         Value::Double(rng.NextDouble())});
    }
    (void)storage.WriteStream(
        MakeStreamData("data", "g1", schema, {b}, 0));
    (void)storage.WriteStream(
        MakeStreamData("data2", "g2", schema, {b}, 0));
  }

  PlanBuilder Scan(const char* name = "data") {
    Schema schema({{"k", DataType::kInt64},
                   {"g", DataType::kString},
                   {"v", DataType::kDouble}});
    return PlanBuilder::Extract(name, name, name[4] ? "g2" : "g1", schema);
  }

  double RunPlan(PlanNodePtr plan, ThreadPool* pool = nullptr,
                 ExecOptions options = {},
                 obs::MetricsRegistry* metrics = nullptr) {
    Status st = plan->Bind();
    if (!st.ok()) std::abort();
    AssignNodeIds(plan.get());
    ExecContext ctx;
    ctx.storage = &storage;
    ctx.pool = pool;
    ctx.options = options;
    ctx.metrics = metrics;
    Executor exec(std::move(ctx));
    auto r = exec.Execute(plan);
    if (!r.ok()) std::abort();
    return r->output_rows;
  }
};

/// Pool sized for `workers` total threads (submitter helps while waiting);
/// null for single-threaded execution.
std::unique_ptr<ThreadPool> MakePool(int workers) {
  if (workers <= 1) return nullptr;
  return std::make_unique<ThreadPool>(workers - 1);
}

ExecOptions Opts(int workers) {
  ExecOptions options;
  options.worker_threads = workers;
  return options;
}

void BM_Filter(benchmark::State& state) {
  Env env(state.range(0));
  int workers = static_cast<int>(state.range(1));
  auto pool = MakePool(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.RunPlan(env.Scan().Filter(Gt(Col("v"), Lit(0.5))).Build(),
                    pool.get(), Opts(workers)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Args({1000, 1})->Args({10000, 1})->Args({10000, 4});

void BM_HashAggregate(benchmark::State& state) {
  Env env(state.range(0));
  int workers = static_cast<int>(state.range(1));
  auto pool = MakePool(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan()
            .Aggregate({"g"}, {{AggFunc::kCount, nullptr, "n"},
                               {AggFunc::kSum, Col("v"), "sv"}})
            .Build(),
        pool.get(), Opts(workers)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({10000, 4});

void BM_Sort(benchmark::State& state) {
  Env env(state.range(0));
  int workers = static_cast<int>(state.range(1));
  auto pool = MakePool(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.RunPlan(env.Scan().Sort({{"v", false}}).Build(), pool.get(),
                    Opts(workers)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Args({1000, 1})->Args({10000, 1})->Args({10000, 4});

void BM_HashJoin(benchmark::State& state) {
  Env env(state.range(0));
  int workers = static_cast<int>(state.range(1));
  auto pool = MakePool(workers);
  for (auto _ : state) {
    auto right = env.Scan("data2")
                     .Project({{Col("k"), "k2"}, {Col("v"), "v2"}});
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan()
            .Join(std::move(right), JoinType::kInner, {{"k", "k2"}})
            .Aggregate({}, {{AggFunc::kCount, nullptr, "n"}})
            .Build(),
        pool.get(), Opts(workers)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Args({1000, 1})->Args({10000, 1})->Args({10000, 4});

void BM_Exchange(benchmark::State& state) {
  Env env(state.range(0));
  int workers = static_cast<int>(state.range(1));
  auto pool = MakePool(workers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.RunPlan(
        env.Scan().Exchange(Partitioning::Hash({"k"}, 16)).Build(),
        pool.get(), Opts(workers)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Exchange)->Args({1000, 1})->Args({10000, 1})->Args({10000, 4});

// ---------------------------------------------------------------------------
// Thread-scaling sweep.
// ---------------------------------------------------------------------------

bool BatchesBitIdentical(const Batch& a, const Batch& b) {
  if (a.num_rows() != b.num_rows() || !(a.schema() == b.schema())) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (ca.IsNull(r) != cb.IsNull(r)) return false;
    }
    switch (a.schema().field(c).type) {
      case DataType::kDouble:
        if (std::memcmp(ca.double_data().data(), cb.double_data().data(),
                        ca.double_data().size() * sizeof(double)) != 0) {
          return false;
        }
        break;
      case DataType::kInt64:
      case DataType::kDate:
        if (ca.int64_data() != cb.int64_data()) return false;
        break;
      case DataType::kBool:
        if (ca.bool_data() != cb.bool_data()) return false;
        break;
      case DataType::kString:
        if (ca.string_data() != cb.string_data()) return false;
        break;
    }
  }
  return true;
}

struct SweepPoint {
  int workers;
  double best_seconds;
};

int RunThreadScalingSweep() {
  constexpr int64_t kRows = 400000;
  constexpr int kRepeats = 5;
  const std::vector<int> kWorkerCounts = {1, 2, 4, 8};

  unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("\n=== Thread-scaling sweep: scan -> filter -> aggregate "
              "(%lld rows, %u host cpus) ===\n",
              static_cast<long long>(kRows), host_cpus);
  if (host_cpus < 2) {
    std::printf("  note: single-core host; workers timeshare one core, so "
                "wall-clock speedup cannot exceed 1x here\n");
  }
  Env env(kRows);
  auto make_plan = [&](const std::string& out) {
    return env.Scan()
        .Filter(Gt(Col("v"), Lit(0.25)))
        .Aggregate({"g"}, {{AggFunc::kCount, nullptr, "n"},
                           {AggFunc::kSum, Col("v"), "sv"},
                           {AggFunc::kMin, Col("v"), "mn"},
                           {AggFunc::kMax, Col("v"), "mx"}})
        .Output(out)
        .Build();
  };

  std::vector<SweepPoint> sweep;
  Batch reference;
  bool byte_identical = true;
  for (int workers : kWorkerCounts) {
    auto pool = MakePool(workers);
    double best = 1e100;
    std::string out = "sweep_out_w" + std::to_string(workers);
    for (int i = 0; i < kRepeats; ++i) {
      double start = MonotonicNowSeconds();
      env.RunPlan(make_plan(out), pool.get(), Opts(workers));
      double s = MonotonicNowSeconds() - start;
      if (s < best) best = s;
    }
    auto handle = env.storage.OpenStream(out);
    if (!handle.ok()) std::abort();
    Batch result = CombineBatches((*handle)->schema, (*handle)->batches);
    if (workers == 1) {
      reference = std::move(result);
    } else if (!BatchesBitIdentical(reference, result)) {
      byte_identical = false;
    }
    sweep.push_back({workers, best});
    std::printf("  workers=%d  best=%8.2f ms  speedup=%.2fx\n", workers,
                best * 1e3, sweep.front().best_seconds / best);
  }
  std::printf("  byte-identical across worker counts: %s\n",
              byte_identical ? "yes" : "NO");

  // Instrumentation overhead: the same pipeline with and without a metrics
  // registry attached (counters + pool histograms on every morsel). The
  // acceptance bar for the observability layer is <= 2% wall overhead.
  obs::MetricsRegistry registry;
  double plain_best = 1e100;
  double instrumented_best = 1e100;
  {
    constexpr int kOverheadRepeats = 9;
    for (int i = 0; i < kOverheadRepeats; ++i) {
      double start = MonotonicNowSeconds();
      env.RunPlan(make_plan("overhead_plain"), nullptr, Opts(1));
      plain_best = std::min(plain_best, MonotonicNowSeconds() - start);
    }
    for (int i = 0; i < kOverheadRepeats; ++i) {
      double start = MonotonicNowSeconds();
      env.RunPlan(make_plan("overhead_instr"), nullptr, Opts(1),
                  &registry);
      instrumented_best =
          std::min(instrumented_best, MonotonicNowSeconds() - start);
    }
  }
  double overhead_fraction = instrumented_best / plain_best - 1.0;
  std::printf(
      "  instrumentation overhead: plain=%.2fms instrumented=%.2fms "
      "(%+.2f%%)\n",
      plain_best * 1e3, instrumented_best * 1e3, overhead_fraction * 100);

  FILE* f = std::fopen("BENCH_executor.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_executor.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"executor_thread_scaling\",\n");
  std::fprintf(f, "  \"pipeline\": \"scan_filter_aggregate\",\n");
  std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(kRows));
  std::fprintf(f, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(f, "  \"morsel_rows\": %d,\n", ExecOptions{}.morsel_rows);
  std::fprintf(f, "  \"repeats\": %d,\n", kRepeats);
  std::fprintf(f, "  \"byte_identical\": %s,\n",
               byte_identical ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f,
                 "    {\"workers\": %d, \"best_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 sweep[i].workers, sweep[i].best_seconds,
                 sweep.front().best_seconds / sweep[i].best_seconds,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"instrumentation\": {\"plain_seconds\": %.6f, "
               "\"instrumented_seconds\": %.6f, \"overhead_fraction\": "
               "%.4f},\n",
               plain_best, instrumented_best, overhead_fraction);
  std::fprintf(f, "  \"metrics\": %s\n",
               obs::RenderMetricsJson(registry).c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote BENCH_executor.json\n");
  return byte_identical ? 0 : 1;
}

}  // namespace
}  // namespace cloudviews

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return cloudviews::RunThreadScalingSweep();
}
