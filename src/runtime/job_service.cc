#include "runtime/job_service.h"

#include <set>
#include <thread>

#include "fault/fault_injector.h"
#include "signature/signature.h"

namespace cloudviews {

ThreadPool* JobService::ExecutionPool(const ExecOptions& opts) {
  if (opts.worker_threads <= 1) return nullptr;
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr) {
    // The submitting thread helps while it waits (TaskGroup::Wait), so
    // worker_threads - 1 pool workers give worker_threads total threads.
    pool_ = std::make_unique<ThreadPool>(opts.worker_threads - 1, metrics_,
                                         "exec", wall_clock_);
  }
  return pool_.get();
}

void JobService::SetObservability(obs::MetricsRegistry* metrics,
                                  obs::Tracer* tracer,
                                  MonotonicClock* wall_clock) {
  metrics_ = metrics;
  tracer_ = tracer;
  wall_clock_ = wall_clock != nullptr ? wall_clock : MonotonicClock::Real();
  if (metrics == nullptr) return;
  obs_.submitted = metrics->GetCounter("cv_jobs_submitted_total", {},
                                       "Jobs accepted for execution");
  obs_.succeeded = metrics->GetCounter("cv_jobs_succeeded_total", {},
                                       "Jobs that ran to completion");
  obs_.failed = metrics->GetCounter("cv_jobs_failed_total", {},
                                    "Jobs that returned an error");
  obs_.active = metrics->GetGauge("cv_jobs_active", {},
                                  "Jobs currently inside SubmitJob");
  obs_.latency = metrics->GetHistogram("cv_job_latency_seconds", {}, {},
                                       "Submit-to-finish wall time");
  obs_.stage_lookup = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "metadata_lookup"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_optimize = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "optimize"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_execute = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "execute"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.stage_record = metrics->GetHistogram(
      "cv_job_stage_seconds", {{"stage", "record"}}, {},
      "Per-stage wall time of the job pipeline");
  obs_.views_reused =
      metrics->GetCounter("cv_rewrite_views_reused_total", {},
                          "Subgraphs replaced by materialized-view scans");
  obs_.views_materialized =
      metrics->GetCounter("cv_rewrite_views_materialized_total", {},
                          "Online view materializations injected");
  obs_.reuse_rejected = metrics->GetCounter(
      "cv_rewrite_reuse_rejected_by_cost_total", {},
      "Reuse opportunities rejected by the cost model (Sec 6.3)");
  obs_.candidates_filtered = metrics->GetCounter(
      "cv_containment_candidates_filtered_total", {},
      "Containment candidates that passed the tier-1 feature filter and "
      "entered structural verification");
  obs_.containment_verified = metrics->GetCounter(
      "cv_containment_verified_total", {},
      "Containment candidates proven (structure + a live instance whose "
      "predicate contains the query's)");
  obs_.containment_rejected = metrics->GetCounter(
      "cv_containment_rejected_total", {},
      "Tier-1 containment survivors rejected during verification (structure "
      "mismatch, no live instance, predicate, cost, or unsafe compensation)");
  obs_.views_subsumed = metrics->GetCounter(
      "cv_rewrite_views_reused_subsumed_total", {},
      "Subgraphs served from a subsuming view through a compensation plan "
      "(subset of cv_rewrite_views_reused_total)");
  obs_.compensation_nodes = metrics->GetCounter(
      "cv_containment_compensation_nodes_total", {},
      "Filter/Aggregate/Project compensation operators added around "
      "subsumed view reads");
  obs_.lock_denied = metrics->GetCounter(
      "cv_rewrite_materialize_lock_denied_total", {},
      "Materializations skipped because another job holds the build lock");
  obs_.mat_skipped = metrics->GetCounter(
      "cv_rewrite_materialize_skipped_by_cost_total", {},
      "Materializations skipped by the write-cost gate");
  obs_.views_fallback = metrics->GetCounter(
      "cv_jobs_views_fallback_total", {},
      "View reads abandoned because the view was unavailable; the job "
      "re-ran its original plan (do-no-harm fallback)");
  obs_.fallback_jobs =
      metrics->GetCounter("cv_jobs_fallback_total", {},
                          "Jobs that fell back to their original plan "
                          "after a view-read failure");
  obs_.lookup_degraded =
      metrics->GetCounter("cv_jobs_lookup_degraded_total", {},
                          "Jobs that ran without reuse information after "
                          "persistent metadata-lookup failures");
  obs_.views_abandoned =
      metrics->GetCounter("cv_views_abandoned_total", {},
                          "Partially materialized views discarded after a "
                          "failed view write (build lock released)");
  obs_.stale_registrations =
      metrics->GetCounter("cv_views_stale_registration_dropped_total", {},
                          "View files deleted because the metadata service "
                          "rejected their registration");
  obs_.sharing_leaders = metrics->GetCounter(
      "cv_sharing_leader_total", {},
      "Submissions that led a shared in-flight execution (first in-flight "
      "job of their whole-plan signature)");
  obs_.sharing_followers = metrics->GetCounter(
      "cv_sharing_follower_total", {},
      "Submissions that joined an in-flight identical execution as a "
      "follower (whether or not the adoption succeeded)");
  obs_.sharing_leader_failures = metrics->GetCounter(
      "cv_sharing_leader_failures_total", {},
      "Shared executions whose leader failed or crashed before fan-out; "
      "their followers degraded to independent execution");
  obs_.sharing_degraded = metrics->GetCounter(
      "cv_sharing_follower_degraded_total", {},
      "Followers that fell back to full independent execution (leader "
      "failure or wait timeout); the job still succeeds");
  obs_.piggyback_waits = metrics->GetCounter(
      "cv_sharing_piggyback_waits_total", {},
      "Build-lock denials the job waited out hoping to reuse the "
      "in-flight builder's view (one per denied signature)");
  obs_.piggyback_hits = metrics->GetCounter(
      "cv_sharing_piggyback_hits_total", {},
      "Piggyback waits that ended with the view registered; the job "
      "re-optimized against it instead of running reuse-blind");
  obs_.piggyback_timeouts = metrics->GetCounter(
      "cv_sharing_piggyback_timeouts_total", {},
      "Piggyback waits that timed out; the job kept its reuse-blind plan");
  obs_.piggyback_abandoned = metrics->GetCounter(
      "cv_sharing_piggyback_abandoned_total", {},
      "Piggyback waits cut short because the builder abandoned its lock "
      "(or its lease lapsed); the job kept its reuse-blind plan");
  plan_cache_.SetMetrics(metrics);
}

std::vector<std::string> JobService::DefaultTags(const JobDefinition& def) {
  std::vector<std::string> tags;
  tags.push_back("template:" + def.template_id);
  tags.push_back("vc:" + def.vc);
  tags.push_back("user:" + def.user);
  return tags;
}

void JobService::AbandonSpoolLocks(const PlanNodePtr& root, uint64_t job_id) {
  if (metadata_ == nullptr || root == nullptr) return;
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kSpool) {
      metadata_->AbandonLock(static_cast<SpoolNode*>(n)->precise_signature(),
                             job_id);
    }
  }
}

bool JobService::CachedViewReadsLive(const PlanNodePtr& root) {
  if (root == nullptr) return false;
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() != OpKind::kViewRead) continue;
    if (metadata_ == nullptr) return false;
    auto* vr = static_cast<ViewReadNode*>(n);
    auto info = metadata_->FindMaterialized(vr->normalized_signature(),
                                            vr->precise_signature());
    if (!info.has_value() || info->path != vr->view_path()) return false;
  }
  return true;
}

void JobService::RegisterMaterializedView(const SpoolNode& spool,
                                          const StreamData& view,
                                          uint64_t job_id) {
  MaterializedViewInfo info;
  info.path = spool.view_path();
  info.normalized_signature = spool.normalized_signature();
  info.precise_signature = spool.precise_signature();
  info.producer_job_id = job_id;
  info.design = spool.design();
  info.rows = static_cast<double>(view.total_rows);
  info.bytes = static_cast<double>(view.total_bytes);
  // Instance-level containment features from the spooled subtree: concrete
  // predicate bounds, conjunct hashes, and the core precise signature the
  // matcher resolves per-instance containment against.
  if (!spool.children().empty() && spool.children()[0] != nullptr) {
    info.reuse_features = std::make_shared<ViewFeatures>(
        ComputeViewFeatures(*spool.children()[0]));
  }
  Status registered = metadata_->ReportMaterialized(info, view.expires_at);
  if (!registered.ok()) {
    // Fenced out (our lease expired) or another producer won: the
    // registered copy is authoritative, so drop the bytes we wrote.
    // Intentional drop: the file may already have been cleaned up by the
    // lease takeover.
    (void)storage_->DeleteStream(info.path);
    if (obs_.stale_registrations != nullptr) {
      obs_.stale_registrations->Increment();
    }
  }
}

Result<JobResult> JobService::SubmitJob(const JobDefinition& def,
                                        const JobServiceOptions& options) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  MonotonicClock* wall =
      wall_clock_ != nullptr ? wall_clock_ : MonotonicClock::Real();
  double submit_start = wall->NowSeconds();
  if (obs_.submitted != nullptr) obs_.submitted->Increment();
  obs::ScopedGaugeIncrement active(obs_.active);

  JobResult result;
  result.job_id = next_job_id_.fetch_add(1);

  obs::Span job_span;  // inactive unless a tracer is attached
  if (options.parent_span != nullptr) {
    job_span = options.parent_span->StartChild("job");
  } else if (tracer_ != nullptr) {
    job_span = tracer_->StartTrace("job");
  }
  if (options.parent_span != nullptr || tracer_ != nullptr) {
    job_span.SetAttribute("job_id", result.job_id);
    job_span.SetAttribute("template_id", def.template_id);
    job_span.SetAttribute("recurring_instance",
                          static_cast<int64_t>(def.recurring_instance));
  }
  // Shared failure path: stamps counters/latency and hands the trace back
  // on the error too, so failed jobs stay diagnosable.
  auto fail = [&](Status status) {
    if (obs_.failed != nullptr) {
      obs_.failed->Increment();
      obs_.latency->Observe(wall->NowSeconds() - submit_start);
    }
    job_span.SetAttribute("error", status.ToString());
    job_span.End();
    return status;
  };

  // --- Compile: metadata lookup + optimization (Fig 6 right, Fig 9) -------
  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = result.job_id;
  ctx.clock = wall;
  if (options.use_feedback_statistics && repository_ != nullptr) {
    ctx.feedback = repository_;
  }

  // --- Recurring-job fast path: plan-cache probe (see DESIGN.md) -----------
  const bool cloudviews_on = options.enable_cloudviews && metadata_ != nullptr;
  const bool cache_on = options.enable_plan_cache;
  const bool sharing_on = options.enable_inflight_sharing;
  PlanCache::Key cache_key;
  Hash128 normalized_sig;
  Hash128 precise_sig;
  PlanCache::Probe probe;
  if (cache_on || sharing_on) {
    SubgraphSignatures sigs = ComputeSignatures(*def.logical_plan);
    normalized_sig = sigs.normalized;
    precise_sig = sigs.precise;
  }

  // --- Work sharing: join the in-flight registry (see inflight_sharing.h).
  // Placed before the plan-cache probe so a follower skips the whole
  // compile/execute pipeline, not just the cold path.
  InflightSharing::Ticket share_ticket;
  if (sharing_on) {
    share_ticket = sharing_.Join(
        InflightSharing::ShareKey{normalized_sig, precise_sig, cloudviews_on});
    if (share_ticket.role == InflightSharing::Role::kFollower) {
      if (obs_.sharing_followers != nullptr) {
        obs_.sharing_followers->Increment();
      }
      obs::Span wait_span = job_span.StartChild("inflight_wait");
      InflightSharing::Outcome shared =
          sharing_.WaitForLeader(share_ticket, options.sharing_wait_seconds);
      wait_span.SetAttribute("adopted", shared.ok);
      if (!shared.ok) {
        wait_span.SetAttribute("degraded_cause", shared.status.ToString());
      }
      wait_span.End();
      if (shared.ok) {
        // Adopt the leader's execution wholesale: same plan over the same
        // data, so the result is byte-identical to running alone. The
        // follower keeps its own job id and trace, and still records a
        // JobRecord so the feedback loop sees every submission.
        result.shared_execution = true;
        result.share_leader_job_id = shared.leader_job_id;
        result.executed_plan = shared.executed_plan;
        result.run_stats = shared.run_stats;
        result.views_reused = shared.views_reused;
        result.views_reused_subsumed = shared.views_reused_subsumed;
        result.compensation_nodes_added = shared.compensation_nodes_added;
        result.estimated_cost = shared.estimated_cost;
        job_span.SetAttribute("shared_execution", true);
        job_span.SetAttribute("share_leader_job_id", shared.leader_job_id);
        if (options.record_in_repository && repository_ != nullptr) {
          obs::Span record_span = job_span.StartChild("record");
          JobRecord record;
          record.job_id = result.job_id;
          record.cluster = def.cluster;
          record.business_unit = def.business_unit;
          record.vc = def.vc;
          record.user = def.user;
          record.template_id = def.template_id;
          record.recurring_instance = def.recurring_instance;
          record.recurrence_period = def.recurrence_period;
          record.submit_time = clock_->Now();
          record.tags = def.tags.empty() ? DefaultTags(def) : def.tags;
          record.plan = result.executed_plan;
          record.run_stats = result.run_stats;
          repository_->AddJob(std::move(record));
          record_span.End();
        }
        if (obs_.succeeded != nullptr) {
          obs_.succeeded->Increment();
          obs_.latency->Observe(wall->NowSeconds() - submit_start);
        }
        result.trace = job_span.Finish();
        return result;
      }
      // "Do no harm": the leader failed or the wait timed out — run the
      // job independently below, exactly as if sharing were off.
      if (obs_.sharing_degraded != nullptr) obs_.sharing_degraded->Increment();
    } else if (obs_.sharing_leaders != nullptr) {
      obs_.sharing_leaders->Increment();
    }
  }
  // Leader-side publish guard: every exit path must publish (followers
  // would otherwise block until their timeout). Failure is the default;
  // the success tail publishes the real outcome and disarms this.
  struct ShareGuard {
    InflightSharing* reg = nullptr;
    InflightSharing::Ticket* ticket = nullptr;
    obs::Counter* leader_failures = nullptr;
    bool published = false;
    ~ShareGuard() {
      if (reg == nullptr || published) return;
      reg->PublishFailure(*ticket,
                          Status::Internal("leader failed before fan-out"));
      if (leader_failures != nullptr) leader_failures->Increment();
    }
  } share_guard;
  if (sharing_on && share_ticket.role == InflightSharing::Role::kLeader) {
    share_guard.reg = &sharing_;
    share_guard.ticket = &share_ticket;
    share_guard.leader_failures = obs_.sharing_leader_failures;
  }

  if (cache_on) {
    // The epoch is read BEFORE the probe and the metadata lookup: a
    // concurrent catalog change then tags this compilation with the older
    // epoch and conservatively invalidates it later — never the reverse.
    result.catalog_epoch =
        metadata_ != nullptr ? metadata_->CatalogEpoch() : 1;
    cache_key = PlanCache::Key{normalized_sig, cloudviews_on};
    probe = plan_cache_.Lookup(cache_key, result.catalog_epoch, precise_sig);
  }

  OptimizedPlan optimized;
  bool have_plan = false;
  bool served_full = false;
  bool served_skeleton = false;
  double optimize_start = wall->NowSeconds();

  if (probe.rewritten_valid) {
    // Full hit: same template, same data, unchanged catalog epoch. Still
    // validate every view read against the live catalog (clock-driven
    // expiry bumps no epoch) before skipping the whole compile pipeline.
    if (CachedViewReadsLive(probe.entry->rewritten)) {
      obs::Span cache_span = job_span.StartChild("plan_cache");
      auto finished =
          optimizer_.FinishCachedPlan(probe.entry->rewritten->Clone(), ctx);
      if (finished.ok()) {
        optimized = std::move(finished).ValueOrDie();
        have_plan = true;
        served_full = true;
        result.plan_cache_hit = true;
        plan_cache_.OnServed(/*full_hit=*/true);
        cache_span.SetAttribute("tier", "full");
        cache_span.SetAttribute("estimated_cost", optimized.estimated_cost);
      }
      cache_span.End();
    } else {
      plan_cache_.OnDemoted();
    }
  }

  if (!have_plan && cloudviews_on) {
    ctx.view_catalog = metadata_;
    std::vector<std::string> tags =
        def.tags.empty() ? DefaultTags(def) : def.tags;
    double lookup_start = wall->NowSeconds();
    obs::Span span = job_span.StartChild("metadata_lookup");
    Status lookup = fault::RetryWithBackoff(
        retry_,
        [&]() -> Status {
          auto r = metadata_->TryGetRelevantViews(
              tags, &result.metadata_lookup_seconds);
          if (!r.ok()) return r.status();
          ctx.annotations = std::move(r).ValueOrDie();
          return Status::OK();
        },
        sleeper_);
    if (!lookup.ok()) {
      // The lookup failed persistently. Reuse is an optimization: degrade
      // to a plain (no-reuse, no-materialize) job rather than failing it.
      ctx.annotations.clear();
      ctx.view_catalog = nullptr;
      result.lookup_degraded = true;
      if (obs_.lookup_degraded != nullptr) obs_.lookup_degraded->Increment();
      span.SetAttribute("degraded", true);
      span.SetAttribute("error", lookup.ToString());
    } else if (optimizer_.config().enable_containment_matching) {
      // Containment tier 1 pre-fetch: annotations over the same table sets
      // as this job's subgraphs, keyed by the table-set index so candidate
      // enumeration never scans the full catalog. Tag-matched annotations
      // already fetched above are not duplicated.
      std::set<Hash128> have;
      for (const auto& a : ctx.annotations) have.insert(a.normalized_signature);
      for (auto& extra : metadata_->GetContainmentCandidates(
               CollectTableSetKeys(def.logical_plan))) {
        if (have.insert(extra.normalized_signature).second) {
          ctx.annotations.push_back(std::move(extra));
        }
      }
    }
    span.SetAttribute("annotations",
                      static_cast<uint64_t>(ctx.annotations.size()));
    span.SetAttribute("simulated_latency_seconds",
                      result.metadata_lookup_seconds);
    if (obs_.stage_lookup != nullptr) {
      obs_.stage_lookup->Observe(wall->NowSeconds() - lookup_start);
    }
  }

  // Skeleton hit: same template, but new data or a moved catalog epoch.
  // Rebind the `{param}` holes onto a clone of the cached logically-
  // rewritten tree, then re-run physical planning + the view passes —
  // parse and logical optimize are skipped (no `logical_rewrite` span).
  if (!have_plan && cache_on && probe.entry != nullptr &&
      probe.entry->skeleton != nullptr) {
    PlanNodePtr candidate = probe.entry->skeleton->Clone();
    if (RebindSkeletonParams(candidate.get(), def.logical_plan.get())) {
      optimize_start = wall->NowSeconds();
      obs::Span optimize_span = job_span.StartChild("optimize");
      optimize_span.SetAttribute("plan_cache", "skeleton");
      ctx.span = optimize_span.active() ? &optimize_span : nullptr;
      auto from_skeleton =
          optimizer_.OptimizeFromSkeleton(std::move(candidate), ctx);
      if (from_skeleton.ok()) {
        optimized = std::move(from_skeleton).ValueOrDie();
        have_plan = true;
        served_skeleton = true;
        result.plan_cache_hit = true;
        plan_cache_.OnServed(/*full_hit=*/false);
        optimize_span.SetAttribute("estimated_cost",
                                   optimized.estimated_cost);
      }
      // On failure fall through to a full compile — the cache must never
      // fail a job a cold compile would have run.
      optimize_span.End();
      ctx.span = nullptr;
    } else {
      plan_cache_.OnRebindFailed();
    }
  }

  // Cold path: full parse + logical rewrite + physical optimize, capturing
  // the logically-rewritten skeleton for the cache on the way out.
  PlanNodePtr skeleton_captured;
  if (!have_plan) {
    optimize_start = wall->NowSeconds();
    obs::Span optimize_span = job_span.StartChild("optimize");
    ctx.span = optimize_span.active() ? &optimize_span : nullptr;
    if (cache_on) ctx.skeleton_out = &skeleton_captured;
    auto optimized_or = optimizer_.Optimize(def.logical_plan, ctx);
    ctx.skeleton_out = nullptr;
    ctx.span = nullptr;
    if (!optimized_or.ok()) return fail(optimized_or.status());
    optimized = std::move(optimized_or).ValueOrDie();
    optimize_span.SetAttribute("estimated_cost", optimized.estimated_cost);
    optimize_span.End();
  }
  // --- Build piggybacking (work sharing on the materialization path) ------
  // A build-lock denial means a live builder is materializing a subgraph we
  // also compute. Instead of running reuse-blind, wait (bounded) for its
  // ReportMaterialized and re-optimize against the fresh view. Guards:
  // only non-builders wait (views_materialized == 0 — a builder waiting on
  // another builder could deadlock through the lock graph), and a degraded
  // lookup stays degraded. Every wait outcome except "view registered"
  // keeps the already-compiled blind plan — piggybacking never fails a job.
  if (cloudviews_on && options.enable_piggyback && !result.lookup_degraded &&
      optimized.views_materialized == 0 &&
      !optimized.lock_denied_signatures.empty()) {
    obs::Span pb_span = job_span.StartChild("piggyback_wait");
    MonotonicClock* real = MonotonicClock::Real();
    const double deadline = real->NowSeconds() + options.piggyback_wait_seconds;
    for (const auto& [denied_norm, denied_precise] :
         optimized.lock_denied_signatures) {
      (void)denied_norm;
      ++result.piggyback_waits;
      if (obs_.piggyback_waits != nullptr) obs_.piggyback_waits->Increment();
      // One shared budget across all denied signatures of this job.
      double remaining = deadline - real->NowSeconds();
      Status waited =
          remaining <= 0
              ? Status::Expired("piggyback wait budget exhausted")
              : metadata_->WaitForMaterialized(denied_precise, remaining);
      if (waited.ok()) {
        ++result.piggyback_hits;
        if (obs_.piggyback_hits != nullptr) obs_.piggyback_hits->Increment();
      } else if (waited.IsNotFound()) {
        ++result.piggyback_abandoned;
        if (obs_.piggyback_abandoned != nullptr) {
          obs_.piggyback_abandoned->Increment();
        }
      } else {
        ++result.piggyback_timeouts;
        if (obs_.piggyback_timeouts != nullptr) {
          obs_.piggyback_timeouts->Increment();
        }
      }
    }
    if (result.piggyback_hits > 0) {
      // One full re-optimize picks up every view that registered while we
      // waited. The discarded blind plan held no build locks
      // (views_materialized == 0 above), so dropping it leaks nothing; if
      // the re-optimize fails the blind plan still runs.
      auto replanned = optimizer_.Optimize(def.logical_plan, ctx);
      if (replanned.ok()) {
        optimized = std::move(replanned).ValueOrDie();
        served_full = false;
        served_skeleton = false;
        result.plan_cache_hit = false;
      }
    }
    pb_span.SetAttribute("waits", static_cast<int64_t>(result.piggyback_waits));
    pb_span.SetAttribute("hits", static_cast<int64_t>(result.piggyback_hits));
    pb_span.SetAttribute("timeouts",
                         static_cast<int64_t>(result.piggyback_timeouts));
    pb_span.SetAttribute("abandoned",
                         static_cast<int64_t>(result.piggyback_abandoned));
    pb_span.End();
  }

  if (obs_.stage_optimize != nullptr) {
    obs_.stage_optimize->Observe(wall->NowSeconds() - optimize_start);
    obs_.views_reused->Increment(
        static_cast<uint64_t>(optimized.views_reused));
    obs_.views_materialized->Increment(
        static_cast<uint64_t>(optimized.views_materialized));
    obs_.reuse_rejected->Increment(
        static_cast<uint64_t>(optimized.reuse_rejected_by_cost));
    obs_.lock_denied->Increment(
        static_cast<uint64_t>(optimized.materialize_lock_denied));
    obs_.mat_skipped->Increment(
        static_cast<uint64_t>(optimized.materialize_skipped_by_cost));
    obs_.candidates_filtered->Increment(
        static_cast<uint64_t>(optimized.candidates_filtered));
    obs_.containment_verified->Increment(
        static_cast<uint64_t>(optimized.containment_verified));
    obs_.containment_rejected->Increment(
        static_cast<uint64_t>(optimized.containment_rejected));
    obs_.views_subsumed->Increment(
        static_cast<uint64_t>(optimized.views_reused_subsumed));
    obs_.compensation_nodes->Increment(
        static_cast<uint64_t>(optimized.compensation_nodes_added));
  }
  result.compile_seconds = optimized.optimize_seconds;
  result.views_reused = optimized.views_reused;
  result.views_materialized = optimized.views_materialized;
  result.reuse_rejected_by_cost = optimized.reuse_rejected_by_cost;
  result.materialize_lock_denied = optimized.materialize_lock_denied;
  result.candidates_filtered = optimized.candidates_filtered;
  result.containment_verified = optimized.containment_verified;
  result.containment_rejected = optimized.containment_rejected;
  result.views_reused_subsumed = optimized.views_reused_subsumed;
  result.compensation_nodes_added = optimized.compensation_nodes_added;
  result.estimated_cost = optimized.estimated_cost;

  // --- Execute with early view publication (Sec 6.4) -----------------------
  double execute_start = wall->NowSeconds();
  obs::Span execute_span = job_span.StartChild("execute");
  ExecContext exec_ctx;
  exec_ctx.storage = storage_;
  exec_ctx.job_id = result.job_id;
  exec_ctx.metrics = metrics_;
  exec_ctx.clock = wall;
  exec_ctx.options = options.exec.value_or(exec_options_);
  exec_ctx.pool = ExecutionPool(exec_ctx.options);
  exec_ctx.fault = fault_;
  exec_ctx.retry = retry_;
  exec_ctx.sleeper = sleeper_;
  if (metadata_ != nullptr) {
    exec_ctx.on_view_materialized = [this, &result](const SpoolNode& spool,
                                                    const StreamData& view) {
      RegisterMaterializedView(spool, view, result.job_id);
    };
    exec_ctx.on_view_abandoned = [this, &result](const SpoolNode& spool,
                                                 const Status&) {
      // Do-no-harm path: the view write failed, the partial is gone, the
      // job keeps running — hand the build lock back so another instance
      // can retry the materialization.
      metadata_->AbandonLock(spool.precise_signature(), result.job_id);
      if (obs_.views_abandoned != nullptr) obs_.views_abandoned->Increment();
    };
  }
  Executor executor(exec_ctx);
  auto run = executor.Execute(optimized.root);
  if (!run.ok() && run.status().IsViewUnavailable() && metadata_ != nullptr) {
    // Fallback-to-original-plan (the ReStore principle): a view this plan
    // was rewritten to read is unavailable, and stored results are an
    // optimization — never a correctness dependency. Discard the rewritten
    // plan (releasing the build locks it carried), re-optimize without the
    // view catalog, and run the job's original shape.
    AbandonSpoolLocks(optimized.root, result.job_id);
    result.views_fallback = result.views_reused;
    execute_span.SetAttribute("views_fallback",
                              static_cast<int64_t>(result.views_fallback));
    execute_span.SetAttribute("fallback_cause", run.status().ToString());
    if (obs_.views_fallback != nullptr) {
      obs_.views_fallback->Increment(
          static_cast<uint64_t>(result.views_fallback));
      obs_.fallback_jobs->Increment();
    }
    // The cached entry (if any) led to or coexists with a plan reading a
    // dead view — drop it so the next occurrence replans from scratch.
    if (cache_on) plan_cache_.Invalidate(cache_key);
    OptimizeContext plain_ctx = ctx;
    plain_ctx.view_catalog = nullptr;
    plain_ctx.annotations.clear();
    plain_ctx.span = nullptr;
    plain_ctx.skeleton_out = nullptr;
    auto replanned = optimizer_.Optimize(def.logical_plan, plain_ctx);
    if (!replanned.ok()) return fail(replanned.status());
    optimized = std::move(replanned).ValueOrDie();
    result.views_reused = 0;
    result.views_materialized = 0;
    // The executed plan carries no compensated view reads either.
    result.views_reused_subsumed = 0;
    result.compensation_nodes_added = 0;
    result.estimated_cost = optimized.estimated_cost;
    Executor fallback_executor(exec_ctx);
    run = fallback_executor.Execute(optimized.root);
  }
  if (!run.ok()) {
    // Release build locks this job won but can no longer honor; they would
    // otherwise block others until lock expiry. Exception: an injected
    // crash models the whole job process dying — a dead process runs no
    // cleanup, so the lock must be reclaimed by lease expiry instead.
    if (!fault::IsInjectedCrash(run.status())) {
      AbandonSpoolLocks(optimized.root, result.job_id);
    }
    return fail(run.status());
  }
  result.run_stats = *run;
  result.executed_plan = optimized.root;
  execute_span.SetAttribute("output_rows", result.run_stats.output_rows);
  execute_span.SetAttribute("output_bytes", result.run_stats.output_bytes);
  execute_span.SetAttribute("cpu_seconds", result.run_stats.cpu_seconds);
  execute_span.SetAttribute(
      "operators", static_cast<uint64_t>(result.run_stats.operators.size()));
  execute_span.End();
  if (obs_.stage_execute != nullptr) {
    obs_.stage_execute->Observe(wall->NowSeconds() - execute_start);
  }

  // --- Work sharing: leader fan-out ----------------------------------------
  // Published as soon as execution succeeds (before the cache/record tail)
  // so followers stop waiting at the earliest correct moment.
  if (share_guard.reg != nullptr) {
    Status injected =
        fault_ != nullptr
            ? fault_->MaybeInject(fault::points::kSharingLeaderCrash,
                                  precise_sig.ToHex())
            : Status::OK();
    if (!injected.ok()) {
      // The fan-out is lost either way; with crash=true the leader process
      // itself is modeled as dead, so its own job fails too. Followers
      // degrade to independent execution — never to failure.
      sharing_.PublishFailure(share_ticket, injected);
      share_guard.published = true;
      if (obs_.sharing_leader_failures != nullptr) {
        obs_.sharing_leader_failures->Increment();
      }
      if (fault::IsInjectedCrash(injected)) return fail(injected);
    } else {
      InflightSharing::Outcome out;
      out.leader_job_id = result.job_id;
      out.executed_plan = result.executed_plan;
      out.run_stats = result.run_stats;
      out.views_reused = result.views_reused;
      out.views_reused_subsumed = result.views_reused_subsumed;
      out.compensation_nodes_added = result.compensation_nodes_added;
      out.estimated_cost = result.estimated_cost;
      result.share_followers = static_cast<int>(
          sharing_.PublishSuccess(share_ticket, std::move(out)));
      share_guard.published = true;
      job_span.SetAttribute("share_followers",
                            static_cast<int64_t>(result.share_followers));
    }
  }

  // --- Publish into the plan cache -----------------------------------------
  // Only after a successful run, and never from degraded compilations: a
  // lookup-degraded plan is reuse-blind and a fallback already invalidated
  // the entry. A full hit needs no re-insert (Lookup refreshed the LRU).
  if (cache_on && !served_full && !result.lookup_degraded &&
      result.views_fallback == 0) {
    PlanCache::Entry entry;
    entry.catalog_epoch = result.catalog_epoch;
    entry.precise = precise_sig;
    if (served_skeleton) {
      entry.skeleton = probe.entry->skeleton;  // shared immutable tree
    } else if (skeleton_captured != nullptr &&
               !HasExprLevelParamHoles(*def.logical_plan)) {
      entry.skeleton = std::move(skeleton_captured);
    }
    // Plans that materialized views carry Spool side effects (build locks,
    // view writes) and must not replay; the skeleton tier still serves the
    // template. A lock-denied plan is also excluded: it lacks the Spool a
    // fresh optimize would add once the lock frees up, and lock expiry
    // bumps no catalog epoch — a full hit would silently stop trying to
    // build the view.
    if (optimized.views_materialized == 0 &&
        result.materialize_lock_denied == 0) {
      entry.rewritten = optimized.root->Clone();
    }
    if (entry.skeleton != nullptr || entry.rewritten != nullptr) {
      plan_cache_.Insert(cache_key, std::move(entry));
    }
  }
  job_span.SetAttribute("plan_cache_hit", result.plan_cache_hit);
  job_span.SetAttribute("catalog_epoch", result.catalog_epoch);

  // --- Record in the workload repository (feedback loop) -------------------
  if (options.record_in_repository && repository_ != nullptr) {
    double record_start = wall->NowSeconds();
    obs::Span record_span = job_span.StartChild("record");
    JobRecord record;
    record.job_id = result.job_id;
    record.cluster = def.cluster;
    record.business_unit = def.business_unit;
    record.vc = def.vc;
    record.user = def.user;
    record.template_id = def.template_id;
    record.recurring_instance = def.recurring_instance;
    record.recurrence_period = def.recurrence_period;
    record.submit_time = clock_->Now();
    record.tags = def.tags.empty() ? DefaultTags(def) : def.tags;
    record.plan = optimized.root;
    record.run_stats = result.run_stats;
    repository_->AddJob(std::move(record));
    record_span.End();
    if (obs_.stage_record != nullptr) {
      obs_.stage_record->Observe(wall->NowSeconds() - record_start);
    }
  }

  if (obs_.succeeded != nullptr) {
    obs_.succeeded->Increment();
    obs_.latency->Observe(wall->NowSeconds() - submit_start);
  }
  result.trace = job_span.Finish();
  return result;
}

Result<int> JobService::MaterializeOfflineViews(const JobDefinition& def) {
  if (def.logical_plan == nullptr) {
    return Status::InvalidArgument("job has no plan");
  }
  if (metadata_ == nullptr) {
    return Status::InvalidArgument("offline mode needs a metadata service");
  }
  uint64_t job_id = next_job_id_.fetch_add(1);

  OptimizeContext ctx;
  ctx.storage = storage_;
  ctx.job_id = job_id;
  if (repository_ != nullptr) ctx.feedback = repository_;
  ctx.view_catalog = metadata_;
  std::vector<std::string> tags =
      def.tags.empty() ? DefaultTags(def) : def.tags;
  ctx.annotations = metadata_->GetRelevantViews(tags);
  // Build every annotated subgraph of this job, regardless of the online
  // per-job cap, and treat offline annotations as materializable.
  for (auto& ann : ctx.annotations) ann.offline = false;
  OptimizerConfig config = optimizer_.config();
  config.max_materialized_views_per_job = 1 << 20;
  Optimizer offline_optimizer(config);
  CV_ASSIGN_OR_RETURN(OptimizedPlan optimized,
                      offline_optimizer.Optimize(def.logical_plan, ctx));

  // Extract each Spool subtree and run it standalone: the pre-job builds
  // only the views, nothing else. The single Optimize above took a build
  // lock for EVERY spool, so any early exit must release the locks of the
  // failing spool and of every spool that never got to run — not just the
  // failing one (that was a lock-leak bug).
  std::vector<PlanNode*> nodes;
  CollectNodes(optimized.root, &nodes);
  std::vector<SpoolNode*> spools;
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kSpool) {
      spools.push_back(static_cast<SpoolNode*>(n));
    }
  }
  auto abandon_from = [this, &spools, job_id](size_t first) {
    for (size_t j = first; j < spools.size(); ++j) {
      metadata_->AbandonLock(spools[j]->precise_signature(), job_id);
    }
  };
  int built = 0;
  for (size_t i = 0; i < spools.size(); ++i) {
    SpoolNode* spool = spools[i];
    PlanNodePtr standalone = spool->Clone();
    Status bound = standalone->Bind();
    if (!bound.ok()) {
      abandon_from(i);
      return bound;
    }
    AssignNodeIds(standalone.get());
    ExecContext exec_ctx;
    exec_ctx.storage = storage_;
    exec_ctx.job_id = job_id;
    exec_ctx.metrics = metrics_;
    exec_ctx.clock = wall_clock_;
    exec_ctx.options = exec_options_;
    exec_ctx.pool = ExecutionPool(exec_ctx.options);
    exec_ctx.fault = fault_;
    exec_ctx.retry = retry_;
    exec_ctx.sleeper = sleeper_;
    bool materialized = false;
    exec_ctx.on_view_materialized = [this, job_id, &materialized](
                                        const SpoolNode& node,
                                        const StreamData& view) {
      materialized = true;
      RegisterMaterializedView(node, view, job_id);
    };
    exec_ctx.on_view_abandoned = [this, job_id](const SpoolNode& node,
                                                const Status&) {
      metadata_->AbandonLock(node.precise_signature(), job_id);
      if (obs_.views_abandoned != nullptr) obs_.views_abandoned->Increment();
    };
    Executor executor(exec_ctx);
    auto run = executor.Execute(standalone);
    if (!run.ok()) {
      if (!fault::IsInjectedCrash(run.status())) {
        abandon_from(i);
      }
      return run.status();
    }
    // A do-no-harm write failure leaves run OK but builds nothing (the
    // spool's lock was already released through on_view_abandoned).
    if (materialized) ++built;
  }
  return built;
}

std::vector<Result<JobResult>> JobService::SubmitConcurrent(
    const std::vector<JobDefinition>& defs,
    const JobServiceOptions& options) {
  std::vector<Result<JobResult>> results(
      defs.size(), Result<JobResult>(Status::Internal("not run")));
  std::vector<std::thread> threads;
  threads.reserve(defs.size());
  for (size_t i = 0; i < defs.size(); ++i) {
    threads.emplace_back([this, &defs, &options, &results, i] {
      results[i] = SubmitJob(defs[i], options);
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace cloudviews
