#ifndef CLOUDVIEWS_TYPES_VALUE_H_
#define CLOUDVIEWS_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "types/data_type.h"

namespace cloudviews {

/// \brief A single scalar value (possibly null) with a runtime type tag.
///
/// Values appear in expression literals, aggregation states, and row
/// materialization. Dates share the int64 payload with kDate as the tag.
class Value {
 public:
  /// Null of unspecified type.
  Value() : type_(DataType::kInt64), null_(true) {}

  static Value Null(DataType t) {
    Value v;
    v.type_ = t;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(DataType::kBool, b); }
  static Value Int64(int64_t i) { return Value(DataType::kInt64, i); }
  static Value Double(double d) { return Value(DataType::kDouble, d); }
  static Value String(std::string s) {
    return Value(DataType::kString, std::move(s));
  }
  /// Days since 1970-01-01.
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }

  /// Parses "YYYY-MM-DD" into a date value; returns null date on failure.
  static Value DateFromString(const std::string& iso);

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return std::get<bool>(payload_); }
  int64_t int64_value() const { return std::get<int64_t>(payload_); }
  double double_value() const { return std::get<double>(payload_); }
  const std::string& string_value() const {
    return std::get<std::string>(payload_);
  }
  int64_t date_value() const { return std::get<int64_t>(payload_); }

  /// Numeric view: int64/date widen to double; bool to 0/1. Requires a
  /// non-null, non-string value.
  double AsDouble() const;

  /// Total order consistent with SQL semantics for same-typed values;
  /// nulls sort first. Mixed numeric types compare as doubles.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Stable content hash (used for hash joins / group by).
  void HashInto(HashBuilder* hb) const;

  /// Rendering for plan literals and debugging; strings are quoted, dates
  /// render as YYYY-MM-DD.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (for size statistics).
  int64_t ByteSize() const;

 private:
  template <typename T>
  Value(DataType t, T payload)
      : type_(t), null_(false), payload_(std::move(payload)) {}

  DataType type_;
  bool null_;
  std::variant<bool, int64_t, double, std::string> payload_;
};

/// Formats days-since-epoch as YYYY-MM-DD (proleptic Gregorian).
std::string FormatDate(int64_t days);

/// Parses YYYY-MM-DD to days-since-epoch; returns false on malformed input.
bool ParseDate(const std::string& iso, int64_t* days);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TYPES_VALUE_H_
