# Empty compiler generated dependencies file for cv_parser.
# This may be replaced when dependencies are built.
