#include "analyzer/overlap_analyzer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "signature/signature.h"

namespace cloudviews {

PhysicalProperties SubgraphAggregate::PopularDesign() const {
  int best_count = -1;
  PhysicalProperties best;
  for (const auto& [fp, entry] : designs) {
    if (entry.first > best_count) {
      best_count = entry.first;
      best = entry.second;
    }
  }
  return best;
}

void CollectInputTemplates(const PlanNode& node, std::set<std::string>* out) {
  if (node.kind() == OpKind::kExtract) {
    out->insert(static_cast<const ExtractNode&>(node).template_name());
  }
  for (const auto& c : node.children()) {
    CollectInputTemplates(*c, out);
  }
}

void OverlapAnalyzer::AddJob(const std::shared_ptr<const JobRecord>& job) {
  if (job->plan == nullptr) return;
  JobFacts facts;
  facts.job_id = job->job_id;
  facts.vc = job->vc;
  facts.user = job->user;

  double job_latency = job->run_stats.latency_seconds;

  for (const auto& entry : EnumerateSubgraphs(job->plan)) {
    facts.subgraphs.push_back(entry.sigs.normalized);
    SubgraphAggregate& agg = aggregates_[entry.sigs.normalized];
    if (agg.frequency == 0) {
      agg.normalized = entry.sigs.normalized;
      agg.root_kind = entry.node->kind();
      agg.subtree_size = entry.subtree_size;
      agg.output_schema = entry.node->output_schema();
      // Keep the first occurrence as the definition skeleton; any instance
      // works, since containment matching only consults instance-stable
      // structure and resolves concrete bounds per registered instance.
      agg.definition = entry.node->Clone();
      if (!agg.definition->Bind().ok()) agg.definition = nullptr;
    }
    ++agg.frequency;
    agg.jobs.insert(job->job_id);
    agg.users.insert(job->user);
    agg.vcs.insert(job->vc);
    agg.templates.insert(job->template_id);
    CollectInputTemplates(*entry.node, &agg.input_templates);
    agg.max_recurrence_period =
        std::max(agg.max_recurrence_period, job->recurrence_period);

    auto it = job->run_stats.operators.find(entry.node->id());
    if (it != job->run_stats.operators.end()) {
      agg.sum_rows += it->second.rows;
      agg.sum_bytes += it->second.bytes;
      agg.sum_latency += it->second.inclusive_seconds;
      agg.sum_cpu +=
          SubtreeCpuSeconds(*entry.node, job->run_stats.operators);
      agg.sum_job_latency += job_latency;
    }

    // Mine the output physical properties (Sec 5.3). Delivered() already
    // traverses down when the root has no explicit properties.
    PhysicalProperties design = entry.node->Delivered();
    auto& slot = agg.designs[design.Fingerprint()];
    slot.first += 1;
    slot.second = design;
  }
  job_facts_.push_back(std::move(facts));
}

void OverlapAnalyzer::AddJobs(
    const std::vector<std::shared_ptr<const JobRecord>>& jobs) {
  for (const auto& j : jobs) AddJob(j);
}

OverlapReport OverlapAnalyzer::BuildReport() const {
  OverlapReport report;
  report.total_jobs = job_facts_.size();
  report.total_subgraph_templates = aggregates_.size();

  // Subgraph-template level metrics.
  std::unordered_map<std::string, double> input_max_freq;
  for (const auto& [sig, agg] : aggregates_) {
    report.total_subgraph_instances += agg.frequency;
    if (agg.IsOverlapping()) {
      ++report.overlapping_subgraph_templates;
      report.overlapping_subgraph_instances += agg.frequency;
      report.frequencies.push_back(static_cast<double>(agg.frequency));
      report.runtimes_seconds.push_back(agg.AvgLatency());
      report.sizes_bytes.push_back(agg.AvgBytes());
      report.view_query_cost_ratios.push_back(agg.ViewToQueryCostRatio());
      // The operator chart counts computations, not bare input scans.
      if (agg.subtree_size >= 2) {
        report.overlap_occurrences_by_operator[agg.root_kind] +=
            agg.frequency;
        report.frequency_by_operator[agg.root_kind].push_back(
            static_cast<double>(agg.frequency));
      }
      for (const auto& input : agg.input_templates) {
        double& slot = input_max_freq[input];
        slot = std::max(slot, static_cast<double>(agg.frequency));
      }
    } else {
      for (const auto& input : agg.input_templates) {
        input_max_freq.emplace(input, 1.0);
      }
    }
  }
  // Emit per-input samples ordered by template name: the CDF vector must
  // be byte-stable across runs, and hash-map iteration order is not.
  std::vector<std::pair<std::string, double>> by_input(
      input_max_freq.begin(), input_max_freq.end());
  std::sort(by_input.begin(), by_input.end());
  for (const auto& [input, freq] : by_input) {
    report.per_input_max_frequency.push_back(freq);
  }
  for (const auto& [sig, agg] : aggregates_) {
    if (agg.root_kind == OpKind::kOutput && agg.jobs.size() >= 2) {
      ++report.redundant_output_groups;
      report.jobs_with_redundant_output += agg.jobs.size();
    }
  }

  // Job / user / VC level metrics: a job overlaps when it contains at least
  // one subgraph shared with another job.
  std::map<std::string, double> user_overlaps;
  std::map<std::string, double> vc_overlaps;
  std::map<std::string, OverlapReport::VcOverlap> per_vc;
  // Distinct overlapping templates per VC; the per-VC "average overlap
  // frequency" of Fig 2b averages over templates, not occurrences.
  std::map<std::string, std::set<Hash128>> vc_distinct;
  std::set<std::string> users_with_overlap;
  std::set<std::string> all_users;

  for (const auto& facts : job_facts_) {
    all_users.insert(facts.user);
    auto& vc = per_vc[facts.vc];
    ++vc.jobs;
    int64_t job_overlaps = 0;
    bool shares_with_other_job = false;
    for (const auto& sig : facts.subgraphs) {
      const auto& agg = aggregates_.at(sig);
      // Bare input scans are not computation overlap: every consumer of a
      // popular stream shares them. Job/user/VC overlap requires at least
      // one operator on top of the scan.
      if (agg.subtree_size < 2) continue;
      if (agg.IsOverlapping()) {
        ++job_overlaps;
        vc_distinct[facts.vc].insert(sig);
      }
      if (agg.SharedAcrossJobs()) shares_with_other_job = true;
    }
    if (shares_with_other_job) {
      ++report.overlapping_jobs;
      ++vc.overlapping_jobs;
      users_with_overlap.insert(facts.user);
    }
    if (job_overlaps > 0) {
      report.overlaps_per_job.push_back(static_cast<double>(job_overlaps));
      user_overlaps[facts.user] += static_cast<double>(job_overlaps);
      vc_overlaps[facts.vc] += static_cast<double>(job_overlaps);
    }
  }

  report.total_users = all_users.size();
  report.users_with_overlap = users_with_overlap.size();
  for (auto& [vc, entry] : per_vc) {
    auto it = vc_distinct.find(vc);
    if (it != vc_distinct.end() && !it->second.empty()) {
      double sum = 0;
      for (const auto& sig : it->second) {
        sum += static_cast<double>(aggregates_.at(sig).frequency);
      }
      entry.avg_overlap_frequency =
          sum / static_cast<double>(it->second.size());
    }
  }
  report.per_vc = std::move(per_vc);
  for (const auto& [user, count] : user_overlaps) {
    report.overlaps_per_user.push_back(count);
  }
  for (const auto& [vc, count] : vc_overlaps) {
    report.overlaps_per_vc.push_back(count);
  }
  return report;
}

}  // namespace cloudviews
