#include "runtime/plan_cache.h"

#include "expr/aggregate.h"
#include "expr/expr.h"

namespace cloudviews {

void PlanCache::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  obs_.hits_full = metrics->GetCounter(
      "cv_plan_cache_hits_full_total", {},
      "Plan-cache probes served the fully optimized physical plan (parse, "
      "logical and physical optimize all skipped)");
  obs_.hits_skeleton = metrics->GetCounter(
      "cv_plan_cache_hits_skeleton_total", {},
      "Plan-cache probes served the logical skeleton (parse + logical "
      "optimize skipped; physical + view passes re-run)");
  obs_.misses = metrics->GetCounter("cv_plan_cache_misses_total", {},
                                    "Plan-cache probes that found no entry "
                                    "for the template");
  obs_.epoch_invalidations = metrics->GetCounter(
      "cv_plan_cache_epoch_invalidations_total", {},
      "Cached rewritten plans not served because the catalog epoch moved "
      "(a view was registered, purged, or lock-flipped since compile)");
  obs_.demotions = metrics->GetCounter(
      "cv_plan_cache_demotions_total", {},
      "Full-hit candidates demoted to the skeleton tier because a view "
      "they read was no longer live");
  obs_.rebind_failures = metrics->GetCounter(
      "cv_plan_cache_rebind_failures_total", {},
      "Skeleton hits abandoned because the new instance's param holes "
      "could not be rebound; the job replanned fully");
  obs_.insertions = metrics->GetCounter("cv_plan_cache_insertions_total", {},
                                        "Plan-cache entries inserted or "
                                        "replaced");
  obs_.evictions = metrics->GetCounter("cv_plan_cache_evictions_total", {},
                                       "Plan-cache entries evicted by the "
                                       "LRU capacity bound");
  obs_.entries = metrics->GetGauge("cv_plan_cache_entries", {},
                                   "Plan-cache entries currently resident");
}

PlanCache::Probe PlanCache::Lookup(const Key& key, uint64_t epoch,
                                   const Hash128& precise) {
  Probe probe;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (obs_.misses != nullptr) obs_.misses->Increment();
    return probe;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  probe.entry = it->second->entry;
  if (probe.entry->rewritten != nullptr) {
    if (probe.entry->catalog_epoch == epoch &&
        probe.entry->precise == precise) {
      probe.rewritten_valid = true;
    } else if (probe.entry->catalog_epoch != epoch) {
      ++stats_.epoch_invalidations;
      if (obs_.epoch_invalidations != nullptr) {
        obs_.epoch_invalidations->Increment();
      }
    }
  }
  return probe;
}

void PlanCache::Insert(const Key& key, Entry entry) {
  auto shared = std::make_shared<const Entry>(std::move(entry));
  MutexLock lock(mu_);
  ++stats_.insertions;
  if (obs_.insertions != nullptr) obs_.insertions->Increment();
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Node{key, std::move(shared)});
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
      if (obs_.evictions != nullptr) obs_.evictions->Increment();
    }
  }
  stats_.entries = lru_.size();
  if (obs_.entries != nullptr) {
    obs_.entries->Set(static_cast<double>(lru_.size()));
  }
}

void PlanCache::Invalidate(const Key& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.explicit_invalidations;
  stats_.entries = lru_.size();
  if (obs_.entries != nullptr) {
    obs_.entries->Set(static_cast<double>(lru_.size()));
  }
}

void PlanCache::OnServed(bool full_hit) {
  MutexLock lock(mu_);
  if (full_hit) {
    ++stats_.hits_full;
    if (obs_.hits_full != nullptr) obs_.hits_full->Increment();
  } else {
    ++stats_.hits_skeleton;
    if (obs_.hits_skeleton != nullptr) obs_.hits_skeleton->Increment();
  }
}

void PlanCache::OnDemoted() {
  MutexLock lock(mu_);
  ++stats_.demotions;
  if (obs_.demotions != nullptr) obs_.demotions->Increment();
}

void PlanCache::OnRebindFailed() {
  MutexLock lock(mu_);
  ++stats_.rebind_failures;
  if (obs_.rebind_failures != nullptr) obs_.rebind_failures->Increment();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

namespace {

bool ExprHasParamHole(const Expr& expr) {
  if (expr.kind() == ExprKind::kParameter) return true;
  if (expr.kind() == ExprKind::kLiteral &&
      static_cast<const LiteralExpr&>(expr).value().type() ==
          DataType::kDate) {
    return true;
  }
  for (const ExprPtr& child : expr.children()) {
    if (child != nullptr && ExprHasParamHole(*child)) return true;
  }
  return false;
}

/// Pre-order collection of the nodes carrying node-local `{param}` holes.
void CollectParamHoleNodes(PlanNode* node, std::vector<PlanNode*>* out) {
  switch (node->kind()) {
    case OpKind::kExtract:
    case OpKind::kProcess:
    case OpKind::kReduce:
    case OpKind::kOutput:
      out->push_back(node);
      break;
    default:
      break;
  }
  for (const PlanNodePtr& child : node->children()) {
    CollectParamHoleNodes(child.get(), out);
  }
}

}  // namespace

bool HasExprLevelParamHoles(const PlanNode& plan) {
  switch (plan.kind()) {
    case OpKind::kFilter: {
      const auto& filter = static_cast<const FilterNode&>(plan);
      if (filter.predicate() != nullptr &&
          ExprHasParamHole(*filter.predicate())) {
        return true;
      }
      break;
    }
    case OpKind::kProject: {
      const auto& project = static_cast<const ProjectNode&>(plan);
      for (const NamedExpr& ne : project.exprs()) {
        if (ne.expr != nullptr && ExprHasParamHole(*ne.expr)) return true;
      }
      break;
    }
    case OpKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(plan);
      for (const AggregateSpec& spec : agg.aggregates()) {
        if (spec.arg != nullptr && ExprHasParamHole(*spec.arg)) return true;
      }
      break;
    }
    default:
      break;
  }
  for (const PlanNodePtr& child : plan.children()) {
    if (child != nullptr && HasExprLevelParamHoles(*child)) return true;
  }
  return false;
}

bool RebindSkeletonParams(PlanNode* skeleton, PlanNode* fresh_logical) {
  std::vector<PlanNode*> cached;
  std::vector<PlanNode*> fresh;
  CollectParamHoleNodes(skeleton, &cached);
  CollectParamHoleNodes(fresh_logical, &fresh);
  if (cached.size() != fresh.size()) return false;
  // Verify the whole pairing before mutating anything, so a mismatch
  // leaves the skeleton clone untouched (the caller discards it anyway).
  for (size_t i = 0; i < cached.size(); ++i) {
    if (cached[i]->kind() != fresh[i]->kind()) return false;
    switch (cached[i]->kind()) {
      case OpKind::kExtract: {
        auto* c = static_cast<ExtractNode*>(cached[i]);
        auto* f = static_cast<ExtractNode*>(fresh[i]);
        if (c->template_name() != f->template_name()) return false;
        break;
      }
      case OpKind::kProcess: {
        auto* c = static_cast<ProcessNode*>(cached[i]);
        auto* f = static_cast<ProcessNode*>(fresh[i]);
        if (c->processor() != f->processor() ||
            c->library() != f->library()) {
          return false;
        }
        break;
      }
      case OpKind::kReduce: {
        auto* c = static_cast<ReduceNode*>(cached[i]);
        auto* f = static_cast<ReduceNode*>(fresh[i]);
        if (c->processor() != f->processor() ||
            c->library() != f->library()) {
          return false;
        }
        break;
      }
      default:
        break;
    }
  }
  for (size_t i = 0; i < cached.size(); ++i) {
    switch (cached[i]->kind()) {
      case OpKind::kExtract: {
        auto* f = static_cast<ExtractNode*>(fresh[i]);
        static_cast<ExtractNode*>(cached[i])
            ->RebindInstance(f->stream_name(), f->guid());
        break;
      }
      case OpKind::kProcess: {
        static_cast<ProcessNode*>(cached[i])
            ->set_version(static_cast<ProcessNode*>(fresh[i])->version());
        break;
      }
      case OpKind::kReduce: {
        static_cast<ReduceNode*>(cached[i])
            ->set_version(static_cast<ReduceNode*>(fresh[i])->version());
        break;
      }
      case OpKind::kOutput: {
        static_cast<OutputNode*>(cached[i])
            ->set_stream_name(
                static_cast<OutputNode*>(fresh[i])->stream_name());
        break;
      }
      default:
        break;
    }
  }
  return true;
}

}  // namespace cloudviews
