#include "expr/function_registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace cloudviews {

namespace {

Result<DataType> ExpectArity(const std::vector<DataType>& args, size_t n,
                             DataType out) {
  if (args.size() != n) {
    return Status::TypeError(
        StrFormat("expected %zu arguments, got %zu", n, args.size()));
  }
  return out;
}

void CivilFromValue(const Value& v, int* y, int* m, int* d) {
  // Re-derive civil date from days-since-epoch via FormatDate parsing to
  // keep a single conversion implementation.
  int64_t days = v.date_value();
  std::string s = FormatDate(days);
  std::sscanf(s.c_str(), "%d-%d-%d", y, m, d);
}

}  // namespace

FunctionRegistry* FunctionRegistry::Global() {
  static FunctionRegistry* registry = new FunctionRegistry();  // NOLINT(naked-new): intentionally leaked singleton, immortal by design
  return registry;
}

void FunctionRegistry::Register(const std::string& name,
                                FunctionEntry entry) {
  entries_[name] = std::move(entry);
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

Result<const FunctionEntry*> FunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no builtin function named '" + name + "'");
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [k, v] : entries_) names.push_back(k);
  std::sort(names.begin(), names.end());
  return names;
}

FunctionRegistry::FunctionRegistry() {
  // --- Date extraction -----------------------------------------------------
  auto date_part = [](int which) {
    return [which](const std::vector<Value>& args) -> Value {
      if (args[0].is_null()) return Value::Null(DataType::kInt64);
      int y, m, d;
      CivilFromValue(args[0], &y, &m, &d);
      int parts[3] = {y, m, d};
      return Value::Int64(parts[which]);
    };
  };
  auto infer_date_to_int = [](const std::vector<DataType>& args) {
    return ExpectArity(args, 1, DataType::kInt64);
  };
  Register("year", {date_part(0), infer_date_to_int});
  Register("month", {date_part(1), infer_date_to_int});
  Register("day", {date_part(2), infer_date_to_int});

  // --- String functions ----------------------------------------------------
  Register("lower",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(DataType::kString);
              return Value::String(ToLower(args[0].string_value()));
            },
            [](const std::vector<DataType>& args) {
              return ExpectArity(args, 1, DataType::kString);
            }});
  Register("upper",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(DataType::kString);
              std::string s = args[0].string_value();
              for (char& c : s) c = static_cast<char>(std::toupper(
                                    static_cast<unsigned char>(c)));
              return Value::String(std::move(s));
            },
            [](const std::vector<DataType>& args) {
              return ExpectArity(args, 1, DataType::kString);
            }});
  Register("strlen",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(DataType::kInt64);
              return Value::Int64(
                  static_cast<int64_t>(args[0].string_value().size()));
            },
            [](const std::vector<DataType>& args) {
              return ExpectArity(args, 1, DataType::kInt64);
            }});
  Register("substr",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(DataType::kString);
              const std::string& s = args[0].string_value();
              int64_t start = args[1].int64_value();
              int64_t len = args[2].int64_value();
              if (start < 0) start = 0;
              if (start >= static_cast<int64_t>(s.size())) {
                return Value::String("");
              }
              len = std::min<int64_t>(
                  len, static_cast<int64_t>(s.size()) - start);
              return Value::String(
                  s.substr(static_cast<size_t>(start),
                           static_cast<size_t>(std::max<int64_t>(len, 0))));
            },
            [](const std::vector<DataType>& args) {
              return ExpectArity(args, 3, DataType::kString);
            }});
  Register("concat",
           {[](const std::vector<Value>& args) -> Value {
              std::string out;
              for (const auto& a : args) {
                if (a.is_null()) return Value::Null(DataType::kString);
                out += a.string_value();
              }
              return Value::String(std::move(out));
            },
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.size() < 2) {
                return Status::TypeError("concat expects >= 2 arguments");
              }
              return DataType::kString;
            }});

  // --- Numeric functions ---------------------------------------------------
  Register("abs",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(args[0].type());
              if (args[0].type() == DataType::kInt64) {
                return Value::Int64(std::abs(args[0].int64_value()));
              }
              return Value::Double(std::fabs(args[0].AsDouble()));
            },
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.size() != 1) {
                return Status::TypeError("abs expects 1 argument");
              }
              return args[0];
            }});
  Register("round",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null()) return Value::Null(DataType::kDouble);
              return Value::Double(std::round(args[0].AsDouble()));
            },
            [](const std::vector<DataType>& args) {
              return ExpectArity(args, 1, DataType::kDouble);
            }});
  Register("hash64",
           {[](const std::vector<Value>& args) -> Value {
              HashBuilder hb;
              for (const auto& a : args) a.HashInto(&hb);
              return Value::Int64(
                  static_cast<int64_t>(hb.Finish().lo & 0x7fffffffffffffffULL));
            },
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.empty()) {
                return Status::TypeError("hash64 expects >= 1 argument");
              }
              return DataType::kInt64;
            }});

  // --- Conditional ----------------------------------------------------------
  Register("if",
           {[](const std::vector<Value>& args) -> Value {
              if (args[0].is_null() || !args[0].bool_value()) return args[2];
              return args[1];
            },
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.size() != 3) {
                return Status::TypeError("if expects 3 arguments");
              }
              if (args[0] != DataType::kBool) {
                return Status::TypeError("if condition must be bool");
              }
              if (args[1] != args[2]) {
                return Status::TypeError("if branches must share a type");
              }
              return args[1];
            }});
}

UdfRegistry* UdfRegistry::Global() {
  static UdfRegistry* registry = new UdfRegistry();  // NOLINT(naked-new): intentionally leaked singleton, immortal by design
  return registry;
}

void UdfRegistry::Register(const std::string& name, UdfEntry entry) {
  entries_[name] = std::move(entry);
}

bool UdfRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

Result<const UdfRegistry::UdfEntry*> UdfRegistry::Lookup(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no UDF named '" + name + "'");
  }
  return &it->second;
}

}  // namespace cloudviews
