#include <gtest/gtest.h>

#include "core/cloudviews.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::WriteClickStream;

const char* kScriptA = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total
         FROM clicks WHERE latency > 50 GROUP BY page;
OUTPUT slow TO "slow_pages_{date}";
)";

const char* kScriptB = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total
         FROM clicks WHERE latency > 50 GROUP BY page;
top3   = SELECT page, n, total FROM slow ORDER BY n DESC TOP 3;
OUTPUT top3 TO "top_slow_{date}";
)";

class CoreTest : public ::testing::Test {
 protected:
  static CloudViewsConfig MakeConfig() {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 2;
    config.analyzer.selection.min_frequency = 2;
    return config;
  }

  CoreTest() : cv_(MakeConfig()) {}

  void WriteDay(const std::string& date) {
    WriteClickStream(cv_.storage(), "clicks_" + date, 1500,
                     std::hash<std::string>{}(date), date);
  }

  JobDefinition ScriptJob(const char* script, const std::string& id,
                          const std::string& date) {
    ScopeScriptParser parser;
    ParamMap params;
    params["date"] = DateParam(date);
    StorageManager* storage = cv_.storage();
    auto plan =
        parser.Parse(script, params, [storage](const std::string& name) {
          auto handle = storage->OpenStream(name);
          return handle.ok() ? (*handle)->guid : std::string();
        });
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    JobDefinition def;
    def.template_id = id;
    def.vc = "vc-" + id;
    def.user = "user-" + id;
    def.logical_plan = *plan;
    return def;
  }

  CloudViews cv_;
};

TEST_F(CoreTest, ScriptDrivenLifecycle) {
  // Day 1: two script jobs sharing the "slow" computation run plain.
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-01")).ok());

  auto analysis = cv_.RunAnalyzerAndLoad();
  ASSERT_FALSE(analysis.annotations.empty());
  EXPECT_GT(analysis.report.PctOverlappingJobs(), 99.0);

  // Day 2: materialize then reuse, via scripts only.
  WriteDay("2018-01-02");
  auto a = cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-02"));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->views_materialized, 1);
  auto b = cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-02"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->views_reused, 1);
  EXPECT_TRUE(cv_.storage()->StreamExists("top_slow_2018-01-02"));
}

TEST_F(CoreTest, ViewsExpireAndGetPurged) {
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();

  WriteDay("2018-01-02");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-02")).ok());
  ASSERT_EQ(cv_.metadata()->NumRegisteredViews(), 1u);
  ASSERT_EQ(cv_.storage()->ListStreams("/views/").size(), 1u);

  // Views from daily jobs live one day (lineage-based expiry).
  cv_.clock()->AdvanceSeconds(kSecondsPerDay + 1);
  EXPECT_GE(cv_.PurgeExpired(), 1u);
  EXPECT_EQ(cv_.metadata()->NumRegisteredViews(), 0u);
  EXPECT_TRUE(cv_.storage()->ListStreams("/views/").empty());
}

TEST_F(CoreTest, GdprRewriteInvalidatesView) {
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();

  WriteDay("2018-01-02");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-02")).ok());

  // A privacy-driven rewrite of the day's input: same name, fresh data
  // version. The stale view must not be reused (Sec 8).
  WriteClickStream(cv_.storage(), "clicks_2018-01-02", 1400, 999,
                   "2018-01-02", /*guid=*/"guid-after-gdpr-scrub");
  auto b = cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-02"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->views_reused, 0);
  // It becomes the builder of the fresh instance instead.
  EXPECT_EQ(b->views_materialized, 1);
}

TEST_F(CoreTest, DisabledCloudViewsIsPureBaseline) {
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();
  WriteDay("2018-01-02");
  auto a = cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-02"),
                      /*enable_cloudviews=*/false);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->views_materialized, 0);
  EXPECT_EQ(cv_.metadata()->NumRegisteredViews(), 0u);
}

TEST_F(CoreTest, StalenessDetection) {
  EXPECT_TRUE(cv_.AnalysisLooksStale());  // nothing loaded yet
  WriteDay("2018-01-01");
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptA, "jobA", "2018-01-01")).ok());
  ASSERT_TRUE(cv_.Submit(ScriptJob(kScriptB, "jobB", "2018-01-01")).ok());
  cv_.RunAnalyzerAndLoad();
  EXPECT_FALSE(cv_.AnalysisLooksStale());

  // A long run of jobs that never hit a view signals workload change.
  for (int i = 0; i < 25; ++i) {
    JobDefinition def;
    def.template_id = "new_workload";
    def.vc = "vc";
    def.user = "u";
    def.logical_plan =
        PlanBuilder::Extract("clicks_{date}", "clicks_2018-01-01",
                             "guid-clicks_2018-01-01",
                             testing_util::ClickSchema())
            .Filter(Gt(Col("latency"), Lit(int64_t{400 + i})))
            .Output("nw_" + std::to_string(i))
            .Build();
    ASSERT_TRUE(cv_.Submit(def).ok());
  }
  EXPECT_TRUE(cv_.AnalysisLooksStale());
}

}  // namespace
}  // namespace cloudviews
