#ifndef CLOUDVIEWS_COMMON_THREAD_ANNOTATIONS_H_
#define CLOUDVIEWS_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis annotations (abseil style). Under clang,
/// `-Wthread-safety` turns locking discipline into compile errors: every
/// member annotated GUARDED_BY may only be touched while its mutex is
/// held, and every function annotated REQUIRES/EXCLUDES is checked at
/// each call site. Under other compilers the macros expand to nothing.
///
/// Use together with common/mutex.h, whose Mutex/MutexLock/CondVar types
/// carry the capability attributes the analysis needs (std::mutex from
/// libstdc++ is not annotated, so it is invisible to the analysis and
/// banned by tools/repo_lint outside common/mutex.h).

#if defined(__clang__) && !defined(SWIG)
#define CV_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CV_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Declares that a class is a lockable capability (e.g. a mutex).
#define CAPABILITY(x) CV_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY CV_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Declares that a data member may only be accessed while holding the
/// given mutex.
#define GUARDED_BY(x) CV_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Declares that the data pointed to by a pointer member may only be
/// accessed while holding the given mutex (the pointer itself is free).
#define PT_GUARDED_BY(x) CV_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares lock acquisition ordering between mutexes (deadlock checks).
#define ACQUIRED_BEFORE(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the given capabilities.
#define REQUIRES(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define ACQUIRE(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller holds.
#define RELEASE(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the given capabilities (the function acquires
/// them itself; prevents self-deadlock).
#define EXCLUDES(...) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (teaches the analysis).
#define ASSERT_CAPABILITY(x) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CV_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) CV_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function is deliberately not analyzed.
#define NO_THREAD_SAFETY_ANALYSIS \
  CV_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CLOUDVIEWS_COMMON_THREAD_ANNOTATIONS_H_
