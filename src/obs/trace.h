#ifndef CLOUDVIEWS_OBS_TRACE_H_
#define CLOUDVIEWS_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cloudviews {
namespace obs {

/// \brief One finished span: a named, timed section of a job's lifecycle
/// with key/value attributes and nested children.
///
/// The span taxonomy this repo emits is documented in DESIGN.md
/// ("Observability"): a `job` root with `metadata_lookup`, `optimize`
/// (containing the optimizer phases), `execute`, and `record` children.
struct SpanRecord {
  std::string name;
  double start_seconds = 0;
  double end_seconds = 0;
  /// Attribute values are pre-rendered to strings (ints exactly, doubles
  /// with %.9g), which keeps the record trivially serializable.
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<SpanRecord>> children;

  /// Depth-first search by name; returns null when absent.
  const SpanRecord* Find(const std::string& span_name) const;
};

class Tracer;

/// \brief RAII handle over a live span. A default-constructed Span is
/// inactive: every operation is a no-op, which lets instrumented code run
/// unchanged when tracing is off.
///
/// Handles may be passed across threads; attribute writes and child
/// creation are serialized per trace. End() is idempotent and runs on
/// destruction. Ending a root span delivers the whole tree to the Tracer.
class Span {
 public:
  Span() = default;
  ~Span() { End(); }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const { return record_ != nullptr; }

  /// Starts a nested span; the child must end before this span ends (spans
  /// still open when their root ends are closed at the root's end time).
  [[nodiscard]] Span StartChild(std::string name);

  void SetAttribute(const std::string& key, const std::string& value);
  void SetAttribute(const std::string& key, const char* value);
  void SetAttribute(const std::string& key, int64_t value);
  void SetAttribute(const std::string& key, uint64_t value);
  void SetAttribute(const std::string& key, double value);
  void SetAttribute(const std::string& key, bool value);

  /// Stamps the end time (first call wins). For a root span, also closes
  /// any still-open descendants and publishes the trace to the tracer.
  void End();

  /// End() + returns the finished tree (root spans only; inactive or
  /// non-root spans return null). The tracer retains the same pointer.
  std::shared_ptr<const SpanRecord> Finish();

 private:
  friend class Tracer;
  struct TraceState;

  Span(std::shared_ptr<TraceState> trace, SpanRecord* record, bool is_root)
      : trace_(std::move(trace)), record_(record), is_root_(is_root) {}

  /// Shared by every handle of one trace; the mutex serializes all tree
  /// mutation for the trace.
  std::shared_ptr<TraceState> trace_;
  SpanRecord* record_ = nullptr;
  bool is_root_ = false;
};

/// \brief Produces spans and retains the most recent finished traces.
///
/// Thread-safe; each StartTrace is independent, so concurrent jobs build
/// disjoint span trees. Retention is bounded (oldest traces drop) so an
/// always-online service does not grow without bound.
class Tracer {
 public:
  /// `clock` null means the process-wide real monotonic clock; tests pass
  /// a FakeMonotonicClock for deterministic span times.
  explicit Tracer(MonotonicClock* clock = nullptr, size_t max_traces = 128)
      : clock_(clock != nullptr ? clock : MonotonicClock::Real()),
        max_traces_(max_traces > 0 ? max_traces : 1) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] Span StartTrace(std::string name);

  /// Finished root spans, oldest first.
  std::vector<std::shared_ptr<const SpanRecord>> FinishedTraces() const
      EXCLUDES(mu_);
  std::shared_ptr<const SpanRecord> LatestTrace() const EXCLUDES(mu_);
  /// Traces evicted by the retention bound since construction/Clear.
  uint64_t dropped_traces() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  MonotonicClock* clock() const { return clock_; }

 private:
  friend class Span;

  void Deliver(std::shared_ptr<const SpanRecord> root) EXCLUDES(mu_);

  MonotonicClock* clock_;
  const size_t max_traces_;
  mutable Mutex mu_;
  std::deque<std::shared_ptr<const SpanRecord>> traces_ GUARDED_BY(mu_);
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_TRACE_H_
