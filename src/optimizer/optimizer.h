#ifndef CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_
#define CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_planner.h"
#include "optimizer/view_interfaces.h"
#include "optimizer/view_rewriter.h"
#include "plan/plan_node.h"

namespace cloudviews {

class MonotonicClock;
namespace obs {
class Span;
}  // namespace obs

struct OptimizerConfig {
  CostModelConfig cost;
  PhysicalPlannerConfig physical;
  /// Logical rewrites (filter pushdown etc.) on/off — ablation knob.
  bool enable_logical_rewrites = true;
  /// Per-job cap on online view materializations; "could be changed by the
  /// user via a job submission parameter" (Sec 6.2).
  int max_materialized_views_per_job = 1;
  /// Skip materializing a view whose estimated write cost exceeds this
  /// fraction of the job's own cost (0 disables the gate). Keeps cheap
  /// jobs from paying for expensive views; a larger job builds them.
  double max_materialize_cost_fraction = 1.0;
  /// Containment matching (tiers 1-3 of the staged CandidateMatcher) on
  /// exact-probe misses — ablation knob; false restores exact-only reuse.
  bool enable_containment_matching = true;
};

/// Everything the optimizer consults for one compilation.
struct OptimizeContext {
  /// Compile-time statistics for input streams; may be null.
  const StorageManager* storage = nullptr;
  /// Prior-run statistics (the feedback loop); may be null.
  const StatsProviderInterface* feedback = nullptr;
  /// Metadata service view; null disables CloudViews entirely.
  ViewCatalogInterface* view_catalog = nullptr;
  /// Annotations relevant to this job, fetched from the metadata service.
  std::vector<ViewAnnotation> annotations;
  uint64_t job_id = 0;
  /// Parent trace span (usually the job's "optimize" stage); when non-null
  /// the optimizer nests one child span per phase under it. Null disables
  /// tracing.
  obs::Span* span = nullptr;
  /// Wall-time source for optimize_seconds; null uses the real clock.
  MonotonicClock* clock = nullptr;
  /// When non-null, Optimize deposits a clone of the logically-rewritten
  /// (pre-physical) tree here — the plan *skeleton* the plan cache stores
  /// so later occurrences of the template skip parse + logical optimize.
  PlanNodePtr* skeleton_out = nullptr;
};

struct OptimizedPlan {
  PlanNodePtr root;
  double estimated_cost = 0;
  int views_reused = 0;
  int views_materialized = 0;
  int reuse_rejected_by_cost = 0;
  int materialize_lock_denied = 0;
  int materialize_skipped_by_cost = 0;
  /// (normalized, precise) signature of every lock-denied materialization
  /// proposal — the work-sharing piggyback layer waits on these builders
  /// and re-optimizes once their views register.
  std::vector<std::pair<Hash128, Hash128>> lock_denied_signatures;
  /// Containment-match funnel (see MatchFunnel); all zeros for exact-only
  /// compiles and for plans served from the plan cache.
  int candidates_filtered = 0;
  int containment_verified = 0;
  int containment_rejected = 0;
  int views_reused_subsumed = 0;
  int compensation_nodes_added = 0;
  /// Wall time spent optimizing (reported in the overheads study, Sec 7.3).
  double optimize_seconds = 0;
};

/// \brief The query optimizer: logical rewrites, physical planning, and the
/// CloudViews reuse / online-materialization tasks (Fig 10).
class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config = {})
      : config_(config),
        cost_model_(config.cost),
        physical_planner_(config.physical) {}

  const OptimizerConfig& config() const { return config_; }

  /// Compiles a logical plan into an executable physical plan. The input
  /// tree is not modified (it is cloned internally). The result is bound
  /// and has node ids assigned.
  Result<OptimizedPlan> Optimize(const PlanNodePtr& logical,
                                 const OptimizeContext& ctx) const;

  /// Recurring-job fast path: compiles a cached logical *skeleton* (already
  /// logically rewritten; `{param}` holes already rebound to the new
  /// instance). Physical planning and the reuse/materialization passes run
  /// fresh against current statistics and the current view catalog, so the
  /// result is identical to a full Optimize of the same instance — only
  /// parse + logical rewrites are skipped (and no `logical_rewrite` span is
  /// emitted). Takes ownership of `skeleton`; pass a private clone.
  Result<OptimizedPlan> OptimizeFromSkeleton(PlanNodePtr skeleton,
                                             const OptimizeContext& ctx) const;

  /// Recurring-job fastest path: finishes a fully optimized physical plan
  /// served from the plan cache — bind, re-annotate costs with current
  /// statistics, assign node ids. No rewrite phases run; the caller has
  /// already validated the plan against the catalog epoch. Takes ownership
  /// of `root`; pass a private clone.
  Result<OptimizedPlan> FinishCachedPlan(PlanNodePtr root,
                                         const OptimizeContext& ctx) const;

 private:
  /// Phases 2..5 shared by Optimize and OptimizeFromSkeleton: physical
  /// planning, the view-reuse pass, and the materialization pass.
  Result<OptimizedPlan> PlanPhysical(PlanNodePtr root,
                                     const OptimizeContext& ctx,
                                     obs::Span* parent, MonotonicClock* clock,
                                     double start) const;

  OptimizerConfig config_;
  CostModel cost_model_;
  PhysicalPlanner physical_planner_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_OPTIMIZER_H_
