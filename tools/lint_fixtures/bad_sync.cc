// Fixture: seeded banned-sync violation (raw std::mutex is invisible to
// clang's thread-safety analysis).
#include <mutex>

int CountUnderRawMutex() {
  static std::mutex mu;
  static int count = 0;
  std::lock_guard<std::mutex> lock(mu);
  return ++count;
}
