#include "runtime/inflight_sharing.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace cloudviews {

InflightSharing::Ticket InflightSharing::Join(const ShareKey& key) {
  Ticket ticket;
  ticket.key = key;
  MutexLock lock(mu_);
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    ticket.role = Role::kLeader;
    ticket.entry = std::make_shared<ShareEntry>();
    pending_.emplace(key, ticket.entry);
  } else {
    ticket.role = Role::kFollower;
    ticket.entry = it->second;
  }
  return ticket;
}

InflightSharing::Outcome InflightSharing::WaitForLeader(
    const Ticket& ticket, double timeout_seconds) {
  // Real wall clock, deliberately: the registry may run under a fake test
  // clock nobody advances, and this deadline is a liveness backstop (a
  // hung leader must not park followers forever), not simulation policy.
  MonotonicClock* real = MonotonicClock::Real();
  const double deadline = real->NowSeconds() + timeout_seconds;
  MutexLock lock(mu_);
  ++ticket.entry->waiters;
  while (!ticket.entry->published) {
    double remaining = deadline - real->NowSeconds();
    if (remaining <= 0) {
      --ticket.entry->waiters;
      Outcome timed_out;
      timed_out.status = Status::Expired(
          "in-flight share wait timed out; running independently");
      return timed_out;
    }
    // Bounded slices so a missed notify can only delay, never hang, us.
    cv_.WaitFor(mu_, std::chrono::duration<double>(std::min(remaining, 0.05)));
  }
  --ticket.entry->waiters;
  return ticket.entry->outcome;
}

size_t InflightSharing::PublishLocked(const Ticket& ticket, Outcome outcome) {
  size_t waiting = 0;
  if (!ticket.entry->published) {
    waiting = ticket.entry->waiters;
    ticket.entry->outcome = std::move(outcome);
    ticket.entry->published = true;
    // Retire the key: submissions arriving from here on start a fresh
    // share instead of adopting a result computed before they existed.
    auto it = pending_.find(ticket.key);
    if (it != pending_.end() && it->second == ticket.entry) {
      pending_.erase(it);
    }
    cv_.NotifyAll();
  }
  return waiting;
}

size_t InflightSharing::PublishSuccess(const Ticket& ticket, Outcome outcome) {
  outcome.ok = true;
  MutexLock lock(mu_);
  return PublishLocked(ticket, std::move(outcome));
}

void InflightSharing::PublishFailure(const Ticket& ticket, Status status) {
  Outcome outcome;
  outcome.ok = false;
  outcome.status = std::move(status);
  MutexLock lock(mu_);
  PublishLocked(ticket, std::move(outcome));
}

size_t InflightSharing::NumPending() const {
  MutexLock lock(mu_);
  return pending_.size();
}

}  // namespace cloudviews
