#ifndef CLOUDVIEWS_OPTIMIZER_VIEW_REWRITER_H_
#define CLOUDVIEWS_OPTIMIZER_VIEW_REWRITER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/view_interfaces.h"
#include "optimizer/view_matcher.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// Annotations indexed by normalized signature for O(1) subgraph matching.
using AnnotationIndex =
    std::unordered_map<Hash128, ViewAnnotation, Hash128Hasher>;

AnnotationIndex IndexAnnotations(const std::vector<ViewAnnotation>& anns);

/// \brief Implements the two view tasks of Fig 10.
///
/// *Reuse* (upper half): top-down, largest-first matching of normalized
/// signatures, precise-signature confirmation against the metadata service,
/// and a cost-based decision to read the materialized view instead of
/// recomputing. *Materialization* (lower half): bottom-up matching,
/// propose-to-materialize locking, and Spool insertion with a per-job
/// limit.
class ViewRewriter {
 public:
  ViewRewriter(const CostModel* cost_model, ViewCatalogInterface* catalog)
      : cost_model_(cost_model), catalog_(catalog) {}

  struct ReuseStats {
    /// All reuses applied: exact (tier 0) plus subsumed (containment).
    int views_reused = 0;
    /// Matches rejected by the cost model (view read too expensive), from
    /// either tier.
    int rejected_by_cost = 0;
    /// Containment-match funnel (tiers 1-3); all zeros when only the exact
    /// tier ran.
    MatchFunnel funnel;
  };

  struct ReuseOptions {
    /// When false only the exact tier-0 hash probe runs (the pre-staged
    /// behavior).
    bool enable_containment = true;
    /// Hosts the lazily-created containment_verify span; may be null.
    obs::Span* parent_span = nullptr;
  };

  /// Replaces matching, already-materialized subgraphs with ViewRead scans:
  /// tier 0 is the exact normalized+precise hash probe; on a miss the
  /// staged CandidateMatcher tries containment with a compensation plan.
  /// The plan must be bound with estimates annotated. Returns the (possibly
  /// new) root; the caller re-binds and repairs physical properties.
  PlanNodePtr ApplyReuse(PlanNodePtr root, const AnnotationIndex& annotations,
                         ReuseStats* stats, const ReuseOptions& options);
  /// Default-options overload (an in-class `= ReuseOptions{}` default would
  /// need the nested type complete at the declaration).
  PlanNodePtr ApplyReuse(PlanNodePtr root, const AnnotationIndex& annotations,
                         ReuseStats* stats) {
    return ApplyReuse(std::move(root), annotations, stats, ReuseOptions{});
  }

  struct MaterializeStats {
    int views_materialized = 0;
    /// Proposals denied because another job holds the build lock or the
    /// view already exists.
    int lock_denied = 0;
    /// (normalized, precise) signature of every denied proposal, in plan
    /// order — the piggyback layer waits on these builders (work sharing).
    std::vector<std::pair<Hash128, Hash128>> lock_denied_sigs;
    /// Matches skipped because writing the view would cost more than
    /// `max_cost_fraction` of this job (a later, larger job builds it).
    int skipped_by_cost = 0;
  };

  /// Wraps matching, not-yet-materialized subgraphs in Spool nodes (after
  /// winning the metadata-service lock). Bottom-up, smaller views first,
  /// at most `max_per_job` spools (Sec 6.2). `job_cost` is the estimated
  /// cost of the whole job; a spool whose write cost exceeds
  /// `max_cost_fraction` of it is skipped (Sec 4: the optimizer may deem a
  /// view too expensive).
  PlanNodePtr ApplyMaterialization(PlanNodePtr root,
                                   const AnnotationIndex& annotations,
                                   uint64_t job_id, int max_per_job,
                                   double job_cost,
                                   double max_cost_fraction,
                                   MaterializeStats* stats);

 private:
  PlanNodePtr ReuseInternal(PlanNodePtr node,
                            const AnnotationIndex& annotations,
                            ReuseStats* stats, CandidateMatcher* matcher,
                            std::vector<const PlanNode*>* ancestors);
  PlanNodePtr MaterializeInternal(PlanNodePtr node,
                                  const AnnotationIndex& annotations,
                                  uint64_t job_id, int max_per_job,
                                  double max_spool_cost, int* budget,
                                  MaterializeStats* stats);

  const CostModel* cost_model_;
  ViewCatalogInterface* catalog_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_VIEW_REWRITER_H_
