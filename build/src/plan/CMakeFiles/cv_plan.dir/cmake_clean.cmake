file(REMOVE_RECURSE
  "CMakeFiles/cv_plan.dir/physical_properties.cc.o"
  "CMakeFiles/cv_plan.dir/physical_properties.cc.o.d"
  "CMakeFiles/cv_plan.dir/plan_builder.cc.o"
  "CMakeFiles/cv_plan.dir/plan_builder.cc.o.d"
  "CMakeFiles/cv_plan.dir/plan_node.cc.o"
  "CMakeFiles/cv_plan.dir/plan_node.cc.o.d"
  "libcv_plan.a"
  "libcv_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
