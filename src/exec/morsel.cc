#include "exec/morsel.h"

namespace cloudviews {

size_t MorselRowCount(const MorselSet& morsels) {
  size_t rows = 0;
  for (const auto& m : morsels) rows += m.num_rows();
  return rows;
}

int64_t MorselByteSize(const MorselSet& morsels) {
  int64_t bytes = 0;
  for (const auto& m : morsels) bytes += m.ByteSize();
  return bytes;
}

std::vector<MorselSlice> PlanMorselSlices(const std::vector<Batch>& batches,
                                          size_t morsel_rows) {
  if (morsel_rows == 0) morsel_rows = 1;
  std::vector<MorselSlice> slices;
  for (size_t b = 0; b < batches.size(); ++b) {
    size_t rows = batches[b].num_rows();
    for (size_t begin = 0; begin < rows; begin += morsel_rows) {
      slices.push_back({b, begin, std::min(begin + morsel_rows, rows)});
    }
  }
  return slices;
}

Batch MaterializeSlice(const Batch& src, size_t begin, size_t end) {
  Batch out(src.schema());
  out.AppendRowsFrom(src, begin, end);
  return out;
}

MorselSet ChunkBatch(Batch data, size_t morsel_rows) {
  MorselSet out;
  size_t rows = data.num_rows();
  if (rows == 0) return out;
  if (morsel_rows == 0 || rows <= morsel_rows) {
    out.push_back(std::move(data));
    return out;
  }
  for (size_t begin = 0; begin < rows; begin += morsel_rows) {
    out.push_back(
        MaterializeSlice(data, begin, std::min(begin + morsel_rows, rows)));
  }
  return out;
}

}  // namespace cloudviews
