#ifndef CLOUDVIEWS_EXPR_FUNCTION_REGISTRY_H_
#define CLOUDVIEWS_EXPR_FUNCTION_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace cloudviews {

/// Implementation of a builtin scalar function over already-evaluated
/// argument values.
using ScalarFunction = std::function<Value(const std::vector<Value>&)>;

/// Signature of a builtin: infers the output type from argument types, or
/// errors for unsupported argument types/arity.
using TypeInferenceFn =
    std::function<Result<DataType>(const std::vector<DataType>&)>;

struct FunctionEntry {
  ScalarFunction fn;
  TypeInferenceFn infer;
};

/// \brief Catalog of builtin scalar functions (year, month, substr, lower,
/// concat, abs, round, strlen, hash64, if, ...).
///
/// Builtins are engine code: unlike UDFs they carry no library version and
/// hash only by name in signatures.
class FunctionRegistry {
 public:
  /// Process-wide registry populated with the builtins on first use.
  static FunctionRegistry* Global();

  void Register(const std::string& name, FunctionEntry entry);
  bool Contains(const std::string& name) const;
  Result<const FunctionEntry*> Lookup(const std::string& name) const;

  std::vector<std::string> FunctionNames() const;

 private:
  FunctionRegistry();

  std::unordered_map<std::string, FunctionEntry> entries_;
};

/// \brief Catalog of user-defined scalar functions with library provenance.
///
/// Re-registering the same name with a different version models a library
/// republish; precise signatures change and stale views stop matching.
class UdfRegistry {
 public:
  static UdfRegistry* Global();

  struct UdfEntry {
    ScalarFunction fn;
    DataType output_type;
    std::string library;
    std::string version;
  };

  void Register(const std::string& name, UdfEntry entry);
  Result<const UdfEntry*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  std::unordered_map<std::string, UdfEntry> entries_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXPR_FUNCTION_REGISTRY_H_
