#include "common/random.h"
#include "common/string_util.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace tpcds {

Schema DateDimSchema() {
  return Schema({{"d_date_sk", DataType::kInt64},
                 {"d_date", DataType::kDate},
                 {"d_year", DataType::kInt64},
                 {"d_moy", DataType::kInt64},
                 {"d_qoy", DataType::kInt64},
                 {"d_dow", DataType::kInt64}});
}

Schema ItemSchema() {
  return Schema({{"i_item_sk", DataType::kInt64},
                 {"i_category", DataType::kString},
                 {"i_brand", DataType::kString},
                 {"i_class", DataType::kString},
                 {"i_current_price", DataType::kDouble}});
}

Schema CustomerSchema() {
  return Schema({{"c_customer_sk", DataType::kInt64},
                 {"c_state", DataType::kString},
                 {"c_birth_year", DataType::kInt64},
                 {"c_preferred", DataType::kBool}});
}

Schema StoreSchema() {
  return Schema({{"s_store_sk", DataType::kInt64},
                 {"s_state", DataType::kString},
                 {"s_city", DataType::kString}});
}

Schema PromotionSchema() {
  return Schema({{"p_promo_sk", DataType::kInt64},
                 {"p_channel", DataType::kString},
                 {"p_cost", DataType::kDouble}});
}

Schema StoreSalesSchema() {
  return Schema({{"ss_sold_date_sk", DataType::kInt64},
                 {"ss_item_sk", DataType::kInt64},
                 {"ss_customer_sk", DataType::kInt64},
                 {"ss_store_sk", DataType::kInt64},
                 {"ss_promo_sk", DataType::kInt64},
                 {"ss_quantity", DataType::kInt64},
                 {"ss_sales_price", DataType::kDouble},
                 {"ss_net_profit", DataType::kDouble}});
}

Schema WebSalesSchema() {
  return Schema({{"ws_sold_date_sk", DataType::kInt64},
                 {"ws_item_sk", DataType::kInt64},
                 {"ws_customer_sk", DataType::kInt64},
                 {"ws_promo_sk", DataType::kInt64},
                 {"ws_quantity", DataType::kInt64},
                 {"ws_sales_price", DataType::kDouble},
                 {"ws_net_profit", DataType::kDouble}});
}

Schema CatalogSalesSchema() {
  return Schema({{"cs_sold_date_sk", DataType::kInt64},
                 {"cs_item_sk", DataType::kInt64},
                 {"cs_customer_sk", DataType::kInt64},
                 {"cs_promo_sk", DataType::kInt64},
                 {"cs_quantity", DataType::kInt64},
                 {"cs_sales_price", DataType::kDouble},
                 {"cs_net_profit", DataType::kDouble}});
}

std::string TableStream(const std::string& table) {
  return "tpcds_" + table;
}

TpcdsGenerator::TpcdsGenerator(TpcdsOptions options) : options_(options) {}

namespace {

Status Write(StorageManager* storage, const std::string& table,
             const Schema& schema, Batch batch) {
  std::string name = TableStream(table);
  return storage->WriteStream(MakeStreamData(name, "guid-" + name, schema,
                                             {std::move(batch)},
                                             storage->clock()->Now()));
}

}  // namespace

Status TpcdsGenerator::WriteTables(StorageManager* storage) const {
  Rng rng(options_.seed);
  static const char* kCategories[] = {"Books", "Electronics", "Home",
                                      "Sports", "Music", "Shoes", "Jewelry",
                                      "Women", "Men", "Children"};
  static const char* kStates[] = {"CA", "TX", "WA", "NY", "FL",
                                  "GA", "IL", "OH", "MI", "NC"};
  static const char* kChannels[] = {"mail", "web", "tv", "radio", "event"};

  // date_dim
  {
    Batch b(DateDimSchema());
    int64_t day0 = 0;
    ParseDate(StrFormat("%04d-01-01", options_.start_year), &day0);
    for (int d = 0; d < options_.num_days; ++d) {
      int64_t day = day0 + d;
      std::string iso = FormatDate(day);
      int y, m, dd;
      std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &dd);
      CV_RETURN_NOT_OK(b.AppendRow(
          {Value::Int64(d + 1), Value::Date(day), Value::Int64(y),
           Value::Int64(m), Value::Int64((m - 1) / 3 + 1),
           Value::Int64((day + 4) % 7)}));
    }
    CV_RETURN_NOT_OK(Write(storage, "date_dim", DateDimSchema(), std::move(b)));
  }

  // item
  {
    Batch b(ItemSchema());
    for (size_t i = 0; i < options_.items; ++i) {
      CV_RETURN_NOT_OK(b.AppendRow(
          {Value::Int64(static_cast<int64_t>(i + 1)),
           Value::String(kCategories[i % 10]),
           Value::String(StrFormat("brand#%zu", i % 25)),
           Value::String(StrFormat("class#%zu", i % 7)),
           Value::Double(1.0 + rng.NextDouble() * 99.0)}));
    }
    CV_RETURN_NOT_OK(Write(storage, "item", ItemSchema(), std::move(b)));
  }

  // customer
  {
    Batch b(CustomerSchema());
    for (size_t i = 0; i < options_.customers; ++i) {
      CV_RETURN_NOT_OK(b.AppendRow(
          {Value::Int64(static_cast<int64_t>(i + 1)),
           Value::String(kStates[rng.Uniform(10)]),
           Value::Int64(1940 + static_cast<int64_t>(rng.Uniform(60))),
           Value::Bool(rng.Bernoulli(0.3))}));
    }
    CV_RETURN_NOT_OK(
        Write(storage, "customer", CustomerSchema(), std::move(b)));
  }

  // store
  {
    Batch b(StoreSchema());
    for (size_t i = 0; i < options_.stores; ++i) {
      CV_RETURN_NOT_OK(b.AppendRow(
          {Value::Int64(static_cast<int64_t>(i + 1)),
           Value::String(kStates[i % 10]),
           Value::String(StrFormat("city#%zu", i))}));
    }
    CV_RETURN_NOT_OK(Write(storage, "store", StoreSchema(), std::move(b)));
  }

  // promotion
  {
    Batch b(PromotionSchema());
    for (size_t i = 0; i < options_.promotions; ++i) {
      CV_RETURN_NOT_OK(
          b.AppendRow({Value::Int64(static_cast<int64_t>(i + 1)),
                       Value::String(kChannels[i % 5]),
                       Value::Double(rng.NextDouble() * 1000.0)}));
    }
    CV_RETURN_NOT_OK(
        Write(storage, "promotion", PromotionSchema(), std::move(b)));
  }

  // Sales facts: skewed towards recent dates and popular items.
  ZipfGenerator item_zipf(options_.items, 0.8);
  auto fact_row = [&](Batch* b, bool with_store) -> Status {
    int64_t date_sk =
        1 + static_cast<int64_t>(rng.Uniform(
                static_cast<uint64_t>(options_.num_days)));
    int64_t item_sk = static_cast<int64_t>(item_zipf.Sample(&rng)) + 1;
    int64_t cust_sk =
        1 + static_cast<int64_t>(rng.Uniform(options_.customers));
    int64_t promo_sk =
        1 + static_cast<int64_t>(rng.Uniform(options_.promotions));
    int64_t qty = 1 + static_cast<int64_t>(rng.Uniform(20));
    double price = 1.0 + rng.NextDouble() * 150.0;
    double profit = price * (rng.NextDouble() * 0.4 - 0.05);
    if (with_store) {
      int64_t store_sk =
          1 + static_cast<int64_t>(rng.Uniform(options_.stores));
      return b->AppendRow({Value::Int64(date_sk), Value::Int64(item_sk),
                           Value::Int64(cust_sk), Value::Int64(store_sk),
                           Value::Int64(promo_sk), Value::Int64(qty),
                           Value::Double(price), Value::Double(profit)});
    }
    return b->AppendRow({Value::Int64(date_sk), Value::Int64(item_sk),
                         Value::Int64(cust_sk), Value::Int64(promo_sk),
                         Value::Int64(qty), Value::Double(price),
                         Value::Double(profit)});
  };

  {
    Batch b(StoreSalesSchema());
    for (size_t i = 0; i < options_.store_sales_rows; ++i) {
      CV_RETURN_NOT_OK(fact_row(&b, true));
    }
    CV_RETURN_NOT_OK(
        Write(storage, "store_sales", StoreSalesSchema(), std::move(b)));
  }
  {
    Batch b(WebSalesSchema());
    for (size_t i = 0; i < options_.web_sales_rows; ++i) {
      CV_RETURN_NOT_OK(fact_row(&b, false));
    }
    CV_RETURN_NOT_OK(
        Write(storage, "web_sales", WebSalesSchema(), std::move(b)));
  }
  {
    Batch b(CatalogSalesSchema());
    for (size_t i = 0; i < options_.catalog_sales_rows; ++i) {
      CV_RETURN_NOT_OK(fact_row(&b, false));
    }
    CV_RETURN_NOT_OK(
        Write(storage, "catalog_sales", CatalogSalesSchema(), std::move(b)));
  }
  return Status::OK();
}

}  // namespace tpcds
}  // namespace cloudviews
