// Fixture: seeded banned-clock violations (ad-hoc clock reads make timing
// untestable; route wall time through cloudviews::MonotonicClock).
#include <chrono>

double AdHocNow() {
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::system_clock::now();
  auto c = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double>(a.time_since_epoch()).count() +
         std::chrono::duration<double>(b.time_since_epoch()).count() +
         std::chrono::duration<double>(c.time_since_epoch()).count();
}
