file(REMOVE_RECURSE
  "libcv_storage.a"
)
