#include "exec/physical_operator.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/guid.h"
#include "exec/batch_ops.h"
#include "exec/processor_registry.h"
#include "fault/backoff.h"
#include "fault/fault_injector.h"
#include "expr/aggregate.h"

namespace cloudviews {

namespace {

/// Reference to one row of a morsel set.
struct RowRef {
  uint32_t morsel = 0;
  uint32_t row = 0;
};

// ---------------------------------------------------------------------------
// Extract / ViewRead: storage scans re-chunked into morsels. Slices are
// planned sequentially in Open; materializing each slice is the parallel
// morsel work.
// ---------------------------------------------------------------------------

class ExtractOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* extract = static_cast<ExtractNode*>(node_);
    CV_ASSIGN_OR_RETURN(stream_,
                        ctx.exec->storage->OpenStream(extract->stream_name()));
    if (!(stream_->schema == extract->output_schema())) {
      return Status::TypeError("stream '" + extract->stream_name() +
                               "' schema does not match EXTRACT declaration");
    }
    slices_ = PlanMorselSlices(stream_->batches, ctx.morsel_rows);
    out_.resize(slices_.size());
    return Status::OK();
  }

  size_t NumMorsels(size_t) const override { return slices_.size(); }

  Status ProcessMorsel(OperatorContext&, size_t, size_t m) override {
    const MorselSlice& s = slices_[m];
    out_[m] = MaterializeSlice(stream_->batches[s.batch], s.begin, s.end);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    return std::move(out_);
  }

 private:
  StreamHandle stream_;
  std::vector<MorselSlice> slices_;
  MorselSet out_;
};

class ViewReadOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* view = static_cast<ViewReadNode*>(node_);
    // A view read is an optimization, never a correctness dependency:
    // retry transient failures, then surface kViewUnavailable so the job
    // manager falls back to the original (non-rewritten) plan instead of
    // failing the job (the ReStore principle; see DESIGN.md).
    Status open = fault::RetryWithBackoff(
        ctx.exec->retry,
        [&]() -> Status {
          auto r = ctx.exec->storage->OpenStream(view->view_path());
          if (!r.ok()) return r.status();
          stream_ = std::move(r).ValueOrDie();
          return Status::OK();
        },
        ctx.exec->sleeper);
    if (!open.ok()) {
      return Status::ViewUnavailable("view '" + view->view_path() +
                                     "' could not be read: " +
                                     open.ToString());
    }
    // The view's partitions are each sorted per its design; the node
    // advertises that order, so restore it globally across partitions
    // (the k-way merge a distributed reader performs).
    need_sort_ = stream_->props.sort_order.IsSorted() &&
                 stream_->batches.size() > 1;
    if (!need_sort_) {
      slices_ = PlanMorselSlices(stream_->batches, ctx.morsel_rows);
      out_.resize(slices_.size());
    }
    return Status::OK();
  }

  size_t NumMorsels(size_t) const override { return slices_.size(); }

  Status ProcessMorsel(OperatorContext&, size_t, size_t m) override {
    const MorselSlice& s = slices_[m];
    out_[m] = MaterializeSlice(stream_->batches[s.batch], s.begin, s.end);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext& ctx) override {
    if (!need_sort_) return std::move(out_);
    Batch combined = CombineBatches(stream_->schema, stream_->batches);
    return ChunkBatch(SortBatch(combined, stream_->props.sort_order.keys),
                      ctx.morsel_rows);
  }

 private:
  StreamHandle stream_;
  bool need_sort_ = false;
  std::vector<MorselSlice> slices_;
  MorselSet out_;
};

// ---------------------------------------------------------------------------
// Filter / Project: embarrassingly parallel per morsel; outputs keep the
// input morsel order, so concatenation equals the single-threaded result.
// ---------------------------------------------------------------------------

class FilterOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    out_.resize(inputs_[0].size());
    return Status::OK();
  }

  size_t NumMorsels(size_t) const override { return inputs_[0].size(); }

  Status ProcessMorsel(OperatorContext&, size_t, size_t m) override {
    auto* filter = static_cast<FilterNode*>(node_);
    const Batch& in = inputs_[0][m];
    Column pred(DataType::kBool);
    CV_RETURN_NOT_OK(filter->predicate()->Evaluate(in, &pred));
    Batch out(in.schema());
    for (size_t r = 0; r < in.num_rows(); ++r) {
      if (!pred.IsNull(r) && pred.bool_data()[r] != 0) {
        out.AppendRowFrom(in, r);
      }
    }
    out_[m] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    MorselSet result;
    for (auto& m : out_) {
      if (m.num_rows() > 0) result.push_back(std::move(m));
    }
    return result;
  }

 private:
  MorselSet out_;
};

class ProjectOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    out_.resize(inputs_[0].size());
    return Status::OK();
  }

  size_t NumMorsels(size_t) const override { return inputs_[0].size(); }

  Status ProcessMorsel(OperatorContext&, size_t, size_t m) override {
    auto* project = static_cast<ProjectNode*>(node_);
    const Batch& in = inputs_[0][m];
    Batch out(node_->output_schema());
    for (size_t e = 0; e < project->exprs().size(); ++e) {
      Column col(node_->output_schema().field(e).type);
      CV_RETURN_NOT_OK(project->exprs()[e].expr->Evaluate(in, &col));
      out.column(e) = std::move(col);
    }
    out_[m] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    MorselSet result;
    for (auto& m : out_) {
      if (m.num_rows() > 0) result.push_back(std::move(m));
    }
    return result;
  }

 private:
  MorselSet out_;
};

// ---------------------------------------------------------------------------
// Join. Hash join: phase 0 hashes build-side keys per morsel (parallel),
// the build table is then filled in right-row order (sequential, so match
// lists keep the single-threaded order), phase 1 probes left morsels in
// parallel. Merge join stays sequential in Close.
// ---------------------------------------------------------------------------

class JoinOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* join = static_cast<JoinNode*>(node_);
    CV_ASSIGN_OR_RETURN(lcols_,
                        ResolveColumns(InputSchema(0), join->LeftKeys()));
    CV_ASSIGN_OR_RETURN(rcols_,
                        ResolveColumns(InputSchema(1), join->RightKeys()));
    merge_ = join->algorithm() == JoinAlgorithm::kMerge;
    if (merge_) {
      if (join->join_type() != JoinType::kInner) {
        return Status::Unimplemented("merge join supports INNER only");
      }
    } else {
      right_keys_.resize(inputs_[1].size());
      probe_out_.resize(inputs_[0].size());
    }
    return Status::OK();
  }

  size_t num_phases() const override { return merge_ ? 1 : 2; }

  size_t NumMorsels(size_t phase) const override {
    if (merge_) return 0;
    return phase == 0 ? inputs_[1].size() : inputs_[0].size();
  }

  Status PreparePhase(OperatorContext&, size_t phase) override {
    if (merge_ || phase != 1) return Status::OK();
    size_t total = 0;
    for (const auto& keys : right_keys_) total += keys.size();
    table_.reserve(total);
    for (size_t m = 0; m < right_keys_.size(); ++m) {
      for (size_t r = 0; r < right_keys_[m].size(); ++r) {
        table_[right_keys_[m][r]].push_back(
            {static_cast<uint32_t>(m), static_cast<uint32_t>(r)});
      }
    }
    return Status::OK();
  }

  Status ProcessMorsel(OperatorContext&, size_t phase, size_t m) override {
    if (phase == 0) {
      const Batch& right = inputs_[1][m];
      std::vector<Hash128> keys;
      keys.reserve(right.num_rows());
      for (size_t r = 0; r < right.num_rows(); ++r) {
        keys.push_back(RowKey(right, r, rcols_));
      }
      right_keys_[m] = std::move(keys);
      return Status::OK();
    }
    auto* join = static_cast<JoinNode*>(node_);
    const Batch& left = inputs_[0][m];
    Batch out(node_->output_schema());
    auto emit = [&](size_t lr, const RowRef& ref) {
      const Batch& right = inputs_[1][ref.morsel];
      size_t c = 0;
      for (size_t i = 0; i < left.num_columns(); ++i, ++c) {
        out.column(c).AppendFrom(left.column(i), lr);
      }
      for (size_t i = 0; i < right.num_columns(); ++i, ++c) {
        out.column(c).AppendFrom(right.column(i), ref.row);
      }
    };
    auto emit_left_only = [&](size_t lr) {
      size_t c = 0;
      for (size_t i = 0; i < left.num_columns(); ++i, ++c) {
        out.column(c).AppendFrom(left.column(i), lr);
      }
      for (size_t i = c; i < out.num_columns(); ++i) {
        out.column(i).AppendNull();
      }
    };
    for (size_t l = 0; l < left.num_rows(); ++l) {
      auto it = table_.find(RowKey(left, l, lcols_));
      if (it != table_.end()) {
        for (const RowRef& ref : it->second) emit(l, ref);
      } else if (join->join_type() == JoinType::kLeftOuter) {
        emit_left_only(l);
      }
    }
    probe_out_[m] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext& ctx) override {
    if (!merge_) {
      MorselSet result;
      for (auto& m : probe_out_) {
        if (m.num_rows() > 0) result.push_back(std::move(m));
      }
      return result;
    }
    // Merge join over inputs sorted on the keys (enforced by the
    // optimizer); kept sequential.
    Batch left = CombineBatches(InputSchema(0), inputs_[0]);
    Batch right = CombineBatches(InputSchema(1), inputs_[1]);
    Batch out(node_->output_schema());
    auto emit = [&](size_t lr, size_t rr) {
      size_t c = 0;
      for (size_t i = 0; i < left.num_columns(); ++i, ++c) {
        out.column(c).AppendFrom(left.column(i), lr);
      }
      for (size_t i = 0; i < right.num_columns(); ++i, ++c) {
        out.column(c).AppendFrom(right.column(i), rr);
      }
    };
    auto key_cmp = [&](size_t lr, size_t rr) {
      return CompareRowsOnColumns(left, lr, lcols_, right, rr, rcols_);
    };
    size_t li = 0, ri = 0;
    while (li < left.num_rows() && ri < right.num_rows()) {
      int cmp = key_cmp(li, ri);
      if (cmp < 0) {
        ++li;
      } else if (cmp > 0) {
        ++ri;
      } else {
        // Duplicate groups on both sides.
        size_t lend = li + 1;
        while (lend < left.num_rows() && key_cmp(lend, ri) == 0) ++lend;
        size_t rend = ri + 1;
        while (rend < right.num_rows() && key_cmp(li, rend) == 0) ++rend;
        for (size_t a = li; a < lend; ++a) {
          for (size_t b = ri; b < rend; ++b) emit(a, b);
        }
        li = lend;
        ri = rend;
      }
    }
    return ChunkBatch(std::move(out), ctx.morsel_rows);
  }

 private:
  std::vector<int> lcols_;
  std::vector<int> rcols_;
  bool merge_ = false;
  std::vector<std::vector<Hash128>> right_keys_;
  std::unordered_map<Hash128, std::vector<RowRef>, Hash128Hasher> table_;
  MorselSet probe_out_;
};

// ---------------------------------------------------------------------------
// Aggregate. The parallel phase only *precomputes*: argument columns, key
// hashes, per-morsel group discovery, sort-boundary flags. Close then
// updates the accumulator states in exact global row order, so every sum
// (including floating point) is bit-identical to the single-threaded
// engine, and the group output order is the global first-occurrence order.
// ---------------------------------------------------------------------------

class AggregateOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    agg_ = static_cast<AggregateNode*>(node_);
    if (agg_->group_keys().empty()) {
      mode_ = Mode::kGlobal;
    } else {
      CV_ASSIGN_OR_RETURN(gcols_,
                          ResolveColumns(InputSchema(0), agg_->group_keys()));
      mode_ = agg_->algorithm() == AggAlgorithm::kStream ? Mode::kStream
                                                         : Mode::kHash;
    }
    pre_.resize(inputs_[0].size());
    return Status::OK();
  }

  size_t NumMorsels(size_t) const override { return inputs_[0].size(); }

  Status ProcessMorsel(OperatorContext&, size_t, size_t m) override {
    const Batch& in = inputs_[0][m];
    MorselPre& pre = pre_[m];
    // Pre-evaluate aggregate arguments over this morsel.
    for (const auto& spec : agg_->aggregates()) {
      if (spec.arg) {
        Column col(spec.arg->output_type());
        CV_RETURN_NOT_OK(spec.arg->Evaluate(in, &col));
        pre.arg_cols.push_back(std::move(col));
      } else {
        pre.arg_cols.emplace_back(DataType::kInt64);  // placeholder
      }
    }
    if (mode_ == Mode::kHash) {
      pre.local_id.resize(in.num_rows());
      std::unordered_map<Hash128, uint32_t, Hash128Hasher> index;
      index.reserve(in.num_rows());
      for (size_t r = 0; r < in.num_rows(); ++r) {
        Hash128 key = RowKey(in, r, gcols_);
        auto [it, inserted] =
            index.emplace(key, static_cast<uint32_t>(pre.local_groups.size()));
        if (inserted) {
          pre.local_groups.push_back({key, static_cast<uint32_t>(r)});
        }
        pre.local_id[r] = it->second;
      }
    } else if (mode_ == Mode::kStream) {
      // Row r starts a new group iff it differs from row r-1; the r == 0
      // flag is resolved against the previous morsel's last row in Close.
      pre.new_group.resize(in.num_rows());
      for (size_t r = 1; r < in.num_rows(); ++r) {
        pre.new_group[r] =
            CompareRowsOnColumns(in, r - 1, gcols_, in, r, gcols_) != 0;
      }
    }
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    struct Group {
      size_t morsel;
      size_t row;  // first occurrence: representative for the key columns
      std::vector<AggState> states;
    };
    auto make_states = [&]() {
      std::vector<AggState> states;
      for (const auto& spec : agg_->aggregates()) {
        states.emplace_back(spec.func);
      }
      return states;
    };
    auto update = [&](Group* g, size_t m, size_t r) {
      for (size_t a = 0; a < agg_->aggregates().size(); ++a) {
        if (agg_->aggregates()[a].arg) {
          g->states[a].Update(pre_[m].arg_cols[a].GetValue(r));
        } else {
          g->states[a].UpdateCountStar();
        }
      }
    };

    const MorselSet& in = inputs_[0];
    std::vector<Group> groups;
    switch (mode_) {
      case Mode::kGlobal: {
        groups.push_back({0, 0, make_states()});
        for (size_t m = 0; m < in.size(); ++m) {
          for (size_t r = 0; r < in[m].num_rows(); ++r) {
            update(&groups[0], m, r);
          }
        }
        break;
      }
      case Mode::kHash: {
        std::unordered_map<Hash128, size_t, Hash128Hasher> index;
        for (size_t m = 0; m < in.size(); ++m) {
          const MorselPre& pre = pre_[m];
          // Map this morsel's local groups to global ids; new keys keep
          // their local first-occurrence order, which is the global one.
          std::vector<size_t> local_to_global(pre.local_groups.size());
          for (size_t j = 0; j < pre.local_groups.size(); ++j) {
            auto [it, inserted] =
                index.emplace(pre.local_groups[j].first, groups.size());
            if (inserted) {
              groups.push_back(
                  {m, static_cast<size_t>(pre.local_groups[j].second),
                   make_states()});
            }
            local_to_global[j] = it->second;
          }
          for (size_t r = 0; r < in[m].num_rows(); ++r) {
            update(&groups[local_to_global[pre.local_id[r]]], m, r);
          }
        }
        break;
      }
      case Mode::kStream: {
        bool have_prev = false;
        size_t pm = 0, pr = 0;
        for (size_t m = 0; m < in.size(); ++m) {
          for (size_t r = 0; r < in[m].num_rows(); ++r) {
            bool starts_group;
            if (r == 0) {
              starts_group = !have_prev ||
                             CompareRowsOnColumns(in[pm], pr, gcols_, in[m],
                                                  r, gcols_) != 0;
            } else {
              starts_group = pre_[m].new_group[r] != 0;
            }
            if (starts_group) groups.push_back({m, r, make_states()});
            update(&groups.back(), m, r);
            have_prev = true;
            pm = m;
            pr = r;
          }
        }
        break;
      }
    }

    Batch out(node_->output_schema());
    // Empty input with group keys yields no rows; without keys it yields
    // the single global group (already created above).
    for (const auto& g : groups) {
      size_t c = 0;
      for (int gc : gcols_) {
        out.column(c++).AppendFrom(
            in[g.morsel].column(static_cast<size_t>(gc)), g.row);
      }
      for (size_t a = 0; a < agg_->aggregates().size(); ++a) {
        out.column(c).AppendValue(
            g.states[a].Finish(node_->output_schema().field(c).type));
        ++c;
      }
    }
    MorselSet result;
    if (out.num_rows() > 0) result.push_back(std::move(out));
    return result;
  }

 private:
  enum class Mode { kGlobal, kHash, kStream };
  struct MorselPre {
    std::vector<Column> arg_cols;
    std::vector<uint32_t> local_id;
    std::vector<std::pair<Hash128, uint32_t>> local_groups;
    std::vector<uint8_t> new_group;
  };

  AggregateNode* agg_ = nullptr;
  Mode mode_ = Mode::kGlobal;
  std::vector<int> gcols_;
  std::vector<MorselPre> pre_;
};

// ---------------------------------------------------------------------------
// Sort. Phase 0 stable-sorts every morsel in parallel; the sorted runs are
// then merged sequentially with ties broken by morsel index — exactly the
// permutation std::stable_sort produces on the concatenated input — and
// phase 1 gathers the output chunks in parallel.
// ---------------------------------------------------------------------------

class SortOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* sort = static_cast<SortNode*>(node_);
    keys_ = ResolveSortKeys(InputSchema(0), sort->keys());
    orders_.resize(inputs_[0].size());
    return Status::OK();
  }

  size_t num_phases() const override { return 2; }

  size_t NumMorsels(size_t phase) const override {
    return phase == 0 ? inputs_[0].size() : chunks_;
  }

  Status PreparePhase(OperatorContext& ctx, size_t phase) override {
    if (phase != 1) return Status::OK();
    const MorselSet& in = inputs_[0];
    size_t total = MorselRowCount(in);
    global_.reserve(total);
    if (in.size() == 1) {
      for (size_t r : orders_[0]) {
        global_.push_back({0, static_cast<uint32_t>(r)});
      }
    } else if (in.size() > 1) {
      // K-way merge of the sorted runs; on equal keys the lower morsel
      // index wins, preserving stability.
      struct Cursor {
        size_t morsel;
        size_t pos;
      };
      auto after = [&](const Cursor& a, const Cursor& b) {
        int cmp = CompareRowsSorted(in[a.morsel], orders_[a.morsel][a.pos],
                                    in[b.morsel], orders_[b.morsel][b.pos],
                                    keys_);
        if (cmp != 0) return cmp > 0;
        return a.morsel > b.morsel;
      };
      std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
          after);
      for (size_t m = 0; m < in.size(); ++m) {
        if (!orders_[m].empty()) heap.push({m, 0});
      }
      while (!heap.empty()) {
        Cursor c = heap.top();
        heap.pop();
        global_.push_back({static_cast<uint32_t>(c.morsel),
                           static_cast<uint32_t>(orders_[c.morsel][c.pos])});
        if (++c.pos < orders_[c.morsel].size()) heap.push(c);
      }
    }
    chunks_ = (total + ctx.morsel_rows - 1) / ctx.morsel_rows;
    out_.resize(chunks_);
    return Status::OK();
  }

  Status ProcessMorsel(OperatorContext& ctx, size_t phase,
                       size_t m) override {
    if (phase == 0) {
      orders_[m] = StableSortOrder(inputs_[0][m], keys_);
      return Status::OK();
    }
    Batch out(InputSchema(0));
    size_t begin = m * ctx.morsel_rows;
    size_t end = std::min(begin + ctx.morsel_rows, global_.size());
    for (size_t i = begin; i < end; ++i) {
      out.AppendRowFrom(inputs_[0][global_[i].morsel], global_[i].row);
    }
    out_[m] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    return std::move(out_);
  }

 private:
  ResolvedSortKeys keys_;
  std::vector<std::vector<size_t>> orders_;
  std::vector<RowRef> global_;
  size_t chunks_ = 0;
  MorselSet out_;
};

// ---------------------------------------------------------------------------
// Exchange. Hash partitioning hashes rows per morsel in parallel, then each
// partition gathers its rows — in global row order — in parallel across
// partitions; the output is the partitions concatenated in partition order,
// matching PartitionBatch + CombineBatches.
// ---------------------------------------------------------------------------

class ExchangeOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* exchange = static_cast<ExchangeNode*>(node_);
    const Partitioning& p = exchange->partitioning();
    scheme_ = p.scheme;
    count_ = p.partition_count > 0 ? static_cast<size_t>(p.partition_count)
                                   : 1;
    switch (scheme_) {
      case PartitionScheme::kAny:
      case PartitionScheme::kSingleton:
      case PartitionScheme::kRange:
        break;
      case PartitionScheme::kHash: {
        CV_ASSIGN_OR_RETURN(cols_, ResolveColumns(InputSchema(0), p.columns));
        pids_.resize(inputs_[0].size());
        parts_.resize(count_);
        break;
      }
      case PartitionScheme::kRoundRobin: {
        offsets_.resize(inputs_[0].size());
        size_t off = 0;
        for (size_t m = 0; m < inputs_[0].size(); ++m) {
          offsets_[m] = off;
          off += inputs_[0][m].num_rows();
        }
        parts_.resize(count_);
        break;
      }
    }
    return Status::OK();
  }

  size_t num_phases() const override {
    return scheme_ == PartitionScheme::kHash ? 2 : 1;
  }

  size_t NumMorsels(size_t phase) const override {
    switch (scheme_) {
      case PartitionScheme::kHash:
        return phase == 0 ? inputs_[0].size() : count_;
      case PartitionScheme::kRoundRobin:
        return count_;
      default:
        return 0;
    }
  }

  Status ProcessMorsel(OperatorContext&, size_t phase, size_t m) override {
    if (scheme_ == PartitionScheme::kHash && phase == 0) {
      const Batch& in = inputs_[0][m];
      std::vector<uint32_t> pids(in.num_rows());
      for (size_t r = 0; r < in.num_rows(); ++r) {
        pids[r] = static_cast<uint32_t>(RowKey(in, r, cols_).lo %
                                        static_cast<uint64_t>(count_));
      }
      pids_[m] = std::move(pids);
      return Status::OK();
    }
    // Gather partition m's rows in global row order.
    Batch out(InputSchema(0));
    for (size_t mi = 0; mi < inputs_[0].size(); ++mi) {
      const Batch& in = inputs_[0][mi];
      for (size_t r = 0; r < in.num_rows(); ++r) {
        size_t pid = scheme_ == PartitionScheme::kHash
                         ? pids_[mi][r]
                         : (offsets_[mi] + r) % count_;
        if (pid == m) out.AppendRowFrom(in, r);
      }
    }
    parts_[m] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext& ctx) override {
    switch (scheme_) {
      case PartitionScheme::kAny:
      case PartitionScheme::kSingleton:
        return std::move(inputs_[0]);
      case PartitionScheme::kRange: {
        // Approximate range partitioning cuts the sorted input into equal
        // runs; concatenated back, that is exactly the sorted input.
        auto* exchange = static_cast<ExchangeNode*>(node_);
        std::vector<SortKey> keys;
        for (const auto& c : exchange->partitioning().columns) {
          keys.push_back({c, true});
        }
        Batch combined = CombineBatches(InputSchema(0), inputs_[0]);
        return ChunkBatch(SortBatch(combined, keys), ctx.morsel_rows);
      }
      default: {
        MorselSet result;
        for (auto& p : parts_) {
          if (p.num_rows() > 0) result.push_back(std::move(p));
        }
        return result;
      }
    }
  }

 private:
  PartitionScheme scheme_ = PartitionScheme::kAny;
  size_t count_ = 1;
  std::vector<int> cols_;
  std::vector<std::vector<uint32_t>> pids_;
  std::vector<size_t> offsets_;
  MorselSet parts_;
};

// ---------------------------------------------------------------------------
// UnionAll / Top: pure morsel plumbing.
// ---------------------------------------------------------------------------

class UnionAllOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Result<MorselSet> Close(OperatorContext&) override {
    MorselSet result;
    for (auto& child : inputs_) {
      for (auto& m : child) {
        if (m.num_rows() > 0) result.push_back(std::move(m));
      }
    }
    return result;
  }
};

class TopOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Result<MorselSet> Close(OperatorContext&) override {
    auto* top = static_cast<TopNode*>(node_);
    size_t remaining = std::min<size_t>(static_cast<size_t>(top->limit()),
                                        MorselRowCount(inputs_[0]));
    MorselSet result;
    for (auto& m : inputs_[0]) {
      if (remaining == 0) break;
      if (m.num_rows() <= remaining) {
        remaining -= m.num_rows();
        result.push_back(std::move(m));
      } else {
        result.push_back(MaterializeSlice(m, 0, remaining));
        remaining = 0;
      }
    }
    return result;
  }
};

// ---------------------------------------------------------------------------
// Process: the UDO consumes the whole input at once (it may be stateful
// across rows), so the call itself stays sequential; only re-chunking the
// output is morselized.
// ---------------------------------------------------------------------------

class ProcessOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* process = static_cast<ProcessNode*>(node_);
    CV_ASSIGN_OR_RETURN(fn_,
                        ProcessorRegistry::Global()->Lookup(
                            process->processor()));
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext& ctx) override {
    auto* process = static_cast<ProcessNode*>(node_);
    Batch in = CombineBatches(InputSchema(0), inputs_[0]);
    Batch result;
    CV_RETURN_NOT_OK((*fn_)(in, &result));
    if (!(result.schema() == node_->output_schema())) {
      return Status::TypeError("processor '" + process->processor() +
                               "' produced schema [" +
                               result.schema().ToString() + "], declared [" +
                               node_->output_schema().ToString() + "]");
    }
    return ChunkBatch(std::move(result), ctx.morsel_rows);
  }

 private:
  const ProcessorFn* fn_ = nullptr;
};

// ---------------------------------------------------------------------------
// Reduce: group boundaries on the (sorted) input are detected per morsel in
// parallel; groups are then packed into morsel-sized ranges and the
// group-wise UDO runs range-parallel, with outputs concatenated in group
// order. Registered reducers must be pure functions of their input group.
// ---------------------------------------------------------------------------

class ReduceOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Status Open(OperatorContext& ctx, std::vector<MorselSet> inputs) override {
    CV_RETURN_NOT_OK(PhysicalOperator::Open(ctx, std::move(inputs)));
    auto* reduce = static_cast<ReduceNode*>(node_);
    CV_ASSIGN_OR_RETURN(kcols_, ResolveColumns(InputSchema(0),
                                               reduce->keys()));
    CV_ASSIGN_OR_RETURN(
        fn_, ProcessorRegistry::Global()->Lookup(reduce->processor()));
    boundary_.resize(inputs_[0].size());
    return Status::OK();
  }

  size_t num_phases() const override { return 2; }

  size_t NumMorsels(size_t phase) const override {
    return phase == 0 ? inputs_[0].size() : tasks_.size();
  }

  Status PreparePhase(OperatorContext& ctx, size_t phase) override {
    if (phase != 1) return Status::OK();
    const MorselSet& in = inputs_[0];
    // Stitch per-morsel boundary flags into global group ranges.
    offsets_.resize(in.size());
    size_t off = 0;
    bool have_prev = false;
    size_t pm = 0, pr = 0;
    for (size_t m = 0; m < in.size(); ++m) {
      offsets_[m] = off;
      for (size_t r = 0; r < in[m].num_rows(); ++r) {
        bool starts_group;
        if (r == 0) {
          starts_group = !have_prev ||
                         CompareRowsOnColumns(in[pm], pr, kcols_, in[m], r,
                                              kcols_) != 0;
        } else {
          starts_group = boundary_[m][r] != 0;
        }
        if (starts_group) {
          if (!groups_.empty()) groups_.back().second = off + r;
          groups_.push_back({off + r, 0});
        }
        have_prev = true;
        pm = m;
        pr = r;
      }
      off += in[m].num_rows();
    }
    if (!groups_.empty()) groups_.back().second = off;
    // Pack consecutive groups into roughly morsel-sized UDO tasks.
    size_t begin = 0;
    while (begin < groups_.size()) {
      size_t end = begin;
      size_t rows = 0;
      while (end < groups_.size() && rows < ctx.morsel_rows) {
        rows += groups_[end].second - groups_[end].first;
        ++end;
      }
      tasks_.push_back({begin, end});
      begin = end;
    }
    out_.resize(tasks_.size());
    return Status::OK();
  }

  Status ProcessMorsel(OperatorContext&, size_t phase, size_t t) override {
    if (phase == 0) {
      const Batch& in = inputs_[0][t];
      std::vector<uint8_t> flags(in.num_rows());
      for (size_t r = 1; r < in.num_rows(); ++r) {
        flags[r] =
            CompareRowsOnColumns(in, r - 1, kcols_, in, r, kcols_) != 0;
      }
      boundary_[t] = std::move(flags);
      return Status::OK();
    }
    auto* reduce = static_cast<ReduceNode*>(node_);
    Batch out(node_->output_schema());
    for (size_t g = tasks_[t].first; g < tasks_[t].second; ++g) {
      Batch group = GatherGlobalRows(groups_[g].first, groups_[g].second);
      Batch result;
      CV_RETURN_NOT_OK((*fn_)(group, &result));
      if (!(result.schema() == node_->output_schema())) {
        return Status::TypeError("reducer '" + reduce->processor() +
                                 "' produced schema [" +
                                 result.schema().ToString() +
                                 "], declared [" +
                                 node_->output_schema().ToString() + "]");
      }
      out.AppendRowsFrom(result, 0, result.num_rows());
    }
    out_[t] = std::move(out);
    return Status::OK();
  }

  Result<MorselSet> Close(OperatorContext&) override {
    MorselSet result;
    for (auto& m : out_) {
      if (m.num_rows() > 0) result.push_back(std::move(m));
    }
    return result;
  }

 private:
  /// Materializes global rows [begin, end) — contiguous across morsels.
  Batch GatherGlobalRows(size_t begin, size_t end) const {
    const MorselSet& in = inputs_[0];
    Batch out(InputSchema(0));
    for (size_t m = 0; m < in.size() && begin < end; ++m) {
      size_t m_end = offsets_[m] + in[m].num_rows();
      if (begin >= m_end) continue;
      size_t local_begin = begin - offsets_[m];
      size_t local_end = std::min(end, m_end) - offsets_[m];
      out.AppendRowsFrom(in[m], local_begin, local_end);
      begin = offsets_[m] + local_end;
    }
    return out;
  }

  std::vector<int> kcols_;
  const ProcessorFn* fn_ = nullptr;
  std::vector<std::vector<uint8_t>> boundary_;
  std::vector<size_t> offsets_;
  std::vector<std::pair<size_t, size_t>> groups_;  // global [begin, end)
  std::vector<std::pair<size_t, size_t>> tasks_;   // group index ranges
  MorselSet out_;
};

// ---------------------------------------------------------------------------
// Spool / Output: storage writers, sequential by nature; the job's data
// passes through as the unchanged input morsels.
// ---------------------------------------------------------------------------

class SpoolOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Result<MorselSet> Close(OperatorContext& ctx) override {
    auto* spool = static_cast<SpoolNode*>(node_);
    Batch in = CombineBatches(InputSchema(0), inputs_[0]);
    // Enforce the mined physical design on the stored copy.
    Batch designed = in;
    if (spool->design().sort_order.IsSorted()) {
      designed = SortBatch(designed, spool->design().sort_order.keys);
    }
    std::vector<Batch> stored;
    if (spool->design().partitioning.IsSpecified()) {
      CV_ASSIGN_OR_RETURN(
          stored, PartitionBatch(designed, spool->design().partitioning));
      // Partitioning loses the global sort; re-sort each partition.
      if (spool->design().sort_order.IsSorted()) {
        for (auto& p : stored) {
          p = SortBatch(p, spool->design().sort_order.keys);
        }
      }
    } else {
      stored.push_back(std::move(designed));
    }
    LogicalTime now = ctx.exec->storage->clock()->Now();
    LogicalTime expiry = spool->lifetime_seconds() > 0
                             ? now + spool->lifetime_seconds()
                             : ctx.exec->view_expiry;
    StreamData view = MakeStreamData(spool->view_path(), GenerateGuid(),
                                     in.schema(), std::move(stored), now,
                                     expiry, spool->design());
    Status write = ctx.exec->storage->WriteStream(view);
    if (!write.ok()) {
      // "Do no harm": materialization is an optimization, so a failed (or
      // torn) view write must not fail the job. Discard any partial, hand
      // the build lock back through on_view_abandoned, and pass the
      // spool's input through unchanged.
      // Intentional drop: a cleanly failed write stored nothing, so there
      // may be no stream to delete.
      (void)ctx.exec->storage->DeleteStream(spool->view_path());
      if (ctx.exec->on_view_abandoned) {
        ctx.exec->on_view_abandoned(*spool, write);
      }
      return std::move(inputs_[0]);
    }
    if (ctx.exec->fault != nullptr) {
      Status crash = ctx.exec->fault->MaybeInject(
          fault::points::kBuilderCrash, spool->view_path());
      if (!crash.ok()) {
        // Simulated builder death between write and registration: the
        // build lock stays held and the unregistered file stays in the
        // store. Recovery is the lease machinery's job (lease expiry,
        // takeover orphan cleanup, stale-registration fencing) — no
        // in-process cleanup may run, the "process" is gone.
        return crash;
      }
    }
    // Early materialization: publish before the job finishes (Sec 6.4).
    if (ctx.exec->on_view_materialized) {
      ctx.exec->on_view_materialized(*spool, view);
    }
    return std::move(inputs_[0]);
  }
};

class OutputOperator : public PhysicalOperator {
 public:
  using PhysicalOperator::PhysicalOperator;

  Result<MorselSet> Close(OperatorContext& ctx) override {
    auto* output = static_cast<OutputNode*>(node_);
    Batch in = CombineBatches(InputSchema(0), inputs_[0]);
    // Record the physical layout the enforced design produced, so that
    // downstream consumer jobs (and the analyzer) see it.
    StreamData data = MakeStreamData(
        output->stream_name(), GenerateGuid(), in.schema(), {in},
        ctx.exec->storage->clock()->Now(), /*expires_at=*/0,
        node_->children()[0]->Delivered());
    CV_RETURN_NOT_OK(ctx.exec->storage->WriteStream(std::move(data)));
    return std::move(inputs_[0]);
  }
};

}  // namespace

Result<std::unique_ptr<PhysicalOperator>> MakePhysicalOperator(
    PlanNode* node) {
  switch (node->kind()) {
    case OpKind::kExtract:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ExtractOperator>(node));
    case OpKind::kViewRead:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ViewReadOperator>(node));
    case OpKind::kFilter:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<FilterOperator>(node));
    case OpKind::kProject:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ProjectOperator>(node));
    case OpKind::kJoin:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<JoinOperator>(node));
    case OpKind::kAggregate:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<AggregateOperator>(node));
    case OpKind::kSort:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<SortOperator>(node));
    case OpKind::kExchange:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ExchangeOperator>(node));
    case OpKind::kUnionAll:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<UnionAllOperator>(node));
    case OpKind::kProcess:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ProcessOperator>(node));
    case OpKind::kTop:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<TopOperator>(node));
    case OpKind::kSpool:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<SpoolOperator>(node));
    case OpKind::kReduce:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<ReduceOperator>(node));
    case OpKind::kOutput:
      return std::unique_ptr<PhysicalOperator>(std::make_unique<OutputOperator>(node));
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace cloudviews
