#ifndef CLOUDVIEWS_NET_CLIENT_H_
#define CLOUDVIEWS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "fault/backoff.h"
#include "net/socket.h"
#include "net/wire.h"

namespace cloudviews {
namespace net {

/// \brief Blocking client for the job-service wire protocol.
///
/// One request in flight per client (the protocol is strictly
/// request/response per connection); drive N concurrent submissions with N
/// clients. Not thread-safe — each thread owns its own Client.
class Client {
 public:
  static Result<Client> Connect(const std::string& address, uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Raw frame round-trip; the typed helpers below are built on this.
  struct Response {
    MsgType type = MsgType::kError;
    std::string payload;
  };
  Result<Response> Roundtrip(MsgType type, std::string_view payload);

  /// One submit round-trip. A transport/protocol failure is a non-OK
  /// Result; a server-side decision (result, accepted ticket, retry-after,
  /// typed error) is an OK Result carrying the reply kind.
  struct SubmitReply {
    enum class Kind { kResult, kAccepted, kRetryAfter, kError };
    Kind kind = Kind::kError;
    SubmitResultResponse result;    // kind == kResult
    AcceptedResponse accepted;      // kind == kAccepted
    RetryAfterResponse retry;       // kind == kRetryAfter
    ErrorResponse error;            // kind == kError
  };
  Result<SubmitReply> Submit(const SubmitRequest& request);

  /// Submit with shed handling: a kRetryAfter reply sleeps at least the
  /// server's hint (backed off per attempt) and resubmits, up to
  /// `policy.max_attempts` total attempts. Every other reply is returned
  /// as-is. `sleeper` null uses the real clock.
  Result<SubmitReply> SubmitWithRetry(const SubmitRequest& request,
                                      const fault::RetryPolicy& policy,
                                      fault::Sleeper* sleeper = nullptr,
                                      int* retries = nullptr);

  /// kError(kNotFound) from the server surfaces as a non-OK Result.
  Result<StatusResultResponse> QueryStatus(uint64_t ticket);
  Result<ProfileResultResponse> FetchProfile(uint64_t ticket);
  Result<ServerStatsResponse> ServerStats();

  /// Direct socket access for protocol-hardening tests (sending malformed
  /// bytes on purpose).
  // NOLINTNEXTLINE(raw-socket): accessor named after the class, not the C API
  Socket* socket() { return &sock_; }

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}
  Socket sock_;
};

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_CLIENT_H_
