#include "parser/parser.h"

#include "common/string_util.h"
#include "expr/function_registry.h"

namespace cloudviews {

ScriptParam DateParam(const std::string& iso) {
  return {Value::DateFromString(iso), iso};
}
ScriptParam IntParam(int64_t v) {
  return {Value::Int64(v), std::to_string(v)};
}
ScriptParam StringParam(const std::string& s) { return {Value::String(s), s}; }

namespace {

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, const ParamMap& params,
             const GuidResolver& guids)
      : tokens_(std::move(tokens)), params_(params), guids_(guids) {}

  Result<PlanNodePtr> ParseScript();

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  Status Fail(const std::string& msg) const {
    return Status::ParseError(
        StrFormat("%s at line %d (near '%s')", msg.c_str(), Cur().line,
                  Cur().text.c_str()));
  }
  bool AcceptSymbol(const std::string& s) {
    if (Cur().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) return Fail("expected '" + s + "'");
    return Status::OK();
  }
  bool AcceptKeyword(const std::string& k) {
    if (Cur().IsKeyword(k)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& k) {
    if (!AcceptKeyword(k)) return Fail("expected " + k);
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (!Cur().Is(TokenType::kIdent)) return Fail("expected identifier");
    std::string name = Cur().text;
    Advance();
    return name;
  }
  Result<std::string> ExpectString() {
    if (!Cur().Is(TokenType::kString)) return Fail("expected string literal");
    std::string s = Cur().text;
    Advance();
    return s;
  }

  Result<std::string> Interpolate(const std::string& templ) const;
  Result<PlanNodePtr> LookupBinding(const std::string& name) const;

  Result<PlanNodePtr> ParseStatementRhs();
  Result<PlanNodePtr> ParseExtract();
  Result<PlanNodePtr> ParseSelect();
  Result<PlanNodePtr> ParseProcess();
  Result<PlanNodePtr> ParseReduce();
  Result<Schema> ParseFieldList();

  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const ParamMap& params_;
  const GuidResolver& guids_;
  std::map<std::string, PlanNodePtr> bindings_;
};

Result<std::string> ParserImpl::Interpolate(const std::string& templ) const {
  std::string out;
  size_t i = 0;
  while (i < templ.size()) {
    if (templ[i] == '{') {
      size_t close = templ.find('}', i);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated '{' in \"" + templ + "\"");
      }
      std::string name = templ.substr(i + 1, close - i - 1);
      auto it = params_.find(name);
      if (it == params_.end()) {
        return Status::ParseError("unbound template parameter '{" + name +
                                  "}'");
      }
      out += it->second.text;
      i = close + 1;
    } else {
      out += templ[i++];
    }
  }
  return out;
}

Result<PlanNodePtr> ParserImpl::LookupBinding(const std::string& name) const {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    return Status::ParseError("unknown dataset '" + name + "'");
  }
  return it->second;
}

Result<Schema> ParserImpl::ParseFieldList() {
  Schema schema;
  for (;;) {
    CV_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    CV_RETURN_NOT_OK(ExpectSymbol(":"));
    CV_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
    DataType type;
    if (!DataTypeFromString(ToLower(type_name), &type)) {
      return Fail("unknown type '" + type_name + "'");
    }
    schema.AddField(name, type);
    if (!AcceptSymbol(",")) break;
  }
  return schema;
}

Result<PlanNodePtr> ParserImpl::ParseExtract() {
  // EXTRACT was already consumed.
  CV_ASSIGN_OR_RETURN(Schema schema, ParseFieldList());
  CV_RETURN_NOT_OK(ExpectKeyword("FROM"));
  CV_ASSIGN_OR_RETURN(std::string template_name, ExpectString());
  CV_ASSIGN_OR_RETURN(std::string stream_name, Interpolate(template_name));
  std::string guid = guids_ ? guids_(stream_name) : "";
  return PlanNodePtr(std::make_shared<ExtractNode>(
      template_name, stream_name, guid, std::move(schema)));
}

Result<PlanNodePtr> ParserImpl::ParseReduce() {
  // REDUCE src ON key [, key...] USING proc("lib", "version") [PRODUCE ...]
  CV_ASSIGN_OR_RETURN(std::string src, ExpectIdent());
  CV_ASSIGN_OR_RETURN(PlanNodePtr input, LookupBinding(src));
  CV_RETURN_NOT_OK(ExpectKeyword("ON"));
  std::vector<std::string> keys;
  for (;;) {
    CV_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
    keys.push_back(key);
    if (!AcceptSymbol(",")) break;
  }
  CV_RETURN_NOT_OK(ExpectKeyword("USING"));
  CV_ASSIGN_OR_RETURN(std::string proc, ExpectIdent());
  CV_RETURN_NOT_OK(ExpectSymbol("("));
  CV_ASSIGN_OR_RETURN(std::string library, ExpectString());
  CV_RETURN_NOT_OK(ExpectSymbol(","));
  CV_ASSIGN_OR_RETURN(std::string version, ExpectString());
  CV_RETURN_NOT_OK(ExpectSymbol(")"));
  Schema produce;
  if (AcceptKeyword("PRODUCE")) {
    CV_ASSIGN_OR_RETURN(produce, ParseFieldList());
  }
  return PlanNodePtr(std::make_shared<ReduceNode>(
      input, std::move(keys), proc, library, version, std::move(produce)));
}

Result<PlanNodePtr> ParserImpl::ParseProcess() {
  // PROCESS src USING proc("lib", "version") [PRODUCE fields]
  CV_ASSIGN_OR_RETURN(std::string src, ExpectIdent());
  CV_ASSIGN_OR_RETURN(PlanNodePtr input, LookupBinding(src));
  CV_RETURN_NOT_OK(ExpectKeyword("USING"));
  CV_ASSIGN_OR_RETURN(std::string proc, ExpectIdent());
  CV_RETURN_NOT_OK(ExpectSymbol("("));
  CV_ASSIGN_OR_RETURN(std::string library, ExpectString());
  CV_RETURN_NOT_OK(ExpectSymbol(","));
  CV_ASSIGN_OR_RETURN(std::string version, ExpectString());
  CV_RETURN_NOT_OK(ExpectSymbol(")"));
  Schema produce;  // empty = same as input, resolved at bind
  if (AcceptKeyword("PRODUCE")) {
    CV_ASSIGN_OR_RETURN(produce, ParseFieldList());
  }
  return PlanNodePtr(std::make_shared<ProcessNode>(
      input, proc, library, version, std::move(produce)));
}

Result<PlanNodePtr> ParserImpl::ParseSelect() {
  // SELECT was already consumed.
  struct SelectItem {
    bool is_star = false;
    bool is_agg = false;
    AggregateSpec agg{AggFunc::kCount, nullptr, ""};
    ExprPtr expr;
    std::string name;
  };
  std::vector<SelectItem> items;
  for (;;) {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.is_star = true;
    } else {
      AggFunc func;
      if (Cur().Is(TokenType::kIdent) &&
          AggFuncFromString(Cur().text, &func) &&
          tokens_[pos_ + 1].IsSymbol("(")) {
        Advance();  // agg name
        Advance();  // '('
        item.is_agg = true;
        item.agg.func = func;
        if (AcceptSymbol("*")) {
          if (func != AggFunc::kCount) {
            return Fail("only COUNT may take '*'");
          }
          item.agg.arg = nullptr;
        } else {
          CV_ASSIGN_OR_RETURN(item.agg.arg, ParseExpr());
        }
        CV_RETURN_NOT_OK(ExpectSymbol(")"));
        CV_RETURN_NOT_OK(ExpectKeyword("AS"));
        CV_ASSIGN_OR_RETURN(item.agg.output_name, ExpectIdent());
      } else {
        CV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          CV_ASSIGN_OR_RETURN(item.name, ExpectIdent());
        } else if (item.expr->kind() == ExprKind::kColumnRef) {
          item.name =
              static_cast<const ColumnRefExpr&>(*item.expr).name();
        } else {
          return Fail("non-column select item needs AS <name>");
        }
      }
    }
    items.push_back(std::move(item));
    if (!AcceptSymbol(",")) break;
  }

  CV_RETURN_NOT_OK(ExpectKeyword("FROM"));
  CV_ASSIGN_OR_RETURN(std::string src, ExpectIdent());
  CV_ASSIGN_OR_RETURN(PlanNodePtr plan, LookupBinding(src));

  // JOIN clauses.
  for (;;) {
    JoinType join_type = JoinType::kInner;
    if (AcceptKeyword("LEFT")) {
      CV_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join_type = JoinType::kLeftOuter;
    } else if (AcceptKeyword("JOIN")) {
      join_type = JoinType::kInner;
    } else {
      break;
    }
    CV_ASSIGN_OR_RETURN(std::string right_name, ExpectIdent());
    CV_ASSIGN_OR_RETURN(PlanNodePtr right, LookupBinding(right_name));
    CV_RETURN_NOT_OK(ExpectKeyword("ON"));
    std::vector<std::pair<std::string, std::string>> keys;
    for (;;) {
      CV_ASSIGN_OR_RETURN(std::string lk, ExpectIdent());
      CV_RETURN_NOT_OK(ExpectSymbol("=="));
      CV_ASSIGN_OR_RETURN(std::string rk, ExpectIdent());
      keys.emplace_back(lk, rk);
      if (!AcceptKeyword("AND")) break;
    }
    plan = std::make_shared<JoinNode>(plan, right, join_type,
                                      std::move(keys));
  }

  if (AcceptKeyword("WHERE")) {
    CV_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
    plan = std::make_shared<FilterNode>(plan, pred);
  }

  std::vector<std::string> group_keys;
  bool has_group_by = false;
  if (AcceptKeyword("GROUP")) {
    CV_RETURN_NOT_OK(ExpectKeyword("BY"));
    has_group_by = true;
    for (;;) {
      CV_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      group_keys.push_back(key);
      if (!AcceptSymbol(",")) break;
    }
  }

  bool has_agg = false;
  for (const auto& item : items) has_agg |= item.is_agg;

  if (has_agg || has_group_by) {
    std::vector<AggregateSpec> aggs;
    for (auto& item : items) {
      if (item.is_star) {
        return Fail("'*' cannot be combined with GROUP BY / aggregates");
      }
      if (item.is_agg) {
        aggs.push_back(std::move(item.agg));
        continue;
      }
      // Non-aggregate items must be group keys.
      if (item.expr->kind() != ExprKind::kColumnRef) {
        return Fail("non-aggregate select item must be a group key column");
      }
      const std::string& col =
          static_cast<const ColumnRefExpr&>(*item.expr).name();
      bool is_key = false;
      for (const auto& k : group_keys) is_key |= k == col;
      if (!is_key) {
        return Fail("column '" + col + "' is neither aggregated nor grouped");
      }
    }
    plan = std::make_shared<AggregateNode>(plan, std::move(group_keys),
                                           std::move(aggs));
  } else if (!(items.size() == 1 && items[0].is_star)) {
    std::vector<NamedExpr> exprs;
    for (auto& item : items) {
      if (item.is_star) {
        return Fail("'*' cannot be combined with other select items");
      }
      exprs.push_back({std::move(item.expr), std::move(item.name)});
    }
    plan = std::make_shared<ProjectNode>(plan, std::move(exprs));
  }

  if (AcceptKeyword("ORDER")) {
    CV_RETURN_NOT_OK(ExpectKeyword("BY"));
    std::vector<SortKey> keys;
    for (;;) {
      CV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      bool asc = true;
      if (AcceptKeyword("DESC")) {
        asc = false;
      } else {
        AcceptKeyword("ASC");
      }
      keys.push_back({col, asc});
      if (!AcceptSymbol(",")) break;
    }
    plan = std::make_shared<SortNode>(plan, std::move(keys));
  }

  if (AcceptKeyword("TOP")) {
    if (!Cur().Is(TokenType::kInt)) return Fail("TOP needs an integer");
    int64_t limit = std::stoll(Cur().text);
    Advance();
    plan = std::make_shared<TopNode>(plan, limit);
  }
  return plan;
}

Result<PlanNodePtr> ParserImpl::ParseStatementRhs() {
  if (AcceptKeyword("EXTRACT")) return ParseExtract();
  if (AcceptKeyword("SELECT")) return ParseSelect();
  if (AcceptKeyword("PROCESS")) return ParseProcess();
  if (AcceptKeyword("REDUCE")) return ParseReduce();
  // UNION: "a UNION ALL b"
  if (Cur().Is(TokenType::kIdent) && tokens_[pos_ + 1].IsKeyword("UNION")) {
    CV_ASSIGN_OR_RETURN(std::string left_name, ExpectIdent());
    CV_ASSIGN_OR_RETURN(PlanNodePtr left, LookupBinding(left_name));
    CV_RETURN_NOT_OK(ExpectKeyword("UNION"));
    CV_RETURN_NOT_OK(ExpectKeyword("ALL"));
    CV_ASSIGN_OR_RETURN(std::string right_name, ExpectIdent());
    CV_ASSIGN_OR_RETURN(PlanNodePtr right, LookupBinding(right_name));
    std::vector<PlanNodePtr> kids{left, right};
    return PlanNodePtr(std::make_shared<UnionAllNode>(std::move(kids)));
  }
  return Fail("expected EXTRACT, SELECT, PROCESS, or UNION");
}

Result<PlanNodePtr> ParserImpl::ParseScript() {
  PlanNodePtr output;
  while (!Cur().Is(TokenType::kEnd)) {
    if (AcceptKeyword("OUTPUT")) {
      CV_ASSIGN_OR_RETURN(std::string src, ExpectIdent());
      CV_ASSIGN_OR_RETURN(PlanNodePtr plan, LookupBinding(src));
      CV_RETURN_NOT_OK(ExpectKeyword("TO"));
      CV_ASSIGN_OR_RETURN(std::string target, ExpectString());
      CV_ASSIGN_OR_RETURN(std::string stream, Interpolate(target));
      // Optional output physical design (SCOPE CLUSTERED BY / SORTED BY).
      PhysicalProperties design;
      if (AcceptKeyword("CLUSTERED")) {
        CV_RETURN_NOT_OK(ExpectKeyword("BY"));
        for (;;) {
          CV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          design.partitioning.columns.push_back(col);
          if (!AcceptSymbol(",")) break;
        }
        design.partitioning.scheme = PartitionScheme::kHash;
        if (AcceptKeyword("INTO")) {
          if (!Cur().Is(TokenType::kInt)) return Fail("INTO needs an integer");
          design.partitioning.partition_count = std::stoi(Cur().text);
          Advance();
        }
      }
      if (AcceptKeyword("SORTED")) {
        CV_RETURN_NOT_OK(ExpectKeyword("BY"));
        for (;;) {
          CV_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          bool asc = true;
          if (AcceptKeyword("DESC")) {
            asc = false;
          } else {
            AcceptKeyword("ASC");
          }
          design.sort_order.keys.push_back({col, asc});
          if (!AcceptSymbol(",")) break;
        }
      }
      CV_RETURN_NOT_OK(ExpectSymbol(";"));
      if (output != nullptr) {
        return Status::ParseError("a script must have exactly one OUTPUT");
      }
      auto out_node = std::make_shared<OutputNode>(plan, stream);
      out_node->set_declared_design(std::move(design));
      output = out_node;
      continue;
    }
    CV_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    CV_RETURN_NOT_OK(ExpectSymbol("="));
    CV_ASSIGN_OR_RETURN(PlanNodePtr rhs, ParseStatementRhs());
    CV_RETURN_NOT_OK(ExpectSymbol(";"));
    bindings_[name] = rhs;
  }
  if (output == nullptr) {
    return Status::ParseError("script has no OUTPUT statement");
  }
  return output;
}

// --- Expressions -------------------------------------------------------------

Result<ExprPtr> ParserImpl::ParseOr() {
  CV_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (AcceptKeyword("OR")) {
    CV_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(left, right);
  }
  return left;
}

Result<ExprPtr> ParserImpl::ParseAnd() {
  CV_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (AcceptKeyword("AND")) {
    CV_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(left, right);
  }
  return left;
}

Result<ExprPtr> ParserImpl::ParseNot() {
  if (AcceptKeyword("NOT") || AcceptSymbol("!")) {
    CV_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Not(inner);
  }
  return ParseComparison();
}

Result<ExprPtr> ParserImpl::ParseComparison() {
  CV_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  static const std::pair<const char*, CompareOp> kOps[] = {
      {"==", CompareOp::kEq}, {"!=", CompareOp::kNe},
      {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
      {"<", CompareOp::kLt},  {">", CompareOp::kGt},
  };
  for (const auto& [sym, op] : kOps) {
    if (Cur().IsSymbol(sym)) {
      Advance();
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return ExprPtr(std::make_shared<ComparisonExpr>(op, left, right));
    }
  }
  return left;
}

Result<ExprPtr> ParserImpl::ParseAdditive() {
  CV_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    if (AcceptSymbol("+")) {
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Add(left, right);
    } else if (AcceptSymbol("-")) {
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Sub(left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> ParserImpl::ParseMultiplicative() {
  CV_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    if (AcceptSymbol("*")) {
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Mul(left, right);
    } else if (AcceptSymbol("/")) {
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Div(left, right);
    } else if (AcceptSymbol("%")) {
      CV_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Mod(left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> ParserImpl::ParseUnary() {
  if (AcceptSymbol("-")) {
    CV_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return Sub(Lit(int64_t{0}), inner);
  }
  return ParsePrimary();
}

Result<ExprPtr> ParserImpl::ParsePrimary() {
  if (AcceptSymbol("(")) {
    CV_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    CV_RETURN_NOT_OK(ExpectSymbol(")"));
    return inner;
  }
  if (Cur().Is(TokenType::kInt)) {
    int64_t v = std::stoll(Cur().text);
    Advance();
    return Lit(v);
  }
  if (Cur().Is(TokenType::kFloat)) {
    double v = std::stod(Cur().text);
    Advance();
    return Lit(v);
  }
  if (Cur().Is(TokenType::kString)) {
    CV_ASSIGN_OR_RETURN(std::string raw, ExpectString());
    CV_ASSIGN_OR_RETURN(std::string s, Interpolate(raw));
    return Lit(Value::String(s));
  }
  if (Cur().Is(TokenType::kParam)) {
    std::string name = Cur().text;
    Advance();
    auto it = params_.find(name);
    if (it == params_.end()) {
      return Status::ParseError("unbound parameter '@" + name + "'");
    }
    return Param(name, it->second.value);
  }
  if (Cur().IsKeyword("TRUE")) {
    Advance();
    return Lit(true);
  }
  if (Cur().IsKeyword("FALSE")) {
    Advance();
    return Lit(false);
  }
  if (Cur().Is(TokenType::kIdent)) {
    std::string name = Cur().text;
    Advance();
    if (AcceptSymbol("(")) {
      // date("...") is a literal; otherwise builtin function or UDF.
      std::vector<ExprPtr> args;
      if (!Cur().IsSymbol(")")) {
        for (;;) {
          CV_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(arg);
          if (!AcceptSymbol(",")) break;
        }
      }
      CV_RETURN_NOT_OK(ExpectSymbol(")"));
      std::string lower = ToLower(name);
      if (lower == "date") {
        if (args.size() != 1 || args[0]->kind() != ExprKind::kLiteral) {
          return Fail("date() takes one string literal");
        }
        const Value& v =
            static_cast<const LiteralExpr&>(*args[0]).value();
        if (v.type() != DataType::kString) {
          return Fail("date() takes a string literal");
        }
        Value d = Value::DateFromString(v.string_value());
        if (d.is_null()) return Fail("malformed date '" + v.string_value() + "'");
        return Lit(d);
      }
      if (FunctionRegistry::Global()->Contains(lower)) {
        return Func(lower, std::move(args));
      }
      if (UdfRegistry::Global()->Contains(name)) {
        auto entry = *UdfRegistry::Global()->Lookup(name);
        return Udf(name, entry->library, entry->version, std::move(args));
      }
      return Fail("unknown function '" + name + "'");
    }
    return Col(name);
  }
  return Fail("expected expression");
}

}  // namespace

Result<PlanNodePtr> ScopeScriptParser::Parse(const std::string& script,
                                             const ParamMap& params,
                                             const GuidResolver& guids) {
  CV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  ParserImpl impl(std::move(tokens), params, guids);
  return impl.ParseScript();
}

}  // namespace cloudviews
