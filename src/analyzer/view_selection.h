#ifndef CLOUDVIEWS_ANALYZER_VIEW_SELECTION_H_
#define CLOUDVIEWS_ANALYZER_VIEW_SELECTION_H_

#include <vector>

#include "analyzer/overlap_analyzer.h"

namespace cloudviews {

/// \brief Knobs for picking the subgraphs to materialize (Sec 5.2; the
/// Sec 7.1 workload used min_frequency=3, min_cost_fraction=0.2,
/// max_per_job=1, top_k=3 on utility).
struct SelectionConfig {
  enum class Policy {
    /// Top-k by total utility = (frequency-1) x avg runtime.
    kTopKUtility,
    /// Top-k by utility normalized by storage footprint.
    kTopKUtilityPerByte,
    /// Greedy storage-budget packing by utility density.
    kPackGreedy,
    /// Exact 0/1 knapsack under the storage budget (small candidate sets).
    kPackKnapsack,
  };

  Policy policy = Policy::kTopKUtility;
  int top_k = 10;

  /// Candidate filters.
  int64_t min_frequency = 2;
  double min_runtime_seconds = 0;
  /// Subgraph cost must be at least this fraction of its containing job's
  /// cost (view-to-query ratio).
  double min_cost_fraction_of_job = 0;
  /// Skip bare input scans (materializing them just copies the input).
  bool exclude_extract_roots = true;
  /// At most this many selected views containing any single job (0 = off);
  /// "considering at most one overlapping computation per job" (Sec 7.1).
  int max_per_job = 0;

  /// Storage budget for the packing policies, in bytes.
  double storage_budget_bytes = 0;
  /// Knapsack weight granularity (bytes per unit).
  double knapsack_granularity_bytes = 1024;
};

/// \brief Selects the views to materialize from the mined aggregates.
class ViewSelector {
 public:
  explicit ViewSelector(SelectionConfig config = {}) : config_(config) {}

  /// Returns the selected aggregates, in descending utility order. Inputs
  /// must outlive the returned pointers.
  std::vector<const SubgraphAggregate*> Select(
      const std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>&
          aggregates) const;

  /// Inverse objective for reclaiming space: picks the views with *minimum*
  /// utility whose sizes sum to at least `bytes_to_reclaim` (Sec 5.4).
  static std::vector<const SubgraphAggregate*> SelectForEviction(
      const std::vector<const SubgraphAggregate*>& selected,
      double bytes_to_reclaim);

 private:
  std::vector<const SubgraphAggregate*> Filter(
      const std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>&
          aggregates) const;
  std::vector<const SubgraphAggregate*> PackGreedy(
      std::vector<const SubgraphAggregate*> candidates) const;
  std::vector<const SubgraphAggregate*> PackKnapsack(
      std::vector<const SubgraphAggregate*> candidates) const;
  void ApplyPerJobCap(std::vector<const SubgraphAggregate*>* selected) const;

  SelectionConfig config_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_ANALYZER_VIEW_SELECTION_H_
