file(REMOVE_RECURSE
  "libcv_analyzer.a"
)
