// Standalone job-service server demo: boots a CloudViews instance with a
// few days of click data, opens the network front door, and (by default)
// drives it from an in-process wire client — day-1 submissions build
// history, the analyzer selects a view, and the day-2 submissions reuse it
// over the wire. Run with --serve to keep listening instead (press Enter
// to drain and stop), e.g. to poke the protocol with your own client:
//
//   ./job_server --port 7433 --serve
#include <cstdio>
#include <cstring>
#include <string>

#include "common/random.h"
#include "core/cloudviews.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/export.h"
#include "parser/parser.h"

namespace {

using namespace cloudviews;  // NOLINT(build/namespaces)

const char* kScript = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total_latency
         FROM clicks WHERE latency > 50 GROUP BY page;
OUTPUT slow TO "slow_pages_{template}_{date}";
)";

void WriteClicks(StorageManager* storage, const std::string& date) {
  Rng rng(2018);
  Schema schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
  Batch b(schema);
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about"};
  for (int i = 0; i < 600; ++i) {
    (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(64))),
                       Value::String(kPages[rng.Uniform(4)]),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(400))),
                       Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData("clicks_" + date,
                                            "guid-clicks_" + date, schema,
                                            {b}, storage->clock()->Now()));
}

net::SubmitRequest Request(const std::string& tmpl, const std::string& date,
                           int instance) {
  net::SubmitRequest req;
  req.script = kScript;
  req.params.push_back({"date", net::WireParamKind::kDate, date, 0});
  req.params.push_back({"template", net::WireParamKind::kString, tmpl, 0});
  req.template_id = tmpl;
  req.vc = "vc-demo";
  req.user = tmpl;
  req.recurring_instance = instance;
  return req;
}

int SubmitAndReport(net::Client* client, const std::string& tmpl,
                    const std::string& date, int instance) {
  auto reply = client->Submit(Request(tmpl, date, instance));
  if (!reply.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  if (reply->kind != net::Client::SubmitReply::Kind::kResult) {
    std::fprintf(stderr, "submission was not served inline\n");
    return 1;
  }
  const net::JobOutcome& o = reply->result.outcome;
  std::printf(
      "  %s @ %s -> job %llu: %lld rows, reused=%d materialized=%d "
      "cache_hit=%s (%.2f ms over the wire)\n",
      tmpl.c_str(), date.c_str(), static_cast<unsigned long long>(o.job_id),
      static_cast<long long>(o.output_rows), o.views_reused,
      o.views_materialized, o.plan_cache_hit ? "yes" : "no",
      reply->result.timings.latency_seconds * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else {
      std::fprintf(stderr, "usage: job_server [--port N] [--serve]\n");
      return 2;
    }
  }

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  config.net.port = port;
  CloudViews cv(config);
  for (const char* date : {"2018-06-01", "2018-06-02"}) {
    WriteClicks(cv.storage(), date);
  }

  net::JobServiceServer server(&cv, cv.config().net);
  auto bound = server.Start();
  if (!bound.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  std::printf("job-service front door listening on %s:%u\n",
              cv.config().net.bind_address.c_str(), *bound);

  if (serve) {
    std::printf("press Enter to drain and stop\n");
    (void)std::getchar();
  } else {
    auto client = net::Client::Connect("127.0.0.1", *bound);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    std::printf("day 1 (history: everything compiles cold):\n");
    if (SubmitAndReport(&*client, "pipelineA", "2018-06-01", 1) != 0) return 1;
    if (SubmitAndReport(&*client, "pipelineB", "2018-06-01", 1) != 0) return 1;
    std::printf("analyzer pass: selecting common subexpressions...\n");
    cv.RunAnalyzerAndLoad();
    std::printf("day 2 (the shared aggregate is served from a view):\n");
    if (SubmitAndReport(&*client, "pipelineA", "2018-06-02", 2) != 0) return 1;
    if (SubmitAndReport(&*client, "pipelineB", "2018-06-02", 2) != 0) return 1;

    auto stats = client->ServerStats();
    if (stats.ok()) {
      std::printf(
          "server stats: accepted=%llu completed=%llu failed=%llu "
          "sheds=%llu\n",
          static_cast<unsigned long long>(stats->accepted),
          static_cast<unsigned long long>(stats->completed),
          static_cast<unsigned long long>(stats->failed),
          static_cast<unsigned long long>(stats->shed_queue_full +
                                          stats->shed_conn_cap +
                                          stats->shed_draining +
                                          stats->shed_injected));
    }
  }

  server.Stop();
  std::printf("drained and stopped.\n");
  return 0;
}
