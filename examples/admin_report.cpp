// Admin reporting (Sec 4 goal 7, Sec 5.5): the CLI stand-in for the
// PowerBI dashboard — workload overlap summary, drill-down into the
// top overlapping computations, and expected gains/storage costs.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analyzer/analyzer.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/cloudviews.h"
#include "workload/synthetic.h"

using namespace cloudviews;

int main() {
  // Populate a business unit's day of history.
  CloudViews cv;
  ClusterProfile profile = BusinessUnitProfile();
  profile.num_templates = 250;  // keep the demo quick
  SyntheticWorkloadGenerator gen(profile);
  gen.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : gen.Instance("2018-01-01")) {
    (void)cv.Submit(def, false);
  }

  OverlapAnalyzer overlap;
  overlap.AddJobs(cv.repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  std::printf("=== workload overlap summary (%s) ===\n",
              profile.name.c_str());
  std::printf("  jobs analyzed           %zu\n", report.total_jobs);
  std::printf("  overlapping jobs        %zu (%.1f%%)\n",
              report.overlapping_jobs, report.PctOverlappingJobs());
  std::printf("  users with overlap      %zu of %zu (%.1f%%)\n",
              report.users_with_overlap, report.total_users,
              report.PctUsersWithOverlap());
  std::printf("  subgraph templates      %zu (%zu overlapping)\n",
              report.total_subgraph_templates,
              report.overlapping_subgraph_templates);
  std::printf("  overlapping instances   %.1f%% of all subgraphs\n\n",
              report.PctOverlappingSubgraphs());

  std::printf("=== top overlapping computations (drill-down) ===\n");
  std::vector<const SubgraphAggregate*> all;
  for (const auto& [sig, agg] : overlap.aggregates()) {
    if (agg.IsOverlapping() && agg.subtree_size >= 2) all.push_back(&agg);
  }
  std::sort(all.begin(), all.end(),
            [](const SubgraphAggregate* a, const SubgraphAggregate* b) {
              return a->TotalUtility() > b->TotalUtility();
            });
  TablePrinter table({"signature", "root", "freq", "jobs", "users",
                      "avg runtime", "avg size", "utility (s)", "design"});
  for (size_t i = 0; i < std::min<size_t>(10, all.size()); ++i) {
    const auto* agg = all[i];
    table.AddRow({agg->normalized.ToHex().substr(0, 12),
                  OpKindToString(agg->root_kind),
                  StrFormat("%lld", static_cast<long long>(agg->frequency)),
                  StrFormat("%zu", agg->jobs.size()),
                  StrFormat("%zu", agg->users.size()),
                  StrFormat("%.2fms", agg->AvgLatency() * 1000),
                  HumanBytes(agg->AvgBytes()),
                  StrFormat("%.4f", agg->TotalUtility()),
                  agg->PopularDesign().ToString()});
  }
  table.Print(std::cout);

  // What would the admin pay / save if the top-k were materialized?
  std::printf("\n=== expected impact of enabling CloudViews ===\n");
  AnalyzerConfig analyzer_config;
  analyzer_config.selection.top_k = 10;
  CloudViewsAnalyzer analyzer(analyzer_config);
  auto analysis = analyzer.Analyze(cv.repository()->Jobs());
  double saved = 0, storage = 0;
  for (const auto& agg : analysis.selected) {
    saved += agg.TotalUtility();
    storage += agg.AvgBytes();
  }
  std::printf("  views selected          %zu\n", analysis.selected.size());
  std::printf("  expected runtime saved  %.2fms per recurring instance\n",
              saved * 1000);
  std::printf("  storage cost            %s\n",
              HumanBytes(storage).c_str());
  std::printf("  analysis took           %.1fms for %zu jobs\n",
              analysis.analysis_seconds * 1000, analysis.jobs_analyzed);

  std::printf("\n=== recommended submission order (builders first) ===\n  ");
  for (size_t i = 0; i < std::min<size_t>(8, analysis.submission_order.size());
       ++i) {
    std::printf("job#%llu ", static_cast<unsigned long long>(
                                 analysis.submission_order[i]));
  }
  std::printf("...\n");
  return 0;
}
