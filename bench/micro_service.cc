// Sustained-load harness for the network front door: a self-hosted
// JobServiceServer on loopback driven by multi-client closed-loop traffic
// (warm / fresh-date / subsumed script mixes, per-request percentiles)
// followed by an open-loop async flood that overruns the submission queue
// on purpose — the server must shed with typed RETRY_AFTER, memory stays
// bounded, and every retried shed eventually lands with zero failed jobs.
// Writes BENCH_service.json (throughput, p50/p99/p999, queue-depth and
// shed-count timeline, full metrics dump) and metrics.prom for CI.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/mutex.h"
#include "fault/backoff.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/export.h"

namespace cloudviews {
namespace bench {
namespace {

// Script A: the recurring slow-page aggregate. {tag} keeps output streams
// distinct across clients and iterations.
const char* kScriptA = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total_latency
         FROM clicks WHERE latency > 50 GROUP BY page;
OUTPUT slow TO "slow_pages_{tag}_{date}";
)";

// Script B: same cooking step, different tail — its submissions ride the
// view Script A materialized (the subsumed/overlapping mix).
const char* kScriptB = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, SUM(latency) AS total_latency
         FROM clicks WHERE latency > 50 GROUP BY page;
top    = SELECT page, n, total_latency FROM slow ORDER BY n DESC TOP 3;
OUTPUT top TO "top_pages_{tag}_{date}";
)";

std::string Date(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2018-%02d-%02d", 3 + i / 28, 1 + i % 28);
  return buf;
}

void WriteClicks(StorageManager* storage, const std::string& date,
                 size_t rows) {
  Rng rng(0x5eedULL + rows);
  Schema schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
  Batch b(schema);
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about"};
  for (size_t i = 0; i < rows; ++i) {
    (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
                       Value::String(kPages[rng.Uniform(4)]),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
                       Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData("clicks_" + date,
                                            "guid-clicks_" + date, schema,
                                            {b}, storage->clock()->Now()));
}

net::SubmitRequest MakeRequest(const char* script, const std::string& tmpl,
                               const std::string& tag,
                               const std::string& date, int instance) {
  net::SubmitRequest req;
  req.script = script;
  req.params.push_back({"date", net::WireParamKind::kDate, date, 0});
  req.params.push_back({"tag", net::WireParamKind::kString, tag, 0});
  req.template_id = tmpl;
  req.vc = "vc-" + tmpl;
  req.user = tmpl;
  req.recurring_instance = instance;
  return req;
}

struct MixStats {
  std::vector<double> latencies;  // seconds, per completed request
  long plan_cache_hits = 0;
  long views_reused = 0;
  long views_reused_subsumed = 0;
  long compensation_nodes = 0;
  long views_materialized = 0;
  long retries = 0;

  void Absorb(const MixStats& other) {
    latencies.insert(latencies.end(), other.latencies.begin(),
                     other.latencies.end());
    plan_cache_hits += other.plan_cache_hits;
    views_reused += other.views_reused;
    views_reused_subsumed += other.views_reused_subsumed;
    compensation_nodes += other.compensation_nodes;
    views_materialized += other.views_materialized;
    retries += other.retries;
  }
  void Record(const net::JobOutcome& outcome, double seconds, int retries_n) {
    latencies.push_back(seconds);
    plan_cache_hits += outcome.plan_cache_hit ? 1 : 0;
    views_reused += outcome.views_reused;
    views_reused_subsumed += outcome.views_reused_subsumed;
    compensation_nodes += outcome.compensation_nodes_added;
    views_materialized += outcome.views_materialized;
    retries += retries_n;
  }
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

struct TimelinePoint {
  double t = 0;
  uint64_t queue_depth = 0;
  uint64_t inflight = 0;
  uint64_t shed_total = 0;
  uint64_t completed = 0;
  uint64_t connections = 0;
};

uint64_t TotalSheds(const net::ServerStatsResponse& s) {
  return s.shed_queue_full + s.shed_conn_cap + s.shed_draining +
         s.shed_injected;
}

struct Options {
  int clients = 6;
  int closed_jobs_per_client = 3000;  // closed-loop phase, per client
  int open_jobs_per_client = 1500;    // open-loop flood, per client
  size_t rows = 384;
  std::string out = "BENCH_service.json";
  std::string prom_out = "metrics.prom";
};

int Fail(const char* what) {
  std::fprintf(stderr, "service bench gate failed: %s\n", what);
  return 1;
}

int Run(const Options& opt) {
  FigureHeader("micro",
               "job-service front door: sustained wire load + admission",
               "the service admits recurring submissions at scale and sheds "
               "overload with typed RETRY_AFTER instead of queuing "
               "unboundedly (Sec 4: job service integration)");

  constexpr int kDates = 8;
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  config.net.submission_workers = 4;
  config.net.submission_queue_capacity = 16;
  config.net.per_connection_inflight_cap = 8;
  config.net.retry_after_ms = 2;
  config.net.max_connections = opt.clients + 4;
  CloudViews cv(config);
  for (int d = 0; d < kDates; ++d) WriteClicks(cv.storage(), Date(d), opt.rows);

  net::JobServiceServer server(&cv, cv.config().net);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }

  // Prime: day-0 history for both templates, then analyze, so the warm and
  // subsumed mixes find a selected view from the first measured request.
  {
    auto prime = net::Client::Connect("127.0.0.1", *port);
    if (!prime.ok()) return Fail("prime connect");
    for (const char* tmpl : {"svc-A", "svc-B"}) {
      const char* script = std::strcmp(tmpl, "svc-A") == 0 ? kScriptA
                                                           : kScriptB;
      auto r = prime->Submit(
          MakeRequest(script, tmpl, "prime", Date(0), 1));
      if (!r.ok() || r->kind != net::Client::SubmitReply::Kind::kResult) {
        return Fail("prime submit");
      }
    }
    cv.RunAnalyzerAndLoad();
  }
  net::ServerStatsResponse primed = server.Stats();

  // Timeline sampler: queue depth, in-flight, shed and completion counts
  // every ~20ms for the BENCH artifact's over-time series.
  std::vector<TimelinePoint> timeline;
  Mutex timeline_mu;
  std::atomic<bool> sampling{true};
  double bench_start = MonotonicNowSeconds();
  std::thread sampler([&] {
    fault::Sleeper* sleeper = fault::Sleeper::Real();
    while (sampling.load(std::memory_order_acquire)) {
      net::ServerStatsResponse s = server.Stats();
      TimelinePoint p;
      p.t = MonotonicNowSeconds() - bench_start;
      p.queue_depth = s.queue_depth;
      p.inflight = s.inflight;
      p.shed_total = TotalSheds(s);
      p.completed = s.completed;
      p.connections = s.connections;
      {
        MutexLock lock(timeline_mu);
        timeline.push_back(p);
      }
      sleeper->Sleep(0.02);
    }
  });

  // ---------------------------------------------------------------------
  // Phase 1 — closed loop: each client thread keeps exactly one waited
  // submission in flight, cycling a warm / subsumed / fresh-date mix.
  // Warm serves the plan cache's full tier; fresh-date is the recurring
  // next-day instance (skeleton tier: new precise signature, same shape).
  enum Mix { kWarm = 0, kSubsumed = 1, kFreshDate = 2, kMixCount = 3 };
  std::vector<std::vector<MixStats>> per_thread(
      opt.clients, std::vector<MixStats>(kMixCount));
  std::atomic<int> closed_failures{0};
  double closed_start = MonotonicNowSeconds();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", *port);
        if (!client.ok()) {
          closed_failures.fetch_add(opt.closed_jobs_per_client);
          return;
        }
        fault::RetryPolicy policy;
        policy.max_attempts = 1000;
        policy.initial_backoff_seconds = 0;
        const std::string cid = std::to_string(c);
        for (int i = 0; i < opt.closed_jobs_per_client; ++i) {
          Mix mix = i % 2 == 0 ? kWarm
                    : i % 4 == 1 ? kSubsumed
                                 : kFreshDate;
          net::SubmitRequest req;
          switch (mix) {
            case kWarm:
              // Same template, same date, same output: repeated identical
              // submissions serve the plan cache and reuse the view.
              req = MakeRequest(kScriptA, "svc-A", "w" + cid, Date(0), 1);
              break;
            case kSubsumed:
              // Different template over the same cooked subplan.
              req = MakeRequest(kScriptB, "svc-B", "s" + cid, Date(0), 1);
              break;
            default:
              // Fresh date + fresh output: new precise signature, so the
              // full tier misses and the skeleton tier carries it.
              req = MakeRequest(kScriptA, "svc-cold",
                                "c" + cid + "_" + std::to_string(i),
                                Date(1 + i % (kDates - 1)), i);
              break;
          }
          int retries = 0;
          double start = MonotonicNowSeconds();
          auto reply =
              client->SubmitWithRetry(req, policy, nullptr, &retries);
          double elapsed = MonotonicNowSeconds() - start;
          if (!reply.ok() ||
              reply->kind != net::Client::SubmitReply::Kind::kResult ||
              reply->result.outcome.output_rows <= 0) {
            closed_failures.fetch_add(1);
            continue;
          }
          per_thread[c][mix].Record(reply->result.outcome, elapsed, retries);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  double closed_seconds = MonotonicNowSeconds() - closed_start;
  if (closed_failures.load() != 0) return Fail("closed-loop submissions");
  MixStats mixes[kMixCount];
  for (auto& thread_mixes : per_thread) {
    for (int m = 0; m < kMixCount; ++m) mixes[m].Absorb(thread_mixes[m]);
  }
  long closed_total = 0;
  for (int m = 0; m < kMixCount; ++m) {
    closed_total += static_cast<long>(mixes[m].latencies.size());
  }
  net::ServerStatsResponse after_closed = server.Stats();

  // ---------------------------------------------------------------------
  // Phase 2 — open loop: async flood. 6 clients * cap 8 = 48 admissible
  // in-flight submissions against a 16-slot queue and 4 workers: the queue
  // and the per-connection caps must shed, and every shed retried in.
  std::atomic<int> open_failures{0};
  std::atomic<long> open_retries{0};
  double open_start = MonotonicNowSeconds();
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (int c = 0; c < opt.clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", *port);
        if (!client.ok()) {
          open_failures.fetch_add(opt.open_jobs_per_client);
          return;
        }
        fault::RetryPolicy policy;
        policy.max_attempts = 100000;
        policy.initial_backoff_seconds = 0;
        const std::string cid = std::to_string(c);
        for (int i = 0; i < opt.open_jobs_per_client; ++i) {
          net::SubmitRequest req =
              MakeRequest(kScriptA, "svc-A", "o" + cid, Date(0), i);
          req.wait = false;
          int retries = 0;
          auto reply =
              client->SubmitWithRetry(req, policy, nullptr, &retries);
          open_retries.fetch_add(retries);
          if (!reply.ok() ||
              reply->kind != net::Client::SubmitReply::Kind::kAccepted) {
            open_failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  if (open_failures.load() != 0) return Fail("open-loop submissions");
  const uint64_t open_total =
      static_cast<uint64_t>(opt.clients) *
      static_cast<uint64_t>(opt.open_jobs_per_client);
  // Drain: every admitted async job must complete.
  {
    fault::Sleeper* sleeper = fault::Sleeper::Real();
    double deadline = MonotonicNowSeconds() + 120;
    while (MonotonicNowSeconds() < deadline) {
      net::ServerStatsResponse s = server.Stats();
      if (s.completed + s.failed >= after_closed.completed + open_total) break;
      sleeper->Sleep(0.005);
    }
  }
  double open_seconds = MonotonicNowSeconds() - open_start;
  net::ServerStatsResponse final_stats = server.Stats();
  sampling.store(false, std::memory_order_release);
  sampler.join();
  server.Stop();

  // ---------------------------------------------------------------------
  // Gates: nothing failed, nothing leaked, overload actually shed.
  if (final_stats.failed != 0) return Fail("failed jobs under load");
  if (final_stats.queue_depth != 0 || final_stats.inflight != 0) {
    return Fail("leaked queue slots or admission tokens");
  }
  if (final_stats.completed !=
      primed.completed + static_cast<uint64_t>(closed_total) + open_total) {
    return Fail("admitted jobs lost");
  }
  uint64_t open_sheds = TotalSheds(final_stats) - TotalSheds(after_closed);
  if (open_sheds == 0) return Fail("open-loop flood never shed");
  if (open_retries.load() == 0) return Fail("sheds were never retried");
  if (mixes[kWarm].plan_cache_hits == 0) {
    return Fail("warm mix never hit the plan cache");
  }
  if (mixes[kWarm].views_reused + mixes[kSubsumed].views_reused +
          mixes[kSubsumed].views_reused_subsumed ==
      0) {
    return Fail("no view reuse over the wire");
  }

  const char* mix_names[kMixCount] = {"warm", "subsumed", "fresh_date"};
  std::printf("  closed loop: %ld jobs, %d clients, %.2fs (%.0f jobs/s)\n",
              closed_total, opt.clients, closed_seconds,
              static_cast<double>(closed_total) / closed_seconds);
  for (int m = 0; m < kMixCount; ++m) {
    std::vector<double> lat = mixes[m].latencies;  // copy; Percentile sorts
    double p50 = Percentile(&lat, 0.50) * 1e3;
    double p99 = Percentile(&lat, 0.99) * 1e3;
    double p999 = Percentile(&lat, 0.999) * 1e3;
    std::printf(
        "    %-8s n=%-6zu p50=%6.2fms p99=%6.2fms p999=%6.2fms "
        "cache_hits=%ld reused=%ld subsumed=%ld\n",
        mix_names[m], mixes[m].latencies.size(), p50, p99, p999,
        mixes[m].plan_cache_hits, mixes[m].views_reused,
        mixes[m].views_reused_subsumed);
  }
  std::printf(
      "  open loop: %llu async jobs in %.2fs, sheds=%llu "
      "(queue_full=%llu conn_cap=%llu), retries=%ld, failed=%llu\n",
      static_cast<unsigned long long>(open_total), open_seconds,
      static_cast<unsigned long long>(open_sheds),
      static_cast<unsigned long long>(final_stats.shed_queue_full),
      static_cast<unsigned long long>(final_stats.shed_conn_cap),
      open_retries.load(),
      static_cast<unsigned long long>(final_stats.failed));

  FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) return Fail("cannot write BENCH_service.json");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"service_front_door\",\n");
  std::fprintf(f,
               "  \"config\": {\"clients\": %d, \"closed_jobs_per_client\": "
               "%d, \"open_jobs_per_client\": %d, \"workers\": %d, "
               "\"queue_capacity\": %d, \"per_conn_cap\": %d, "
               "\"retry_after_ms\": %u},\n",
               opt.clients, opt.closed_jobs_per_client,
               opt.open_jobs_per_client, config.net.submission_workers,
               static_cast<int>(config.net.submission_queue_capacity),
               config.net.per_connection_inflight_cap,
               config.net.retry_after_ms);
  std::fprintf(f,
               "  \"closed_loop\": {\"jobs\": %ld, \"seconds\": %.3f, "
               "\"throughput_jobs_per_sec\": %.1f, \"mixes\": {\n",
               closed_total, closed_seconds,
               static_cast<double>(closed_total) / closed_seconds);
  for (int m = 0; m < kMixCount; ++m) {
    std::vector<double> lat = mixes[m].latencies;
    std::fprintf(
        f,
        "    \"%s\": {\"jobs\": %zu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"p999_ms\": %.3f, \"plan_cache_hits\": %ld, \"views_reused\": "
        "%ld, \"views_reused_subsumed\": %ld, \"compensation_nodes\": %ld, "
        "\"views_materialized\": %ld, \"retries\": %ld}%s\n",
        mix_names[m], mixes[m].latencies.size(),
        Percentile(&lat, 0.50) * 1e3, Percentile(&lat, 0.99) * 1e3,
        Percentile(&lat, 0.999) * 1e3, mixes[m].plan_cache_hits,
        mixes[m].views_reused, mixes[m].views_reused_subsumed,
        mixes[m].compensation_nodes, mixes[m].views_materialized,
        mixes[m].retries, m + 1 < kMixCount ? "," : "");
  }
  std::fprintf(f, "  }},\n");
  std::fprintf(
      f,
      "  \"open_loop\": {\"submitted\": %llu, \"seconds\": %.3f, "
      "\"throughput_jobs_per_sec\": %.1f, \"sheds\": {\"queue_full\": %llu, "
      "\"conn_cap\": %llu, \"draining\": %llu, \"injected\": %llu}, "
      "\"retries\": %ld, \"failed\": %llu},\n",
      static_cast<unsigned long long>(open_total), open_seconds,
      static_cast<double>(open_total) / open_seconds,
      static_cast<unsigned long long>(final_stats.shed_queue_full),
      static_cast<unsigned long long>(final_stats.shed_conn_cap),
      static_cast<unsigned long long>(final_stats.shed_draining),
      static_cast<unsigned long long>(final_stats.shed_injected),
      open_retries.load(),
      static_cast<unsigned long long>(final_stats.failed));
  std::fprintf(f, "  \"timeline\": [\n");
  {
    MutexLock lock(timeline_mu);
    for (size_t i = 0; i < timeline.size(); ++i) {
      const TimelinePoint& p = timeline[i];
      std::fprintf(f,
                   "    {\"t\": %.3f, \"queue_depth\": %llu, \"inflight\": "
                   "%llu, \"shed_total\": %llu, \"completed\": %llu, "
                   "\"connections\": %llu}%s\n",
                   p.t, static_cast<unsigned long long>(p.queue_depth),
                   static_cast<unsigned long long>(p.inflight),
                   static_cast<unsigned long long>(p.shed_total),
                   static_cast<unsigned long long>(p.completed),
                   static_cast<unsigned long long>(p.connections),
                   i + 1 < timeline.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n",
               obs::RenderMetricsJson(*cv.metrics()).c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", opt.out.c_str());

  FILE* prom = std::fopen(opt.prom_out.c_str(), "w");
  if (prom == nullptr) return Fail("cannot write metrics.prom");
  std::string rendered = obs::RenderPrometheus(*cv.metrics());
  std::fwrite(rendered.data(), 1, rendered.size(), prom);
  std::fclose(prom);
  std::printf("  wrote %s\n", opt.prom_out.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main(int argc, char** argv) {
  cloudviews::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](int* out) {
      if (i + 1 < argc) *out = std::atoi(argv[++i]);
    };
    if (std::strcmp(argv[i], "--clients") == 0) {
      next_int(&opt.clients);
    } else if (std::strcmp(argv[i], "--closed-jobs") == 0) {
      next_int(&opt.closed_jobs_per_client);
    } else if (std::strcmp(argv[i], "--open-jobs") == 0) {
      next_int(&opt.open_jobs_per_client);
    } else if (std::strcmp(argv[i], "--rows") == 0) {
      int rows = 0;
      next_int(&rows);
      opt.rows = static_cast<size_t>(rows);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--prom-out") == 0 && i + 1 < argc) {
      opt.prom_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_service [--clients N] [--closed-jobs N] "
                   "[--open-jobs N] [--rows N] [--out FILE] [--prom-out "
                   "FILE]\n");
      return 2;
    }
  }
  return cloudviews::bench::Run(opt);
}
