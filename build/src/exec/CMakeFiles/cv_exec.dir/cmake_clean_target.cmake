file(REMOVE_RECURSE
  "libcv_exec.a"
)
