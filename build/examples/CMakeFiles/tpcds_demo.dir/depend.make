# Empty dependencies file for tpcds_demo.
# This may be replaced when dependencies are built.
