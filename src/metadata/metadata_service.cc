#include "metadata/metadata_service.h"

#include <algorithm>

#include "obs/timed_lock.h"

namespace cloudviews {

void MetadataService::SetMetrics(obs::MetricsRegistry* metrics,
                                 MonotonicClock* wall_clock) {
  if (metrics == nullptr) return;
  // Keep a constructor-injected lease clock unless explicitly overridden.
  if (wall_clock != nullptr) wall_clock_ = wall_clock;
  obs_.lookups = metrics->GetCounter("cv_metadata_lookups_total", {},
                                     "Tag-inverted-index lookups (one per "
                                     "submitted job, Fig 9 step 1)");
  obs_.hits = metrics->GetCounter(
      "cv_metadata_view_hits_total", {},
      "FindMaterialized calls that returned a live view");
  obs_.misses = metrics->GetCounter(
      "cv_metadata_view_misses_total", {},
      "FindMaterialized calls that found no usable view");
  obs_.locks_granted =
      metrics->GetCounter("cv_metadata_build_locks_granted_total", {},
                          "Exclusive build locks granted (Sec 6.1)");
  obs_.locks_denied = metrics->GetCounter(
      "cv_metadata_build_locks_denied_total", {},
      "Build-lock proposals denied (already built or being built)");
  obs_.locks_abandoned =
      metrics->GetCounter("cv_metadata_build_locks_abandoned_total", {},
                          "Build locks released without registering a view "
                          "(failed or discarded materializing jobs)");
  obs_.leases_reclaimed = metrics->GetCounter(
      "cv_metadata_lock_leases_reclaimed_total", {},
      "Expired build-lock leases taken over from presumed-dead builders");
  obs_.stale_registrations = metrics->GetCounter(
      "cv_metadata_stale_registrations_total", {},
      "ReportMaterialized calls rejected by lease fencing or because "
      "another producer already registered the view");
  obs_.views_registered =
      metrics->GetCounter("cv_metadata_views_registered_total", {},
                          "Materialized views registered");
  obs_.views_purged = metrics->GetCounter(
      "cv_metadata_views_purged_total", {}, "Expired views purged");
  obs_.registered_views =
      metrics->GetGauge("cv_metadata_registered_views", {},
                        "Currently registered materialized views");
  obs_.lock_wait = metrics->GetHistogram(
      "cv_metadata_lock_wait_seconds", {}, {},
      "Wall time waiting for the service-wide mutex that guards the "
      "exclusive build locks");
}

void MetadataService::LoadAnalysis(
    const std::vector<AnnotatedComputation>& computations) {
  MutexLock lock(mu_);
  computations_ = computations;
  tag_index_.clear();
  for (size_t i = 0; i < computations_.size(); ++i) {
    for (const auto& tag : computations_[i].tags) {
      tag_index_[tag].insert(i);
    }
  }
}

double MetadataService::SimulatedLookupLatency() const {
  // Calibrated to the paper's measurement: ~19ms with one service thread,
  // ~14.3ms with five (Sec 7.3) — a fixed fraction of the work
  // parallelizes across service threads.
  double parallel_fraction = 0.3;
  return config_.base_lookup_latency_seconds *
         (1.0 - parallel_fraction +
          parallel_fraction / std::max(1, config_.service_threads));
}

std::vector<ViewAnnotation> MetadataService::GetRelevantViews(
    const std::vector<std::string>& tags, double* latency_seconds) const {
  obs::TimedMutexLock lock(mu_, obs_.lock_wait, wall_clock_);
  ++counters_.lookups;
  if (obs_.lookups != nullptr) obs_.lookups->Increment();
  if (latency_seconds != nullptr) {
    *latency_seconds = SimulatedLookupLatency();
  }
  std::set<size_t> hits;
  for (const auto& tag : tags) {
    auto it = tag_index_.find(tag);
    if (it == tag_index_.end()) continue;
    hits.insert(it->second.begin(), it->second.end());
  }
  std::vector<ViewAnnotation> out;
  out.reserve(hits.size());
  for (size_t i : hits) out.push_back(computations_[i].annotation);
  return out;
}

Result<std::vector<ViewAnnotation>> MetadataService::TryGetRelevantViews(
    const std::vector<std::string>& tags, double* latency_seconds) const {
  if (fault_ != nullptr) {
    std::string key;
    for (const auto& tag : tags) {
      if (!key.empty()) key += '|';
      key += tag;
    }
    CV_RETURN_NOT_OK(fault_->MaybeInject(fault::points::kMetadataLookup, key));
  }
  return GetRelevantViews(tags, latency_seconds);
}

std::optional<ViewAnnotation> MetadataService::FindAnnotation(
    const Hash128& normalized) const {
  MutexLock lock(mu_);
  for (const auto& comp : computations_) {
    if (comp.annotation.normalized_signature == normalized) {
      return comp.annotation;
    }
  }
  return std::nullopt;
}

std::optional<MaterializedViewInfo> MetadataService::FindMaterialized(
    const Hash128& normalized, const Hash128& precise) {
  obs::TimedMutexLock lock(mu_, obs_.lock_wait, wall_clock_);
  // Instrument pointers are set once before concurrent use, so the lambda
  // touches no mu_-guarded state.
  auto record_miss = [this] {
    if (obs_.misses != nullptr) obs_.misses->Increment();
  };
  auto it = views_.find(precise);
  if (it == views_.end()) {
    record_miss();
    return std::nullopt;
  }
  if (!(it->second.info.normalized_signature == normalized)) {
    record_miss();
    return std::nullopt;
  }
  if (it->second.expires_at != 0 && it->second.expires_at <= clock_->Now()) {
    record_miss();
    return std::nullopt;  // expired but not yet purged
  }
  if (obs_.hits != nullptr) obs_.hits->Increment();
  return it->second.info;
}

bool MetadataService::ProposeMaterialize(const Hash128& normalized,
                                         const Hash128& precise,
                                         uint64_t job_id,
                                         double expected_build_seconds) {
  if (fault_ != nullptr) {
    Status injected =
        fault_->MaybeInject(fault::points::kMetadataPropose, precise.ToHex());
    if (!injected.ok()) {
      // A proposal the service never answered is indistinguishable from a
      // denial to the job: it simply runs without materializing this view.
      MutexLock lock(mu_);
      ++counters_.proposals;
      ++counters_.locks_denied;
      if (obs_.locks_denied != nullptr) obs_.locks_denied->Increment();
      return false;
    }
  }
  // Orphaned files of a reclaimed lease are deleted after mu_ is released
  // (same metadata-first ordering as PurgeExpired, Sec 5.4).
  std::string orphan_prefix;
  {
    obs::TimedMutexLock lock(mu_, obs_.lock_wait, wall_clock_);
    ++counters_.proposals;
    if (views_.count(precise) > 0) {
      ++counters_.locks_denied;
      if (obs_.locks_denied != nullptr) obs_.locks_denied->Increment();
      return false;  // already materialized
    }
    LogicalTime now = clock_->Now();
    double wall_now = wall_clock_->NowSeconds();
    auto it = locks_.find(precise);
    if (it != locks_.end()) {
      if (!LockExpired(it->second, now, wall_now)) {
        ++counters_.locks_denied;
        if (obs_.locks_denied != nullptr) obs_.locks_denied->Increment();
        return false;  // a concurrent job is building this view
      }
      if (it->second.job_id != job_id) {
        // Lease takeover: the previous builder is presumed dead. Whatever
        // it wrote under this signature was never registered — collect it
        // for deletion so the new build starts clean.
        ++counters_.leases_reclaimed;
        if (obs_.leases_reclaimed != nullptr) {
          obs_.leases_reclaimed->Increment();
        }
        orphan_prefix =
            "/views/" + normalized.ToHex() + "/" + precise.ToHex() + "_";
      }
    }
    double expiry_seconds =
        std::max(config_.min_lock_seconds,
                 config_.lock_expiry_multiplier * expected_build_seconds);
    locks_[precise] =
        BuildLock{job_id, now + static_cast<LogicalTime>(expiry_seconds),
                  wall_now + expiry_seconds};
    ++counters_.locks_granted;
    if (obs_.locks_granted != nullptr) obs_.locks_granted->Increment();
  }
  if (!orphan_prefix.empty()) {
    size_t cleaned = 0;
    for (const auto& name : storage_->ListStreams(orphan_prefix)) {
      // Intentional drop: racing deletions of an unregistered orphan are
      // harmless — someone removed it, which is all we need.
      (void)storage_->DeleteStream(name);
      ++cleaned;
    }
    if (cleaned > 0) {
      MutexLock lock(mu_);
      counters_.orphans_cleaned += cleaned;
    }
  }
  return true;
}

Status MetadataService::ReportMaterialized(const MaterializedViewInfo& info,
                                          LogicalTime expires_at) {
  obs::TimedMutexLock lock(mu_, obs_.lock_wait, wall_clock_);
  auto reject = [this](Status status) {
    ++counters_.stale_registrations_rejected;
    if (obs_.stale_registrations != nullptr) {
      obs_.stale_registrations->Increment();
    }
    return status;
  };
  auto vit = views_.find(info.precise_signature);
  if (vit != views_.end()) {
    if (vit->second.info.producer_job_id == info.producer_job_id) {
      return Status::OK();  // idempotent re-report by the same producer
    }
    return reject(Status::AlreadyExists(
        "view " + info.precise_signature.ToHex() +
        " already registered by job " +
        std::to_string(vit->second.info.producer_job_id)));
  }
  auto lit = locks_.find(info.precise_signature);
  if (lit != locks_.end() && lit->second.job_id != info.producer_job_id) {
    // Lease fencing: this builder's lock expired and another job took the
    // lease. Its registration is stale — the new builder owns the view.
    return reject(Status::Expired(
        "build lock for view " + info.precise_signature.ToHex() +
        " is now held by job " + std::to_string(lit->second.job_id) +
        "; stale registration by job " +
        std::to_string(info.producer_job_id) + " rejected"));
  }
  if (lit != locks_.end()) locks_.erase(lit);
  views_[info.precise_signature] = RegisteredView{info, expires_at};
  ++counters_.views_registered;
  if (obs_.views_registered != nullptr) {
    obs_.views_registered->Increment();
    obs_.registered_views->Set(static_cast<double>(views_.size()));
  }
  return Status::OK();
}

void MetadataService::AbandonLock(const Hash128& precise, uint64_t job_id) {
  MutexLock lock(mu_);
  auto it = locks_.find(precise);
  if (it != locks_.end() && it->second.job_id == job_id) {
    locks_.erase(it);
    ++counters_.locks_abandoned;
    if (obs_.locks_abandoned != nullptr) obs_.locks_abandoned->Increment();
  }
}

size_t MetadataService::PurgeExpired() {
  LogicalTime now = clock_->Now();
  std::vector<std::string> paths_to_delete;
  {
    // Clean the metadata first so no job can be handed an expired view,
    // then delete the physical files (Sec 5.4).
    MutexLock lock(mu_);
    for (auto it = views_.begin(); it != views_.end();) {
      if (it->second.expires_at != 0 && it->second.expires_at <= now) {
        paths_to_delete.push_back(it->second.info.path);
        it = views_.erase(it);
        ++counters_.views_purged;
      } else {
        ++it;
      }
    }
    if (obs_.views_purged != nullptr) {
      obs_.views_purged->Increment(paths_to_delete.size());
      obs_.registered_views->Set(static_cast<double>(views_.size()));
    }
  }
  for (const auto& path : paths_to_delete) {
    // Intentional drop: the file may already be gone (purged by the
    // storage manager's own expiry sweep), and the metadata entry is
    // authoritative either way.
    (void)storage_->DeleteStream(path);
  }
  return paths_to_delete.size();
}

Status MetadataService::DropView(const Hash128& precise) {
  std::string path;
  {
    MutexLock lock(mu_);
    auto it = views_.find(precise);
    if (it == views_.end()) {
      return Status::NotFound("view not registered");
    }
    path = it->second.info.path;
    views_.erase(it);
  }
  return storage_->DeleteStream(path);
}

MetadataService::Counters MetadataService::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

size_t MetadataService::NumRegisteredViews() const {
  MutexLock lock(mu_);
  return views_.size();
}

size_t MetadataService::NumAnnotations() const {
  MutexLock lock(mu_);
  return computations_.size();
}

size_t MetadataService::NumActiveLocks() const {
  MutexLock lock(mu_);
  return locks_.size();
}

std::vector<std::pair<Hash128, uint64_t>> MetadataService::HeldLocks() const {
  MutexLock lock(mu_);
  std::vector<std::pair<Hash128, uint64_t>> out;
  out.reserve(locks_.size());
  for (const auto& [precise, held] : locks_) {
    out.emplace_back(precise, held.job_id);
  }
  return out;
}

std::vector<MaterializedViewInfo> MetadataService::ListViews() const {
  MutexLock lock(mu_);
  std::vector<MaterializedViewInfo> out;
  out.reserve(views_.size());
  for (const auto& [precise, view] : views_) out.push_back(view.info);
  return out;
}

}  // namespace cloudviews
