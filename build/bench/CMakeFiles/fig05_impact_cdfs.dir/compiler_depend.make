# Empty compiler generated dependencies file for fig05_impact_cdfs.
# This may be replaced when dependencies are built.
