// Ablation (Sec 5.1): the feedback loop. Compares optimizer estimates with
// and without observed run-time statistics, and the accuracy of each
// against reality.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Ablation: feedback loop",
      "optimizer estimates vs observed statistics (Sec 5.1)",
      "\"the optimizer estimates for utility and costs are often way off\"; "
      "the feedback loop reconciles them with run-time statistics");

  ProductionWorkload workload;
  CloudViews cv;
  workload.WriteInputs(cv.storage(), "2018-01-01");

  // Run every job once so observed statistics exist.
  auto day1 = workload.Instance("2018-01-01");
  for (const auto& def : day1) {
    (void)cv.Submit(def, false);
  }

  // Re-compile day-2 instances with and without feedback; compare the
  // root-output cardinality estimates against the actual day-2 runs.
  workload.WriteInputs(cv.storage(), "2018-01-02");
  auto day2 = workload.Instance("2018-01-02");

  TablePrinter table({"job", "actual rows", "estimate (no feedback)",
                      "estimate (feedback)", "err no-fb (x)", "err fb (x)"});
  double geo_err_nofb = 0, geo_err_fb = 0;
  int counted = 0;
  for (size_t i = 0; i < day2.size(); ++i) {
    JobServiceOptions no_fb;
    no_fb.use_feedback_statistics = false;
    no_fb.record_in_repository = false;
    auto r_nofb = cv.job_service()->SubmitJob(day2[i], no_fb);

    JobServiceOptions with_fb;
    with_fb.use_feedback_statistics = true;
    with_fb.record_in_repository = false;
    auto r_fb = cv.job_service()->SubmitJob(day2[i], with_fb);
    if (!r_nofb.ok() || !r_fb.ok()) continue;

    // Estimated rows at the plan root (pre-execution) vs what actually
    // came out.
    double est_nofb = r_nofb->executed_plan->estimates().rows;
    double est_fb = r_fb->executed_plan->estimates().rows;
    double actual = r_fb->run_stats.output_rows;
    if (actual <= 0) actual = 1;
    double err_nofb =
        std::max(est_nofb, 1.0) / actual >= 1
            ? std::max(est_nofb, 1.0) / actual
            : actual / std::max(est_nofb, 1.0);
    double err_fb = std::max(est_fb, 1.0) / actual >= 1
                        ? std::max(est_fb, 1.0) / actual
                        : actual / std::max(est_fb, 1.0);
    geo_err_nofb += std::log(err_nofb);
    geo_err_fb += std::log(err_fb);
    ++counted;
    if (i % 4 == 0) {
      table.AddRow({StrFormat("%zu", i + 1), StrFormat("%.0f", actual),
                    StrFormat("%.0f", est_nofb), StrFormat("%.0f", est_fb),
                    StrFormat("%.1f", err_nofb),
                    StrFormat("%.1f", err_fb)});
    }
  }
  table.Print(std::cout);

  geo_err_nofb = std::exp(geo_err_nofb / std::max(1, counted));
  geo_err_fb = std::exp(geo_err_fb / std::max(1, counted));
  std::printf("\nsummary (geometric mean cardinality error, lower=better)\n");
  PaperVsMeasured("estimates without feedback", "way off",
                  StrFormat("%.1fx", geo_err_nofb));
  PaperVsMeasured("estimates with feedback", "precise",
                  StrFormat("%.1fx", geo_err_fb));
  PaperVsMeasured("feedback improvement", ">1x",
                  StrFormat("%.1fx tighter", geo_err_nofb / geo_err_fb));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
