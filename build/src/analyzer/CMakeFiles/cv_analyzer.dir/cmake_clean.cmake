file(REMOVE_RECURSE
  "CMakeFiles/cv_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/cv_analyzer.dir/analyzer.cc.o.d"
  "CMakeFiles/cv_analyzer.dir/overlap_analyzer.cc.o"
  "CMakeFiles/cv_analyzer.dir/overlap_analyzer.cc.o.d"
  "CMakeFiles/cv_analyzer.dir/view_selection.cc.o"
  "CMakeFiles/cv_analyzer.dir/view_selection.cc.o.d"
  "libcv_analyzer.a"
  "libcv_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
