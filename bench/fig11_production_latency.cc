// Reproduces Figure 11: end-to-end latency of the 32 production jobs,
// baseline vs CloudViews (3 views; 16/12/4 jobs per view).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Figure 11", "Production jobs: end-to-end latency",
      "average speedup 43% (max 91%, slowdowns up to 48% on view-building "
      "jobs); overall workload latency drops 60%");

  ProductionComparison cmp = RunProductionComparison();

  TablePrinter table(
      {"job", "baseline (ms)", "cloudviews (ms)", "improvement %", "role"});
  double base_total = 0, cv_total = 0, improvement_sum = 0;
  double max_speedup = -1e9, max_slowdown = 1e9;
  for (size_t i = 0; i < cmp.baseline_latency.size(); ++i) {
    double base = cmp.baseline_latency[i] * 1000;
    double with = cmp.cloudviews_latency[i] * 1000;
    double pct = PctImprovement(base, with);
    base_total += base;
    cv_total += with;
    improvement_sum += pct;
    max_speedup = std::max(max_speedup, pct);
    max_slowdown = std::min(max_slowdown, pct);
    const char* role = cmp.views_built[i] > 0
                           ? "builds view"
                           : (cmp.views_reused[i] > 0 ? "reuses view"
                                                      : "no overlap hit");
    table.AddRow({StrFormat("%zu", i + 1), StrFormat("%.2f", base),
                  StrFormat("%.2f", with), StrFormat("%+.1f", pct), role});
  }
  table.Print(std::cout);

  std::printf("\nsummary (%d views selected)\n", cmp.job_groups_built);
  PaperVsMeasured(
      "average latency improvement", "43%",
      StrFormat("%.0f%%", improvement_sum /
                              static_cast<double>(
                                  cmp.baseline_latency.size())));
  PaperVsMeasured("overall latency improvement", "60%",
                  StrFormat("%.0f%%", PctImprovement(base_total, cv_total)));
  PaperVsMeasured("max speedup", "91%", StrFormat("%.0f%%", max_speedup));
  PaperVsMeasured("max slowdown (builders pay)", "-48%",
                  StrFormat("%.0f%%", max_slowdown));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
