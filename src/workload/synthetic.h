#ifndef CLOUDVIEWS_WORKLOAD_SYNTHETIC_H_
#define CLOUDVIEWS_WORKLOAD_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "runtime/job_service.h"
#include "storage/storage_manager.h"

namespace cloudviews {

/// \brief Shape parameters of one simulated cluster's recurring workload.
///
/// The production traces behind Figs 1-5 are proprietary; this generator
/// reproduces their published aggregate shape instead: recurring templates
/// drawn from a Zipf-skewed pool of shared computation fragments (the
/// "users start from other people's scripts" and producer/consumer effects
/// of Sec 2.1), spread across VCs and users.
struct ClusterProfile {
  std::string name = "cluster";
  int num_vcs = 20;
  int num_users = 40;
  /// Recurring job templates; one job per template per recurring instance.
  int num_templates = 200;
  /// Pool of shared computation fragments templates draw from.
  int num_shared_fragments = 40;
  /// Cluster-wide average probability that a template embeds a *shared*
  /// fragment (vs a private one); drives the fraction of overlapping jobs.
  /// The per-VC propensity varies around this (and some VCs are isolated),
  /// reproducing Fig 2a's spread from 0% to 100% per-VC overlap.
  double p_share = 0.75;
  /// Fraction of VCs whose workload is entirely private (0% overlap).
  double isolated_vc_fraction = 0.1;
  /// When true, every VC shares with probability p_share exactly (no
  /// per-VC heterogeneity); used for cluster-level aggregates where VC
  /// variance would swamp the profile.
  bool uniform_sharing = false;
  /// Zipf skew of fragment popularity (higher = heavier head), matching
  /// the heavily skewed overlap frequencies of Sec 2.4.
  double sharing_theta = 1.2;
  /// Input datasets (recurring streams) fragments read from.
  int num_input_datasets = 12;
  /// Rows per input stream per instance.
  size_t rows_per_input = 400;
  uint64_t seed = 42;
};

/// The five clusters of Fig 1 (cluster3 is the low-overlap outlier) and the
/// 160-VC largest cluster of Fig 2.
ClusterProfile Fig1ClusterProfile(int cluster_index);
ClusterProfile LargestClusterProfile();
/// One large business unit (Fig 3-5 granularity).
ClusterProfile BusinessUnitProfile();

/// \brief Deterministic generator of recurring-instance workloads for one
/// cluster profile.
class SyntheticWorkloadGenerator {
 public:
  explicit SyntheticWorkloadGenerator(ClusterProfile profile);

  const ClusterProfile& profile() const { return profile_; }

  /// Writes all input streams for one recurring instance.
  void WriteInputs(StorageManager* storage, const std::string& date) const;

  /// Job definitions of one recurring instance (one per template), in
  /// template order.
  std::vector<JobDefinition> Instance(const std::string& date) const;

 private:
  struct TemplateSpec {
    int fragment_id;       // < 0: private fragment unique to this template
    int tail_kind;
    int vc;
    int user;
    LogicalTime period;
  };

  PlanNodePtr BuildFragment(int fragment_id, const std::string& date) const;
  PlanNodePtr BuildTail(const TemplateSpec& spec, int template_id,
                        PlanNodePtr input, const std::string& date) const;

  ClusterProfile profile_;
  std::vector<TemplateSpec> templates_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_WORKLOAD_SYNTHETIC_H_
