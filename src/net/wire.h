#ifndef CLOUDVIEWS_NET_WIRE_H_
#define CLOUDVIEWS_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"

namespace cloudviews {
namespace net {

/// \file
/// Versioned length-prefixed binary protocol for the job-service front
/// door (docs/wire_protocol.md is the normative description).
///
/// Frame layout (all integers little-endian):
///
///   offset 0  'C'                magic byte 0
///   offset 1  'V'                magic byte 1
///   offset 2  version (u8)       kProtocolVersion
///   offset 3  type (u8)          MsgType
///   offset 4  payload_len (u32)  must be <= kMaxPayloadBytes
///   offset 8  payload bytes
///
/// The length prefix is validated against kMaxPayloadBytes *before* any
/// payload allocation, so a hostile 4 GiB prefix cannot balloon memory.

inline constexpr char kMagic0 = 'C';
inline constexpr char kMagic1 = 'V';
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 8;
/// Generous for scripts and profiles, small enough to bound per-connection
/// memory: 8 MiB.
inline constexpr uint32_t kMaxPayloadBytes = 8u << 20;
/// Individual strings inside a payload are capped tighter than the frame so
/// a single hostile length field inside a valid frame cannot oversize.
inline constexpr uint32_t kMaxStringBytes = 4u << 20;
/// Bound on repeated elements (params, tags) per message.
inline constexpr uint32_t kMaxListItems = 1024;

/// Message type tags. Requests are < 128, responses >= 128; the error and
/// retry-after responses can answer any request type.
enum class MsgType : uint8_t {
  kSubmit = 1,
  kStatusQuery = 2,
  kProfileFetch = 3,
  kServerStats = 4,

  kSubmitResult = 129,
  kAccepted = 130,
  kStatusResult = 131,
  kProfileResult = 132,
  kServerStatsResult = 133,
  kError = 192,
  kRetryAfter = 193,
};

/// True if `t` names a request tag the server understands.
bool IsRequestType(uint8_t t);

/// \brief Append-only little-endian payload encoder.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// \brief Bounds-checked little-endian payload decoder over a borrowed
/// buffer. Every read returns a Status; a short buffer yields kParseError
/// rather than UB.
class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Bool(bool* v);
  Status Str(std::string* s);

  size_t remaining() const { return buf_.size() - pos_; }
  /// Decoders call this last: trailing junk is a malformed message.
  Status ExpectEnd() const;

 private:
  Status Need(size_t n) const;
  std::string_view buf_;
  size_t pos_ = 0;
};

struct FrameHeader {
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t payload_len = 0;
};

/// Builds a complete frame (header + payload) ready to send.
std::string EncodeFrame(MsgType type, std::string_view payload);

/// Parses and validates the fixed 8-byte header. Distinguishes failure
/// classes so the session layer can pick a reply-then-close vs a silent
/// close:
///  - kAborted:       bad magic — not our protocol, close without a reply
///  - kUnimplemented: version mismatch — reply kError then close
///  - kOutOfRange:    payload_len > kMaxPayloadBytes — reply then close
Status DecodeFrameHeader(const char* bytes, FrameHeader* out);

// ---------------------------------------------------------------------------
// Requests

/// Typed script parameter on the wire (mirrors parser::ScriptParam).
enum class WireParamKind : uint8_t { kDate = 0, kInt = 1, kString = 2 };

struct WireParam {
  std::string name;
  WireParamKind kind = WireParamKind::kString;
  /// Date: "YYYY-MM-DD"; string: the value. Unused for kInt.
  std::string text;
  int64_t int_value = 0;
};

struct SubmitRequest {
  /// ScopeScript source; the server parses it against its own catalog.
  std::string script;
  std::vector<WireParam> params;
  std::string template_id;
  std::string cluster;
  std::string business_unit;
  std::string vc;
  std::string user;
  int64_t recurring_instance = 0;
  int64_t recurrence_period_seconds = 86400;
  std::vector<std::string> tags;
  /// The per-job CloudViews opt-in flag, carried over the wire.
  bool enable_cloudviews = true;
  /// true: the response is kSubmitResult once the job finishes (closed
  /// loop). false: kAccepted{ticket} immediately; poll with kStatusQuery.
  bool wait = true;
};

struct StatusQueryRequest {
  uint64_t ticket = 0;
};

struct ProfileFetchRequest {
  uint64_t ticket = 0;
};

// kServerStats has an empty payload; no struct needed.

// ---------------------------------------------------------------------------
// Responses

/// \brief The deterministic slice of a job outcome.
///
/// Everything here is a pure function of (catalog state, submission order,
/// job definition) — no wall-clock times — so a wire submission and an
/// in-process SubmitJob against identically seeded services encode to
/// byte-identical strings. That is the acceptance check for the front
/// door: the wire adds transport, never semantics.
struct JobOutcome {
  uint64_t job_id = 0;
  uint64_t catalog_epoch = 0;
  /// Output stream shape + content fingerprint (HashBuilder over schema
  /// and every row value, in storage order).
  int64_t output_rows = 0;
  int64_t output_bytes = 0;
  Hash128 output_fingerprint;
  // Reuse funnel counters (JobResult field order).
  int32_t views_reused = 0;
  int32_t views_materialized = 0;
  int32_t reuse_rejected_by_cost = 0;
  int32_t materialize_lock_denied = 0;
  int32_t candidates_filtered = 0;
  int32_t containment_verified = 0;
  int32_t containment_rejected = 0;
  int32_t views_reused_subsumed = 0;
  int32_t compensation_nodes_added = 0;
  int32_t views_fallback = 0;
  bool lookup_degraded = false;
  bool plan_cache_hit = false;
};

/// \brief The nondeterministic slice: wall-clock measurements that vary run
/// to run (estimated_cost included — feedback statistics embed observed
/// times). Kept out of JobOutcome so byte-identity stays checkable.
struct WireTimings {
  double latency_seconds = 0;
  double cpu_seconds = 0;
  double compile_seconds = 0;
  double metadata_lookup_seconds = 0;
  double queue_seconds = 0;
  double estimated_cost = 0;
};

struct SubmitResultResponse {
  uint64_t ticket = 0;
  JobOutcome outcome;
  WireTimings timings;
};

struct AcceptedResponse {
  uint64_t ticket = 0;
};

enum class WireJobState : uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
};

struct StatusResultResponse {
  uint64_t ticket = 0;
  WireJobState state = WireJobState::kQueued;
  /// Valid when state == kDone.
  JobOutcome outcome;
  WireTimings timings;
  /// Valid when state == kFailed.
  uint8_t error_code = 0;
  std::string error_message;
};

struct ProfileResultResponse {
  uint64_t ticket = 0;
  /// The per-job span-tree profile JSON (net.request root with the job's
  /// compile/execute children), same schema as the in-process exporter.
  std::string profile_json;
};

struct ServerStatsResponse {
  uint64_t accepted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_conn_cap = 0;
  uint64_t shed_draining = 0;
  uint64_t shed_injected = 0;
  uint64_t queue_depth = 0;
  uint64_t inflight = 0;
  uint64_t connections = 0;
};

struct ErrorResponse {
  /// StatusCode of the failure, range-checked on decode.
  uint8_t code = 0;
  std::string message;
};

enum class ShedReason : uint8_t {
  kQueueFull = 0,
  kConnCap = 1,
  kDraining = 2,
  kInjected = 3,
};

struct RetryAfterResponse {
  ShedReason reason = ShedReason::kQueueFull;
  uint32_t retry_after_ms = 0;
};

// ---------------------------------------------------------------------------
// Payload codecs. Encode appends to a WireWriter; Decode consumes a full
// payload (trailing bytes are an error).

void EncodeSubmitRequest(const SubmitRequest& req, WireWriter* w);
Status DecodeSubmitRequest(std::string_view payload, SubmitRequest* out);

void EncodeStatusQueryRequest(const StatusQueryRequest& req, WireWriter* w);
Status DecodeStatusQueryRequest(std::string_view payload,
                                StatusQueryRequest* out);

void EncodeProfileFetchRequest(const ProfileFetchRequest& req, WireWriter* w);
Status DecodeProfileFetchRequest(std::string_view payload,
                                 ProfileFetchRequest* out);

/// Encodes only the deterministic slice; this is the byte string the e2e
/// byte-identity test compares between wire and in-process submissions.
std::string EncodeJobOutcome(const JobOutcome& outcome);
Status DecodeJobOutcome(WireReader* r, JobOutcome* out);

void EncodeSubmitResultResponse(const SubmitResultResponse& resp,
                                WireWriter* w);
Status DecodeSubmitResultResponse(std::string_view payload,
                                  SubmitResultResponse* out);

void EncodeAcceptedResponse(const AcceptedResponse& resp, WireWriter* w);
Status DecodeAcceptedResponse(std::string_view payload, AcceptedResponse* out);

void EncodeStatusResultResponse(const StatusResultResponse& resp,
                                WireWriter* w);
Status DecodeStatusResultResponse(std::string_view payload,
                                  StatusResultResponse* out);

void EncodeProfileResultResponse(const ProfileResultResponse& resp,
                                 WireWriter* w);
Status DecodeProfileResultResponse(std::string_view payload,
                                   ProfileResultResponse* out);

void EncodeServerStatsResponse(const ServerStatsResponse& resp, WireWriter* w);
Status DecodeServerStatsResponse(std::string_view payload,
                                 ServerStatsResponse* out);

void EncodeErrorResponse(const ErrorResponse& resp, WireWriter* w);
Status DecodeErrorResponse(std::string_view payload, ErrorResponse* out);

void EncodeRetryAfterResponse(const RetryAfterResponse& resp, WireWriter* w);
Status DecodeRetryAfterResponse(std::string_view payload,
                                RetryAfterResponse* out);

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_WIRE_H_
