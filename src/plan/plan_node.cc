#include "plan/plan_node.h"

#include <cassert>
#include <unordered_set>

#include "common/string_util.h"

namespace cloudviews {

const char* OpKindToString(OpKind k) {
  switch (k) {
    case OpKind::kExtract:
      return "Extract";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kProject:
      return "Project";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kExchange:
      return "Exchange";
    case OpKind::kUnionAll:
      return "UnionAll";
    case OpKind::kProcess:
      return "Process";
    case OpKind::kTop:
      return "Top";
    case OpKind::kSpool:
      return "Spool";
    case OpKind::kViewRead:
      return "ViewRead";
    case OpKind::kOutput:
      return "Output";
    case OpKind::kReduce:
      return "Reduce";
  }
  return "?";
}

namespace {

/// Drops property columns that no longer exist in the schema; a destroyed
/// partitioning/sort cannot be claimed downstream.
PhysicalProperties RestrictToSchema(PhysicalProperties props,
                                    const Schema& schema) {
  for (const auto& c : props.partitioning.columns) {
    if (!schema.HasField(c)) {
      props.partitioning = Partitioning{};
      break;
    }
  }
  SortOrder kept;
  for (const auto& k : props.sort_order.keys) {
    if (!schema.HasField(k.column)) break;  // prefix property
    kept.keys.push_back(k);
  }
  props.sort_order = kept;
  return props;
}

}  // namespace

Status PlanNode::Bind() {
  for (auto& c : children_) {
    CV_RETURN_NOT_OK(c->Bind());
  }
  CV_RETURN_NOT_OK(DeriveSchema());
  bound_ = true;
  return Status::OK();
}

Hash128 PlanNode::SubtreeHash(SignatureMode mode) const {
  HashBuilder hb;
  hb.Add(static_cast<int>(kind_));
  hb.Add(static_cast<uint64_t>(children_.size()));
  for (const auto& c : children_) hb.Add(c->SubtreeHash(mode));
  HashLocal(&hb, mode);
  return hb.Finish();
}

PhysicalProperties PlanNode::Delivered() const {
  if (children_.empty()) return PhysicalProperties{};
  return RestrictToSchema(children_[0]->Delivered(), output_schema_);
}

PhysicalProperties PlanNode::RequiredFromChild(size_t) const {
  return PhysicalProperties{};
}

std::string PlanNode::Label() const { return OpKindToString(kind_); }

void PlanNode::TreeStringInternal(std::string* out, int depth) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(Label());
  if (est_.rows > 0) {
    out->append(StrFormat("  [rows=%.0f cost=%.1f%s]", est_.rows, est_.cost,
                          est_.from_feedback ? " fb" : ""));
  }
  out->append("\n");
  for (const auto& c : children_) c->TreeStringInternal(out, depth + 1);
}

std::string PlanNode::TreeString() const {
  std::string out;
  TreeStringInternal(&out, 0);
  return out;
}

size_t PlanNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

namespace {
int AssignIdsInternal(PlanNode* node, int next) {
  node->set_id(next++);
  for (auto& c : node->mutable_children()) {
    next = AssignIdsInternal(c.get(), next);
  }
  return next;
}
}  // namespace

int AssignNodeIds(PlanNode* root) { return AssignIdsInternal(root, 0); }

void CollectNodes(PlanNode* root, std::vector<PlanNode*>* out) {
  out->push_back(root);
  for (auto& c : root->mutable_children()) CollectNodes(c.get(), out);
}

void CollectNodes(const PlanNodePtr& root, std::vector<PlanNode*>* out) {
  CollectNodes(root.get(), out);
}

// --- ExtractNode ------------------------------------------------------------

Status ExtractNode::DeriveSchema() {
  if (declared_schema_.num_fields() == 0) {
    return Status::InvalidArgument("EXTRACT with empty schema for stream '" +
                                   stream_name_ + "'");
  }
  output_schema_ = declared_schema_;
  return Status::OK();
}

void ExtractNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(std::string_view(template_name_));
  declared_schema_.HashInto(hb);
  if (mode == SignatureMode::kPrecise) {
    // Concrete stream + data GUID: new data in the next recurring instance
    // (or a GDPR-driven rewrite of existing data) changes the precise
    // signature and invalidates stale views (Sec 8).
    hb->Add(std::string_view(stream_name_));
    hb->Add(std::string_view(guid_));
  }
}

std::string ExtractNode::Label() const {
  return StrFormat("Extract %s", stream_name_.c_str());
}

PlanNodePtr ExtractNode::Clone() const {
  return std::make_shared<ExtractNode>(template_name_, stream_name_, guid_,
                                       declared_schema_);
}

// --- ViewReadNode -----------------------------------------------------------

Status ViewReadNode::DeriveSchema() {
  output_schema_ = declared_schema_;
  return Status::OK();
}

Hash128 ViewReadNode::SubtreeHash(SignatureMode mode) const {
  // Hash as the computation this scan replaced so that signatures of
  // enclosing subgraphs are invariant under rewriting.
  return mode == SignatureMode::kPrecise ? precise_signature_
                                         : normalized_signature_;
}

void ViewReadNode::HashLocal(HashBuilder* hb, SignatureMode) const {
  hb->Add(std::string_view(view_path_));
  hb->Add(precise_signature_);
}

std::string ViewReadNode::Label() const {
  return StrFormat("ViewRead %s", view_path_.c_str());
}

PlanNodePtr ViewReadNode::Clone() const {
  return std::make_shared<ViewReadNode>(
      view_path_, normalized_signature_, precise_signature_, declared_schema_,
      props_, actual_rows_, actual_bytes_);
}

// --- FilterNode -------------------------------------------------------------

Status FilterNode::DeriveSchema() {
  CV_RETURN_NOT_OK(predicate_->Bind(child()->output_schema()));
  if (predicate_->output_type() != DataType::kBool) {
    return Status::TypeError("filter predicate must be bool, got " +
                             std::string(DataTypeToString(
                                 predicate_->output_type())));
  }
  output_schema_ = child()->output_schema();
  return Status::OK();
}

void FilterNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  predicate_->HashInto(hb, mode);
}

std::string FilterNode::Label() const {
  return "Filter " + predicate_->ToString();
}

PlanNodePtr FilterNode::Clone() const {
  return std::make_shared<FilterNode>(child()->Clone(), predicate_->Clone());
}

// --- ProjectNode ------------------------------------------------------------

Status ProjectNode::DeriveSchema() {
  Schema out;
  std::unordered_set<std::string> seen;
  for (auto& ne : exprs_) {
    CV_RETURN_NOT_OK(ne.expr->Bind(child()->output_schema()));
    if (!seen.insert(ne.name).second) {
      return Status::InvalidArgument("duplicate projected column '" +
                                     ne.name + "'");
    }
    out.AddField(ne.name, ne.expr->output_type());
  }
  output_schema_ = std::move(out);
  return Status::OK();
}

void ProjectNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(static_cast<uint64_t>(exprs_.size()));
  for (const auto& ne : exprs_) {
    ne.expr->HashInto(hb, mode);
    hb->Add(std::string_view(ne.name));
  }
}

std::string ProjectNode::Label() const {
  std::vector<std::string> parts;
  for (const auto& ne : exprs_) {
    parts.push_back(ne.expr->ToString() + " AS " + ne.name);
  }
  return "Project " + Join(parts, ", ");
}

PlanNodePtr ProjectNode::Clone() const {
  std::vector<NamedExpr> exprs;
  for (const auto& ne : exprs_) exprs.push_back({ne.expr->Clone(), ne.name});
  return std::make_shared<ProjectNode>(child()->Clone(), std::move(exprs));
}

// --- JoinNode ---------------------------------------------------------------

std::vector<std::string> JoinNode::LeftKeys() const {
  std::vector<std::string> ks;
  for (const auto& [l, r] : keys_) ks.push_back(l);
  return ks;
}

std::vector<std::string> JoinNode::RightKeys() const {
  std::vector<std::string> ks;
  for (const auto& [l, r] : keys_) ks.push_back(r);
  return ks;
}

Status JoinNode::DeriveSchema() {
  const Schema& ls = children_[0]->output_schema();
  const Schema& rs = children_[1]->output_schema();
  if (keys_.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  for (const auto& [l, r] : keys_) {
    if (!ls.HasField(l)) {
      return Status::InvalidArgument("left join key '" + l + "' not found");
    }
    if (!rs.HasField(r)) {
      return Status::InvalidArgument("right join key '" + r + "' not found");
    }
  }
  Schema out;
  std::unordered_set<std::string> seen;
  for (const auto& f : ls.fields()) {
    seen.insert(f.name);
    out.AddField(f.name, f.type);
  }
  for (const auto& f : rs.fields()) {
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument(
          "ambiguous column '" + f.name +
          "' in join output; rename before joining");
    }
    out.AddField(f.name, f.type);
  }
  output_schema_ = std::move(out);
  return Status::OK();
}

void JoinNode::HashLocal(HashBuilder* hb, SignatureMode) const {
  hb->Add(static_cast<int>(type_));
  hb->Add(static_cast<int>(algorithm_));
  hb->Add(static_cast<uint64_t>(keys_.size()));
  for (const auto& [l, r] : keys_) {
    hb->Add(std::string_view(l));
    hb->Add(std::string_view(r));
  }
}

PhysicalProperties JoinNode::Delivered() const {
  PhysicalProperties props;
  props.partitioning = Partitioning::Hash(LeftKeys(), 0);
  if (algorithm_ == JoinAlgorithm::kMerge) {
    for (const auto& k : LeftKeys()) {
      props.sort_order.keys.push_back({k, true});
    }
  }
  return props;
}

PhysicalProperties JoinNode::RequiredFromChild(size_t i) const {
  PhysicalProperties req;
  auto keys = i == 0 ? LeftKeys() : RightKeys();
  req.partitioning = Partitioning::Hash(keys, 0);
  if (algorithm_ == JoinAlgorithm::kMerge) {
    for (const auto& k : keys) req.sort_order.keys.push_back({k, true});
  }
  return req;
}

std::string JoinNode::Label() const {
  std::vector<std::string> parts;
  for (const auto& [l, r] : keys_) parts.push_back(l + "=" + r);
  const char* alg = algorithm_ == JoinAlgorithm::kHash
                        ? "HashJoin"
                        : (algorithm_ == JoinAlgorithm::kMerge ? "MergeJoin"
                                                               : "Join");
  return StrFormat("%s%s (%s)", alg,
                   type_ == JoinType::kLeftOuter ? " LEFT" : "",
                   Join(parts, ", ").c_str());
}

PlanNodePtr JoinNode::Clone() const {
  auto n = std::make_shared<JoinNode>(children_[0]->Clone(),
                                      children_[1]->Clone(), type_, keys_);
  n->algorithm_ = algorithm_;
  return n;
}

// --- AggregateNode ----------------------------------------------------------

Status AggregateNode::DeriveSchema() {
  const Schema& in = child()->output_schema();
  Schema out;
  for (const auto& k : group_keys_) {
    int idx = in.FieldIndex(k);
    if (idx < 0) {
      return Status::InvalidArgument("group key '" + k + "' not found");
    }
    out.AddField(k, in.field(static_cast<size_t>(idx)).type);
  }
  for (const auto& agg : aggregates_) {
    CV_ASSIGN_OR_RETURN(DataType t, agg.Bind(in));
    out.AddField(agg.output_name, t);
  }
  output_schema_ = std::move(out);
  return Status::OK();
}

void AggregateNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(static_cast<int>(algorithm_));
  hb->Add(static_cast<uint64_t>(group_keys_.size()));
  for (const auto& k : group_keys_) hb->Add(std::string_view(k));
  hb->Add(static_cast<uint64_t>(aggregates_.size()));
  for (const auto& a : aggregates_) a.HashInto(hb, mode);
}

PhysicalProperties AggregateNode::Delivered() const {
  PhysicalProperties props;
  if (!group_keys_.empty()) {
    props.partitioning = Partitioning::Hash(group_keys_, 0);
    if (algorithm_ == AggAlgorithm::kStream) {
      for (const auto& k : group_keys_) {
        props.sort_order.keys.push_back({k, true});
      }
    }
  } else {
    props.partitioning = Partitioning::Singleton();
  }
  return props;
}

PhysicalProperties AggregateNode::RequiredFromChild(size_t) const {
  PhysicalProperties req;
  if (group_keys_.empty()) {
    req.partitioning = Partitioning::Singleton();
    return req;
  }
  req.partitioning = Partitioning::Hash(group_keys_, 0);
  if (algorithm_ == AggAlgorithm::kStream) {
    for (const auto& k : group_keys_) {
      req.sort_order.keys.push_back({k, true});
    }
  }
  return req;
}

std::string AggregateNode::Label() const {
  std::vector<std::string> parts;
  for (const auto& a : aggregates_) parts.push_back(a.ToString());
  const char* alg = algorithm_ == AggAlgorithm::kHash
                        ? "HashGbAgg"
                        : (algorithm_ == AggAlgorithm::kStream ? "StreamGbAgg"
                                                               : "GbAgg");
  return StrFormat("%s [%s] %s", alg, Join(group_keys_, ",").c_str(),
                   Join(parts, ", ").c_str());
}

PlanNodePtr AggregateNode::Clone() const {
  std::vector<AggregateSpec> aggs;
  for (const auto& a : aggregates_) aggs.push_back(a.Clone());
  auto n = std::make_shared<AggregateNode>(child()->Clone(), group_keys_,
                                           std::move(aggs));
  n->algorithm_ = algorithm_;
  return n;
}

// --- SortNode ---------------------------------------------------------------

Status SortNode::DeriveSchema() {
  const Schema& in = child()->output_schema();
  for (const auto& k : keys_) {
    if (!in.HasField(k.column)) {
      return Status::InvalidArgument("sort key '" + k.column + "' not found");
    }
  }
  output_schema_ = in;
  return Status::OK();
}

void SortNode::HashLocal(HashBuilder* hb, SignatureMode) const {
  SortOrder so{keys_};
  so.HashInto(hb);
}

PhysicalProperties SortNode::Delivered() const {
  PhysicalProperties props = PlanNode::Delivered();
  props.sort_order = SortOrder{keys_};
  return props;
}

std::string SortNode::Label() const {
  return "Sort " + SortOrder{keys_}.ToString();
}

PlanNodePtr SortNode::Clone() const {
  return std::make_shared<SortNode>(child()->Clone(), keys_);
}

// --- ExchangeNode -----------------------------------------------------------

Status ExchangeNode::DeriveSchema() {
  const Schema& in = child()->output_schema();
  for (const auto& c : partitioning_.columns) {
    if (!in.HasField(c)) {
      return Status::InvalidArgument("partition column '" + c +
                                     "' not found");
    }
  }
  output_schema_ = in;
  return Status::OK();
}

void ExchangeNode::HashLocal(HashBuilder* hb, SignatureMode) const {
  partitioning_.HashInto(hb);
}

PhysicalProperties ExchangeNode::Delivered() const {
  PhysicalProperties props;
  props.partitioning = partitioning_;
  // A shuffle destroys intra-partition order.
  return props;
}

std::string ExchangeNode::Label() const {
  return "Exchange " + partitioning_.ToString();
}

PlanNodePtr ExchangeNode::Clone() const {
  return std::make_shared<ExchangeNode>(child()->Clone(), partitioning_);
}

// --- UnionAllNode -----------------------------------------------------------

Status UnionAllNode::DeriveSchema() {
  if (children_.empty()) {
    return Status::InvalidArgument("UnionAll requires at least one input");
  }
  const Schema& first = children_[0]->output_schema();
  for (size_t i = 1; i < children_.size(); ++i) {
    if (!(children_[i]->output_schema() == first)) {
      return Status::TypeError(
          "UnionAll inputs must share a schema: [" + first.ToString() +
          "] vs [" + children_[i]->output_schema().ToString() + "]");
    }
  }
  output_schema_ = first;
  return Status::OK();
}

void UnionAllNode::HashLocal(HashBuilder*, SignatureMode) const {}

PlanNodePtr UnionAllNode::Clone() const {
  std::vector<PlanNodePtr> kids;
  for (const auto& c : children_) kids.push_back(c->Clone());
  return std::make_shared<UnionAllNode>(std::move(kids));
}

// --- ProcessNode ------------------------------------------------------------

Status ProcessNode::DeriveSchema() {
  // An empty PRODUCE clause means the processor preserves its input schema.
  output_schema_ = declared_schema_.num_fields() > 0
                       ? declared_schema_
                       : child()->output_schema();
  return Status::OK();
}

void ProcessNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(std::string_view(processor_));
  hb->Add(std::string_view(library_));
  if (mode == SignatureMode::kPrecise) {
    hb->Add(std::string_view(version_));
  }
  declared_schema_.HashInto(hb);
}

std::string ProcessNode::Label() const {
  return StrFormat("Process %s[%s@%s]", processor_.c_str(), library_.c_str(),
                   version_.c_str());
}

PlanNodePtr ProcessNode::Clone() const {
  return std::make_shared<ProcessNode>(child()->Clone(), processor_,
                                       library_, version_, declared_schema_);
}

// --- TopNode ----------------------------------------------------------------

Status TopNode::DeriveSchema() {
  if (limit_ < 0) return Status::InvalidArgument("negative TOP limit");
  output_schema_ = child()->output_schema();
  return Status::OK();
}

void TopNode::HashLocal(HashBuilder* hb, SignatureMode) const {
  hb->Add(limit_);
}

std::string TopNode::Label() const {
  return StrFormat("Top %lld", static_cast<long long>(limit_));
}

PlanNodePtr TopNode::Clone() const {
  return std::make_shared<TopNode>(child()->Clone(), limit_);
}

// --- SpoolNode --------------------------------------------------------------

Status SpoolNode::DeriveSchema() {
  output_schema_ = child()->output_schema();
  return Status::OK();
}

Hash128 SpoolNode::SubtreeHash(SignatureMode mode) const {
  // A spool is computation-transparent: its subtree computes exactly what
  // the child computes.
  return child()->SubtreeHash(mode);
}

void SpoolNode::HashLocal(HashBuilder*, SignatureMode) const {}

std::string SpoolNode::Label() const {
  return StrFormat("Spool -> %s %s", view_path_.c_str(),
                   design_.ToString().c_str());
}

PlanNodePtr SpoolNode::Clone() const {
  auto n = std::make_shared<SpoolNode>(child()->Clone(), view_path_,
                                       normalized_signature_,
                                       precise_signature_, design_);
  n->set_lifetime_seconds(lifetime_seconds_);
  return n;
}

// --- ReduceNode ---------------------------------------------------------------

Status ReduceNode::DeriveSchema() {
  const Schema& in = child()->output_schema();
  if (keys_.empty()) {
    return Status::InvalidArgument("REDUCE requires at least one key");
  }
  for (const auto& k : keys_) {
    if (!in.HasField(k)) {
      return Status::InvalidArgument("reduce key '" + k + "' not found");
    }
  }
  output_schema_ =
      declared_schema_.num_fields() > 0 ? declared_schema_ : in;
  return Status::OK();
}

void ReduceNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  hb->Add(static_cast<uint64_t>(keys_.size()));
  for (const auto& k : keys_) hb->Add(std::string_view(k));
  hb->Add(std::string_view(processor_));
  hb->Add(std::string_view(library_));
  if (mode == SignatureMode::kPrecise) {
    hb->Add(std::string_view(version_));
  }
  declared_schema_.HashInto(hb);
}

PhysicalProperties ReduceNode::Delivered() const {
  PhysicalProperties props;
  props.partitioning = Partitioning::Hash(keys_, 0);
  return props;
}

PhysicalProperties ReduceNode::RequiredFromChild(size_t) const {
  // Groups must be co-located and contiguous.
  PhysicalProperties req;
  req.partitioning = Partitioning::Hash(keys_, 0);
  for (const auto& k : keys_) req.sort_order.keys.push_back({k, true});
  return req;
}

std::string ReduceNode::Label() const {
  return StrFormat("Reduce [%s] %s[%s@%s]", Join(keys_, ",").c_str(),
                   processor_.c_str(), library_.c_str(), version_.c_str());
}

PlanNodePtr ReduceNode::Clone() const {
  return std::make_shared<ReduceNode>(child()->Clone(), keys_, processor_,
                                      library_, version_, declared_schema_);
}

// --- OutputNode -------------------------------------------------------------

Status OutputNode::DeriveSchema() {
  const Schema& in = child()->output_schema();
  for (const auto& c : declared_design_.partitioning.columns) {
    if (!in.HasField(c)) {
      return Status::InvalidArgument("CLUSTERED BY column '" + c +
                                     "' not found");
    }
  }
  for (const auto& k : declared_design_.sort_order.keys) {
    if (!in.HasField(k.column)) {
      return Status::InvalidArgument("SORTED BY column '" + k.column +
                                     "' not found");
    }
  }
  output_schema_ = in;
  return Status::OK();
}

void OutputNode::HashLocal(HashBuilder* hb, SignatureMode mode) const {
  if (mode == SignatureMode::kPrecise) {
    hb->Add(std::string_view(stream_name_));
  }
  declared_design_.HashInto(hb);
}

PhysicalProperties OutputNode::RequiredFromChild(size_t) const {
  return declared_design_;
}

std::string OutputNode::Label() const {
  std::string out = StrFormat("Output %s", stream_name_.c_str());
  if (declared_design_.IsSpecified()) {
    out += " " + declared_design_.ToString();
  }
  return out;
}

PlanNodePtr OutputNode::Clone() const {
  auto n = std::make_shared<OutputNode>(child()->Clone(), stream_name_);
  n->set_declared_design(declared_design_);
  return n;
}

}  // namespace cloudviews
