#ifndef CLOUDVIEWS_EXPR_EXPR_H_
#define CLOUDVIEWS_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "types/batch.h"
#include "types/schema.h"
#include "types/value.h"

namespace cloudviews {

/// Controls how much of a plan/expression feeds a signature hash (Sec 3):
/// precise signatures include recurring parameter values, input GUIDs, and
/// user-code versions; normalized signatures abstract them away so the same
/// template matches across recurring instances.
enum class SignatureMode { kPrecise = 0, kNormalized = 1 };

enum class ExprKind : int {
  kColumnRef = 0,
  kLiteral = 1,
  kParameter = 2,
  kComparison = 3,
  kArithmetic = 4,
  kLogical = 5,
  kFunctionCall = 6,
  kUdfCall = 7,
};

enum class CompareOp : int { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithmeticOp : int { kAdd, kSub, kMul, kDiv, kMod };
enum class LogicalOp : int { kAnd, kOr, kNot };

const char* CompareOpToString(CompareOp op);
const char* ArithmeticOpToString(ArithmeticOp op);
const char* LogicalOpToString(LogicalOp op);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Base class of scalar expression trees.
///
/// Expressions are immutable after Bind(). Bind resolves column references
/// against an input schema and infers output types; Evaluate produces a
/// column over a batch (default implementation loops EvaluateRow).
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  DataType output_type() const { return output_type_; }
  bool bound() const { return bound_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Resolves column references and infers output types, recursively.
  virtual Status Bind(const Schema& input);

  /// Evaluates the expression for a single row.
  virtual Value EvaluateRow(const Batch& input, size_t row) const = 0;

  /// Evaluates over all rows of a batch into a fresh column.
  virtual Status Evaluate(const Batch& input, Column* out) const;

  /// Adds this node (and children) to a signature hash. Parameter values
  /// and recurring literals are skipped in normalized mode.
  virtual void HashInto(HashBuilder* hb, SignatureMode mode) const;

  virtual std::string ToString() const = 0;

  /// Deep copy (unbound state is copied as-is).
  virtual ExprPtr Clone() const = 0;

 protected:
  Expr(ExprKind kind, std::vector<ExprPtr> children)
      : kind_(kind), children_(std::move(children)) {}

  ExprKind kind_;
  std::vector<ExprPtr> children_;
  // sig-skip(hash): binding state derived from the input schema at Bind
  // time; the signature identifies the unbound computation
  DataType output_type_ = DataType::kInt64;
  // sig-skip(hash): binding progress flag, derived, never identity
  bool bound_ = false;
};

/// Reference to an input column by name; index resolved at Bind time.
class ColumnRefExpr : public Expr {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expr(ExprKind::kColumnRef, {}), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int index() const { return index_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  Status Evaluate(const Batch& input, Column* out) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override { return name_; }
  ExprPtr Clone() const override;

 private:
  std::string name_;
  // sig-skip(hash, clone): resolved from name_ against the input schema at
  // Bind time; Clone returns an unbound expr the serve paths re-Bind
  int index_ = -1;
};

/// Constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral, {}), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override { return value_.ToString(); }
  ExprPtr Clone() const override;

 private:
  Value value_;
};

/// \brief A recurring-template hole (e.g. `{date}`) bound to a concrete
/// value for one recurring instance.
///
/// Normalized signatures hash only the parameter name; precise signatures
/// also hash the bound value, which is what invalidates reuse when data or
/// predicates change (Sec 3, Sec 8 "Updates & privacy regulations").
class ParameterExpr : public Expr {
 public:
  ParameterExpr(std::string name, Value bound_value)
      : Expr(ExprKind::kParameter, {}),
        name_(std::move(name)),
        value_(std::move(bound_value)) {}

  const std::string& name() const { return name_; }
  const Value& value() const { return value_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override {
    return "{" + name_ + "=" + value_.ToString() + "}";
  }
  ExprPtr Clone() const override;

 private:
  std::string name_;
  Value value_;
};

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison, {std::move(left), std::move(right)}),
        op_(op) {}

  CompareOp op() const { return op_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  CompareOp op_;
};

class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithmeticOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArithmetic, {std::move(left), std::move(right)}),
        op_(op) {}

  ArithmeticOp op() const { return op_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  ArithmeticOp op_;
};

class LogicalExpr : public Expr {
 public:
  /// kNot takes one child; kAnd/kOr take two.
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> children)
      : Expr(ExprKind::kLogical, std::move(children)), op_(op) {}

  LogicalOp op() const { return op_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  LogicalOp op_;
};

/// Built-in scalar function call; see FunctionRegistry for the catalog.
class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFunctionCall, std::move(args)),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  std::string name_;
};

/// \brief Call into registered user code (Sec 1.4: correctness in the
/// presence of user code).
///
/// The owning library and its version are part of the *precise* signature:
/// republishing a library invalidates previously materialized views built
/// from it.
class UdfCallExpr : public Expr {
 public:
  UdfCallExpr(std::string udf_name, std::string library,
              std::string library_version, std::vector<ExprPtr> args)
      : Expr(ExprKind::kUdfCall, std::move(args)),
        udf_name_(std::move(udf_name)),
        library_(std::move(library)),
        library_version_(std::move(library_version)) {}

  const std::string& udf_name() const { return udf_name_; }
  const std::string& library() const { return library_; }
  const std::string& library_version() const { return library_version_; }

  Status Bind(const Schema& input) override;
  Value EvaluateRow(const Batch& input, size_t row) const override;
  void HashInto(HashBuilder* hb, SignatureMode mode) const override;
  std::string ToString() const override;
  ExprPtr Clone() const override;

 private:
  std::string udf_name_;
  std::string library_;
  std::string library_version_;
};

// ---------------------------------------------------------------------------
// Construction helpers (used heavily by plan builders and tests).
// ---------------------------------------------------------------------------

ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* s);
ExprPtr Lit(bool v);
ExprPtr DateLit(const std::string& iso);
ExprPtr Param(std::string name, Value v);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr Func(std::string name, std::vector<ExprPtr> args);
ExprPtr Udf(std::string name, std::string library, std::string version,
            std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Analysis / rewrite utilities (used by optimizer rules).
// ---------------------------------------------------------------------------

/// Adds the names of all columns referenced by `expr` to `out`.
void CollectColumnRefs(const Expr& expr, std::set<std::string>* out);

/// Rebuilds the expression with every column reference replaced by
/// `replace(name)`; non-reference nodes are deep-copied. Returns nullptr if
/// `replace` returns nullptr for any referenced column (substitution not
/// possible).
ExprPtr SubstituteColumnRefs(
    const Expr& expr,
    const std::function<ExprPtr(const std::string&)>& replace);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXPR_EXPR_H_
