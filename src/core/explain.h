#ifndef CLOUDVIEWS_CORE_EXPLAIN_H_
#define CLOUDVIEWS_CORE_EXPLAIN_H_

#include <string>

#include "analyzer/analyzer.h"
#include "runtime/job_service.h"

namespace cloudviews {

/// \brief Debuggability (Sec 4, goal 6): a human-readable account of what
/// CloudViews did to one job — which views were created or used, who
/// produced each view (traced from the physical path), what the metadata
/// lookup cost, and the executed plan itself for replay.
std::string ExplainJob(const JobResult& result);

/// \brief EXPLAIN ANALYZE-style rendering: the executed plan tree with each
/// operator's observed rows / bytes / wall / CPU figures inline, plus the
/// job's lifecycle stage timings when the result carries a trace. Shared
/// (multi-parent) subtrees render once and are referenced afterwards.
std::string ExplainAnalyze(const JobResult& result);

/// \brief Machine-readable per-job profile: one JSON document merging the
/// job's span tree (lifecycle trace) with the per-operator
/// PlanRuntimeStats, schema documented in docs/job_profile_schema.md.
std::string JobProfileJson(const JobResult& result);

/// \brief Drill-down into *why* a computation was selected for
/// materialization (Sec 4 goal 6 / Sec 5.5): frequency, observed runtime,
/// utility, storage cost, design popularity, lifetime, and the jobs/users
/// involved, for the top `limit` selections of an analysis.
std::string ExplainViewSelection(const AnalysisResult& analysis,
                                 size_t limit = 10);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_CORE_EXPLAIN_H_
