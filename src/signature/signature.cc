#include "signature/signature.h"

namespace cloudviews {

SubgraphSignatures ComputeSignatures(const PlanNode& node) {
  SubgraphSignatures sigs;
  sigs.precise = node.SubtreeHash(SignatureMode::kPrecise);
  sigs.normalized = node.SubtreeHash(SignatureMode::kNormalized);
  return sigs;
}

bool IsReusableRoot(const PlanNode& node) {
  switch (node.kind()) {
    case OpKind::kSpool:
    case OpKind::kViewRead:
      return false;
    default:
      return true;
  }
}

namespace {
void EnumerateInternal(PlanNode* node, std::vector<SubgraphEntry>* out) {
  if (IsReusableRoot(*node)) {
    out->push_back({node, ComputeSignatures(*node), node->SubtreeSize()});
  }
  for (auto& c : node->mutable_children()) {
    EnumerateInternal(c.get(), out);
  }
}
}  // namespace

std::vector<SubgraphEntry> EnumerateSubgraphs(const PlanNodePtr& root) {
  std::vector<SubgraphEntry> out;
  EnumerateInternal(root.get(), &out);
  return out;
}

}  // namespace cloudviews
