file(REMOVE_RECURSE
  "CMakeFiles/fig04_operator_overlap.dir/fig04_operator_overlap.cc.o"
  "CMakeFiles/fig04_operator_overlap.dir/fig04_operator_overlap.cc.o.d"
  "fig04_operator_overlap"
  "fig04_operator_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_operator_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
