file(REMOVE_RECURSE
  "CMakeFiles/fig12_production_cpu.dir/fig12_production_cpu.cc.o"
  "CMakeFiles/fig12_production_cpu.dir/fig12_production_cpu.cc.o.d"
  "fig12_production_cpu"
  "fig12_production_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_production_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
