#include "signature/containment.h"

#include <algorithm>
#include <set>

#include "signature/signature.h"

namespace cloudviews {

namespace {

/// Mirrors a comparison op when the column is on the right-hand side
/// (5 < x  ==  x > 5).
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // Eq / Ne are symmetric
  }
}

/// Extracts `column <op> constant` from a comparison conjunct. Returns
/// false for anything the interval analysis cannot interpret (two
/// columns, two constants, Ne, null constants, non-comparisons).
bool ExtractBound(const Expr& e, std::string* column, CompareOp* op,
                  Value* value) {
  if (e.kind() != ExprKind::kComparison) return false;
  const auto& cmp = static_cast<const ComparisonExpr&>(e);
  const Expr* lhs = cmp.children()[0].get();
  const Expr* rhs = cmp.children()[1].get();
  auto constant = [](const Expr* x, Value* out) {
    if (x->kind() == ExprKind::kLiteral) {
      *out = static_cast<const LiteralExpr*>(x)->value();
      return true;
    }
    if (x->kind() == ExprKind::kParameter) {
      *out = static_cast<const ParameterExpr*>(x)->value();
      return true;
    }
    return false;
  };
  bool mirrored;
  const Expr* col_side;
  if (lhs->kind() == ExprKind::kColumnRef && constant(rhs, value)) {
    col_side = lhs;
    mirrored = false;
  } else if (rhs->kind() == ExprKind::kColumnRef && constant(lhs, value)) {
    col_side = rhs;
    mirrored = true;
  } else {
    return false;
  }
  if (value->is_null()) return false;
  CompareOp o = cmp.op();
  if (o == CompareOp::kNe) return false;
  *column = static_cast<const ColumnRefExpr*>(col_side)->name();
  *op = mirrored ? MirrorOp(o) : o;
  return true;
}

}  // namespace

void ColumnInterval::IntersectLower(const Value& v, bool inclusive) {
  if (!has_lower) {
    has_lower = true;
    lower = v;
    lower_inclusive = inclusive;
    return;
  }
  int c = v.Compare(lower);
  if (c > 0) {
    lower = v;
    lower_inclusive = inclusive;
  } else if (c == 0) {
    lower_inclusive = lower_inclusive && inclusive;
  }
}

void ColumnInterval::IntersectUpper(const Value& v, bool inclusive) {
  if (!has_upper) {
    has_upper = true;
    upper = v;
    upper_inclusive = inclusive;
    return;
  }
  int c = v.Compare(upper);
  if (c < 0) {
    upper = v;
    upper_inclusive = inclusive;
  } else if (c == 0) {
    upper_inclusive = upper_inclusive && inclusive;
  }
}

bool ColumnInterval::Contains(const ColumnInterval& inner) const {
  if (has_lower) {
    if (!inner.has_lower) return false;
    int c = inner.lower.Compare(lower);
    if (c < 0) return false;
    if (c == 0 && inner.lower_inclusive && !lower_inclusive) return false;
  }
  if (has_upper) {
    if (!inner.has_upper) return false;
    int c = inner.upper.Compare(upper);
    if (c > 0) return false;
    if (c == 0 && inner.upper_inclusive && !upper_inclusive) return false;
  }
  return true;
}

const ColumnInterval* PredicateFeatures::FindInterval(
    const std::string& column) const {
  for (const auto& iv : intervals) {
    if (iv.column == column) return &iv;
  }
  return nullptr;
}

bool PredicateFeatures::Contains(const PredicateFeatures& query) const {
  for (const auto& iv : intervals) {
    const ColumnInterval* q = query.FindInterval(iv.column);
    if (q == nullptr) return false;  // query may keep NULL / wider rows
    if (!iv.Contains(*q)) return false;
  }
  for (const auto& h : opaque) {
    if (!std::binary_search(query.conjuncts.begin(), query.conjuncts.end(),
                            h)) {
      return false;
    }
  }
  return true;
}

void FlattenConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out) {
  if (!predicate) return;
  if (predicate->kind() == ExprKind::kLogical) {
    const auto& lg = static_cast<const LogicalExpr&>(*predicate);
    if (lg.op() == LogicalOp::kAnd) {
      FlattenConjuncts(predicate->children()[0], out);
      FlattenConjuncts(predicate->children()[1], out);
      return;
    }
  }
  out->push_back(predicate);
}

Hash128 ExprPreciseHash(const Expr& e) {
  HashBuilder hb;
  e.HashInto(&hb, SignatureMode::kPrecise);
  return hb.Finish();
}

bool ContainsParameter(const Expr& e) {
  if (e.kind() == ExprKind::kParameter) return true;
  for (const auto& c : e.children()) {
    if (ContainsParameter(*c)) return true;
  }
  return false;
}

PredicateFeatures ComputePredicateFeatures(const ExprPtr& predicate) {
  PredicateFeatures pf;
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);
  for (const auto& c : conjuncts) {
    pf.conjuncts.push_back(ExprPreciseHash(*c));
    std::string column;
    CompareOp op;
    Value value;
    if (!ExtractBound(*c, &column, &op, &value)) {
      pf.opaque.push_back(pf.conjuncts.back());
      continue;
    }
    ColumnInterval* iv = nullptr;
    for (auto& existing : pf.intervals) {
      if (existing.column == column) {
        iv = &existing;
        break;
      }
    }
    if (iv == nullptr) {
      pf.intervals.push_back(ColumnInterval{});
      iv = &pf.intervals.back();
      iv->column = column;
    }
    switch (op) {
      case CompareOp::kEq:
        iv->IntersectLower(value, true);
        iv->IntersectUpper(value, true);
        break;
      case CompareOp::kLt:
        iv->IntersectUpper(value, false);
        break;
      case CompareOp::kLe:
        iv->IntersectUpper(value, true);
        break;
      case CompareOp::kGt:
        iv->IntersectLower(value, false);
        break;
      case CompareOp::kGe:
        iv->IntersectLower(value, true);
        break;
      default:
        break;  // unreachable; Ne is opaque
    }
  }
  std::sort(pf.intervals.begin(), pf.intervals.end(),
            [](const ColumnInterval& a, const ColumnInterval& b) {
              return a.column < b.column;
            });
  std::sort(pf.opaque.begin(), pf.opaque.end());
  std::sort(pf.conjuncts.begin(), pf.conjuncts.end());
  return pf;
}

CapDecomposition DecomposeCap(const PlanNode& root) {
  CapDecomposition d;
  const PlanNode* cur = &root;
  if (cur->kind() == OpKind::kAggregate) {
    d.aggregate = static_cast<const AggregateNode*>(cur);
    cur = cur->children()[0].get();
    // Enforcers between an aggregate and its logical input only
    // redistribute or reorder the input multiset; skip them so the core
    // lines up across plans whose physical enforcement differs.
    while (cur->kind() == OpKind::kExchange || cur->kind() == OpKind::kSort) {
      cur = cur->children()[0].get();
    }
  }
  if (cur->kind() == OpKind::kProject) {
    d.project = static_cast<const ProjectNode*>(cur);
    cur = cur->children()[0].get();
  }
  if (cur->kind() == OpKind::kFilter) {
    d.filter = static_cast<const FilterNode*>(cur);
    cur = cur->children()[0].get();
  }
  d.core = cur;
  return d;
}

namespace {

void CollectTables(const PlanNode& node, std::set<std::string>* out) {
  if (node.kind() == OpKind::kExtract) {
    out->insert(static_cast<const ExtractNode&>(node).template_name());
    return;
  }
  if (node.kind() == OpKind::kViewRead) {
    // A prior rewrite's view scan: its input tables are not visible here.
    // Tag it distinctly so such subtrees only table-set-match each other.
    out->insert("view:" +
                static_cast<const ViewReadNode&>(node).view_path());
    return;
  }
  for (const auto& c : node.children()) CollectTables(*c, out);
}

}  // namespace

Hash128 TableSetKey(const std::vector<std::string>& sorted_tables) {
  HashBuilder hb;
  hb.Add(static_cast<uint64_t>(sorted_tables.size()));
  for (const auto& t : sorted_tables) hb.Add(std::string_view(t));
  return hb.Finish();
}

ViewFeatures ComputeViewFeatures(const PlanNode& root) {
  ViewFeatures f;
  std::set<std::string> tables;
  CollectTables(root, &tables);
  f.tables.assign(tables.begin(), tables.end());
  f.table_set_key = TableSetKey(f.tables);
  for (const auto& field : root.output_schema().fields()) {
    f.output_columns.push_back(field.name);
  }
  CapDecomposition d = DecomposeCap(root);
  if (d.aggregate != nullptr) {
    f.has_aggregate = true;
    f.group_by = d.aggregate->group_keys();
  }
  if (d.filter != nullptr) {
    f.predicate = ComputePredicateFeatures(d.filter->predicate());
  }
  f.core_normalized = d.core->SubtreeHash(SignatureMode::kNormalized);
  f.core_precise = d.core->SubtreeHash(SignatureMode::kPrecise);
  return f;
}

std::vector<Hash128> CollectTableSetKeys(const PlanNodePtr& root) {
  std::vector<Hash128> keys;
  std::set<std::string> seen_tables_reprs;  // dedup via joined repr
  for (const auto& entry : EnumerateSubgraphs(root)) {
    std::set<std::string> tables;
    CollectTables(*entry.node, &tables);
    std::string repr;
    for (const auto& t : tables) {
      repr += t;
      repr += '\n';
    }
    if (!seen_tables_reprs.insert(repr).second) continue;
    keys.push_back(TableSetKey(
        std::vector<std::string>(tables.begin(), tables.end())));
  }
  return keys;
}

}  // namespace cloudviews
