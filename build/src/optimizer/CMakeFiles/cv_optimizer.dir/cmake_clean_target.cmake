file(REMOVE_RECURSE
  "libcv_optimizer.a"
)
