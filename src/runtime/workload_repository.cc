#include "runtime/workload_repository.h"

#include "signature/signature.h"

namespace cloudviews {

double SubtreeCpuSeconds(const PlanNode& node, const PlanRuntimeStats& stats) {
  // Pre-order ids: the subtree of a node with id i and size s occupies
  // exactly ids [i, i + s).
  int first = node.id();
  int last = first + static_cast<int>(node.SubtreeSize());
  double cpu = 0;
  for (int id = first; id < last; ++id) {
    auto it = stats.find(id);
    if (it != stats.end()) cpu += it->second.cpu_seconds;
  }
  return cpu;
}

void WorkloadRepository::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  Instruments inst;
  inst.jobs_ingested =
      metrics->GetCounter("cv_repository_jobs_ingested_total", {},
                          "Executed jobs added to the workload repository");
  inst.subgraphs_observed = metrics->GetCounter(
      "cv_repository_subgraph_observations_total", {},
      "Per-subgraph statistic rows folded into the feedback index");
  inst.lookups =
      metrics->GetCounter("cv_repository_lookups_total", {},
                          "Feedback-index lookups by normalized signature");
  inst.lookup_hits = metrics->GetCounter(
      "cv_repository_lookup_hits_total", {},
      "Feedback-index lookups that found observed statistics");
  inst.indexed_subgraphs =
      metrics->GetGauge("cv_repository_indexed_subgraphs", {},
                        "Distinct subgraph templates with statistics");
  MutexLock lock(mu_);
  obs_ = inst;
}

void WorkloadRepository::AddJob(JobRecord record) {
  auto shared = std::make_shared<const JobRecord>(std::move(record));
  MutexLock lock(mu_);
  jobs_.push_back(shared);
  if (obs_.jobs_ingested != nullptr) obs_.jobs_ingested->Increment();

  if (shared->plan == nullptr) return;
  // Maintain the feedback index: every subgraph of the executed plan
  // contributes its observed statistics under its normalized signature.
  uint64_t observations = 0;
  for (const auto& entry : EnumerateSubgraphs(shared->plan)) {
    auto it = shared->run_stats.operators.find(entry.node->id());
    if (it == shared->run_stats.operators.end()) continue;
    Accumulator& acc = feedback_[entry.sigs.normalized];
    acc.rows += it->second.rows;
    acc.bytes += it->second.bytes;
    acc.latency += it->second.inclusive_seconds;
    acc.cpu += SubtreeCpuSeconds(*entry.node, shared->run_stats.operators);
    ++acc.n;
    ++observations;
  }
  if (obs_.subgraphs_observed != nullptr) {
    obs_.subgraphs_observed->Increment(observations);
    obs_.indexed_subgraphs->Set(static_cast<double>(feedback_.size()));
  }
}

size_t WorkloadRepository::NumJobs() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

std::vector<std::shared_ptr<const JobRecord>> WorkloadRepository::Jobs()
    const {
  MutexLock lock(mu_);
  return jobs_;
}

std::vector<std::shared_ptr<const JobRecord>>
WorkloadRepository::JobsInWindow(LogicalTime from, LogicalTime to) const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<const JobRecord>> out;
  for (const auto& j : jobs_) {
    if (j->submit_time >= from && j->submit_time < to) out.push_back(j);
  }
  return out;
}

std::optional<SubgraphObservedStats> WorkloadRepository::Lookup(
    const Hash128& normalized_signature) const {
  MutexLock lock(mu_);
  if (obs_.lookups != nullptr) obs_.lookups->Increment();
  auto it = feedback_.find(normalized_signature);
  if (it == feedback_.end()) return std::nullopt;
  if (obs_.lookup_hits != nullptr) obs_.lookup_hits->Increment();
  const Accumulator& acc = it->second;
  double n = static_cast<double>(acc.n);
  SubgraphObservedStats stats;
  stats.rows = acc.rows / n;
  stats.bytes = acc.bytes / n;
  stats.latency_seconds = acc.latency / n;
  stats.cpu_seconds = acc.cpu / n;
  stats.observations = acc.n;
  return stats;
}

size_t WorkloadRepository::NumIndexedSubgraphs() const {
  MutexLock lock(mu_);
  return feedback_.size();
}

}  // namespace cloudviews
