// Microbenchmarks: compilation latency with and without CloudViews tasks.
#include <benchmark/benchmark.h>

#include "optimizer/optimizer.h"
#include "signature/signature.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace {

void BM_OptimizePlain(benchmark::State& state) {
  auto logical = tpcds::BuildQuery(static_cast<int>(state.range(0)));
  Optimizer opt;
  for (auto _ : state) {
    auto r = opt.Optimize(logical, {});
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizePlain)->Arg(1)->Arg(14)->Arg(72);

class NullCatalog : public ViewCatalogInterface {
 public:
  std::optional<MaterializedViewInfo> FindMaterialized(
      const Hash128&, const Hash128&) override {
    return std::nullopt;
  }
  bool ProposeMaterialize(const Hash128&, const Hash128&, uint64_t,
                          double) override {
    return false;  // always lock-denied: pure matching overhead
  }
};

void BM_OptimizeWithAnnotations(benchmark::State& state) {
  auto logical = tpcds::BuildQuery(14);
  // Annotate every join subgraph of the query (worst-case matching load).
  Status st = logical->Bind();
  if (!st.ok()) std::abort();
  Optimizer probe_opt;
  auto physical = probe_opt.Optimize(logical, {});
  OptimizeContext ctx;
  NullCatalog catalog;
  ctx.view_catalog = &catalog;
  for (const auto& entry : EnumerateSubgraphs(physical->root)) {
    if (entry.node->kind() != OpKind::kJoin) continue;
    ViewAnnotation ann;
    ann.normalized_signature = entry.sigs.normalized;
    ann.frequency = 3;
    ctx.annotations.push_back(ann);
  }
  Optimizer opt;
  for (auto _ : state) {
    auto r = opt.Optimize(logical, ctx);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeWithAnnotations);

void BM_LogicalRewritesOnly(benchmark::State& state) {
  auto logical = tpcds::BuildQuery(27);
  OptimizerConfig with, without;
  without.enable_logical_rewrites = false;
  Optimizer opt_with(with), opt_without(without);
  bool flip = false;
  for (auto _ : state) {
    auto r = (flip ? opt_with : opt_without).Optimize(logical, {});
    benchmark::DoNotOptimize(r.ok());
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogicalRewritesOnly);

}  // namespace
}  // namespace cloudviews
