file(REMOVE_RECURSE
  "CMakeFiles/cv_runtime.dir/job_service.cc.o"
  "CMakeFiles/cv_runtime.dir/job_service.cc.o.d"
  "CMakeFiles/cv_runtime.dir/workload_repository.cc.o"
  "CMakeFiles/cv_runtime.dir/workload_repository.cc.o.d"
  "libcv_runtime.a"
  "libcv_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
