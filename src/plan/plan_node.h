#ifndef CLOUDVIEWS_PLAN_PLAN_NODE_H_
#define CLOUDVIEWS_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/status.h"
#include "expr/aggregate.h"
#include "expr/expr.h"
#include "plan/physical_properties.h"
#include "types/schema.h"

namespace cloudviews {

/// Operator kinds. The optimizer inserts kExchange / kSort enforcers and
/// kViewRead / kSpool reuse operators; everything else comes from the
/// script frontend. Names follow the paper's operator breakdown (Fig 4).
enum class OpKind : int {
  kExtract = 0,    // scan of a (possibly recurring) input stream
  kFilter = 1,
  kProject = 2,    // ComputeScalar / RestrRemap
  kJoin = 3,
  kAggregate = 4,  // group-by aggregate
  kSort = 5,
  kExchange = 6,   // shuffle / repartition
  kUnionAll = 7,
  kProcess = 8,    // row-wise user-defined operator
  kTop = 9,
  kSpool = 10,     // side-materialization of a view (CloudViews runtime)
  kViewRead = 11,  // scan of a materialized view (CloudViews runtime)
  kOutput = 12,    // job output to a stream path
  kReduce = 13,    // group-wise user-defined operator (SCOPE REDUCE)
};

const char* OpKindToString(OpKind k);

enum class JoinType : int { kInner = 0, kLeftOuter = 1 };
enum class JoinAlgorithm : int { kUnspecified = 0, kHash = 1, kMerge = 2 };
enum class AggAlgorithm : int { kUnspecified = 0, kHash = 1, kStream = 2 };

struct NamedExpr {
  ExprPtr expr;
  std::string name;
};

/// Cardinality / size / cost annotations attached by the optimizer. When a
/// subgraph matches the workload repository, these come from actual prior
/// runs (the feedback loop, Sec 5.1) instead of estimates.
struct NodeEstimates {
  double rows = 0;
  double bytes = 0;
  /// Cumulative cost of the subtree rooted here (abstract cost units).
  double cost = 0;
  /// True when rows/bytes were taken from observed runtime statistics.
  bool from_feedback = false;
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief A node of the query plan tree.
///
/// The same tree serves as the logical plan (as produced by the frontend)
/// and the physical plan (after the optimizer sets algorithms and inserts
/// enforcers). Signatures (Sec 3) hash the physical tree, mirroring
/// SCOPE's plan fingerprints.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  OpKind kind() const { return kind_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }
  std::vector<PlanNodePtr>& mutable_children() { return children_; }
  const PlanNodePtr& child(size_t i = 0) const { return children_[i]; }

  bool bound() const { return bound_; }
  const Schema& output_schema() const { return output_schema_; }

  /// Stable id within one plan, assigned by AssignNodeIds. Used to join
  /// compile-time nodes with runtime statistics (the feedback loop).
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  NodeEstimates& estimates() { return est_; }
  const NodeEstimates& estimates() const { return est_; }

  /// Resolves schemas bottom-up; must be called before execution or
  /// signature computation.
  Status Bind();

  /// Signature hash of the entire subtree rooted here (see SignatureMode).
  /// Children contribute their finished subtree hashes, so reuse operators
  /// can be signature-transparent: a Spool hashes as its child and a
  /// ViewRead hashes as the computation it replaced — signatures are
  /// invariant under CloudViews rewriting.
  virtual Hash128 SubtreeHash(SignatureMode mode) const;

  /// Physical properties delivered by this operator's output, derived from
  /// the operator and its children.
  virtual PhysicalProperties Delivered() const;

  /// Physical properties this operator requires from child i (enforcers are
  /// inserted by the optimizer where children do not deliver them).
  virtual PhysicalProperties RequiredFromChild(size_t i) const;

  /// One-line description, e.g. "Filter (a > 10)".
  virtual std::string Label() const;

  /// Deep copy of the subtree (estimates and ids are reset).
  virtual PlanNodePtr Clone() const = 0;

  /// Multi-line tree rendering of the subtree.
  std::string TreeString() const;

  /// Number of nodes in this subtree.
  size_t SubtreeSize() const;

 protected:
  PlanNode(OpKind kind, std::vector<PlanNodePtr> children)
      : kind_(kind), children_(std::move(children)) {}

  /// Computes output_schema_; children are already bound.
  virtual Status DeriveSchema() = 0;

  /// Hashes node-local content (kind and children are handled by the base).
  virtual void HashLocal(HashBuilder* hb, SignatureMode mode) const = 0;

  void TreeStringInternal(std::string* out, int depth) const;

  OpKind kind_;
  std::vector<PlanNodePtr> children_;
  // sig-skip(hash): derived by DeriveSchema() from the children during
  // Bind; never part of the computation's identity
  Schema output_schema_;
  // sig-skip(hash): binding progress flag, derived, never identity
  bool bound_ = false;
  // sig-skip(hash): pre-order id assigned after planning, presentation only
  int id_ = -1;
  // sig-skip(hash): cardinality/cost annotations derived from the plan
  NodeEstimates est_;
};

/// Assigns pre-order ids to every node; returns the node count.
int AssignNodeIds(PlanNode* root);

/// Collects raw pointers to all nodes in pre-order.
void CollectNodes(const PlanNodePtr& root, std::vector<PlanNode*>* out);
void CollectNodes(PlanNode* root, std::vector<PlanNode*>* out);

// ---------------------------------------------------------------------------
// Leaf scans
// ---------------------------------------------------------------------------

/// \brief Scan of an input stream.
///
/// Recurring jobs read a stream whose *template* name is stable (e.g.
/// "clicks_{date}") while the concrete name and data GUID change per
/// instance; the precise signature covers the concrete name + GUID, the
/// normalized signature only the template (Sec 3).
class ExtractNode : public PlanNode {
 public:
  ExtractNode(std::string template_name, std::string stream_name,
              std::string guid, Schema schema)
      : PlanNode(OpKind::kExtract, {}),
        template_name_(std::move(template_name)),
        stream_name_(std::move(stream_name)),
        guid_(std::move(guid)),
        declared_schema_(std::move(schema)) {}

  const std::string& template_name() const { return template_name_; }
  const std::string& stream_name() const { return stream_name_; }
  const std::string& guid() const { return guid_; }

  /// Rebinds the per-instance `{param}` holes (concrete stream name +
  /// data GUID) onto a cached plan skeleton for a new occurrence of the
  /// same template. The template name and schema — the normalized-signature
  /// identity — are intentionally not settable.
  void RebindInstance(std::string stream_name, std::string guid) {
    stream_name_ = std::move(stream_name);
    guid_ = std::move(guid);
  }

  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  // sig-skip(rebind): the template identity must survive rebinding; only
  // the per-instance stream name and GUID are settable (see RebindInstance)
  std::string template_name_;
  std::string stream_name_;
  std::string guid_;
  // sig-skip(rebind): schema is template identity, fixed across instances
  Schema declared_schema_;
};

/// \brief Scan of a previously materialized view (inserted during query
/// rewriting, Sec 6.3). Carries the actual statistics observed when the
/// view was built, which the optimizer propagates up the tree.
class ViewReadNode : public PlanNode {
 public:
  ViewReadNode(std::string view_path, Hash128 normalized_signature,
               Hash128 precise_signature, Schema schema,
               PhysicalProperties props, double actual_rows,
               double actual_bytes)
      : PlanNode(OpKind::kViewRead, {}),
        view_path_(std::move(view_path)),
        normalized_signature_(normalized_signature),
        precise_signature_(precise_signature),
        declared_schema_(std::move(schema)),
        props_(std::move(props)),
        actual_rows_(actual_rows),
        actual_bytes_(actual_bytes) {}

  const std::string& view_path() const { return view_path_; }
  const Hash128& normalized_signature() const {
    return normalized_signature_;
  }
  const Hash128& precise_signature() const { return precise_signature_; }
  const PhysicalProperties& props() const { return props_; }
  double actual_rows() const { return actual_rows_; }
  double actual_bytes() const { return actual_bytes_; }

  PhysicalProperties Delivered() const override { return props_; }
  std::string Label() const override;
  PlanNodePtr Clone() const override;
  Hash128 SubtreeHash(SignatureMode mode) const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::string view_path_;
  Hash128 normalized_signature_;
  Hash128 precise_signature_;
  Schema declared_schema_;
  PhysicalProperties props_;
  double actual_rows_;
  double actual_bytes_;
};

// ---------------------------------------------------------------------------
// Relational operators
// ---------------------------------------------------------------------------

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr input, ExprPtr predicate)
      : PlanNode(OpKind::kFilter, {std::move(input)}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }

  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr input, std::vector<NamedExpr> exprs)
      : PlanNode(OpKind::kProject, {std::move(input)}),
        exprs_(std::move(exprs)) {}

  const std::vector<NamedExpr>& exprs() const { return exprs_; }

  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::vector<NamedExpr> exprs_;
};

class JoinNode : public PlanNode {
 public:
  JoinNode(PlanNodePtr left, PlanNodePtr right, JoinType type,
           std::vector<std::pair<std::string, std::string>> keys)
      : PlanNode(OpKind::kJoin, {std::move(left), std::move(right)}),
        type_(type),
        keys_(std::move(keys)) {}

  JoinType join_type() const { return type_; }
  JoinAlgorithm algorithm() const { return algorithm_; }
  void set_algorithm(JoinAlgorithm a) { algorithm_ = a; }
  const std::vector<std::pair<std::string, std::string>>& keys() const {
    return keys_;
  }
  std::vector<std::string> LeftKeys() const;
  std::vector<std::string> RightKeys() const;

  PhysicalProperties Delivered() const override;
  PhysicalProperties RequiredFromChild(size_t i) const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  JoinType type_;
  JoinAlgorithm algorithm_ = JoinAlgorithm::kUnspecified;
  std::vector<std::pair<std::string, std::string>> keys_;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanNodePtr input, std::vector<std::string> group_keys,
                std::vector<AggregateSpec> aggregates)
      : PlanNode(OpKind::kAggregate, {std::move(input)}),
        group_keys_(std::move(group_keys)),
        aggregates_(std::move(aggregates)) {}

  const std::vector<std::string>& group_keys() const { return group_keys_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }
  AggAlgorithm algorithm() const { return algorithm_; }
  void set_algorithm(AggAlgorithm a) { algorithm_ = a; }

  PhysicalProperties Delivered() const override;
  PhysicalProperties RequiredFromChild(size_t i) const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::vector<std::string> group_keys_;
  std::vector<AggregateSpec> aggregates_;
  AggAlgorithm algorithm_ = AggAlgorithm::kUnspecified;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanNodePtr input, std::vector<SortKey> keys)
      : PlanNode(OpKind::kSort, {std::move(input)}), keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }

  PhysicalProperties Delivered() const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::vector<SortKey> keys_;
};

/// Repartitioning (shuffle). In the simulated single-process engine the
/// exchange physically splits rows into partition runs; its cost model
/// charge mirrors SCOPE where shuffles are among the most expensive steps
/// (Sec 2.3).
class ExchangeNode : public PlanNode {
 public:
  ExchangeNode(PlanNodePtr input, Partitioning partitioning)
      : PlanNode(OpKind::kExchange, {std::move(input)}),
        partitioning_(std::move(partitioning)) {}

  const Partitioning& partitioning() const { return partitioning_; }

  PhysicalProperties Delivered() const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  Partitioning partitioning_;
};

class UnionAllNode : public PlanNode {
 public:
  explicit UnionAllNode(std::vector<PlanNodePtr> inputs)
      : PlanNode(OpKind::kUnionAll, std::move(inputs)) {}

  std::string Label() const override { return "UnionAll"; }
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;
};

/// \brief Row-wise user-defined operator (SCOPE PROCESS).
///
/// The implementation is looked up in the ProcessorRegistry at execution
/// time; the plan only carries its identity and declared output schema.
/// Library + version feed the precise signature like UDFs do.
class ProcessNode : public PlanNode {
 public:
  ProcessNode(PlanNodePtr input, std::string processor, std::string library,
              std::string version, Schema output_schema)
      : PlanNode(OpKind::kProcess, {std::move(input)}),
        processor_(std::move(processor)),
        library_(std::move(library)),
        version_(std::move(version)),
        declared_schema_(std::move(output_schema)) {}

  const std::string& processor() const { return processor_; }
  const std::string& library() const { return library_; }
  const std::string& version() const { return version_; }

  /// Rebinds the per-instance UDO version hole (precise-signature-only
  /// field) onto a cached plan skeleton.
  void set_version(std::string version) { version_ = std::move(version); }

  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::string processor_;
  std::string library_;
  std::string version_;
  Schema declared_schema_;
};

class TopNode : public PlanNode {
 public:
  TopNode(PlanNodePtr input, int64_t limit)
      : PlanNode(OpKind::kTop, {std::move(input)}), limit_(limit) {}

  int64_t limit() const { return limit_; }

  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  int64_t limit_;
};

/// \brief Side-materialization of the child's output as a view (online
/// materialization, Sec 6.2). Rows pass through unchanged; a copy goes to
/// `view_path` with the analyzer-mined physical design.
class SpoolNode : public PlanNode {
 public:
  SpoolNode(PlanNodePtr input, std::string view_path,
            Hash128 normalized_signature, Hash128 precise_signature,
            PhysicalProperties design)
      : PlanNode(OpKind::kSpool, {std::move(input)}),
        view_path_(std::move(view_path)),
        normalized_signature_(normalized_signature),
        precise_signature_(precise_signature),
        design_(std::move(design)) {}

  const std::string& view_path() const { return view_path_; }
  const Hash128& normalized_signature() const {
    return normalized_signature_;
  }
  const Hash128& precise_signature() const { return precise_signature_; }
  const PhysicalProperties& design() const { return design_; }

  /// How long the materialized view stays useful (0 = use the executor
  /// default); mined from input lineage by the analyzer (Sec 5.4).
  LogicalTime lifetime_seconds() const { return lifetime_seconds_; }
  void set_lifetime_seconds(LogicalTime s) { lifetime_seconds_ = s; }

  std::string Label() const override;
  PlanNodePtr Clone() const override;
  Hash128 SubtreeHash(SignatureMode mode) const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  // sig-skip(hash): a spool is computation-transparent — SubtreeHash
  // forwards to the child; the storage path is materialization metadata
  std::string view_path_;
  // sig-skip(hash): derived from the child subtree's own signature
  Hash128 normalized_signature_;
  // sig-skip(hash): derived from the child subtree's own signature
  Hash128 precise_signature_;
  // sig-skip(hash): physical design choice, not logical identity
  PhysicalProperties design_;
  // sig-skip(hash): retention policy metadata, not logical identity
  LogicalTime lifetime_seconds_ = 0;
};

/// \brief Group-wise user-defined operator (SCOPE REDUCE): rows are
/// grouped on the reduce keys and the registered processor runs once per
/// group. Requires its input partitioned and sorted on the keys.
class ReduceNode : public PlanNode {
 public:
  ReduceNode(PlanNodePtr input, std::vector<std::string> keys,
             std::string processor, std::string library, std::string version,
             Schema output_schema)
      : PlanNode(OpKind::kReduce, {std::move(input)}),
        keys_(std::move(keys)),
        processor_(std::move(processor)),
        library_(std::move(library)),
        version_(std::move(version)),
        declared_schema_(std::move(output_schema)) {}

  const std::vector<std::string>& keys() const { return keys_; }
  const std::string& processor() const { return processor_; }
  const std::string& library() const { return library_; }
  const std::string& version() const { return version_; }

  /// Rebinds the per-instance UDO version hole (precise-signature-only
  /// field) onto a cached plan skeleton.
  void set_version(std::string version) { version_ = std::move(version); }

  PhysicalProperties Delivered() const override;
  PhysicalProperties RequiredFromChild(size_t i) const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::vector<std::string> keys_;
  std::string processor_;
  std::string library_;
  std::string version_;
  Schema declared_schema_;
};

/// \brief Job output to a named stream, with an optional declared physical
/// design (SCOPE's CLUSTERED BY / SORTED BY output hints). The optimizer
/// enforces the design with exchange/sort operators; downstream consumer
/// jobs then read data laid out the way they need it (Sec 8, "Improving
/// data sharing across VCs").
class OutputNode : public PlanNode {
 public:
  OutputNode(PlanNodePtr input, std::string stream_name)
      : PlanNode(OpKind::kOutput, {std::move(input)}),
        stream_name_(std::move(stream_name)) {}

  const std::string& stream_name() const { return stream_name_; }

  /// Rebinds the per-instance output stream name (precise-signature-only
  /// field) onto a cached plan skeleton.
  void set_stream_name(std::string stream_name) {
    stream_name_ = std::move(stream_name);
  }

  const PhysicalProperties& declared_design() const {
    return declared_design_;
  }
  void set_declared_design(PhysicalProperties design) {
    declared_design_ = std::move(design);
  }

  PhysicalProperties RequiredFromChild(size_t i) const override;
  std::string Label() const override;
  PlanNodePtr Clone() const override;

 protected:
  Status DeriveSchema() override;
  void HashLocal(HashBuilder* hb, SignatureMode mode) const override;

 private:
  std::string stream_name_;
  PhysicalProperties declared_design_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PLAN_PLAN_NODE_H_
