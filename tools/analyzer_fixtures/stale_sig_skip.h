// Fixture: three stale sig-skips — one on a member the hash function DOES
// reference, one naming a group the class never implements, and one
// dangling comment attached to no member at all.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_STALE_SIG_SKIP_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_STALE_SIG_SKIP_H_

#include <string>

namespace fixture {

class HashBuilder;

class StaleSkipNode {
 public:
  void HashInto(HashBuilder* b) const {
    (void)b;
    (void)name_;
    (void)cost_;
  }

 private:
  std::string name_;  // sig-skip(hash): stale — HashInto references name_
  // sig-skip(clone): stale — the class implements no Clone
  double cost_ = 0.0;
};

// sig-skip(hash): dangling — no member declaration follows this comment

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_STALE_SIG_SKIP_H_
