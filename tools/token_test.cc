#include "tools/token.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cloudviews {
namespace lint {
namespace {

std::string KindName(TokenKind k) {
  switch (k) {
    case TokenKind::kIdentifier: return "ident";
    case TokenKind::kNumber: return "num";
    case TokenKind::kString: return "str";
    case TokenKind::kCharLit: return "char";
    case TokenKind::kPunct: return "punct";
    case TokenKind::kComment: return "comment";
    case TokenKind::kPreprocessor: return "pp";
  }
  return "?";
}

/// Renders a token stream as "kind:text" items for compact table cases.
std::vector<std::string> Render(const std::string& src) {
  std::vector<std::string> out;
  for (const Token& t : Tokenize(src)) {
    out.push_back(KindName(t.kind) + ":" + t.text);
  }
  return out;
}

struct Case {
  const char* name;
  const char* src;
  std::vector<std::string> want;
};

TEST(TokenizeTest, Table) {
  const std::vector<Case> cases = {
      {"plain_decl",
       "int x = 42;",
       {"ident:int", "ident:x", "punct:=", "num:42", "punct:;"}},
      {"digit_separators",
       "auto n = 1'000'000 + 0x1'FF;",
       {"ident:auto", "ident:n", "punct:=", "num:1'000'000", "punct:+",
        "num:0x1'FF", "punct:;"}},
      {"float_exponent_sign",
       "double d = 1.5e-9;",
       {"ident:double", "ident:d", "punct:=", "num:1.5e-9", "punct:;"}},
      {"line_comment",
       "x; // srand is banned\ny;",
       {"ident:x", "punct:;", "comment:// srand is banned", "ident:y",
        "punct:;"}},
      {"block_comment_multiline",
       "a /* srand\n sleep_for */ b",
       {"ident:a", "comment:/* srand\n sleep_for */", "ident:b"}},
      {"block_comments_do_not_nest",
       "/* outer /* inner */ tail",
       {"comment:/* outer /* inner */", "ident:tail"}},
      {"string_hides_identifiers",
       "Log(\"call srand() here\");",
       {"ident:Log", "punct:(", "str:\"call srand() here\"", "punct:)",
        "punct:;"}},
      {"string_escapes",
       "s = \"a\\\"b\";",
       {"ident:s", "punct:=", "str:\"a\\\"b\"", "punct:;"}},
      {"char_literal",
       "c = 'x'; q = '\\'';",
       {"ident:c", "punct:=", "char:'x'", "punct:;", "ident:q", "punct:=",
        "char:'\\''", "punct:;"}},
      {"raw_string_single_line",
       "s = R\"(srand \" quote)\";",
       {"ident:s", "punct:=", "str:R\"(srand \" quote)\"", "punct:;"}},
      {"raw_string_custom_delim",
       "s = R\"eof(a )\" b)eof\";",
       {"ident:s", "punct:=", "str:R\"eof(a )\" b)eof\"", "punct:;"}},
      {"raw_string_multiline",
       "s = R\"(line1\nsrand()\nline3)\"; after",
       {"ident:s", "punct:=", "str:R\"(line1\nsrand()\nline3)\"",
        "punct:;", "ident:after"}},
      {"raw_string_prefixes",
       "a = u8R\"(x)\"; b = LR\"(y)\";",
       {"ident:a", "punct:=", "str:u8R\"(x)\"", "punct:;", "ident:b",
        "punct:=", "str:LR\"(y)\"", "punct:;"}},
      {"encoding_prefixed_string",
       "w = L\"wide\"; c8 = u8'z';",
       {"ident:w", "punct:=", "str:L\"wide\"", "punct:;", "ident:c8",
        "punct:=", "char:u8'z'", "punct:;"}},
      {"prefix_lookalike_identifier",
       "U u; R r;",
       {"ident:U", "ident:u", "punct:;", "ident:R", "ident:r", "punct:;"}},
      {"preprocessor_directive",
       "#include <map>\nint x;",
       {"pp:#include", "punct:<", "ident:map", "punct:>", "ident:int",
        "ident:x", "punct:;"}},
      {"preprocessor_spaced_hash",
       "#  if FOO\n#endif",
       {"pp:#if", "ident:FOO", "pp:#endif"}},
      {"macro_body_is_code",
       "#define SEED() srand(1)",
       {"pp:#define", "ident:SEED", "punct:(", "punct:)", "ident:srand",
        "punct:(", "num:1", "punct:)"}},
      {"preprocessor_continuation",
       "#define LONG \\\n  srand(2)\nx;",
       {"pp:#define", "ident:LONG", "ident:srand", "punct:(", "num:2",
        "punct:)", "ident:x", "punct:;"}},
      {"splice_inside_identifier",
       "ab\\\ncd = 1;",
       {"ident:abcd", "punct:=", "num:1", "punct:;"}},
      {"hash_mid_line_is_punct",
       "#define S(x) #x",
       {"pp:#define", "ident:S", "punct:(", "ident:x", "punct:)",
        "punct:#", "ident:x"}},
      {"template_member_decl",
       "std::unordered_map<Key, std::vector<int>> index_;",
       {"ident:std", "punct:::", "ident:unordered_map", "punct:<",
        "ident:Key", "punct:,", "ident:std", "punct:::", "ident:vector",
        "punct:<", "ident:int", "punct:>>", "ident:index_", "punct:;"}},
      {"maximal_munch_punct",
       "a <<= b; c <=> d; e->f; g->*h; i...j;",
       {"ident:a", "punct:<<=", "ident:b", "punct:;", "ident:c",
        "punct:<=>", "ident:d", "punct:;", "ident:e", "punct:->",
        "ident:f", "punct:;", "ident:g", "punct:->*", "ident:h",
        "punct:;", "ident:i", "punct:...", "ident:j", "punct:;"}},
      {"unterminated_string_recovers_at_newline",
       "s = \"oops\nnext;",
       {"ident:s", "punct:=", "str:\"oops", "ident:next", "punct:;"}},
      {"comment_then_directive_same_line",
       "/* lead */ #pragma once",
       {"comment:/* lead */", "pp:#pragma", "ident:once"}},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(Render(c.src), c.want) << "case: " << c.name;
  }
}

TEST(TokenizeTest, LineNumbersSurviveSplicesAndMultilineTokens) {
  const std::string src =
      "one\n"
      "R\"(raw\nspans\nlines)\" two\n"  // raw string starts line 2
      "#define M \\\n"                  // directive line 5
      "  tail\n"                        // `tail` starts on line 6
      "three\n";
  std::vector<Token> toks = Tokenize(src);
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].text, "one");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].kind, TokenKind::kString);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].text, "two");
  EXPECT_EQ(toks[2].line, 4);
  EXPECT_EQ(toks[3].text, "#define");
  EXPECT_EQ(toks[3].line, 5);
  EXPECT_EQ(toks[4].text, "M");
  EXPECT_EQ(toks[5].text, "tail");
  EXPECT_EQ(toks[5].line, 6);
  EXPECT_EQ(toks[3].kind, TokenKind::kPreprocessor);
}

TEST(TokenizeTest, DirectiveTokensAreMarked) {
  std::vector<Token> toks = Tokenize("#include <map>\nint x;\n#define N 3\n");
  ASSERT_EQ(toks.size(), 10u);
  for (size_t i = 0; i < toks.size(); ++i) {
    bool want = toks[i].line != 2;  // only "int x;" is ordinary code
    EXPECT_EQ(toks[i].in_directive, want) << "token " << toks[i].text;
  }
  // A spliced directive continuation stays marked.
  std::vector<Token> cont = Tokenize("#define M \\\n  tail\ncode;");
  ASSERT_EQ(cont.size(), 5u);
  EXPECT_TRUE(cont[2].in_directive);   // tail
  EXPECT_FALSE(cont[3].in_directive);  // code
}

TEST(TokenizeTest, BlockCommentLineTracking) {
  std::vector<Token> toks = Tokenize("/* a\nb\nc */ x");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kComment);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(TokenizeTest, UnterminatedBlockCommentAndRawStringCloseAtEof) {
  std::vector<Token> c = Tokenize("x /* never closed");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[1].kind, TokenKind::kComment);
  std::vector<Token> r = Tokenize("R\"(never closed");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].kind, TokenKind::kString);
}

}  // namespace
}  // namespace lint
}  // namespace cloudviews
