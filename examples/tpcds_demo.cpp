// TPC-DS demo: run the 99-query benchmark twice — plain, then with
// CloudViews reusing the top-10 overlapping computations (the Sec 7.2
// experiment, at laptop scale). Optionally exports the observability
// artifacts: a Prometheus metrics snapshot plus one JSON profile per
// CloudViews-pass query.
//
//   tpcds_demo [num_queries] [artifact_dir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/cloudviews.h"
#include "core/explain.h"
#include "obs/export.h"
#include "tpcds/tpcds.h"

using namespace cloudviews;

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// A terse operator-facing readout of the signals ISSUE.md calls out:
/// pool saturation, metadata hit/miss, build-lock waits, stage latencies.
void PrintMetricsSummary(obs::MetricsRegistry* m) {
  std::printf("\nmetrics snapshot\n");
  std::printf("  jobs: %llu submitted, %llu succeeded, %llu failed\n",
              static_cast<unsigned long long>(
                  m->GetCounter("cv_jobs_submitted_total")->value()),
              static_cast<unsigned long long>(
                  m->GetCounter("cv_jobs_succeeded_total")->value()),
              static_cast<unsigned long long>(
                  m->GetCounter("cv_jobs_failed_total")->value()));
  std::printf(
      "  pool 'exec': %.0f threads, %llu tasks, run time %.1fms, "
      "queue wait %.1fms\n",
      m->GetGauge("cv_threadpool_threads", {{"pool", "exec"}})->value(),
      static_cast<unsigned long long>(
          m->GetCounter("cv_threadpool_tasks_total", {{"pool", "exec"}})
              ->value()),
      m->GetHistogram("cv_threadpool_task_run_seconds", {{"pool", "exec"}})
              ->sum() *
          1000,
      m->GetHistogram("cv_threadpool_task_wait_seconds", {{"pool", "exec"}})
              ->sum() *
          1000);
  std::printf(
      "  metadata: %llu lookups, %llu view hits / %llu misses, "
      "%llu build locks granted / %llu denied, lock wait %.3fms\n",
      static_cast<unsigned long long>(
          m->GetCounter("cv_metadata_lookups_total")->value()),
      static_cast<unsigned long long>(
          m->GetCounter("cv_metadata_view_hits_total")->value()),
      static_cast<unsigned long long>(
          m->GetCounter("cv_metadata_view_misses_total")->value()),
      static_cast<unsigned long long>(
          m->GetCounter("cv_metadata_build_locks_granted_total")->value()),
      static_cast<unsigned long long>(
          m->GetCounter("cv_metadata_build_locks_denied_total")->value()),
      m->GetHistogram("cv_metadata_lock_wait_seconds")->sum() * 1000);
  for (const char* stage :
       {"metadata_lookup", "optimize", "execute", "record"}) {
    obs::Histogram* h =
        m->GetHistogram("cv_job_stage_seconds", {{"stage", stage}});
    std::printf("  stage %-15s %6llu obs, total %8.1fms\n", stage,
                static_cast<unsigned long long>(h->count()),
                h->sum() * 1000);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int num_queries = tpcds::kNumQueries;
  if (argc > 1) {
    num_queries = std::min(tpcds::kNumQueries, std::max(1, atoi(argv[1])));
  }
  std::string artifact_dir = argc > 2 ? argv[2] : "";

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 10;
  config.analyzer.selection.min_frequency = 3;
  config.exec.worker_threads = 2;
  CloudViews cv(config);

  std::printf("generating TPC-DS-lite tables...\n");
  tpcds::TpcdsGenerator gen;
  Status st = gen.WriteTables(cv.storage());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  for (const auto& table :
       {"store_sales", "web_sales", "catalog_sales", "date_dim", "item",
        "customer", "store", "promotion"}) {
    auto handle = cv.storage()->OpenStream(tpcds::TableStream(table));
    std::printf("  %-14s %8lld rows\n", table,
                static_cast<long long>((*handle)->total_rows));
  }

  std::printf("\nbaseline pass (%d queries)...\n", num_queries);
  double baseline_total = 0;
  for (int q = 1; q <= num_queries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), false);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    baseline_total += r->run_stats.latency_seconds;
  }

  auto analysis = cv.RunAnalyzerAndLoad();
  std::printf("analyzer selected %zu overlapping computations "
              "(%zu subgraphs mined from %zu queries)\n",
              analysis.annotations.size(), analysis.subgraphs_mined,
              analysis.jobs_analyzed);

  if (!artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(artifact_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", artifact_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  std::printf("\nCloudViews pass...\n");
  double cv_total = 0;
  int built = 0, reused = 0;
  for (int q = 1; q <= num_queries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q), true);
    if (!r.ok()) {
      std::fprintf(stderr, "q%d: %s\n", q, r.status().ToString().c_str());
      return 1;
    }
    cv_total += r->run_stats.latency_seconds;
    built += r->views_materialized;
    reused += r->views_reused;
    if (!artifact_dir.empty()) {
      // One machine-readable profile per job: the lifecycle span tree
      // merged with the per-operator runtime stats.
      if (!WriteFile(artifact_dir + "/profile_q" + std::to_string(q) +
                         ".json",
                     JobProfileJson(*r))) {
        return 1;
      }
    }
  }

  std::printf("\nresults\n");
  std::printf("  baseline total   %8.1fms\n", baseline_total * 1000);
  std::printf("  cloudviews total %8.1fms (%d views built, %d reused)\n",
              cv_total * 1000, built, reused);
  std::printf("  total improvement %+.1f%%  (paper: 17%% on the real 1TB "
              "benchmark)\n",
              100.0 * (baseline_total - cv_total) / baseline_total);

  PrintMetricsSummary(cv.metrics());

  if (!artifact_dir.empty()) {
    if (!WriteFile(artifact_dir + "/metrics.prom",
                   obs::RenderPrometheus(*cv.metrics()))) {
      return 1;
    }
    std::printf("\nwrote metrics.prom + %d per-job profiles to %s\n",
                num_queries, artifact_dir.c_str());
  }
  return 0;
}
