// Ablation (Sec 5.3): utility of view physical design. Day-2 reuse with
// the analyzer-mined design vs views stored with no useful layout.
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

struct PassResult {
  double reuse_latency = 0;  // total latency of view-consuming jobs
  int reused = 0;
  int enforcers_over_views = 0;  // Exchange/Sort inserted above ViewReads
};

/// Counts enforcers sitting directly above ViewRead scans (the extra
/// repartitioning/sorting a bad view design forces on every consumer).
int CountEnforcersOverViews(const PlanNodePtr& root) {
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &nodes);
  int count = 0;
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kExchange || n->kind() == OpKind::kSort) {
      const PlanNode* below = n->children()[0].get();
      while (below->kind() == OpKind::kExchange ||
             below->kind() == OpKind::kSort) {
        below = below->children()[0].get();
      }
      if (below->kind() == OpKind::kViewRead) ++count;
    }
  }
  return count;
}

PassResult RunPass(bool strip_design) {
  ProductionWorkload workload;
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 3;
  config.analyzer.selection.min_cost_fraction_of_job = 0.2;
  config.analyzer.selection.max_per_job = 1;
  CloudViews cv(config);

  workload.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : workload.Instance("2018-01-01")) {
    (void)cv.Submit(def, false);
  }
  // Mine annotations, optionally stripping the mined physical design
  // ("views with poor physical design end up not being used", Sec 5.3).
  CloudViewsAnalyzer analyzer(config.analyzer);
  AnalysisResult analysis = analyzer.Analyze(cv.repository()->Jobs());
  if (strip_design) {
    for (auto& comp : analysis.annotations) {
      comp.annotation.design = PhysicalProperties{};
    }
  }
  cv.metadata()->LoadAnalysis(analysis.annotations);

  PassResult result;
  // Average the reuse pass over several fresh instances to smooth
  // wall-clock noise at this scale.
  for (int day = 2; day <= 4; ++day) {
    std::string date = StrFormat("2018-01-%02d", day);
    workload.WriteInputs(cv.storage(), date);
    for (const auto& def : workload.Instance(date)) {
      auto r = cv.Submit(def, true);
      if (r.ok() && r->views_reused > 0) {
        result.reuse_latency += r->run_stats.latency_seconds;
        result.reused += r->views_reused;
        result.enforcers_over_views +=
            CountEnforcersOverViews(r->executed_plan);
      }
    }
  }
  return result;
}

int Run() {
  FigureHeader(
      "Ablation: view physical design",
      "mined partitioning/sorting vs unstructured views (Sec 5.3)",
      "\"materialized views with poor physical design end up not being "
      "used because the computation savings get over-shadowed by any "
      "additional repartitioning or sorting\"");

  PassResult mined = RunPass(/*strip_design=*/false);
  PassResult stripped = RunPass(/*strip_design=*/true);

  TablePrinter table({"variant", "view-consumer latency (ms)",
                      "views reused", "extra enforcers over views"});
  table.AddRow({"analyzer-mined design",
                StrFormat("%.1f", mined.reuse_latency * 1000),
                StrFormat("%d", mined.reused),
                StrFormat("%d", mined.enforcers_over_views)});
  table.AddRow({"no physical design",
                StrFormat("%.1f", stripped.reuse_latency * 1000),
                StrFormat("%d", stripped.reused),
                StrFormat("%d", stripped.enforcers_over_views)});
  table.Print(std::cout);

  std::printf("\nsummary\n");
  PaperVsMeasured(
      "repartition/sort forced on consumers", "overshadows the savings",
      StrFormat("%d -> %d enforcers", mined.enforcers_over_views,
                stripped.enforcers_over_views));
  PaperVsMeasured(
      "consumer latency without view design", "> mined design",
      StrFormat("%+.1f%%",
                100.0 * (stripped.reuse_latency - mined.reuse_latency) /
                    mined.reuse_latency));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
