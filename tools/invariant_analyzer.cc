// Invariant analyzer entry point: field-coverage audit over every
// identity-bearing class plus the unordered-iteration determinism lint.
//
//   invariant_analyzer [--json <report>] <root>...
//
// Defaults to analyzing src/. Exits nonzero when any violation is found;
// --json writes the machine-readable report the CI job uploads.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/invariant_analyzer_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src"};

  std::vector<cloudviews::lint::Violation> violations =
      cloudviews::lint::AnalyzeTree(roots);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << cloudviews::lint::ViolationsToJson(violations);
    if (!out) {
      std::fprintf(stderr, "invariant_analyzer: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
  }

  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.path.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "invariant_analyzer: %zu violation(s)\n",
                 violations.size());
    return 1;
  }
  std::printf("invariant_analyzer: clean\n");
  return 0;
}
