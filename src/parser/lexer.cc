#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace cloudviews {

bool Token::IsKeyword(const std::string& upper) const {
  if (type != TokenType::kIdent) return false;
  if (text.size() != upper.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != upper[i]) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto peek = [&](size_t off = 0) -> char {
    return i + off < text.size() ? text[i + off] : '\0';
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && peek(1) == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      tokens.push_back({TokenType::kIdent, text.substr(start, i - start),
                        line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.')) {
        if (text[i] == '.') {
          // A second dot ends the number (e.g. ranges are not supported).
          if (is_float) break;
          is_float = true;
        }
        ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInt,
                        text.substr(start, i - start), line});
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i >= text.size()) {
        return Status::ParseError(
            StrFormat("unterminated string at line %d", line));
      }
      tokens.push_back({TokenType::kString, text.substr(start, i - start),
                        line});
      ++i;  // closing quote
      continue;
    }
    if (c == '@') {
      size_t start = ++i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      if (i == start) {
        return Status::ParseError(
            StrFormat("'@' without parameter name at line %d", line));
      }
      tokens.push_back({TokenType::kParam, text.substr(start, i - start),
                        line});
      continue;
    }
    // Two-character operators first.
    static const char* kTwoChar[] = {"==", "!=", "<=", ">="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        tokens.push_back({TokenType::kSymbol, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "(),;:=<>+-*/%.!";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), line});
      ++i;
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at line %d", c, line));
  }
  tokens.push_back({TokenType::kEnd, "", line});
  return tokens;
}

}  // namespace cloudviews
