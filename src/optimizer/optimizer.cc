#include "optimizer/optimizer.h"

#include "common/clock.h"
#include "obs/trace.h"
#include "optimizer/rules.h"

namespace cloudviews {

Result<OptimizedPlan> Optimizer::Optimize(const PlanNodePtr& logical,
                                          const OptimizeContext& ctx) const {
  MonotonicClock* clock =
      ctx.clock != nullptr ? ctx.clock : MonotonicClock::Real();
  double start = clock->NowSeconds();
  // With no parent span the local inactive one makes every StartChild /
  // SetAttribute below a no-op.
  obs::Span inactive;
  obs::Span* parent = ctx.span != nullptr ? ctx.span : &inactive;

  PlanNodePtr root = logical->Clone();
  CV_RETURN_NOT_OK(root->Bind());

  // 1. Logical rewrites (deterministic, so recurring instances compile to
  //    identical trees).
  if (config_.enable_logical_rewrites) {
    obs::Span span = parent->StartChild("logical_rewrite");
    root = MergeAdjacentFilters(std::move(root));
    root = PushDownFilters(std::move(root));
    CV_RETURN_NOT_OK(root->Bind());
  }

  // The tree at this point is the catalog-independent template skeleton:
  // everything from here on depends on current statistics and the current
  // view catalog, everything up to here only on the job script.
  if (ctx.skeleton_out != nullptr) {
    *ctx.skeleton_out = root->Clone();
  }

  return PlanPhysical(std::move(root), ctx, parent, clock, start);
}

Result<OptimizedPlan> Optimizer::OptimizeFromSkeleton(
    PlanNodePtr skeleton, const OptimizeContext& ctx) const {
  MonotonicClock* clock =
      ctx.clock != nullptr ? ctx.clock : MonotonicClock::Real();
  double start = clock->NowSeconds();
  obs::Span inactive;
  obs::Span* parent = ctx.span != nullptr ? ctx.span : &inactive;

  // The skeleton was captured after the logical rewrites of a previous
  // occurrence; rebinding `{param}` holes cannot invalidate schemas, but
  // Bind re-derives them for the new instance anyway.
  CV_RETURN_NOT_OK(skeleton->Bind());
  return PlanPhysical(std::move(skeleton), ctx, parent, clock, start);
}

Result<OptimizedPlan> Optimizer::FinishCachedPlan(
    PlanNodePtr root, const OptimizeContext& ctx) const {
  MonotonicClock* clock =
      ctx.clock != nullptr ? ctx.clock : MonotonicClock::Real();
  double start = clock->NowSeconds();

  CV_RETURN_NOT_OK(root->Bind());
  // Costs are advisory at this point (the plan shape is fixed), but
  // re-annotating keeps estimated_cost and the explain output consistent
  // with what a fresh compile would report.
  cost_model_.Annotate(root.get(), ctx.feedback, ctx.storage);
  AssignNodeIds(root.get());

  OptimizedPlan out;
  out.root = std::move(root);
  out.estimated_cost = out.root->estimates().cost;
  std::vector<PlanNode*> nodes;
  CollectNodes(out.root.get(), &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kViewRead) ++out.views_reused;
  }
  out.optimize_seconds = clock->NowSeconds() - start;
  return out;
}

Result<OptimizedPlan> Optimizer::PlanPhysical(PlanNodePtr root,
                                              const OptimizeContext& ctx,
                                              obs::Span* parent,
                                              MonotonicClock* clock,
                                              double start) const {
  // 2. Physical planning: algorithms + property enforcers. Signatures are
  //    computed over this physical tree, mirroring SCOPE plan fingerprints.
  //    Cost annotation (the feedback loop) rides in the same phase.
  {
    obs::Span span = parent->StartChild("physical_plan");
    CV_ASSIGN_OR_RETURN(root, physical_planner_.Plan(std::move(root)));
    root = RemoveRedundantEnforcers(std::move(root));
    CV_RETURN_NOT_OK(root->Bind());
    cost_model_.Annotate(root.get(), ctx.feedback, ctx.storage);
  }

  OptimizedPlan out;
  AnnotationIndex annotations = IndexAnnotations(ctx.annotations);
  ViewRewriter rewriter(&cost_model_, ctx.view_catalog);

  // 4. Reuse pass first (Fig 10): never materialize what can be read.
  ViewRewriter::ReuseStats reuse_stats;
  {
    obs::Span span = parent->StartChild("reuse");
    ViewRewriter::ReuseOptions reuse_options;
    reuse_options.enable_containment = config_.enable_containment_matching;
    reuse_options.parent_span = &span;
    root = rewriter.ApplyReuse(std::move(root), annotations, &reuse_stats,
                               reuse_options);
    CV_RETURN_NOT_OK(root->Bind());
    if (reuse_stats.views_reused > 0) {
      // A substituted view may not deliver the properties its parent
      // needs; add the extra partitioning/sorting (Sec 7.1 factor iii).
      CV_ASSIGN_OR_RETURN(
          root, physical_planner_.RepairProperties(std::move(root)));
      // Re-annotate: actual view statistics now propagate up the tree
      // (Sec 6.3).
      cost_model_.Annotate(root.get(), ctx.feedback, ctx.storage);
    }
    span.SetAttribute("views_reused",
                      static_cast<int64_t>(reuse_stats.views_reused));
    span.SetAttribute("rejected_by_cost",
                      static_cast<int64_t>(reuse_stats.rejected_by_cost));
    // Only stamp funnel attributes when the containment tiers actually
    // ran, so exact-only compiles keep a byte-identical span tree.
    if (reuse_stats.funnel.candidates_filtered > 0) {
      span.SetAttribute(
          "views_reused_subsumed",
          static_cast<int64_t>(reuse_stats.funnel.views_reused_subsumed));
    }
  }

  // 5. Follow-up optimization: propose online materializations (Fig 10,
  //    lower half), then final annotation & ids.
  ViewRewriter::MaterializeStats mat_stats;
  {
    obs::Span span = parent->StartChild("materialize");
    root = rewriter.ApplyMaterialization(
        std::move(root), annotations, ctx.job_id,
        config_.max_materialized_views_per_job, root->estimates().cost,
        config_.max_materialize_cost_fraction, &mat_stats);
    Status bound = root->Bind();
    if (!bound.ok()) {
      // The plan now carries build locks taken by ApplyMaterialization;
      // if it is discarded here they would leak until lease expiry.
      // Release them before surfacing the error.
      if (ctx.view_catalog != nullptr) {
        std::vector<PlanNode*> nodes;
        CollectNodes(root.get(), &nodes);
        for (PlanNode* n : nodes) {
          if (n->kind() == OpKind::kSpool) {
            ctx.view_catalog->AbandonLock(
                static_cast<SpoolNode*>(n)->precise_signature(), ctx.job_id);
          }
        }
      }
      return bound;
    }
    cost_model_.Annotate(root.get(), ctx.feedback, ctx.storage);
    AssignNodeIds(root.get());
    span.SetAttribute("views_materialized",
                      static_cast<int64_t>(mat_stats.views_materialized));
    span.SetAttribute("lock_denied",
                      static_cast<int64_t>(mat_stats.lock_denied));
    span.SetAttribute("skipped_by_cost",
                      static_cast<int64_t>(mat_stats.skipped_by_cost));
  }

  out.root = std::move(root);
  out.estimated_cost = out.root->estimates().cost;
  out.views_reused = reuse_stats.views_reused;
  out.reuse_rejected_by_cost = reuse_stats.rejected_by_cost;
  out.candidates_filtered = reuse_stats.funnel.candidates_filtered;
  out.containment_verified = reuse_stats.funnel.containment_verified;
  out.containment_rejected = reuse_stats.funnel.containment_rejected;
  out.views_reused_subsumed = reuse_stats.funnel.views_reused_subsumed;
  out.compensation_nodes_added = reuse_stats.funnel.compensation_nodes_added;
  out.views_materialized = mat_stats.views_materialized;
  out.materialize_lock_denied = mat_stats.lock_denied;
  out.materialize_skipped_by_cost = mat_stats.skipped_by_cost;
  out.lock_denied_signatures = std::move(mat_stats.lock_denied_sigs);
  out.optimize_seconds = clock->NowSeconds() - start;
  return out;
}

}  // namespace cloudviews
