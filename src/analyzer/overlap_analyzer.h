#ifndef CLOUDVIEWS_ANALYZER_OVERLAP_ANALYZER_H_
#define CLOUDVIEWS_ANALYZER_OVERLAP_ANALYZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/workload_repository.h"

namespace cloudviews {

/// \brief Aggregated view of one computation template (normalized
/// signature) across every occurrence in the analyzed window.
struct SubgraphAggregate {
  Hash128 normalized;
  OpKind root_kind = OpKind::kExtract;
  size_t subtree_size = 0;
  Schema output_schema;
  /// Bound clone of the first mined occurrence — the definition skeleton
  /// the containment matcher verifies candidates against structurally.
  /// Null when the clone could not be bound (disables containment for the
  /// template, never the exact tier).
  PlanNodePtr definition;

  /// Total occurrences (the paper's "overlap frequency").
  int64_t frequency = 0;
  /// Distinct jobs / precise instances containing it.
  std::set<uint64_t> jobs;
  std::set<std::string> users;
  std::set<std::string> vcs;
  std::set<std::string> templates;
  /// Input stream templates consumed inside the subgraph.
  std::set<std::string> input_templates;

  // Observed runtime statistics, summed over occurrences.
  double sum_rows = 0;
  double sum_bytes = 0;
  double sum_latency = 0;
  double sum_cpu = 0;
  /// Latency of the containing job, summed per occurrence (for the
  /// view-to-query cost ratio of Fig 5d).
  double sum_job_latency = 0;

  /// Physical designs seen at this subgraph's output, with popularity
  /// (Sec 5.3: pick the most popular set).
  std::map<Hash128, std::pair<int, PhysicalProperties>> designs;

  /// Longest recurrence period of any job consuming the subgraph's inputs;
  /// the lineage-based view lifetime (Sec 5.4).
  LogicalTime max_recurrence_period = 0;

  double AvgRows() const { return frequency ? sum_rows / frequency : 0; }
  double AvgBytes() const { return frequency ? sum_bytes / frequency : 0; }
  double AvgLatency() const {
    return frequency ? sum_latency / frequency : 0;
  }
  double AvgCpu() const { return frequency ? sum_cpu / frequency : 0; }
  /// Subgraph-latency / containing-job-latency (Fig 5d).
  double ViewToQueryCostRatio() const {
    return sum_job_latency > 0 ? sum_latency / sum_job_latency : 0;
  }
  /// Total utility = frequency x average runtime (Sec 7.1); the first
  /// occurrence must still be computed, so savings scale with freq - 1.
  double TotalUtility() const {
    return static_cast<double>(frequency - 1) * AvgLatency();
  }
  /// The most popular physical design at this subgraph's output.
  PhysicalProperties PopularDesign() const;

  bool IsOverlapping() const { return frequency >= 2; }
  /// Overlap across distinct jobs (Fig 1's "overlapping jobs" notion).
  bool SharedAcrossJobs() const { return jobs.size() >= 2; }
};

/// Everything the figure benches need about one analyzed window; the data
/// behind Figs 1-5 and the Sec 5.5 admin dashboard.
struct OverlapReport {
  size_t total_jobs = 0;
  size_t overlapping_jobs = 0;
  size_t total_users = 0;
  size_t users_with_overlap = 0;
  size_t total_subgraph_templates = 0;
  size_t overlapping_subgraph_templates = 0;
  /// Instance-weighted counts: a fragment occurring 10x contributes 10.
  int64_t total_subgraph_instances = 0;
  int64_t overlapping_subgraph_instances = 0;

  double PctOverlappingJobs() const {
    return total_jobs ? 100.0 * overlapping_jobs / total_jobs : 0;
  }
  double PctUsersWithOverlap() const {
    return total_users ? 100.0 * users_with_overlap / total_users : 0;
  }
  /// Fraction of subgraph *instances* that appear at least twice (how the
  /// paper's "overlapping subgraphs" percentages read).
  double PctOverlappingSubgraphs() const {
    return total_subgraph_instances
               ? 100.0 * static_cast<double>(overlapping_subgraph_instances) /
                     static_cast<double>(total_subgraph_instances)
               : 0;
  }
  double PctOverlappingSubgraphTemplates() const {
    return total_subgraph_templates
               ? 100.0 * static_cast<double>(overlapping_subgraph_templates) /
                     static_cast<double>(total_subgraph_templates)
               : 0;
  }

  /// Per-VC: percentage of the VC's jobs that overlap; average overlap
  /// frequency of its overlapping subgraphs (Fig 2).
  struct VcOverlap {
    size_t jobs = 0;
    size_t overlapping_jobs = 0;
    double avg_overlap_frequency = 0;
  };
  std::map<std::string, VcOverlap> per_vc;

  /// CDF samples (Fig 3): overlapping-subgraph occurrences per job / user /
  /// VC; per input: the max frequency among subgraphs consuming it.
  std::vector<double> overlaps_per_job;
  std::vector<double> overlaps_per_user;
  std::vector<double> overlaps_per_vc;
  std::vector<double> per_input_max_frequency;

  /// Operator-wise share of overlapping subgraph occurrences (Fig 4a) and
  /// per-operator frequency samples (Figs 4b-4d).
  std::map<OpKind, int64_t> overlap_occurrences_by_operator;
  std::map<OpKind, std::vector<double>> frequency_by_operator;

  /// Sec 8 lessons: subgraphs rooted at Output shared by several jobs are
  /// jobs producing the same output without realizing it; their owners are
  /// asked to remove the redundant statements.
  size_t redundant_output_groups = 0;
  size_t jobs_with_redundant_output = 0;

  /// Impact CDF samples over overlapping templates (Fig 5).
  std::vector<double> frequencies;
  std::vector<double> runtimes_seconds;
  std::vector<double> sizes_bytes;
  std::vector<double> view_query_cost_ratios;
};

/// \brief Mines every job subgraph in a window and aggregates by normalized
/// signature — the analysis half of the CloudViews analyzer (Fig 6 left).
class OverlapAnalyzer {
 public:
  void AddJob(const std::shared_ptr<const JobRecord>& job);
  void AddJobs(const std::vector<std::shared_ptr<const JobRecord>>& jobs);

  const std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>&
  aggregates() const {
    return aggregates_;
  }

  /// Builds the figure/report data from the mined aggregates.
  OverlapReport BuildReport() const;

 private:
  struct JobFacts {
    uint64_t job_id;
    std::string vc;
    std::string user;
    std::vector<Hash128> subgraphs;  // normalized sig of each subgraph
  };

  std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher> aggregates_;
  std::vector<JobFacts> job_facts_;
};

/// Collects the input stream templates underneath a node.
void CollectInputTemplates(const PlanNode& node, std::set<std::string>* out);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_ANALYZER_OVERLAP_ANALYZER_H_
