#ifndef CLOUDVIEWS_EXEC_EXECUTOR_H_
#define CLOUDVIEWS_EXEC_EXECUTOR_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "exec/exec_options.h"
#include "exec/morsel.h"
#include "exec/operator_stats.h"
#include "fault/backoff.h"
#include "plan/plan_node.h"
#include "storage/storage_manager.h"

namespace cloudviews {

namespace fault {
class FaultInjector;
}  // namespace fault

class MonotonicClock;
class ThreadPool;
namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Per-job execution environment.
struct ExecContext {
  StorageManager* storage = nullptr;
  uint64_t job_id = 0;

  /// Optional registry for executor counters (morsels, rows, bytes); null
  /// disables instrumentation entirely.
  obs::MetricsRegistry* metrics = nullptr;

  /// Wall-time source for latency attribution; null uses the real
  /// monotonic clock. Injectable so span/latency tests are deterministic.
  MonotonicClock* clock = nullptr;

  /// Shared worker pool (owned by the job service, not by the job); null or
  /// worker_threads <= 1 runs the plan single-threaded on the submitting
  /// thread.
  ThreadPool* pool = nullptr;
  ExecOptions options;

  /// Invoked when a SpoolNode finishes writing its view — *before* the rest
  /// of the job completes. This is the early-materialization hook
  /// (Sec 6.4): the job manager publishes the view to the metadata service
  /// from here so concurrent jobs can already reuse it.
  std::function<void(const SpoolNode&, const StreamData&)>
      on_view_materialized;

  /// Expiry assigned to views materialized by this job (0 = never); set
  /// from the analyzer's lineage-based estimate (Sec 5.4).
  LogicalTime view_expiry = 0;

  /// Invoked when a SpoolNode's view write failed and the partial output
  /// was discarded ("do no harm": the job continues on the spool's input).
  /// The job manager releases the build lock from here.
  std::function<void(const SpoolNode&, const Status&)> on_view_abandoned;

  /// Fault-injection seam for exec.morsel (and, via storage, the
  /// storage.* points). Null disables injection.
  fault::FaultInjector* fault = nullptr;
  /// Backoff schedule for transient view-read retries.
  fault::RetryPolicy retry;
  /// Sleeps between retries; null means the real sleeper. Tests inject a
  /// RecordingSleeper so retries are instantaneous and assertable.
  fault::Sleeper* sleeper = nullptr;
};

/// \brief Morsel-driven executor over the storage manager.
///
/// Each plan node is run by a PhysicalOperator (open / process-morsel /
/// close); operators still fully materialize their outputs — as ordered
/// morsel sets — which keeps per-operator latency/cardinality/size
/// attribution exact, precisely the statistics the CloudViews feedback
/// loop consumes. Independent plan subtrees and intra-operator morsel work
/// are scheduled onto the shared thread pool; per-operator cpu_seconds are
/// the sum of thread-CPU deltas across every worker that touched the
/// operator. Results are byte-identical for every worker count and morsel
/// size. Plans must be bound and have node ids assigned.
///
/// Plans may be DAGs: a subtree reachable through more than one parent
/// (e.g. a rewritten common subexpression feeding two joins) is executed
/// exactly once and its result shared, so cpu_seconds is never double
/// counted and per-node stats rows are written once per physical
/// execution.
class Executor {
 public:
  explicit Executor(ExecContext ctx) : ctx_(std::move(ctx)) {}

  /// Runs the plan; job outputs (Output nodes) and views (Spool nodes) are
  /// written to storage. Returns aggregate + per-operator statistics.
  Result<JobRunStats> Execute(const PlanNodePtr& root);

 private:
  struct ExecState;
  struct SharedNodeState;

  /// Memoizing wrapper: shared (multi-parent) nodes run once, later
  /// arrivals block until the first execution finishes and reuse its
  /// result.
  Result<MorselSet> ExecuteNode(PlanNode* node, ExecState* state);
  Result<MorselSet> ExecuteNodeImpl(PlanNode* node, ExecState* state);

  ExecContext ctx_;
};

/// Concatenates batches into one (helper shared with storage/view code).
Batch CombineBatches(const Schema& schema, const std::vector<Batch>& batches);

/// Sorts `data` rows by the given keys (ascending/descending per key).
/// Used by the Sort operator and by view physical design enforcement.
Batch SortBatch(const Batch& data, const std::vector<SortKey>& keys);

/// Splits rows by hash of the partitioning columns; returns one batch per
/// partition (empty partitions included).
Result<std::vector<Batch>> PartitionBatch(const Batch& data,
                                          const Partitioning& partitioning);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_EXECUTOR_H_
