#ifndef CLOUDVIEWS_TOOLS_LINT_FIXTURES_CLEAN_H_
#define CLOUDVIEWS_TOOLS_LINT_FIXTURES_CLEAN_H_

// Fixture: a header every rule is happy with. The comments below mention
// banned constructs like std::mutex, new data, and time(nullptr) to prove
// the scanner strips comments before matching.
#include "common/mutex.h"

namespace cloudviews {

/// Counter guarded the annotated way ("new data" arrives concurrently).
class GuardedCounter {
 public:
  void Increment() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_LINT_FIXTURES_CLEAN_H_
