#ifndef CLOUDVIEWS_PARSER_PARSER_H_
#define CLOUDVIEWS_PARSER_PARSER_H_

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "parser/lexer.h"
#include "plan/plan_node.h"

namespace cloudviews {

/// A recurring-template parameter binding for one instance: the value used
/// in expressions (`@name`) and the text spliced into stream names
/// (`"clicks_{name}"`).
struct ScriptParam {
  Value value;
  std::string text;
};
using ParamMap = std::map<std::string, ScriptParam>;

/// Date parameter helper: value = date, text = "YYYY-MM-DD".
ScriptParam DateParam(const std::string& iso);
ScriptParam IntParam(int64_t v);
ScriptParam StringParam(const std::string& s);

/// Resolves the data-version GUID of a concrete input stream at compile
/// time (normally backed by the storage manager / catalog).
using GuidResolver = std::function<std::string(const std::string&)>;

/// \brief Recursive-descent compiler from ScopeScript text to a logical
/// plan. One script = one job.
///
/// \code
///   clicks = EXTRACT user:int, page:string, when:date
///            FROM "clicks_{date}";
///   recent = SELECT user, COUNT(*) AS n FROM clicks
///            WHERE when >= @date GROUP BY user;
///   OUTPUT recent TO "user_counts_{date}";
/// \endcode
///
/// Statements: EXTRACT, SELECT (JOIN / WHERE / GROUP BY / ORDER BY / TOP),
/// PROCESS ... USING proc("lib","ver") PRODUCE fields, UNION ALL, OUTPUT.
/// `{param}` holes in strings and `@param` in expressions come from the
/// ParamMap, reproducing "same template, new data each time" (Sec 3).
class ScopeScriptParser {
 public:
  /// Parses and instantiates a script with the given parameters. The
  /// returned plan is unbound. Exactly one OUTPUT statement is required.
  Result<PlanNodePtr> Parse(const std::string& script, const ParamMap& params,
                            const GuidResolver& guid_resolver = nullptr);
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_PARSER_PARSER_H_
