file(REMOVE_RECURSE
  "libcv_common.a"
)
