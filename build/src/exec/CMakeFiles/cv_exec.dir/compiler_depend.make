# Empty compiler generated dependencies file for cv_exec.
# This may be replaced when dependencies are built.
