# Empty dependencies file for cv_runtime.
# This may be replaced when dependencies are built.
