// Containment-based view matching (the staged CandidateMatcher pipeline):
//  - interval / predicate-feature edge cases (open vs closed bounds,
//    mirrored comparisons, opaque conjuncts, NULL-filtering columns)
//  - cap decomposition and the order-safety gate for aggregate compensation
//  - end-to-end subsumption through the facade: residual filters, coarser
//    group-bys, MIN and AVG (sum/count) decomposition — every
//    subsumption-served query byte-identical to its no-reuse baseline
//  - the tier-0 regression pin: exact hits and warm plan-cache hits keep
//    their pre-containment semantics (no containment_verify span, zero
//    funnel)
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/cloudviews.h"
#include "core/explain.h"
#include "obs/export.h"
#include "optimizer/view_matcher.h"
#include "signature/containment.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::ClickSchema;
using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

// ---------------------------------------------------------------------------
// Predicate features: intervals, opaque conjuncts, containment edges
// ---------------------------------------------------------------------------

TEST(PredicateFeaturesTest, ComparisonOpsProduceExpectedBounds) {
  auto gt = ComputePredicateFeatures(Gt(Col("x"), Lit(int64_t{50})));
  ASSERT_EQ(gt.intervals.size(), 1u);
  EXPECT_EQ(gt.intervals[0].column, "x");
  EXPECT_TRUE(gt.intervals[0].has_lower);
  EXPECT_FALSE(gt.intervals[0].lower_inclusive);
  EXPECT_FALSE(gt.intervals[0].has_upper);
  EXPECT_EQ(gt.intervals[0].lower.int64_value(), 50);
  EXPECT_TRUE(gt.opaque.empty());
  EXPECT_EQ(gt.conjuncts.size(), 1u);

  auto ge = ComputePredicateFeatures(Ge(Col("x"), Lit(int64_t{50})));
  ASSERT_EQ(ge.intervals.size(), 1u);
  EXPECT_TRUE(ge.intervals[0].lower_inclusive);

  auto le = ComputePredicateFeatures(Le(Col("x"), Lit(int64_t{100})));
  ASSERT_EQ(le.intervals.size(), 1u);
  EXPECT_FALSE(le.intervals[0].has_lower);
  EXPECT_TRUE(le.intervals[0].has_upper);
  EXPECT_TRUE(le.intervals[0].upper_inclusive);
  EXPECT_EQ(le.intervals[0].upper.int64_value(), 100);

  auto eq = ComputePredicateFeatures(Eq(Col("x"), Lit(int64_t{5})));
  ASSERT_EQ(eq.intervals.size(), 1u);
  EXPECT_TRUE(eq.intervals[0].has_lower);
  EXPECT_TRUE(eq.intervals[0].has_upper);
  EXPECT_TRUE(eq.intervals[0].lower_inclusive);
  EXPECT_TRUE(eq.intervals[0].upper_inclusive);
}

TEST(PredicateFeaturesTest, MirroredComparisonNormalizes) {
  // 10 < x is the same constraint as x > 10.
  auto f = ComputePredicateFeatures(Lt(Lit(int64_t{10}), Col("x")));
  ASSERT_EQ(f.intervals.size(), 1u);
  EXPECT_TRUE(f.intervals[0].has_lower);
  EXPECT_FALSE(f.intervals[0].lower_inclusive);
  EXPECT_EQ(f.intervals[0].lower.int64_value(), 10);
}

TEST(PredicateFeaturesTest, UninterpretableConjunctsAreOpaque) {
  // !=, OR trees, column-to-column comparisons, and null constants carry
  // no interval information; they must only ever match verbatim.
  for (const ExprPtr& e : std::vector<ExprPtr>{
           Ne(Col("x"), Lit(int64_t{3})),
           Or(Gt(Col("x"), Lit(int64_t{1})), Eq(Col("y"), Lit(int64_t{2}))),
           Gt(Col("a"), Col("b")),
           Eq(Col("x"), Lit(Value::Null(DataType::kInt64)))}) {
    auto f = ComputePredicateFeatures(e);
    EXPECT_TRUE(f.intervals.empty());
    ASSERT_EQ(f.opaque.size(), 1u);
    EXPECT_EQ(f.conjuncts.size(), 1u);
  }
  EXPECT_TRUE(ComputePredicateFeatures(nullptr).conjuncts.empty());
}

TEST(PredicateFeaturesTest, OpenClosedContainmentEdges) {
  auto interval_of = [](const ExprPtr& e) {
    auto f = ComputePredicateFeatures(e);
    EXPECT_EQ(f.intervals.size(), 1u);
    return f.intervals[0];
  };
  ColumnInterval open_50 = interval_of(Gt(Col("x"), Lit(int64_t{50})));
  ColumnInterval closed_50 = interval_of(Ge(Col("x"), Lit(int64_t{50})));
  ColumnInterval closed_51 = interval_of(Ge(Col("x"), Lit(int64_t{51})));
  // (50, inf) admits 51.. but not 50: it contains [51, inf) and itself,
  // not [50, inf).
  EXPECT_TRUE(open_50.Contains(open_50));
  EXPECT_TRUE(open_50.Contains(closed_51));
  EXPECT_FALSE(open_50.Contains(closed_50));
  // The closed bound contains both variants at the same edge.
  EXPECT_TRUE(closed_50.Contains(open_50));
  EXPECT_TRUE(closed_50.Contains(closed_50));

  ColumnInterval upper_open = interval_of(Lt(Col("x"), Lit(int64_t{100})));
  ColumnInterval upper_closed = interval_of(Le(Col("x"), Lit(int64_t{100})));
  EXPECT_TRUE(upper_closed.Contains(upper_open));
  EXPECT_FALSE(upper_open.Contains(upper_closed));
}

TEST(PredicateFeaturesTest, ContainmentRequiresEveryViewColumnConstrained) {
  auto view = ComputePredicateFeatures(Gt(Col("latency"), Lit(int64_t{50})));
  // Stronger query predicate on the same column: contained.
  EXPECT_TRUE(view.Contains(
      ComputePredicateFeatures(And(Gt(Col("latency"), Lit(int64_t{80})),
                                   Eq(Col("page"), Lit("/home"))))));
  // Weaker bound: not contained.
  EXPECT_FALSE(view.Contains(
      ComputePredicateFeatures(Gt(Col("latency"), Lit(int64_t{40})))));
  // No latency constraint at all: the view's comparison dropped
  // latency-NULL rows the query would keep (NULL-filtering), so reject.
  EXPECT_FALSE(view.Contains(
      ComputePredicateFeatures(Eq(Col("page"), Lit("/home")))));
  // An empty view predicate admits every core row.
  EXPECT_TRUE(ComputePredicateFeatures(nullptr).Contains(view));
}

TEST(PredicateFeaturesTest, OpaqueViewConjunctMustAppearVerbatim) {
  ExprPtr disjunction =
      Or(Gt(Col("latency"), Lit(int64_t{50})), Eq(Col("page"), Lit("/h")));
  auto view = ComputePredicateFeatures(disjunction);
  ASSERT_EQ(view.opaque.size(), 1u);
  EXPECT_TRUE(view.Contains(ComputePredicateFeatures(
      And(disjunction->Clone(), Gt(Col("user"), Lit(int64_t{5}))))));
  EXPECT_FALSE(view.Contains(
      ComputePredicateFeatures(Gt(Col("latency"), Lit(int64_t{80})))));
}

TEST(PredicateFeaturesTest, FlattenConjunctsWalksNestedAndTrees) {
  ExprPtr pred = And(And(Gt(Col("a"), Lit(int64_t{1})),
                         Lt(Col("b"), Lit(int64_t{2}))),
                     Eq(Col("c"), Lit(int64_t{3})));
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(pred, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  auto f = ComputePredicateFeatures(pred);
  EXPECT_EQ(f.conjuncts.size(), 3u);
  EXPECT_EQ(f.intervals.size(), 3u);
}

// ---------------------------------------------------------------------------
// Cap decomposition and view features
// ---------------------------------------------------------------------------

TEST(CapDecompositionTest, FullCapOverExtractCore) {
  PlanNodePtr plan =
      PlanBuilder::Extract("t_{date}", "t_2018-01-01", "g", ClickSchema())
          .Filter(Gt(Col("latency"), Lit(int64_t{50})))
          .Project({{Col("page"), "page"}, {Col("latency"), "lat"}})
          .Aggregate({"page"}, {{AggFunc::kSum, Col("lat"), "s"}})
          .Build();
  ASSERT_TRUE(plan->Bind().ok());
  CapDecomposition cap = DecomposeCap(*plan);
  EXPECT_TRUE(cap.HasCap());
  EXPECT_NE(cap.aggregate, nullptr);
  EXPECT_NE(cap.project, nullptr);
  EXPECT_NE(cap.filter, nullptr);
  ASSERT_NE(cap.core, nullptr);
  EXPECT_EQ(cap.core->kind(), OpKind::kExtract);
}

TEST(CapDecompositionTest, NonCapRootsHaveNoCap) {
  PlanNodePtr extract =
      PlanBuilder::Extract("t_{date}", "t_2018-01-01", "g", ClickSchema())
          .Build();
  ASSERT_TRUE(extract->Bind().ok());
  EXPECT_FALSE(DecomposeCap(*extract).HasCap());
  EXPECT_EQ(DecomposeCap(*extract).core, extract.get());

  PlanNodePtr sorted = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                           .Sort({{"page", true}})
                           .Build();
  ASSERT_TRUE(sorted->Bind().ok());
  // A Sort root is not a cap op; the core is the whole subtree.
  EXPECT_FALSE(DecomposeCap(*sorted).HasCap());
}

TEST(ViewFeaturesTest, SharedAggPlanFeatures) {
  PlanNodePtr plan = SharedAggPlan("2018-01-01");
  ASSERT_TRUE(plan->Bind().ok());
  ViewFeatures f = ComputeViewFeatures(*plan);
  EXPECT_TRUE(f.has_aggregate);
  EXPECT_EQ(f.group_by, std::vector<std::string>{"page"});
  EXPECT_EQ(f.tables, std::vector<std::string>{"clicks_{date}"});
  EXPECT_EQ(f.table_set_key, TableSetKey({"clicks_{date}"}));
  ASSERT_EQ(f.predicate.intervals.size(), 1u);
  EXPECT_EQ(f.predicate.intervals[0].column, "latency");
  EXPECT_EQ(f.output_columns,
            (std::vector<std::string>{"page", "n", "total_latency"}));

  std::vector<Hash128> keys = CollectTableSetKeys(plan);
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], f.table_set_key);
}

// ---------------------------------------------------------------------------
// Order-safety gate for aggregate compensation
// ---------------------------------------------------------------------------

class OrderGateTest : public ::testing::Test {
 protected:
  /// Builds root -> ... -> Aggregate and returns the root-to-parent
  /// ancestor chain of the aggregate node.
  static std::vector<const PlanNode*> AncestorsOfAggregate(
      const PlanNodePtr& root) {
    std::vector<const PlanNode*> chain;
    const PlanNode* n = root.get();
    while (n->kind() != OpKind::kAggregate) {
      chain.push_back(n);
      n = n->children()[0].get();
    }
    return chain;
  }
};

TEST_F(OrderGateTest, CoveringSortAboveMakesOrderImmaterial) {
  PlanNodePtr plan = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                         .Sort({{"page", true}})
                         .Output("o")
                         .Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_TRUE(OrderImmaterialAbove(AncestorsOfAggregate(plan), {"page"}));
  // An empty group-key set (global aggregate) is covered by any Sort.
  EXPECT_TRUE(OrderImmaterialAbove(AncestorsOfAggregate(plan), {}));
}

TEST_F(OrderGateTest, NonCoveringSortOrNoSortFails) {
  PlanNodePtr sorted_on_n = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                                .Sort({{"n", false}})
                                .Output("o")
                                .Build();
  ASSERT_TRUE(sorted_on_n->Bind().ok());
  EXPECT_FALSE(
      OrderImmaterialAbove(AncestorsOfAggregate(sorted_on_n), {"page"}));

  PlanNodePtr unsorted = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                             .Output("o")
                             .Build();
  ASSERT_TRUE(unsorted->Bind().ok());
  EXPECT_FALSE(
      OrderImmaterialAbove(AncestorsOfAggregate(unsorted), {"page"}));
}

TEST_F(OrderGateTest, IdentityProjectIsTransparentButRenamingIsNot) {
  PlanNodePtr identity =
      PlanBuilder::From(SharedAggPlan("2018-01-01"))
          .Project({{Col("page"), "page"}, {Col("n"), "n"}})
          .Sort({{"page", true}})
          .Output("o")
          .Build();
  ASSERT_TRUE(identity->Bind().ok());
  EXPECT_TRUE(OrderImmaterialAbove(AncestorsOfAggregate(identity), {"page"}));

  PlanNodePtr renamed =
      PlanBuilder::From(SharedAggPlan("2018-01-01"))
          .Project({{Col("page"), "pg"}, {Col("n"), "n"}})
          .Sort({{"pg", true}})
          .Output("o")
          .Build();
  ASSERT_TRUE(renamed->Bind().ok());
  // "page" does not survive the rename; the gate cannot see through it.
  EXPECT_FALSE(OrderImmaterialAbove(AncestorsOfAggregate(renamed), {"page"}));
}

// ---------------------------------------------------------------------------
// End-to-end subsumption through the facade
// ---------------------------------------------------------------------------

JobDefinition MakeJob(const std::string& id, PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

JobDefinition JobA(const std::string& date) {
  return MakeJob("jobA", PlanBuilder::From(SharedAggPlan(date))
                             .Sort({{"n", false}})
                             .Output("A_" + date)
                             .Build());
}

JobDefinition JobB(const std::string& date) {
  return MakeJob("jobB", PlanBuilder::From(SharedAggPlan(date))
                             .Filter(Gt(Col("n"), Lit(int64_t{0})))
                             .Output("B_" + date)
                             .Build());
}

/// Canonical row-sorted rendering of a stored stream (same contract as
/// plan_cache_test / crash_stress_test).
std::string Fingerprint(StorageManager* storage, const std::string& stream) {
  auto open = storage->OpenStream(stream);
  if (!open.ok()) return "<unreadable: " + open.status().ToString() + ">";
  Batch all = CombineBatches((*open)->schema, (*open)->batches);
  std::vector<SortKey> keys;
  for (const auto& f : (*open)->schema.fields()) {
    keys.push_back({f.name, /*ascending=*/true});
  }
  all = SortBatch(all, keys);
  std::string out;
  for (size_t r = 0; r < all.num_rows(); ++r) {
    for (const Value& v : all.GetRow(r)) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

class SubsumptionServiceTest : public ::testing::Test {
 protected:
  static CloudViewsConfig Config() {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    return config;
  }

  /// Day-1 history for the shared aggregate + analysis, then a day-2
  /// materializing run, so later day-2 submissions can only be served by
  /// containment (their shapes match no annotation exactly).
  static void SeedAggView(CloudViews* cv) {
    WriteClickStream(cv->storage(), "clicks_2018-01-01", 1500, 1,
                     "2018-01-01");
    ASSERT_TRUE(cv->Submit(JobA("2018-01-01"), false).ok());
    ASSERT_TRUE(cv->Submit(JobB("2018-01-01"), false).ok());
    cv->RunAnalyzerAndLoad();
    ASSERT_GE(cv->metadata()->NumAnnotations(), 1u);
    WriteClickStream(cv->storage(), "clicks_2018-01-02", 1100, 2,
                     "2018-01-02");
    auto build = cv->Submit(JobA("2018-01-02"));
    ASSERT_TRUE(build.ok());
    ASSERT_EQ(build->views_materialized, 1);
  }

  static PlanBuilder Clicks(const std::string& date) {
    return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                                "guid-clicks_" + date, ClickSchema());
  }

  /// The shared aggregate narrowed to one page: same core + group-by, an
  /// extra group-key conjunct the view did not apply, a covering Sort.
  static PlanNodePtr PageFilterQuery(const std::string& date,
                                     const std::string& out) {
    return Clicks(date)
        .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                    Eq(Col("page"), Lit("/home"))))
        .Aggregate({"page"},
                   {{AggFunc::kCount, nullptr, "n"},
                    {AggFunc::kSum, Col("latency"), "total_latency"}})
        .Sort({{"page", true}})
        .Output(out)
        .Build();
  }

  /// Verifies `def` (submitted with CloudViews on) produces bytes
  /// identical to `base` (same plan shape, CloudViews off) and returns the
  /// CloudViews-side result.
  JobResult SubmitAndCompare(CloudViews* cv, JobDefinition base,
                             const std::string& base_stream,
                             JobDefinition def,
                             const std::string& def_stream) {
    auto b = cv->Submit(std::move(base), false);
    EXPECT_TRUE(b.ok()) << b.status().ToString();
    auto r = cv->Submit(std::move(def), true);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Fingerprint(cv->storage(), def_stream),
              Fingerprint(cv->storage(), base_stream));
    return r.ok() ? *r : JobResult{};
  }
};

TEST_F(SubsumptionServiceTest, ResidualGroupKeyFilterServedBySubsumption) {
  CloudViews cv(Config());
  SeedAggView(&cv);

  JobResult r = SubmitAndCompare(
      &cv, MakeJob("qc-base", PageFilterQuery("2018-01-02", "C_base")),
      "C_base", MakeJob("qc", PageFilterQuery("2018-01-02", "C_cv")),
      "C_cv");

  EXPECT_EQ(r.views_reused, 1);
  EXPECT_EQ(r.views_reused_subsumed, 1);
  EXPECT_EQ(r.candidates_filtered, 1);
  EXPECT_EQ(r.containment_verified, 1);
  EXPECT_EQ(r.containment_rejected, 0);
  // Residual Filter(page = "/home") + re-aggregation + final Project.
  EXPECT_EQ(r.compensation_nodes_added, 3);

  // The funnel reaches the trace, explain, profile JSON, and metrics.
  ASSERT_NE(r.trace, nullptr);
  const obs::SpanRecord* verify = r.trace->Find("containment_verify");
  ASSERT_NE(verify, nullptr);
  bool stamped = false;
  for (const auto& [k, v] : verify->attributes) {
    if (k == "views_reused_subsumed" && v == "1") stamped = true;
  }
  EXPECT_TRUE(stamped);
  std::string explain = ExplainJob(r);
  EXPECT_NE(explain.find("containment: 1 candidate(s) filtered"),
            std::string::npos)
      << explain;
  EXPECT_NE(explain.find("1 view(s) reused by subsumption"),
            std::string::npos);
  std::string json = JobProfileJson(r);
  EXPECT_NE(json.find("\"views_reused_subsumed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"compensation_nodes_added\":3"), std::string::npos);
  std::string metrics = obs::RenderPrometheus(*cv.metrics());
  EXPECT_NE(metrics.find("cv_containment_verified_total 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("cv_rewrite_views_reused_subsumed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("cv_containment_compensation_nodes_total 3"),
            std::string::npos);
}

TEST_F(SubsumptionServiceTest, CoarserGlobalAggregateServedBySubsumption) {
  CloudViews cv(Config());
  SeedAggView(&cv);

  auto global = [](const std::string& date, const std::string& out) {
    return Clicks(date)
        .Filter(Gt(Col("latency"), Lit(int64_t{50})))
        .Aggregate({}, {{AggFunc::kCount, nullptr, "rows"},
                        {AggFunc::kSum, Col("latency"), "lat_sum"}})
        .Sort({{"rows", false}})
        .Output(out)
        .Build();
  };
  JobResult r = SubmitAndCompare(
      &cv, MakeJob("qg-base", global("2018-01-02", "G_base")), "G_base",
      MakeJob("qg", global("2018-01-02", "G_cv")), "G_cv");

  EXPECT_EQ(r.views_reused_subsumed, 1);
  // The view already applied the only conjunct: no residual filter, just
  // re-aggregation (partial-count rollup) + the final Project.
  EXPECT_EQ(r.compensation_nodes_added, 2);
}

TEST_F(SubsumptionServiceTest, OrderGateBlocksUnsortedAggCompensation) {
  CloudViews cv(Config());
  SeedAggView(&cv);

  auto unsorted = [](const std::string& date, const std::string& out) {
    return Clicks(date)
        .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                    Eq(Col("page"), Lit("/home"))))
        .Aggregate({"page"},
                   {{AggFunc::kCount, nullptr, "n"},
                    {AggFunc::kSum, Col("latency"), "total_latency"}})
        .Output(out)
        .Build();
  };
  JobResult r = SubmitAndCompare(
      &cv, MakeJob("qu-base", unsorted("2018-01-02", "U_base")), "U_base",
      MakeJob("qu", unsorted("2018-01-02", "U_cv")), "U_cv");

  // Without a covering Sort the re-aggregated group order could leak into
  // bytes; the candidate passes tier 1 but is rejected, and the job runs
  // (byte-identically) without reuse.
  EXPECT_EQ(r.views_reused, 0);
  EXPECT_EQ(r.views_reused_subsumed, 0);
  EXPECT_EQ(r.candidates_filtered, 1);
  EXPECT_EQ(r.containment_verified, 0);
  EXPECT_EQ(r.containment_rejected, 1);
}

TEST_F(SubsumptionServiceTest, ContainmentFlagOffKeepsLegacyBehavior) {
  CloudViewsConfig config = Config();
  config.optimizer.enable_containment_matching = false;
  CloudViews cv(config);
  SeedAggView(&cv);

  JobResult r = SubmitAndCompare(
      &cv, MakeJob("qd-base", PageFilterQuery("2018-01-02", "D_base")),
      "D_base", MakeJob("qd", PageFilterQuery("2018-01-02", "D_cv")),
      "D_cv");
  EXPECT_EQ(r.views_reused, 0);
  EXPECT_EQ(r.candidates_filtered, 0);
  EXPECT_EQ(r.views_reused_subsumed, 0);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->Find("containment_verify"), nullptr);
}

TEST_F(SubsumptionServiceTest, StrongerFilterOverRawViewSubsumed) {
  // A no-aggregate (filter-only) view: day-1 templates share only the
  // filtered scan. The day-2 query strengthens the filter and narrows the
  // projection — row-wise compensation, no order gate needed.
  CloudViews cv(Config());
  WriteClickStream(cv.storage(), "clicks_2018-01-01", 1500, 1, "2018-01-01");
  auto filtered = [this](const std::string& date) {
    return Clicks(date).Filter(Gt(Col("latency"), Lit(int64_t{50})));
  };
  ASSERT_TRUE(cv.Submit(MakeJob("p1", filtered("2018-01-01")
                                          .Sort({{"user", true},
                                                 {"page", true},
                                                 {"latency", true}})
                                          .Output("P1_2018-01-01")
                                          .Build()),
                        false)
                  .ok());
  ASSERT_TRUE(cv.Submit(MakeJob("p2", filtered("2018-01-01")
                                          .Select({"page", "latency"})
                                          .Output("P2_2018-01-01")
                                          .Build()),
                        false)
                  .ok());
  cv.RunAnalyzerAndLoad();
  ASSERT_GE(cv.metadata()->NumAnnotations(), 1u);

  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1100, 2, "2018-01-02");
  auto build = cv.Submit(MakeJob("p1", filtered("2018-01-02")
                                           .Sort({{"user", true},
                                                  {"page", true},
                                                  {"latency", true}})
                                           .Output("P1_2018-01-02")
                                           .Build()));
  ASSERT_TRUE(build.ok());
  ASSERT_EQ(build->views_materialized, 1);

  // The strengthened predicate folds both bounds into ONE Filter node so
  // no query subtree matches the annotated Filter(>50) exactly — only the
  // containment tiers can serve it.
  auto strengthened = [&](const std::string& out) {
    return Clicks("2018-01-02")
        .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                    Lt(Col("latency"), Lit(int64_t{300}))))
        .Select({"page", "latency"})
        .Output(out)
        .Build();
  };
  JobResult r = SubmitAndCompare(
      &cv, MakeJob("q-base", strengthened("N_base")), "N_base",
      MakeJob("q-cv", strengthened("N_cv")), "N_cv");

  EXPECT_EQ(r.views_reused, 1);
  EXPECT_EQ(r.views_reused_subsumed, 1);
  // Residual Filter(latency < 300) + final Project to {page, latency}.
  EXPECT_EQ(r.compensation_nodes_added, 2);
}

TEST_F(SubsumptionServiceTest, AvgAndMinDecomposeFromSumCountView) {
  // View with SUM/COUNT/MIN partials over data containing NULL latencies
  // (one page's latency is always NULL): AVG decomposes as
  // SUM(sum)/SUM(count) including the NULL-on-empty-group edge, MIN rolls
  // up as MIN-of-MINs.
  CloudViews cv(Config());
  Schema schema = ClickSchema();
  auto write_avg = [&](const std::string& date, uint64_t seed) {
    Rng rng(seed);
    int64_t day = 0;
    ASSERT_TRUE(ParseDate(date, &day));
    Batch b(schema);
    for (int i = 0; i < 700; ++i) {
      std::string page = "/p" + std::to_string(rng.Uniform(4));
      Value latency =
          page == "/p3" ? Value::Null(DataType::kInt64)
                        : Value::Int64(static_cast<int64_t>(rng.Uniform(400)));
      ASSERT_TRUE(
          b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                       Value::String(page), latency, Value::Date(day)})
              .ok());
    }
    ASSERT_TRUE(cv.storage()
                    ->WriteStream(MakeStreamData(
                        "avg_clicks_" + date, "guid-avg_clicks_" + date,
                        schema, {b}, cv.storage()->clock()->Now()))
                    .ok());
  };
  auto partials = [&](const std::string& date) {
    return PlanBuilder::Extract("avg_clicks_{date}", "avg_clicks_" + date,
                                "guid-avg_clicks_" + date, schema)
        .Filter(Gt(Col("user"), Lit(int64_t{5})))
        .Aggregate({"page"}, {{AggFunc::kSum, Col("latency"), "s"},
                              {AggFunc::kCount, Col("latency"), "c"},
                              {AggFunc::kMin, Col("latency"), "mn"}});
  };
  write_avg("2018-01-01", 11);
  ASSERT_TRUE(cv.Submit(MakeJob("v1", partials("2018-01-01")
                                          .Sort({{"page", true}})
                                          .Output("V1_2018-01-01")
                                          .Build()),
                        false)
                  .ok());
  ASSERT_TRUE(cv.Submit(MakeJob("v2", partials("2018-01-01")
                                          .Filter(Gt(Col("c"), Lit(int64_t{0})))
                                          .Output("V2_2018-01-01")
                                          .Build()),
                        false)
                  .ok());
  cv.RunAnalyzerAndLoad();
  ASSERT_GE(cv.metadata()->NumAnnotations(), 1u);

  write_avg("2018-01-02", 12);
  auto build = cv.Submit(MakeJob("v1", partials("2018-01-02")
                                           .Sort({{"page", true}})
                                           .Output("V1_2018-01-02")
                                           .Build()));
  ASSERT_TRUE(build.ok());
  ASSERT_EQ(build->views_materialized, 1);

  auto avg_query = [&](const std::string& out) {
    return PlanBuilder::Extract("avg_clicks_{date}",
                                "avg_clicks_2018-01-02",
                                "guid-avg_clicks_2018-01-02", schema)
        .Filter(Gt(Col("user"), Lit(int64_t{5})))
        .Aggregate({"page"}, {{AggFunc::kAvg, Col("latency"), "avg_lat"},
                              {AggFunc::kMin, Col("latency"), "min_lat"}})
        .Sort({{"page", true}})
        .Output(out)
        .Build();
  };
  JobResult r = SubmitAndCompare(
      &cv, MakeJob("qa-base", avg_query("AV_base")), "AV_base",
      MakeJob("qa-cv", avg_query("AV_cv")), "AV_cv");

  EXPECT_EQ(r.views_reused_subsumed, 1);
  // No residual (identical filter); re-aggregation + Project with the
  // AVG division expression.
  EXPECT_EQ(r.compensation_nodes_added, 2);

  // The all-NULL group genuinely exercised the NULL edge: the /p3 group
  // exists with a NULL average on both sides.
  auto out = cv.storage()->OpenStream("AV_cv");
  ASSERT_TRUE(out.ok());
  Batch data = CombineBatches((*out)->schema, (*out)->batches);
  bool saw_null_avg = false;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    if (data.column(0).GetValue(i).string_value() == "/p3") {
      EXPECT_TRUE(data.column(1).GetValue(i).is_null());
      EXPECT_TRUE(data.column(2).GetValue(i).is_null());
      saw_null_avg = true;
    }
  }
  EXPECT_TRUE(saw_null_avg);
}

// ---------------------------------------------------------------------------
// Tier-0 regression pin (satellite: exact path + plan cache untouched)
// ---------------------------------------------------------------------------

TEST_F(SubsumptionServiceTest, ExactTierAndWarmCacheKeepPreStagedSemantics) {
  CloudViews cv(Config());
  SeedAggView(&cv);

  // Exact tier-0 reuse: the shared aggregate matches by hash; the
  // containment tiers never run (zero funnel, no containment_verify span,
  // no containment line in explain).
  auto exact = cv.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->views_reused, 1);
  EXPECT_EQ(exact->views_reused_subsumed, 0);
  EXPECT_EQ(exact->candidates_filtered, 0);
  EXPECT_EQ(exact->containment_verified, 0);
  EXPECT_EQ(exact->compensation_nodes_added, 0);
  ASSERT_NE(exact->trace, nullptr);
  EXPECT_EQ(exact->trace->Find("containment_verify"), nullptr);
  EXPECT_EQ(ExplainJob(*exact).find("containment:"), std::string::npos);

  // Warm recurring resubmission: served from the plan cache with the
  // pre-containment span tree and zero funnel.
  auto warm = cv.Submit(JobB("2018-01-02"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(warm->candidates_filtered, 0);
  EXPECT_EQ(warm->views_reused_subsumed, 0);
  ASSERT_NE(warm->trace, nullptr);
  EXPECT_NE(warm->trace->Find("plan_cache"), nullptr);
  EXPECT_EQ(warm->trace->Find("containment_verify"), nullptr);
  EXPECT_EQ(warm->trace->Find("optimize"), nullptr);
}

// ---------------------------------------------------------------------------
// Property-style sweep: perturbed recurring workload
// ---------------------------------------------------------------------------

TEST_F(SubsumptionServiceTest, PerturbedWorkloadAlwaysByteIdentical) {
  CloudViews cv(Config());
  SeedAggView(&cv);

  struct Variant {
    std::string name;
    bool expect_subsumed;
    std::function<PlanNodePtr(const std::string&)> make;
  };
  auto specs = []() {
    return std::vector<AggregateSpec>{
        {AggFunc::kCount, nullptr, "n"},
        {AggFunc::kSum, Col("latency"), "total_latency"}};
  };
  std::vector<Variant> variants = {
      {"page_eq", true,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                         Eq(Col("page"), Lit("/cart"))))
             .Aggregate({"page"}, specs())
             .Sort({{"page", true}})
             .Output(out)
             .Build();
       }},
      {"page_range", true,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                         Ge(Col("page"), Lit("/c"))))
             .Aggregate({"page"}, specs())
             .Sort({{"page", true}})
             .Output(out)
             .Build();
       }},
      {"global_rollup", true,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(Gt(Col("latency"), Lit(int64_t{50})))
             .Aggregate({}, {{AggFunc::kCount, nullptr, "rows"}})
             .Sort({{"rows", true}})
             .Output(out)
             .Build();
       }},
      // MIN is not among the view's partial aggregates: tier 2 must
      // reject, and the job still runs byte-identically.
      {"min_not_decomposable", false,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(Gt(Col("latency"), Lit(int64_t{50})))
             .Aggregate({"page"}, {{AggFunc::kMin, Col("latency"), "m"}})
             .Sort({{"page", true}})
             .Output(out)
             .Build();
       }},
      // No covering Sort: the order gate must reject.
      {"unsorted", false,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                         Eq(Col("page"), Lit("/search"))))
             .Aggregate({"page"}, specs())
             .Output(out)
             .Build();
       }},
      // Weaker filter than the view: not contained.
      {"weaker_filter", false,
       [&](const std::string& out) {
         return Clicks("2018-01-02")
             .Filter(Gt(Col("latency"), Lit(int64_t{10})))
             .Aggregate({"page"}, specs())
             .Sort({{"page", true}})
             .Output(out)
             .Build();
       }},
  };

  int subsumed_total = 0;
  for (const Variant& v : variants) {
    std::string base_stream = "pw_base_" + v.name;
    std::string cv_stream = "pw_cv_" + v.name;
    JobResult r = SubmitAndCompare(
        &cv, MakeJob("pwb-" + v.name, v.make(base_stream)), base_stream,
        MakeJob("pw-" + v.name, v.make(cv_stream)), cv_stream);
    EXPECT_EQ(r.views_reused_subsumed, v.expect_subsumed ? 1 : 0) << v.name;
    subsumed_total += r.views_reused_subsumed;
  }
  EXPECT_EQ(subsumed_total, 3);
}

}  // namespace
}  // namespace cloudviews
