#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/expr.h"
#include "expr/function_registry.h"

namespace cloudviews {
namespace {

Schema TestSchema() {
  return Schema({{"a", DataType::kInt64},
                 {"b", DataType::kDouble},
                 {"s", DataType::kString},
                 {"d", DataType::kDate},
                 {"f", DataType::kBool}});
}

Batch TestBatch() {
  Batch b(TestSchema());
  EXPECT_TRUE(b.AppendRow({Value::Int64(1), Value::Double(1.5),
                           Value::String("foo"),
                           Value::DateFromString("2018-01-01"),
                           Value::Bool(true)})
                  .ok());
  EXPECT_TRUE(b.AppendRow({Value::Int64(2), Value::Double(2.5),
                           Value::String("bar"),
                           Value::DateFromString("2018-06-15"),
                           Value::Bool(false)})
                  .ok());
  EXPECT_TRUE(b.AppendRow({Value::Int64(3), Value::Null(DataType::kDouble),
                           Value::String(""),
                           Value::DateFromString("2019-02-28"),
                           Value::Bool(true)})
                  .ok());
  return b;
}

Value EvalOne(ExprPtr e, size_t row = 0) {
  Batch b = TestBatch();
  EXPECT_TRUE(e->Bind(b.schema()).ok());
  return e->EvaluateRow(b, row);
}

// --- Binding -------------------------------------------------------------------

TEST(ExprBindTest, ColumnRefResolvesIndexAndType) {
  auto c = Col("b");
  ASSERT_TRUE(c->Bind(TestSchema()).ok());
  EXPECT_EQ(c->output_type(), DataType::kDouble);
}

TEST(ExprBindTest, UnknownColumnFails) {
  auto c = Col("missing");
  EXPECT_TRUE(c->Bind(TestSchema()).IsInvalidArgument());
}

TEST(ExprBindTest, ComparisonStringVsNumberFails) {
  auto e = Eq(Col("s"), Col("a"));
  EXPECT_TRUE(e->Bind(TestSchema()).IsTypeError());
}

TEST(ExprBindTest, ArithmeticOnStringFails) {
  auto e = Add(Col("s"), Lit(int64_t{1}));
  EXPECT_TRUE(e->Bind(TestSchema()).IsTypeError());
}

TEST(ExprBindTest, DivisionAlwaysDouble) {
  auto e = Div(Col("a"), Lit(int64_t{2}));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  EXPECT_EQ(e->output_type(), DataType::kDouble);
}

TEST(ExprBindTest, IntArithmeticStaysInt) {
  auto e = Add(Col("a"), Lit(int64_t{2}));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  EXPECT_EQ(e->output_type(), DataType::kInt64);
}

TEST(ExprBindTest, LogicalRequiresBool) {
  auto e = And(Col("f"), Col("f"));
  EXPECT_TRUE(e->Bind(TestSchema()).ok());
  auto bad = And(Col("f"), Col("a"));
  EXPECT_TRUE(bad->Bind(TestSchema()).IsTypeError());
}

// --- Evaluation ------------------------------------------------------------------

TEST(ExprEvalTest, ColumnAndLiteral) {
  EXPECT_EQ(EvalOne(Col("a"), 1).int64_value(), 2);
  EXPECT_EQ(EvalOne(Lit(int64_t{42})).int64_value(), 42);
}

TEST(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(EvalOne(Gt(Col("a"), Lit(int64_t{0}))).bool_value());
  EXPECT_FALSE(EvalOne(Lt(Col("a"), Lit(int64_t{1}))).bool_value());
  EXPECT_TRUE(EvalOne(Ge(Col("b"), Lit(1.5))).bool_value());
  EXPECT_TRUE(EvalOne(Ne(Col("s"), Lit("xyz"))).bool_value());
}

TEST(ExprEvalTest, NullComparisonYieldsNull) {
  // Row 2 has b = NULL.
  EXPECT_TRUE(EvalOne(Gt(Col("b"), Lit(0.0)), 2).is_null());
}

TEST(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(EvalOne(Add(Col("a"), Lit(int64_t{10}))).int64_value(), 11);
  EXPECT_EQ(EvalOne(Mul(Col("a"), Col("a")), 1).int64_value(), 4);
  EXPECT_DOUBLE_EQ(EvalOne(Div(Col("a"), Lit(int64_t{2})), 1).double_value(),
                   1.0);
  EXPECT_EQ(EvalOne(Mod(Lit(int64_t{7}), Lit(int64_t{3}))).int64_value(), 1);
}

TEST(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(EvalOne(Div(Col("a"), Lit(int64_t{0}))).is_null());
  EXPECT_TRUE(EvalOne(Mod(Col("a"), Lit(int64_t{0}))).is_null());
}

TEST(ExprEvalTest, LogicalShortCircuitWithNulls) {
  // false AND NULL = false; true OR NULL = true (SQL three-valued logic).
  auto null_bool = Gt(Col("b"), Lit(0.0));  // null on row 2
  EXPECT_FALSE(EvalOne(And(Lit(false), null_bool), 2).is_null());
  EXPECT_FALSE(EvalOne(And(Lit(false), null_bool), 2).bool_value());
  EXPECT_TRUE(EvalOne(Or(Lit(true), null_bool), 2).bool_value());
  EXPECT_TRUE(EvalOne(And(Lit(true), null_bool), 2).is_null());
}

TEST(ExprEvalTest, NotOperator) {
  EXPECT_FALSE(EvalOne(Not(Col("f"))).bool_value());
}

TEST(ExprEvalTest, DateFunctions) {
  EXPECT_EQ(EvalOne(Func("year", {Col("d")}), 1).int64_value(), 2018);
  EXPECT_EQ(EvalOne(Func("month", {Col("d")}), 1).int64_value(), 6);
  EXPECT_EQ(EvalOne(Func("day", {Col("d")}), 1).int64_value(), 15);
}

TEST(ExprEvalTest, StringFunctions) {
  EXPECT_EQ(EvalOne(Func("upper", {Col("s")})).string_value(), "FOO");
  EXPECT_EQ(EvalOne(Func("strlen", {Col("s")})).int64_value(), 3);
  EXPECT_EQ(EvalOne(Func("substr", {Col("s"), Lit(int64_t{1}),
                                    Lit(int64_t{2})}))
                .string_value(),
            "oo");
  EXPECT_EQ(
      EvalOne(Func("concat", {Col("s"), Lit("!" )})).string_value(),
      "foo!");
}

TEST(ExprEvalTest, SubstrOutOfRange) {
  EXPECT_EQ(EvalOne(Func("substr", {Col("s"), Lit(int64_t{10}),
                                    Lit(int64_t{5})}))
                .string_value(),
            "");
}

TEST(ExprEvalTest, IfFunction) {
  auto e = Func("if", {Gt(Col("a"), Lit(int64_t{1})), Lit("big"),
                       Lit("small")});
  EXPECT_EQ(EvalOne(e, 0).string_value(), "small");
  EXPECT_EQ(EvalOne(e, 1).string_value(), "big");
}

TEST(ExprEvalTest, UnknownFunctionFailsBind) {
  auto e = Func("nope", {Col("a")});
  EXPECT_TRUE(e->Bind(TestSchema()).IsNotFound());
}

TEST(ExprEvalTest, VectorizedEvaluateMatchesRowwise) {
  Batch b = TestBatch();
  auto e = Add(Col("a"), Lit(int64_t{100}));
  ASSERT_TRUE(e->Bind(b.schema()).ok());
  Column out(DataType::kInt64);
  ASSERT_TRUE(e->Evaluate(b, &out).ok());
  ASSERT_EQ(out.size(), b.num_rows());
  for (size_t i = 0; i < b.num_rows(); ++i) {
    EXPECT_EQ(out.GetValue(i).int64_value(),
              e->EvaluateRow(b, i).int64_value());
  }
}

// --- UDFs ----------------------------------------------------------------------

TEST(UdfTest, RegisteredUdfEvaluates) {
  UdfRegistry::Global()->Register(
      "double_it", {[](const std::vector<Value>& args) {
                      return Value::Int64(args[0].int64_value() * 2);
                    },
                    DataType::kInt64, "mathlib", "1.0"});
  auto e = Udf("double_it", "mathlib", "1.0", {Col("a")});
  EXPECT_EQ(EvalOne(e, 1).int64_value(), 4);
}

TEST(UdfTest, UnregisteredUdfFailsBind) {
  auto e = Udf("ghost", "lib", "1.0", {Col("a")});
  EXPECT_TRUE(e->Bind(TestSchema()).IsNotFound());
}

// --- Signature hashing ------------------------------------------------------------

TEST(ExprHashTest, EqualExpressionsHashEqual) {
  auto a = Gt(Col("a"), Lit(int64_t{5}));
  auto b = Gt(Col("a"), Lit(int64_t{5}));
  HashBuilder ha, hb;
  a->HashInto(&ha, SignatureMode::kPrecise);
  b->HashInto(&hb, SignatureMode::kPrecise);
  EXPECT_EQ(ha.Finish(), hb.Finish());
}

TEST(ExprHashTest, DifferentLiteralsDifferPrecisely) {
  auto a = Gt(Col("a"), Lit(int64_t{5}));
  auto b = Gt(Col("a"), Lit(int64_t{6}));
  HashBuilder ha, hb;
  a->HashInto(&ha, SignatureMode::kPrecise);
  b->HashInto(&hb, SignatureMode::kPrecise);
  EXPECT_NE(ha.Finish(), hb.Finish());
}

TEST(ExprHashTest, ParameterValueIgnoredInNormalizedMode) {
  auto a = Ge(Col("d"), Param("date", Value::DateFromString("2018-01-01")));
  auto b = Ge(Col("d"), Param("date", Value::DateFromString("2018-01-02")));
  HashBuilder na, nb;
  a->HashInto(&na, SignatureMode::kNormalized);
  b->HashInto(&nb, SignatureMode::kNormalized);
  EXPECT_EQ(na.Finish(), nb.Finish());

  HashBuilder pa, pb;
  a->HashInto(&pa, SignatureMode::kPrecise);
  b->HashInto(&pb, SignatureMode::kPrecise);
  EXPECT_NE(pa.Finish(), pb.Finish());
}

TEST(ExprHashTest, DateLiteralsNormalizeAway) {
  auto a = Ge(Col("d"), DateLit("2018-01-01"));
  auto b = Ge(Col("d"), DateLit("2018-05-05"));
  HashBuilder na, nb;
  a->HashInto(&na, SignatureMode::kNormalized);
  b->HashInto(&nb, SignatureMode::kNormalized);
  EXPECT_EQ(na.Finish(), nb.Finish());
}

TEST(ExprHashTest, UdfVersionOnlyInPreciseMode) {
  auto a = Udf("f", "lib", "1.0", {Col("a")});
  auto b = Udf("f", "lib", "2.0", {Col("a")});
  HashBuilder na, nb, pa, pb;
  a->HashInto(&na, SignatureMode::kNormalized);
  b->HashInto(&nb, SignatureMode::kNormalized);
  EXPECT_EQ(na.Finish(), nb.Finish());
  a->HashInto(&pa, SignatureMode::kPrecise);
  b->HashInto(&pb, SignatureMode::kPrecise);
  EXPECT_NE(pa.Finish(), pb.Finish());
}

// --- Clone -----------------------------------------------------------------------

TEST(ExprCloneTest, DeepCopyIndependentBinding) {
  auto e = And(Gt(Col("a"), Lit(int64_t{1})), Not(Col("f")));
  auto c = e->Clone();
  ASSERT_TRUE(c->Bind(TestSchema()).ok());
  EXPECT_FALSE(e->bound());
  EXPECT_TRUE(c->bound());
  EXPECT_EQ(e->ToString(), c->ToString());
}

// --- Aggregates --------------------------------------------------------------------

TEST(AggregateTest, BindInfersTypes) {
  Schema s = TestSchema();
  AggregateSpec count_star{AggFunc::kCount, nullptr, "n"};
  EXPECT_EQ(*count_star.Bind(s), DataType::kInt64);
  AggregateSpec sum_int{AggFunc::kSum, Col("a"), "sa"};
  EXPECT_EQ(*sum_int.Bind(s), DataType::kInt64);
  AggregateSpec sum_dbl{AggFunc::kSum, Col("b"), "sb"};
  EXPECT_EQ(*sum_dbl.Bind(s), DataType::kDouble);
  AggregateSpec avg{AggFunc::kAvg, Col("a"), "av"};
  EXPECT_EQ(*avg.Bind(s), DataType::kDouble);
  AggregateSpec min_str{AggFunc::kMin, Col("s"), "m"};
  EXPECT_EQ(*min_str.Bind(s), DataType::kString);
}

TEST(AggregateTest, SumOfStringFails) {
  AggregateSpec bad{AggFunc::kSum, Col("s"), "x"};
  EXPECT_TRUE(bad.Bind(TestSchema()).status().IsTypeError());
}

TEST(AggregateTest, NonCountWithoutArgFails) {
  AggregateSpec bad{AggFunc::kMax, nullptr, "x"};
  EXPECT_TRUE(bad.Bind(TestSchema()).status().IsTypeError());
}

TEST(AggStateTest, CountSkipsNulls) {
  AggState st(AggFunc::kCount);
  st.Update(Value::Int64(1));
  st.Update(Value::Null(DataType::kInt64));
  st.Update(Value::Int64(2));
  EXPECT_EQ(st.Finish(DataType::kInt64).int64_value(), 2);
}

TEST(AggStateTest, SumMinMaxAvg) {
  AggState sum(AggFunc::kSum), mn(AggFunc::kMin), mx(AggFunc::kMax),
      avg(AggFunc::kAvg);
  for (int64_t v : {3, 1, 2}) {
    Value x = Value::Int64(v);
    sum.Update(x);
    mn.Update(x);
    mx.Update(x);
    avg.Update(x);
  }
  EXPECT_EQ(sum.Finish(DataType::kInt64).int64_value(), 6);
  EXPECT_EQ(mn.Finish(DataType::kInt64).int64_value(), 1);
  EXPECT_EQ(mx.Finish(DataType::kInt64).int64_value(), 3);
  EXPECT_DOUBLE_EQ(avg.Finish(DataType::kDouble).double_value(), 2.0);
}

TEST(AggStateTest, EmptyInputYieldsNullOrZero) {
  EXPECT_EQ(AggState(AggFunc::kCount).Finish(DataType::kInt64).int64_value(),
            0);
  EXPECT_TRUE(AggState(AggFunc::kSum).Finish(DataType::kInt64).is_null());
  EXPECT_TRUE(AggState(AggFunc::kMin).Finish(DataType::kInt64).is_null());
  EXPECT_TRUE(AggState(AggFunc::kAvg).Finish(DataType::kDouble).is_null());
}

TEST(AggregateTest, SpecHashNormalizesArg) {
  AggregateSpec a{AggFunc::kSum,
                  Add(Col("a"), Param("p", Value::Int64(1))), "s"};
  AggregateSpec b{AggFunc::kSum,
                  Add(Col("a"), Param("p", Value::Int64(2))), "s"};
  HashBuilder na, nb;
  a.HashInto(&na, SignatureMode::kNormalized);
  b.HashInto(&nb, SignatureMode::kNormalized);
  EXPECT_EQ(na.Finish(), nb.Finish());
}

}  // namespace
}  // namespace cloudviews
