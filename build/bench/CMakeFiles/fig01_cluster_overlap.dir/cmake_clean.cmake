file(REMOVE_RECURSE
  "CMakeFiles/fig01_cluster_overlap.dir/fig01_cluster_overlap.cc.o"
  "CMakeFiles/fig01_cluster_overlap.dir/fig01_cluster_overlap.cc.o.d"
  "fig01_cluster_overlap"
  "fig01_cluster_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cluster_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
