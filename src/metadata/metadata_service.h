#ifndef CLOUDVIEWS_METADATA_METADATA_SERVICE_H_
#define CLOUDVIEWS_METADATA_METADATA_SERVICE_H_

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "optimizer/view_interfaces.h"
#include "storage/storage_manager.h"

namespace cloudviews {

struct MetadataServiceConfig {
  /// Build-lock expiry = max(min_lock_seconds, multiplier * mined average
  /// runtime of the view subgraph): once expired, another job may retry
  /// the materialization — the fault-tolerance story of Sec 6.1.
  double lock_expiry_multiplier = 2.0;
  double min_lock_seconds = 60;

  /// Simulated service-side lookup latency: the paper measured 19ms with a
  /// single service thread and 14.3ms with 5 threads (Sec 7.3).
  double base_lookup_latency_seconds = 0.019;
  int service_threads = 1;
};

/// One analyzer output row: the annotation plus the job-metadata tags used
/// to build the inverted index (Sec 6.1: "extract tags from its
/// corresponding job metadata ... create an inverted index on the tags").
struct AnnotatedComputation {
  ViewAnnotation annotation;
  std::vector<std::string> tags;
};

/// \brief The CloudViews metadata service (Fig 9), backed by AzureSQL in
/// production; here an in-memory, thread-safe store on the simulated
/// cluster.
///
/// Concurrency layout (see DESIGN.md "Recurring-job fast path"): the
/// registered-view map and build locks are striped across kNumShards
/// signature-keyed shards so concurrent SubmitJobs stop convoying on one
/// service-wide mutex, while the analyzer output + tag inverted index —
/// written rarely, read on every lookup — live in an immutable snapshot
/// swapped behind a short-critical-section pointer lock.
class MetadataService : public ViewCatalogInterface {
 public:
  /// `wall_clock` drives build-lock *leases* (and instrument timing): a
  /// lock is also considered expired once `min_lock_seconds * multiplier`
  /// wall seconds elapse, so a crashed builder's lock is reclaimed even if
  /// nobody advances the simulated clock. Null means the real clock; tests
  /// inject a FakeMonotonicClock to exercise lease expiry deterministically.
  MetadataService(SimulatedClock* clock, StorageManager* storage,
                  MetadataServiceConfig config = {},
                  MonotonicClock* wall_clock = nullptr)
      : clock_(clock),
        storage_(storage),
        config_(config),
        wall_clock_(wall_clock != nullptr ? wall_clock
                                          : MonotonicClock::Real()) {}

  /// Number of signature-keyed shard stripes for views + build locks.
  static constexpr size_t kNumShards = 8;

  /// Publishes lookup/hit-miss/lock counters and the mutex wait histograms
  /// (the aggregate `cv_metadata_lock_wait_seconds` plus one labeled
  /// histogram per shard stripe — the per-shard contention signal) into
  /// `metrics`. `wall_clock` times the mutex waits; null keeps the
  /// constructor-supplied (or real) clock. Call before concurrent use.
  void SetMetrics(obs::MetricsRegistry* metrics,
                  MonotonicClock* wall_clock = nullptr);

  /// Routes lookups/proposals through `fault` (metadata.lookup and
  /// metadata.propose points). Call before concurrent use; null disables.
  void SetFaultInjector(fault::FaultInjector* fault) { fault_ = fault; }

  /// Monotone counter bumped on every catalog state change a cached plan
  /// could depend on: analysis reload, view registration / purge / drop,
  /// build-lock grant / release. A plan compiled at epoch E is valid only
  /// while CatalogEpoch() == E (the plan cache's invalidation signal).
  uint64_t CatalogEpoch() const {
    return catalog_epoch_.load(std::memory_order_acquire);
  }

  /// Installs a new analysis (replacing the previous one), rebuilding the
  /// tag inverted index. Called when the analyzer output is refreshed.
  void LoadAnalysis(const std::vector<AnnotatedComputation>& computations)
      EXCLUDES(analysis_mu_);

  /// Step 1/2 of Fig 9: one request per job returning every annotation
  /// relevant to any of the job's tags (may contain false positives — the
  /// optimizer re-matches signatures). Returns the simulated service
  /// latency through `latency_seconds` when non-null.
  std::vector<ViewAnnotation> GetRelevantViews(
      const std::vector<std::string>& tags,
      double* latency_seconds = nullptr) const EXCLUDES(analysis_mu_);

  /// Fallible variant of GetRelevantViews: the metadata.lookup injection
  /// point (keyed by the joined tags) models a lookup timeout. Callers
  /// must degrade to running without reuse, never fail the job.
  Result<std::vector<ViewAnnotation>> TryGetRelevantViews(
      const std::vector<std::string>& tags,
      double* latency_seconds = nullptr) const EXCLUDES(analysis_mu_);

  /// Looks up the loaded annotation for one computation template (admin
  /// drill-down and eviction use this).
  std::optional<ViewAnnotation> FindAnnotation(const Hash128& normalized) const
      EXCLUDES(analysis_mu_);

  /// Containment tier 1: every annotation whose feature table-set key
  /// matches one of `table_set_keys` (the keys of the job's subgraphs).
  /// Lets candidate enumeration touch only same-table-set annotations
  /// instead of scanning the full catalog. Lock-free snapshot scan, like
  /// GetRelevantViews.
  std::vector<ViewAnnotation> GetContainmentCandidates(
      const std::vector<Hash128>& table_set_keys) const EXCLUDES(analysis_mu_);

  // --- ViewCatalogInterface (optimizer-facing) -----------------------------

  std::optional<MaterializedViewInfo> FindMaterialized(
      const Hash128& normalized, const Hash128& precise) override;

  bool ProposeMaterialize(const Hash128& normalized, const Hash128& precise,
                          uint64_t job_id,
                          double expected_build_seconds) override;

  /// Containment tier 2.5: the live materialized instances of one template,
  /// sorted by precise signature (the matcher's determinism contract).
  std::vector<MaterializedViewInfo> FindSubsumableInstances(
      const Hash128& normalized) override EXCLUDES(subsume_mu_);

  // --- Job-manager-facing ---------------------------------------------------

  /// Step 5/6 of Fig 9: registers the materialized view and releases the
  /// build lock. Invoked on early materialization, i.e. possibly before
  /// the producing job finishes (Sec 6.4).
  ///
  /// Registration is fenced: once a builder's lease expired and another
  /// job reclaimed the lock, the stale builder's registration is rejected
  /// (kExpired); a view already registered by a different producer is
  /// rejected with kAlreadyExists (re-reporting by the same producer is
  /// idempotent OK). Callers must drop their written view file on
  /// rejection — the metadata decision is authoritative.
  Status ReportMaterialized(const MaterializedViewInfo& info,
                            LogicalTime expires_at);

  /// Releases a build lock without registering (job failed after
  /// proposing). Idempotent; only the owning job's lock is released. The
  /// lock also auto-expires (logical expiry or wall lease).
  void AbandonLock(const Hash128& precise, uint64_t job_id) override;

  /// Piggyback wait (work sharing): blocks until the view identified by
  /// `precise` becomes live, the live builder disappears, or
  /// `timeout_seconds` of real wall time pass. Returns OK when the view is
  /// registered and unexpired (the caller re-probes the catalog and
  /// rewrites against it), NotFound when no unexpired build lock remains
  /// and no view exists (the builder abandoned or its lease lapsed; the
  /// caller falls back to its reuse-blind plan), and Expired on timeout.
  /// The sharing.piggyback_timeout injection point forces the timeout
  /// outcome without waiting. Never call while holding a build lock of
  /// your own — builders must not piggyback on builders.
  Status WaitForMaterialized(const Hash128& precise, double timeout_seconds);

  /// Removes expired views from the metadata *first*, then deletes their
  /// files (Sec 5.4 ordering). Returns the number of views purged.
  size_t PurgeExpired();

  /// Drops a view outright (admin reclamation, Sec 5.4).
  Status DropView(const Hash128& precise);

  // --- Introspection ----------------------------------------------------------

  struct Counters {
    uint64_t lookups = 0;
    /// Every ProposeMaterialize call, including calls answered by an
    /// injected fault before reaching the service (the client-visible
    /// attempt count; a retry is a new attempt).
    uint64_t propose_attempts = 0;
    /// Proposals that actually reached the service and were decided by it
    /// (the logical proposal count: granted + denied on the real path).
    uint64_t proposals = 0;
    uint64_t locks_granted = 0;
    uint64_t locks_denied = 0;
    uint64_t locks_abandoned = 0;
    uint64_t leases_reclaimed = 0;
    uint64_t stale_registrations_rejected = 0;
    uint64_t orphans_cleaned = 0;
    uint64_t views_registered = 0;
    uint64_t views_purged = 0;
  };
  Counters counters() const;

  size_t NumRegisteredViews() const;
  size_t NumAnnotations() const EXCLUDES(analysis_mu_);
  std::vector<MaterializedViewInfo> ListViews() const;

  /// Build locks currently held (expired-but-unreclaimed included). The
  /// leak-freedom invariant tested after every workload: this must be
  /// empty once all jobs have finished.
  size_t NumActiveLocks() const;
  /// (precise signature, owning job) of every held lock, for diagnostics.
  std::vector<std::pair<Hash128, uint64_t>> HeldLocks() const;

  /// Simulated per-request latency under the configured thread count.
  double SimulatedLookupLatency() const;

 private:
  struct BuildLock {
    uint64_t job_id;
    LogicalTime expires_at;
    /// Wall-clock lease deadline (wall_clock_->NowSeconds() scale). A lock
    /// is expired when EITHER timeline passes: simulation-driven tests
    /// advance the logical clock, while a genuinely crashed builder is
    /// fenced out by the wall lease even if logical time stands still.
    double lease_deadline_wall = 0;
  };
  struct RegisteredView {
    MaterializedViewInfo info;
    LogicalTime expires_at;
  };

  /// Immutable analyzer output + tag inverted index. Replaced wholesale by
  /// LoadAnalysis; lookups grab the shared_ptr under analysis_mu_ (a
  /// pointer copy) and read without any lock — the read-mostly snapshot
  /// path of the metadata hot path.
  struct AnalysisSnapshot {
    std::vector<AnnotatedComputation> computations;
    // shard-stripe: immutable after construction — this map is only ever
    // read through a shared_ptr<const AnalysisSnapshot>, never mutated
    // under a service-wide mutex.
    std::unordered_map<std::string, std::set<size_t>> tag_index;
    // shard-stripe: immutable after construction, read lock-free through
    // the snapshot pointer like tag_index. Maps a feature table-set key to
    // the computations over exactly that table set, so containment
    // candidate enumeration never scans the full catalog.
    std::unordered_map<Hash128, std::vector<size_t>, Hash128Hasher>
        table_set_index;
  };

  /// One signature-keyed stripe of the view/lock state. A precise
  /// signature's views entry and build lock live in the same shard, so
  /// FindMaterialized / ProposeMaterialize / ReportMaterialized stay
  /// atomic per signature while different signatures stop convoying on a
  /// single service-wide mutex (Sec 7.3 measures this lookup path).
  struct Shard {
    mutable Mutex mu;
    // shard-stripe: `mu` is this stripe's own mutex (1/kNumShards of the
    // keyspace, selected by precise-signature hash), not a service-wide
    // lock — see DESIGN.md "Recurring-job fast path".
    std::unordered_map<Hash128, RegisteredView, Hash128Hasher> views
        GUARDED_BY(mu);
    // shard-stripe: same stripe mutex as `views` above; a signature's view
    // and build lock must flip atomically together.
    std::unordered_map<Hash128, BuildLock, Hash128Hasher> locks
        GUARDED_BY(mu);
    /// Wakes WaitForMaterialized piggybackers when a view of this stripe
    /// registers or a build lock is released/abandoned.
    CondVar lock_cv;
    /// Per-stripe wait histogram (null when uninstrumented); set once in
    /// SetMetrics before concurrent use.
    obs::Histogram* lock_wait = nullptr;
  };

  /// Instrument handles; all null when uninstrumented.
  struct Instruments {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* locks_granted = nullptr;
    obs::Counter* locks_denied = nullptr;
    obs::Counter* locks_abandoned = nullptr;
    obs::Counter* leases_reclaimed = nullptr;
    obs::Counter* stale_registrations = nullptr;
    obs::Counter* views_registered = nullptr;
    obs::Counter* views_purged = nullptr;
    obs::Gauge* registered_views = nullptr;
    obs::Histogram* lock_wait = nullptr;
  };

  /// Monotonically increasing counters, lock-free so the striped hot path
  /// never funnels through a bookkeeping mutex. counters() snapshots them.
  struct AtomicCounters {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> propose_attempts{0};
    std::atomic<uint64_t> proposals{0};
    std::atomic<uint64_t> locks_granted{0};
    std::atomic<uint64_t> locks_denied{0};
    std::atomic<uint64_t> locks_abandoned{0};
    std::atomic<uint64_t> leases_reclaimed{0};
    std::atomic<uint64_t> stale_registrations_rejected{0};
    std::atomic<uint64_t> orphans_cleaned{0};
    std::atomic<uint64_t> views_registered{0};
    std::atomic<uint64_t> views_purged{0};
  };

  /// True when `lock` is expired on either timeline; see BuildLock.
  static bool LockExpired(const BuildLock& lock, LogicalTime now,
                          double wall_now) {
    return lock.expires_at <= now || lock.lease_deadline_wall <= wall_now;
  }

  static size_t ShardIndex(const Hash128& precise) {
    return static_cast<size_t>(precise.lo) % kNumShards;
  }
  Shard& ShardFor(const Hash128& precise) {
    return shards_[ShardIndex(precise)];
  }

  /// Counter-free liveness check for one registered instance. Containment
  /// probes use this instead of FindMaterialized so they do not skew the
  /// exact-lookup hit/miss counters.
  std::optional<MaterializedViewInfo> LookupLive(const Hash128& precise);

  /// Catalog changed in a way a cached plan could observe; invalidate.
  void BumpEpoch() { catalog_epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Grabs the current analysis snapshot (may be null before the first
  /// LoadAnalysis).
  std::shared_ptr<const AnalysisSnapshot> AnalysisView() const
      EXCLUDES(analysis_mu_);

  /// Refreshes the registered-view gauge from total_views_.
  void UpdateViewsGauge();

  SimulatedClock* clock_;
  StorageManager* storage_;
  MetadataServiceConfig config_;
  MonotonicClock* wall_clock_;
  /// Set once before concurrent use, read-only afterwards.
  fault::FaultInjector* fault_ = nullptr;
  Instruments obs_;

  /// Signature-keyed stripes for registered views + build locks; see Shard.
  std::array<Shard, kNumShards> shards_;

  /// Guards only the snapshot pointer swap — the snapshot itself is
  /// immutable and read lock-free (see AnalysisSnapshot).
  mutable Mutex analysis_mu_;
  std::shared_ptr<const AnalysisSnapshot> analysis_ GUARDED_BY(analysis_mu_);

  /// Secondary index for containment matching: which precise instances of
  /// each computation template are registered. Off the FindMaterialized
  /// hot path (only the containment tiers read it), so a single mutex
  /// suffices; entries are validated against the shards before use.
  mutable Mutex subsume_mu_;
  // shard-stripe: intentionally NOT striped — this normalized-keyed index
  // is only touched by registration/purge/drop and the (rare) containment
  // tier 2.5 probe, never by the signature-sharded lookup hot path.
  std::unordered_map<Hash128, std::set<Hash128>, Hash128Hasher>
      instances_by_normalized_ GUARDED_BY(subsume_mu_);

  /// Starts at 1 so 0 can mean "no epoch observed" in callers.
  std::atomic<uint64_t> catalog_epoch_{1};
  /// Registered views across all shards (feeds the gauge without a sweep).
  std::atomic<int64_t> total_views_{0};
  mutable AtomicCounters counters_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_METADATA_METADATA_SERVICE_H_
