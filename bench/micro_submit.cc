// Recurring-job submit-path microbenchmark: cold vs warm (plan-cache) and
// sequential vs concurrent SubmitJob latency, cache on vs off, over a
// recurring template that materializes and reuses a view — so the metadata
// hot path (sharded FindMaterialized / ProposeMaterialize) is exercised and
// its lock-wait histograms land in the exported metrics. Writes
// BENCH_submit.json for the CI bench-smoke artifact.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "plan/plan_builder.h"

namespace cloudviews {
namespace bench {
namespace {

Schema ClickSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

void WriteClicks(StorageManager* storage, const std::string& date,
                 size_t rows) {
  Rng rng(Hash128Hasher()(Hash128{1, 1}) + rows);
  Batch b(ClickSchema());
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about"};
  for (size_t i = 0; i < rows; ++i) {
    (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
                       Value::String(kPages[rng.Uniform(4)]),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
                       Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData(
      "clicks_" + date, "guid-clicks_" + date, ClickSchema(), {b},
      storage->clock()->Now()));
}

PlanNodePtr SharedAgg(const std::string& date) {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                              "guid-clicks_" + date, ClickSchema())
      .Filter(Gt(Col("latency"), Lit(int64_t{50})))
      .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"},
                            {AggFunc::kSum, Col("latency"), "total"}})
      .Build();
}

JobDefinition Job(const std::string& id, const std::string& date) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = PlanBuilder::From(SharedAgg(date))
                         .Sort({{"n", false}})
                         .Output(id + "_" + date)
                         .Build();
  return def;
}

std::string Date(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2018-%02d-%02d", 2 + i / 28, 1 + i % 28);
  return buf;
}

struct Sample {
  std::string mode;
  int threads = 1;
  int jobs = 0;
  double total_seconds = 0;
  double min_seconds = 1e100;
  double max_seconds = 0;

  void Add(double s) {
    ++jobs;
    total_seconds += s;
    min_seconds = std::min(min_seconds, s);
    max_seconds = std::max(max_seconds, s);
  }
  double MeanMs() const {
    return jobs > 0 ? 1e3 * total_seconds / jobs : 0;
  }
};

/// A CloudViews instance with day-0 recurring history analyzed and loaded,
/// so benchmark submissions materialize and then reuse a view.
struct Instance {
  std::unique_ptr<CloudViews> cv;

  explicit Instance(int days) {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    cv = std::make_unique<CloudViews>(config);
    for (int d = 0; d < days; ++d) WriteClicks(cv->storage(), Date(d), 400);
    (void)cv->Submit(Job("jobA", Date(0)), false);
    (void)cv->Submit(Job("jobB", Date(0)), false);
    cv->RunAnalyzerAndLoad();
  }
};

int Run() {
  FigureHeader("micro", "submit-path latency: recurring-job fast path",
               "warm-cache submissions of a recurring template skip parse + "
               "logical optimize (Sec 4: compile-time reuse of recurring "
               "jobs)");

  constexpr int kDays = 24;
  constexpr int kConcurrent = 8;
  JobServiceOptions cache_on;
  cache_on.enable_cloudviews = true;
  cache_on.enable_plan_cache = true;
  JobServiceOptions cache_off = cache_on;
  cache_off.enable_plan_cache = false;
  std::vector<Sample> samples;

  auto sequential = [&](const char* mode, Instance& inst,
                        const JobServiceOptions& options, int first_day,
                        int days) {
    Sample s;
    s.mode = mode;
    s.threads = 1;
    for (int d = first_day; d < first_day + days; ++d) {
      double start = MonotonicNowSeconds();
      auto r = inst.cv->job_service()->SubmitJob(Job("jobA", Date(d)),
                                                 options);
      double elapsed = MonotonicNowSeconds() - start;
      if (!r.ok()) {
        std::fprintf(stderr, "submit failed (%s): %s\n", mode,
                     r.status().ToString().c_str());
        std::exit(1);
      }
      s.Add(elapsed);
    }
    samples.push_back(s);
    std::printf("  %-28s mean=%7.3fms  min=%7.3fms  jobs=%d\n", mode,
                s.MeanMs(), s.min_seconds * 1e3, s.jobs);
  };

  // Cache off: every submission pays the full compile pipeline.
  Instance off_inst(kDays);
  sequential("seq_cache_off", off_inst, cache_off, 1, kDays - 1);

  // Cache on: the first pass over fresh dates is cold, a second sweep over
  // the same dates serves the skeleton tier (same template, different
  // precise signature per date), and resubmitting one identical job serves
  // the full tier (parse + optimize + metadata lookup all skipped).
  Instance on_inst(kDays);
  sequential("seq_cache_on_cold", on_inst, cache_on, 1, kDays - 1);
  sequential("seq_cache_on_warm_skeleton", on_inst, cache_on, 1, kDays - 1);
  (void)on_inst.cv->job_service()->SubmitJob(Job("jobA", Date(1)),
                                             cache_on);  // prime
  {
    Sample s;
    s.mode = "seq_cache_on_warm_full";
    s.threads = 1;
    for (int i = 0; i < kDays - 1; ++i) {
      double start = MonotonicNowSeconds();
      auto r =
          on_inst.cv->job_service()->SubmitJob(Job("jobA", Date(1)), cache_on);
      double elapsed = MonotonicNowSeconds() - start;
      if (!r.ok() || !r->plan_cache_hit) {
        std::fprintf(stderr, "expected a warm full hit: %s\n",
                     r.ok() ? "served cold" : r.status().ToString().c_str());
        std::exit(1);
      }
      s.Add(elapsed);
    }
    samples.push_back(s);
    std::printf("  %-28s mean=%7.3fms  min=%7.3fms  jobs=%d\n",
                s.mode.c_str(), s.MeanMs(), s.min_seconds * 1e3, s.jobs);
  }
  auto cache_stats = on_inst.cv->job_service()->plan_cache().stats();

  // Concurrent submissions: kConcurrent same-template jobs race on the
  // sharded metadata service and the plan cache.
  auto concurrent = [&](const char* mode, Instance& inst,
                        const JobServiceOptions& options, int rounds) {
    Sample s;
    s.mode = mode;
    s.threads = kConcurrent;
    for (int round = 0; round < rounds; ++round) {
      std::vector<JobDefinition> defs;
      defs.reserve(kConcurrent);
      for (int i = 0; i < kConcurrent; ++i) {
        defs.push_back(Job("jobA", Date(1 + (round * kConcurrent + i) %
                                                (kDays - 1))));
      }
      double start = MonotonicNowSeconds();
      auto results = inst.cv->job_service()->SubmitConcurrent(defs, options);
      double elapsed = MonotonicNowSeconds() - start;
      for (const auto& r : results) {
        if (!r.ok()) {
          std::fprintf(stderr, "concurrent submit failed (%s): %s\n", mode,
                       r.status().ToString().c_str());
          std::exit(1);
        }
      }
      // Per-batch wall time; divide by batch size for per-job throughput.
      s.Add(elapsed);
    }
    samples.push_back(s);
    std::printf("  %-28s mean=%7.3fms/batch(%d)  batches=%d\n", mode,
                s.MeanMs(), kConcurrent, s.jobs);
  };
  Instance conc_off(kDays);
  concurrent("conc_cache_off", conc_off, cache_off, 3);
  Instance conc_on(kDays);
  concurrent("conc_cache_on_cold", conc_on, cache_on, 3);
  concurrent("conc_cache_on_warm", conc_on, cache_on, 3);

  std::printf(
      "  plan cache: %llu full hits, %llu skeleton hits, %llu misses\n",
      static_cast<unsigned long long>(cache_stats.hits_full),
      static_cast<unsigned long long>(cache_stats.hits_skeleton),
      static_cast<unsigned long long>(cache_stats.misses));

  FILE* f = std::fopen("BENCH_submit.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_submit.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"submit_fast_path\",\n");
  std::fprintf(f, "  \"template\": \"filter_aggregate_sort_output\",\n");
  std::fprintf(f, "  \"dates\": %d,\n", kDays);
  std::fprintf(f, "  \"concurrent_batch\": %d,\n", kConcurrent);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %d, \"samples\": %d, "
                 "\"mean_ms\": %.4f, \"min_ms\": %.4f, \"max_ms\": %.4f}%s\n",
                 s.mode.c_str(), s.threads, s.jobs, s.MeanMs(),
                 s.min_seconds * 1e3, s.max_seconds * 1e3,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"plan_cache\": {\"hits_full\": %llu, \"hits_skeleton\": %llu, "
      "\"misses\": %llu, \"epoch_invalidations\": %llu, \"demotions\": "
      "%llu, \"insertions\": %llu, \"evictions\": %llu},\n",
      static_cast<unsigned long long>(cache_stats.hits_full),
      static_cast<unsigned long long>(cache_stats.hits_skeleton),
      static_cast<unsigned long long>(cache_stats.misses),
      static_cast<unsigned long long>(cache_stats.epoch_invalidations),
      static_cast<unsigned long long>(cache_stats.demotions),
      static_cast<unsigned long long>(cache_stats.insertions),
      static_cast<unsigned long long>(cache_stats.evictions));
  // Full instrument dump of the warm cache-on instance: includes the
  // cv_metadata_lock_wait_seconds aggregate and the per-shard
  // cv_metadata_shard_lock_wait_seconds{shard=i} histograms.
  std::fprintf(f, "  \"metrics\": %s\n",
               obs::RenderMetricsJson(*on_inst.cv->metrics()).c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote BENCH_submit.json\n");

  // Smoke gate: the warm pass must actually have served from the cache.
  if (cache_stats.hits_full == 0) {
    std::fprintf(stderr, "warm pass produced no full cache hits\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
