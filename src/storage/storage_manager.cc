#include "storage/storage_manager.h"

#include "common/string_util.h"

namespace cloudviews {

std::string EncodeViewPath(const Hash128& normalized, const Hash128& precise,
                           uint64_t producer_job_id) {
  return StrFormat("/views/%s/%s_%llu.ss", normalized.ToHex().c_str(),
                   precise.ToHex().c_str(),
                   static_cast<unsigned long long>(producer_job_id));
}

bool ParseViewPath(const std::string& path, Hash128* normalized,
                   Hash128* precise, uint64_t* producer_job_id) {
  if (!StartsWith(path, "/views/")) return false;
  auto parts = Split(path.substr(7), '/');
  if (parts.size() != 2) return false;
  if (!Hash128::FromHex(parts[0], normalized)) return false;
  auto file = parts[1];
  auto us = file.find('_');
  auto dot = file.rfind(".ss");
  if (us == std::string::npos || dot == std::string::npos || dot < us) {
    return false;
  }
  if (!Hash128::FromHex(std::string_view(file).substr(0, us), precise)) {
    return false;
  }
  char* end = nullptr;
  std::string id_str = file.substr(us + 1, dot - us - 1);
  *producer_job_id = std::strtoull(id_str.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !id_str.empty();
}

void StorageManager::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  Instruments inst;
  inst.bytes_written = metrics->GetCounter(
      "cv_storage_bytes_written_total", {}, "Bytes written to the store");
  inst.streams =
      metrics->GetGauge("cv_storage_streams", {}, "Stored streams");
  inst.total_bytes = metrics->GetGauge("cv_storage_total_bytes", {},
                                       "Bytes across all stored streams");
  inst.view_bytes =
      metrics->GetGauge("cv_storage_view_bytes", {},
                        "Bytes held by materialized views (the storage "
                        "cost side of the reuse trade-off)");
  inst.view_count = metrics->GetGauge("cv_storage_views", {},
                                      "Stored materialized-view streams");
  MutexLock lock(mu_);
  obs_ = inst;
  UpdateGauges();
}

void StorageManager::UpdateGauges() {
  if (obs_.streams == nullptr) return;
  int64_t total = 0;
  int64_t view_bytes = 0;
  int64_t views = 0;
  for (const auto& [name, data] : streams_) {
    total += data->total_bytes;
    Hash128 normalized, precise;
    uint64_t producer = 0;
    if (ParseViewPath(name, &normalized, &precise, &producer)) {
      view_bytes += data->total_bytes;
      ++views;
    }
  }
  obs_.streams->Set(static_cast<double>(streams_.size()));
  obs_.total_bytes->Set(static_cast<double>(total));
  obs_.view_bytes->Set(static_cast<double>(view_bytes));
  obs_.view_count->Set(static_cast<double>(views));
}

Status StorageManager::WriteStream(StreamData data) {
  if (data.name.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  if (fault_ != nullptr) {
    const bool is_view = StartsWith(data.name, "/views/");
    CV_RETURN_NOT_OK(fault_->MaybeInject(
        is_view ? fault::points::kStorageViewWrite
                : fault::points::kStorageWrite,
        data.name));
    if (is_view) {
      Status torn =
          fault_->MaybeInject(fault::points::kStorageViewWriteTorn, data.name);
      if (!torn.ok()) {
        // Model a writer dying mid-write: a truncated, incomplete-flagged
        // partial is left in the store and the write still reports failure.
        data.batches.resize(data.batches.size() / 2);
        data.total_rows = 0;
        data.total_bytes = 0;
        for (const auto& b : data.batches) {
          data.total_rows += static_cast<int64_t>(b.num_rows());
          data.total_bytes += b.ByteSize();
        }
        data.complete = false;
        auto partial = std::make_shared<StreamData>(std::move(data));
        MutexLock lock(mu_);
        streams_[partial->name] = std::move(partial);
        UpdateGauges();
        return torn;
      }
    }
  }
  auto handle = std::make_shared<StreamData>(std::move(data));
  MutexLock lock(mu_);
  if (obs_.bytes_written != nullptr) {
    obs_.bytes_written->Increment(
        static_cast<uint64_t>(handle->total_bytes));
  }
  streams_[handle->name] = std::move(handle);
  UpdateGauges();
  return Status::OK();
}

Result<StreamHandle> StorageManager::OpenStream(
    const std::string& name) const {
  if (fault_ != nullptr) {
    CV_RETURN_NOT_OK(fault_->MaybeInject(
        StartsWith(name, "/views/") ? fault::points::kStorageViewRead
                                    : fault::points::kStorageRead,
        name));
  }
  MutexLock lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' does not exist");
  }
  if (!it->second->complete) {
    return Status::IOError("stream '" + name +
                           "' is incomplete (torn write); refusing to read");
  }
  return it->second;
}

bool StorageManager::StreamExists(const std::string& name) const {
  MutexLock lock(mu_);
  return streams_.count(name) > 0;
}

Status StorageManager::DeleteStream(const std::string& name) {
  MutexLock lock(mu_);
  if (streams_.erase(name) == 0) {
    return Status::NotFound("stream '" + name + "' does not exist");
  }
  UpdateGauges();
  return Status::OK();
}

size_t StorageManager::PurgeExpired() {
  LogicalTime now = clock_->Now();
  MutexLock lock(mu_);
  size_t purged = 0;
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->second->expires_at != 0 && it->second->expires_at <= now) {
      it = streams_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  UpdateGauges();
  return purged;
}

std::vector<std::string> StorageManager::ListStreams(
    const std::string& prefix) const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, data] : streams_) {
    if (StartsWith(name, prefix)) out.push_back(name);
  }
  return out;
}

int64_t StorageManager::TotalBytes() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& [name, data] : streams_) total += data->total_bytes;
  return total;
}

size_t StorageManager::NumStreams() const {
  MutexLock lock(mu_);
  return streams_.size();
}

StreamData MakeStreamData(std::string name, std::string guid, Schema schema,
                          std::vector<Batch> batches, LogicalTime now,
                          LogicalTime expires_at, PhysicalProperties props) {
  StreamData data;
  data.name = std::move(name);
  data.guid = std::move(guid);
  data.schema = std::move(schema);
  data.created_at = now;
  data.expires_at = expires_at;
  data.props = std::move(props);
  for (const auto& b : batches) {
    data.total_rows += static_cast<int64_t>(b.num_rows());
    data.total_bytes += b.ByteSize();
  }
  data.batches = std::move(batches);
  return data;
}

}  // namespace cloudviews
