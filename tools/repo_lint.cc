// repo_lint: plain-text enforcement of CloudViews repo invariants over
// src/ + tests/ (see tools/repo_lint_lib.h for the rule list). Runs as a
// tier-1 ctest; exits non-zero when any rule fires.
//
// Usage: repo_lint [<dir>...]   (defaults to src tests in the cwd)

#include <cstdio>

#include "tools/repo_lint_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots = {"src", "tests"};

  auto violations = cloudviews::lint::LintTree(roots);
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", v.path.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "repo_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("repo_lint: clean\n");
  return 0;
}
