#include "tools/repo_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cloudviews {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool PathContains(const std::string& rel_path, const char* needle) {
  return rel_path.find(needle) != std::string::npos;
}

/// True when code[i] is an identifier directly preceded by `std` `::`.
bool IsStdQualified(const std::vector<Token>& code, size_t i) {
  return i >= 2 && code[i - 1].IsPunct("::") && code[i - 2].IsIdent("std");
}

/// A NOLINT *marker* opens a comment ("// NOLINT..." or "/* NOLINT...");
/// prose that merely mentions NOLINT mid-sentence is not a marker. A
/// reasoned marker looks like "NOLINT(<category>): <why>" or at minimum
/// "NOLINT(<non-empty>)". Returns true when a marker exists; sets
/// `reasoned` and `nextline` accordingly.
bool FindNolint(const std::string& comment_text, bool* reasoned,
                bool* nextline) {
  size_t pos = 0;
  for (;;) {
    pos = comment_text.find("NOLINT", pos);
    if (pos == std::string::npos) return false;
    size_t before = pos;
    while (before > 0 && (comment_text[before - 1] == ' ' ||
                          comment_text[before - 1] == '\t')) {
      --before;
    }
    if (before >= 2 && comment_text[before - 2] == '/' &&
        (comment_text[before - 1] == '/' ||
         comment_text[before - 1] == '*')) {
      break;  // comment-opening marker
    }
    pos += 6;
  }
  size_t after = pos + 6;  // strlen("NOLINT")
  *nextline = comment_text.compare(after, 8, "NEXTLINE") == 0;
  if (*nextline) after += 8;
  *reasoned = false;
  if (after < comment_text.size() && comment_text[after] == '(') {
    size_t close = comment_text.find(')', after);
    if (close != std::string::npos && close > after + 1) *reasoned = true;
  }
  return true;
}

std::string ExpectedHeaderGuard(const std::string& rel_path) {
  std::string p = rel_path;
  // src/ is the include root, so it does not appear in guards; tests/ and
  // tools/ do (they are their own include namespaces).
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  std::string guard = "CLOUDVIEWS_";
  for (char c : p) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

/// True when a comment containing `needle` starts or ends within
/// [line - reach, line] — the justification window rules give to
/// declarations.
bool JustifiedNearby(const FileCtx& ctx, const char* needle, int line,
                     int reach) {
  for (const Token& c : ctx.comments) {
    if (c.text.find(needle) == std::string::npos) continue;
    int end =
        c.line + static_cast<int>(std::count(c.text.begin(), c.text.end(),
                                             '\n'));
    if (end >= line - reach && c.line <= line) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rules (token-level)
// ---------------------------------------------------------------------------

void RuleBannedRandom(const FileCtx& ctx, std::vector<Violation>* out) {
  if (PathContains(ctx.rel_path, "common/random")) return;
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    const std::string& s = code[i].text;
    std::string which;
    if (s == "srand" || s == "random_device") {
      which = s;
    } else if (s == "rand" && IsStdQualified(code, i)) {
      which = "std::rand";
    } else if (s == "time" && i + 3 < code.size() &&
               code[i + 1].IsPunct("(") &&
               (code[i + 2].IsIdent("nullptr") ||
                code[i + 2].IsIdent("NULL")) &&
               code[i + 3].IsPunct(")")) {
      which = "time(" + code[i + 2].text + ")";
    }
    if (which.empty()) continue;
    out->push_back({ctx.display_path, code[i].line, "banned-random",
                    "'" + which +
                        "' outside common/random; use cloudviews::Rng so "
                        "runs stay reproducible"});
  }
}

void RuleBannedClock(const FileCtx& ctx, std::vector<Violation>* out) {
  if (PathContains(ctx.rel_path, "common/clock") ||
      PathContains(ctx.rel_path, "src/obs/")) {
    return;
  }
  for (const Token& t : ctx.code) {
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "steady_clock" && t.text != "system_clock" &&
        t.text != "high_resolution_clock") {
      continue;
    }
    out->push_back({ctx.display_path, t.line, "banned-clock",
                    "'" + t.text +
                        "' outside common/clock.h and src/obs; use "
                        "MonotonicClock / MonotonicNowSeconds so time is "
                        "injectable in tests"});
  }
}

void RuleBannedSleep(const FileCtx& ctx, std::vector<Violation>* out) {
  if (PathContains(ctx.rel_path, "fault/backoff")) return;
  for (const Token& t : ctx.code) {
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "sleep_for" && t.text != "sleep_until" &&
        t.text != "usleep" && t.text != "nanosleep") {
      continue;
    }
    out->push_back({ctx.display_path, t.line, "banned-sleep",
                    "'" + t.text +
                        "' outside fault/backoff; hand-rolled sleeps in "
                        "retry loops are untestable — use "
                        "fault::RetryWithBackoff (with an injectable "
                        "Sleeper)"});
  }
}

void RuleBannedSync(const FileCtx& ctx, std::vector<Violation>* out) {
  if (PathContains(ctx.rel_path, "common/mutex.h")) return;
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    const std::string& s = code[i].text;
    if (s != "mutex" && s != "condition_variable" && s != "lock_guard" &&
        s != "unique_lock" && s != "scoped_lock" && s != "shared_mutex" &&
        s != "shared_lock" && s != "recursive_mutex") {
      continue;
    }
    if (!IsStdQualified(code, i)) continue;
    out->push_back({ctx.display_path, code[i].line, "banned-sync",
                    "'std::" + s +
                        "' outside common/mutex.h; use the annotated "
                        "Mutex/MutexLock/CondVar so clang -Wthread-safety "
                        "can check the locking"});
  }
}

void RuleRawSocket(const FileCtx& ctx, std::vector<Violation>* out) {
  // net/socket.{h,cc} is the one sanctioned call site of the BSD socket
  // API; everything else (the server and client included) goes through the
  // Socket RAII wrapper so fd lifetimes, EINTR retries, and the net fault
  // points stay in one place.
  if (PathContains(ctx.rel_path, "net/socket.")) return;
  const auto& code = ctx.code;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    const std::string& s = code[i].text;
    if (s != "socket" && s != "bind" && s != "listen" && s != "accept" &&
        s != "connect" && s != "send" && s != "recv" && s != "sendto" &&
        s != "recvfrom" && s != "setsockopt" && s != "getsockopt" &&
        s != "getsockname" && s != "getpeername" && s != "shutdown") {
      continue;
    }
    if (!code[i + 1].IsPunct("(")) continue;
    // Member calls (sock.connect(...)) are not the C API.
    if (i >= 1 &&
        (code[i - 1].IsPunct(".") || code[i - 1].IsPunct("->"))) {
      continue;
    }
    // Namespace-qualified names (std::bind) are not the C API either; a
    // global-scope `::connect(` is exactly what the rule is after.
    if (i >= 2 && code[i - 1].IsPunct("::") &&
        code[i - 2].kind == TokenKind::kIdentifier) {
      continue;
    }
    out->push_back({ctx.display_path, code[i].line, "raw-socket",
                    "'" + s +
                        "(' outside net/socket.cc; raw BSD socket calls "
                        "bypass the Socket RAII wrapper (fd lifetime, "
                        "EINTR handling, net fault points)"});
  }
}

void RuleNakedNew(const FileCtx& ctx, std::vector<Violation>* out) {
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!code[i].IsIdent("new")) continue;
    if (i > 0 && code[i - 1].IsIdent("operator")) continue;
    out->push_back({ctx.display_path, code[i].line, "naked-new",
                    "naked 'new'; use std::make_unique/std::make_shared "
                    "(or NOLINT(naked-new): <why> for an intentional "
                    "leak)"});
  }
}

void RuleMutexGuarded(const FileCtx& ctx, std::vector<Violation>* out) {
  if (!ctx.is_header || PathContains(ctx.rel_path, "common/mutex.h")) {
    return;
  }
  const auto& code = ctx.code;
  int first_mutex_line = 0;
  bool saw_guarded_by = false;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].IsIdent("GUARDED_BY") || code[i].IsIdent("PT_GUARDED_BY")) {
      saw_guarded_by = true;
    }
    // A member declaration "Mutex mu_;" (possibly "mutable Mutex mu_;").
    if (first_mutex_line == 0 && code[i].IsIdent("Mutex") &&
        i + 2 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        code[i + 2].IsPunct(";")) {
      first_mutex_line = code[i].line;
    }
  }
  if (first_mutex_line != 0 && !saw_guarded_by) {
    out->push_back({ctx.display_path, first_mutex_line, "mutex-guarded",
                    "header declares a Mutex member but annotates nothing "
                    "with GUARDED_BY; annotate the state the mutex "
                    "protects"});
  }
}

void RuleMetadataMapStripe(const FileCtx& ctx,
                           std::vector<Violation>* out) {
  if (!ctx.is_header || !PathContains(ctx.rel_path, "src/metadata/")) {
    return;
  }
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (code[i].text != "map" && code[i].text != "unordered_map") continue;
    if (!IsStdQualified(code, i)) continue;
    if (i + 1 >= code.size() || !code[i + 1].IsPunct("<")) continue;
    // The declaration runs to the next ';'; it is guarded when GUARDED_BY
    // appears in it.
    bool guarded = false;
    for (size_t j = i + 1; j < code.size(); ++j) {
      if (code[j].IsPunct(";")) break;
      if (code[j].IsIdent("GUARDED_BY")) guarded = true;
    }
    if (!guarded) continue;
    int line = code[i - 2].line;  // the `std` token: start of the type
    if (JustifiedNearby(ctx, "shard-stripe", line, 4)) continue;
    out->push_back(
        {ctx.display_path, line, "metadata-map-stripe",
         "mutex-guarded map member in a src/metadata/ header; the "
         "metadata hot path must stay sharded — stripe the map per "
         "signature shard, or add a 'shard-stripe: <why>' comment "
         "justifying the single lock"});
  }
}

void RuleCompensationComment(const FileCtx& ctx,
                             std::vector<Violation>* out) {
  if (!PathContains(ctx.rel_path, "optimizer/view_matcher.") &&
      !PathContains(ctx.rel_path, "optimizer/view_rewriter.")) {
    return;
  }
  const auto& code = ctx.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (!code[i].IsIdent("make_shared")) continue;
    if (i + 1 >= code.size() || !code[i + 1].IsPunct("<")) continue;
    // Collect the (possibly qualified) template type name.
    std::string type;
    for (size_t j = i + 2; j < code.size(); ++j) {
      if (code[j].kind == TokenKind::kIdentifier) {
        type = code[j].text;
        continue;
      }
      if (code[j].IsPunct("::")) continue;
      break;
    }
    if (type.size() < 4 ||
        type.compare(type.size() - 4, 4, "Node") != 0) {
      continue;
    }
    int line = code[i].line;
    // Every plan-node construction in the matcher / rewriter is a
    // compensation (or exact-replacement) operator whose byte-identity
    // argument must be written down nearby.
    if (JustifiedNearby(ctx, "compensation:", line, 4)) continue;
    out->push_back(
        {ctx.display_path, line, "compensation-comment",
         "plan-node construction ('" + type +
             "') in the view-matching compensation path without a "
             "nearby '// compensation: <why byte-identical>' "
             "justification comment"});
  }
}

void RuleAssertSideEffect(const FileCtx& ctx,
                          std::vector<Violation>* out) {
  const auto& code = ctx.code;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!code[i].IsIdent("assert") || !code[i + 1].IsPunct("(")) continue;
    int depth = 0;
    bool mutates = false;
    for (size_t j = i + 1; j < code.size(); ++j) {
      if (code[j].kind != TokenKind::kPunct) continue;
      const std::string& p = code[j].text;
      if (p == "(") ++depth;
      if (p == ")") {
        --depth;
        if (depth == 0) break;
      }
      if (p == "++" || p == "--" || p == "=" || p == "+=" || p == "-=" ||
          p == "*=" || p == "/=" || p == "%=" || p == "^=" || p == "&=" ||
          p == "|=" || p == "<<=" || p == ">>=") {
        mutates = true;
      }
    }
    if (mutates) {
      out->push_back({ctx.display_path, code[i].line, "assert-side-effect",
                      "assert() argument has side effects; it vanishes "
                      "under NDEBUG"});
    }
  }
}

void RuleHeaderGuard(const FileCtx& ctx, std::vector<Violation>* out) {
  if (!ctx.is_header) return;
  std::string guard = ExpectedHeaderGuard(ctx.rel_path);
  if (ctx.content->find("#ifndef " + guard) == std::string::npos ||
      ctx.content->find("#define " + guard) == std::string::npos) {
    out->push_back({ctx.display_path, 1, "header-guard",
                    "expected include guard '" + guard + "'"});
  }
}

void RuleNolintReason(const FileCtx& ctx, std::vector<Violation>* out) {
  for (const Token& c : ctx.comments) {
    bool reasoned = false;
    bool nextline = false;
    if (FindNolint(c.text, &reasoned, &nextline) && !reasoned) {
      out->push_back({ctx.display_path, c.line, "nolint-reason",
                      "NOLINT without a category and reason; write "
                      "NOLINT(<rule>): <why>"});
    }
  }
}

}  // namespace

const std::vector<LintRule>& AllRules() {
  static const std::vector<LintRule> kRules = {
      {"banned-random",
       "std::rand/srand/random_device/time(nullptr) outside common/random "
       "— use cloudviews::Rng",
       "bad_random.cc", RuleBannedRandom},
      {"banned-clock",
       "ad-hoc std::chrono clocks outside common/clock.h and src/obs — "
       "use MonotonicClock",
       "bad_clock.cc", RuleBannedClock},
      {"banned-sleep",
       "sleep_for/sleep_until/usleep/nanosleep outside fault/backoff — "
       "use fault::RetryWithBackoff",
       "bad_sleep.cc", RuleBannedSleep},
      {"banned-sync",
       "raw std sync primitives outside common/mutex.h — use the "
       "annotated Mutex/MutexLock/CondVar",
       "bad_sync.cc", RuleBannedSync},
      {"raw-socket",
       "raw BSD socket calls outside net/socket.cc — use the Socket RAII "
       "wrapper",
       "bad_socket.cc", RuleRawSocket},
      {"naked-new",
       "naked 'new' — use std::make_unique/std::make_shared",
       "bad_new.cc", RuleNakedNew},
      {"mutex-guarded",
       "a header declaring a Mutex member must GUARDED_BY-annotate the "
       "state it protects",
       "bad_unguarded.h", RuleMutexGuarded},
      {"metadata-map-stripe",
       "a GUARDED_BY'd map member in a src/metadata/ header needs a "
       "'shard-stripe' justification",
       "bad_metadata_map.h", RuleMetadataMapStripe},
      {"compensation-comment",
       "a PlanNode construction in view_matcher/view_rewriter needs a "
       "'// compensation: <why>' comment",
       "bad_compensation.cc", RuleCompensationComment},
      {"assert-side-effect",
       "assert() whose argument mutates state vanishes under NDEBUG",
       "bad_assert.cc", RuleAssertSideEffect},
      {"header-guard",
       "include guards must be CLOUDVIEWS_<PATH>_H_",
       "bad_guard.h", RuleHeaderGuard},
      {"nolint-reason",
       "NOLINT must carry a category and reason: NOLINT(rule): why",
       "bad_nolint.cc", RuleNolintReason},
  };
  return kRules;
}

std::string SanitizeLine(const std::string& line, bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (*in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      out += quote;  // keep delimiters so tokens cannot join across them
      continue;
    }
    out += c;
  }
  return out;
}

std::vector<Violation> LintFile(const std::string& display_path,
                                const std::string& rel_path,
                                const std::string& content) {
  FileCtx ctx;
  ctx.display_path = display_path;
  ctx.rel_path = rel_path;
  ctx.content = &content;
  ctx.is_header =
      rel_path.size() >= 2 && rel_path.rfind(".h") == rel_path.size() - 2;
  for (Token& t : Tokenize(content)) {
    if (t.kind == TokenKind::kComment) {
      ctx.comments.push_back(std::move(t));
    } else {
      ctx.code.push_back(std::move(t));
    }
  }
  for (const Token& c : ctx.comments) {
    bool reasoned = false;
    bool nextline = false;
    if (FindNolint(c.text, &reasoned, &nextline) && reasoned) {
      ctx.suppressed_lines.insert(c.line);
      if (nextline) ctx.suppressed_lines.insert(c.line + 1);
    }
  }

  std::vector<Violation> out;
  for (const LintRule& rule : AllRules()) {
    std::vector<Violation> found;
    rule.fn(ctx, &found);
    for (Violation& v : found) {
      // A reasoned NOLINT exempts its line from every rule but the NOLINT
      // discipline itself.
      if (std::string(rule.name) != "nolint-reason" &&
          ctx.suppressed_lines.count(v.line) > 0) {
        continue;
      }
      out.push_back(std::move(v));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<Violation> LintTree(const std::vector<std::string>& roots) {
  std::vector<Violation> out;
  for (const auto& root : roots) {
    std::error_code ec;
    fs::path root_path(root);
    std::string prefix = root_path.filename().string();
    if (prefix.empty()) prefix = root_path.parent_path().filename().string();
    if (!fs::is_directory(root_path, ec)) {
      out.push_back({root, 0, "io-error", "not a directory"});
      continue;
    }
    std::vector<fs::path> files;
    for (fs::recursive_directory_iterator it(root_path, ec), end;
         it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::string p = it->path().string();
      if (p.find("lint_fixtures") != std::string::npos) continue;
      if (p.find("analyzer_fixtures") != std::string::npos) continue;
      files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        out.push_back({file.string(), 0, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      std::string rel =
          prefix + "/" + fs::relative(file, root_path, ec).generic_string();
      auto violations = LintFile(file.string(), rel, ss.str());
      out.insert(out.end(), violations.begin(), violations.end());
    }
  }
  return out;
}

}  // namespace lint
}  // namespace cloudviews
