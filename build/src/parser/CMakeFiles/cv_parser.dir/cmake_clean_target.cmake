file(REMOVE_RECURSE
  "libcv_parser.a"
)
