#ifndef CLOUDVIEWS_ANALYZER_ANALYZER_H_
#define CLOUDVIEWS_ANALYZER_ANALYZER_H_

#include <vector>

#include "analyzer/overlap_analyzer.h"
#include "analyzer/view_selection.h"
#include "metadata/metadata_service.h"

namespace cloudviews {

struct AnalyzerConfig {
  SelectionConfig selection;
  /// Mark every selected computation for offline (pre-job) materialization
  /// instead of inline online materialization (Sec 6.2, offline mode).
  bool offline_mode = false;
};

/// Output of one analyzer run (Fig 6 left: "query annotations").
struct AnalysisResult {
  /// Annotations to load into the metadata service.
  std::vector<AnnotatedComputation> annotations;
  /// Selected aggregates, descending utility (for reporting / drill-down).
  std::vector<SubgraphAggregate> selected;
  /// Job ids ordered so that view-building jobs run first (Sec 6.5).
  std::vector<uint64_t> submission_order;
  /// Workload-wide overlap report (Figs 1-5, admin dashboard).
  OverlapReport report;
  double analysis_seconds = 0;
  size_t jobs_analyzed = 0;
  size_t subgraphs_mined = 0;
};

/// \brief The offline CLOUDVIEWS analyzer (Sec 5): mines a window of the
/// workload repository, selects views, picks physical designs and
/// expiries, and emits annotations plus job-ordering hints.
class CloudViewsAnalyzer {
 public:
  explicit CloudViewsAnalyzer(AnalyzerConfig config = {})
      : config_(config) {}

  AnalysisResult Analyze(
      const std::vector<std::shared_ptr<const JobRecord>>& jobs) const;

 private:
  AnalyzerConfig config_;
};

/// \brief Job-coordination hint (Sec 6.5): orders jobs so that, per
/// selected view, the cheapest containing job runs first and materializes
/// it for all the others.
std::vector<uint64_t> ComputeSubmissionOrder(
    const std::vector<const SubgraphAggregate*>& selected,
    const std::vector<std::shared_ptr<const JobRecord>>& jobs);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_ANALYZER_ANALYZER_H_
