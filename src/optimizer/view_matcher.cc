#include "optimizer/view_matcher.h"

#include <algorithm>
#include <set>

#include "signature/signature.h"

namespace cloudviews {

namespace {

/// True when an expression's precise hash is stable across recurring
/// instances of a template: no parameters, no date literals (both are
/// abstracted by normalized signatures and change value per instance).
/// Structural (tier-2) expression matching is only sound for stable exprs;
/// unstable conjuncts are matched per-instance via precise hashes instead.
bool IsInstanceStable(const Expr& e) {
  if (e.kind() == ExprKind::kParameter) return false;
  if (e.kind() == ExprKind::kLiteral &&
      static_cast<const LiteralExpr&>(e).value().type() == DataType::kDate) {
    return false;
  }
  for (const auto& c : e.children()) {
    if (!IsInstanceStable(*c)) return false;
  }
  return true;
}

Hash128 ColRefHash(const std::string& name) {
  ColumnRefExpr ref(name);
  HashBuilder hb;
  ref.HashInto(&hb, SignatureMode::kPrecise);
  return hb.Finish();
}

/// Left-fold of conjuncts with AND; null for an empty list.
ExprPtr AndFold(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const auto& c : conjuncts) {
    acc = acc ? And(acc, c) : c;
  }
  return acc;
}

}  // namespace

bool OrderImmaterialAbove(const std::vector<const PlanNode*>& ancestors,
                          const std::vector<std::string>& cols) {
  // Walk from the matched node's parent upward (ancestors is root-first).
  for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
    const PlanNode* a = *it;
    switch (a->kind()) {
      case OpKind::kFilter:
      case OpKind::kExchange:
        // Row-wise / value-based redistribution: drops or regroups rows by
        // value, never observes order in its output values.
        continue;
      case OpKind::kProject: {
        // Must pass every group column through untouched (same name), so
        // the eventual Sort's keys still refer to them.
        const auto& exprs = static_cast<const ProjectNode*>(a)->exprs();
        for (const auto& col : cols) {
          bool passed = false;
          for (const auto& ne : exprs) {
            if (ne.name == col && ne.expr->kind() == ExprKind::kColumnRef &&
                static_cast<const ColumnRefExpr&>(*ne.expr).name() == col) {
              passed = true;
              break;
            }
          }
          if (!passed) return false;
        }
        continue;
      }
      case OpKind::kSort: {
        // Rows below are unique on `cols`; a sort whose key set covers
        // `cols` therefore has no ties and imposes a total order — any
        // reordering below it cannot change bytes.
        const auto& keys = static_cast<const SortNode*>(a)->keys();
        for (const auto& col : cols) {
          bool covered = false;
          for (const auto& k : keys) {
            if (k.column == col) {
              covered = true;
              break;
            }
          }
          if (!covered) return false;
        }
        return true;
      }
      default:
        // Anything else (Output, Join, Aggregate, Top, UnionAll, ...) can
        // observe row order; reordering groups below it is unsafe.
        return false;
    }
  }
  return false;  // reached the root without a covering Sort
}

/// Per-candidate structural analysis of the view's definition skeleton.
struct CandidateMatcher::ViewSide {
  CapDecomposition cap;
  /// Canonical provenance (precise hash of the expr over core columns)
  /// of each view column at the *input level* (pre-aggregate): which view
  /// column carries which core-level value.
  std::unordered_map<Hash128, std::string, Hash128Hasher> input_by_hash;
  std::set<std::string> group_keys;
  const Schema* view_schema = nullptr;
};

CandidateMatcher::CandidateMatcher(
    const std::unordered_map<Hash128, ViewAnnotation, Hash128Hasher>&
        annotations,
    ViewCatalogInterface* catalog, const CostModel* cost_model,
    obs::Span* parent_span)
    : catalog_(catalog), cost_model_(cost_model), parent_span_(parent_span) {
  // order-insensitive: this pass only buckets candidates by table-set
  // key; each bucket is sorted just below, before any iteration.
  for (const auto& [sig, ann] : annotations) {
    if (!ann.features || !ann.definition || !ann.definition->bound()) {
      continue;
    }
    buckets_[ann.features->table_set_key].push_back(&ann);
  }
  // The index is hash-ordered; candidate iteration must be deterministic
  // so recurring instances compile to identical plans.
  for (auto& [key, bucket] : buckets_) {
    std::sort(bucket.begin(), bucket.end(),
              [](const ViewAnnotation* a, const ViewAnnotation* b) {
                return a->normalized_signature < b->normalized_signature;
              });
  }
}

void CandidateMatcher::FinishSpan() {
  if (!span_opened_) return;
  verify_span_.SetAttribute("candidates_filtered",
                            int64_t{funnel_.candidates_filtered});
  verify_span_.SetAttribute("containment_verified",
                            int64_t{funnel_.containment_verified});
  verify_span_.SetAttribute("containment_rejected",
                            int64_t{funnel_.containment_rejected});
  verify_span_.SetAttribute("views_reused_subsumed",
                            int64_t{funnel_.views_reused_subsumed});
  verify_span_.SetAttribute("compensation_nodes_added",
                            int64_t{funnel_.compensation_nodes_added});
  verify_span_.End();
}

PlanNodePtr CandidateMatcher::TryContainment(
    const PlanNodePtr& node, const Hash128& node_normalized,
    const std::vector<const PlanNode*>& ancestors, int* rejected_by_cost) {
  CapDecomposition qcap = DecomposeCap(*node);
  // With no cap the subtree equals its core and only the exact tier can
  // match; with no aggregate-compensation possibility a view with a
  // coarser shape cannot serve it either.
  if (!qcap.HasCap()) return nullptr;

  ViewFeatures qf = ComputeViewFeatures(*node);
  auto bucket_it = buckets_.find(qf.table_set_key);
  if (bucket_it == buckets_.end()) return nullptr;

  for (const ViewAnnotation* ann : bucket_it->second) {
    // Tier 1: cheap feature filter.
    if (ann->normalized_signature == node_normalized) continue;  // tier 0
    const ViewFeatures& vf = *ann->features;
    if (vf.core_normalized != qf.core_normalized) continue;
    if (vf.has_aggregate && qcap.aggregate == nullptr) continue;
    // Filters live below projections on both sides, so interval columns
    // are core-level names on both sides and directly comparable. The
    // bounds are instance-dependent, but the constrained-column set is
    // not: containment is impossible unless the query constrains every
    // column the view constrains.
    bool feasible = true;
    for (const auto& iv : vf.predicate.intervals) {
      if (qf.predicate.FindInterval(iv.column) == nullptr) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    if (vf.predicate.opaque.size() > qf.predicate.conjuncts.size()) continue;

    ++funnel_.candidates_filtered;
    if (!span_opened_) {
      span_opened_ = true;
      if (parent_span_ != nullptr) {
        verify_span_ = parent_span_->StartChild("containment_verify");
      }
    }
    PlanNodePtr result =
        TryCandidate(node, *ann, ancestors, qcap, qf, rejected_by_cost);
    if (result != nullptr) return result;
    ++funnel_.containment_rejected;
  }
  return nullptr;
}

PlanNodePtr CandidateMatcher::TryCandidate(
    const PlanNodePtr& node, const ViewAnnotation& ann,
    const std::vector<const PlanNode*>& ancestors,
    const CapDecomposition& qcap, const ViewFeatures& qf,
    int* rejected_by_cost) {
  // ---- Tier 2: structural verification against the definition skeleton.
  ViewSide vs;
  vs.cap = DecomposeCap(*ann.definition);
  if (vs.cap.core->SubtreeHash(SignatureMode::kNormalized) !=
      qf.core_normalized) {
    return nullptr;
  }
  vs.view_schema = &ann.definition->output_schema();
  if (vs.cap.aggregate != nullptr) {
    vs.group_keys.insert(vs.cap.aggregate->group_keys().begin(),
                         vs.cap.aggregate->group_keys().end());
  }
  if (vs.cap.project != nullptr) {
    for (const auto& ne : vs.cap.project->exprs()) {
      if (!IsInstanceStable(*ne.expr)) continue;
      vs.input_by_hash.emplace(ExprPreciseHash(*ne.expr), ne.name);
    }
  } else {
    for (const auto& field : vs.cap.core->output_schema().fields()) {
      vs.input_by_hash.emplace(ColRefHash(field.name), field.name);
    }
  }

  // Query-side canonicalization: rewrite exprs above the query's Project
  // into exprs over core columns, so both sides speak the same names.
  std::unordered_map<std::string, ExprPtr> qprov;
  if (qcap.project != nullptr) {
    for (const auto& ne : qcap.project->exprs()) {
      qprov.emplace(ne.name, ne.expr);
    }
  }
  auto canonical = [&](const ExprPtr& e) -> ExprPtr {
    if (qcap.project == nullptr) return e->Clone();
    return SubstituteColumnRefs(*e, [&](const std::string& c) -> ExprPtr {
      auto it = qprov.find(c);
      return it == qprov.end() ? nullptr : it->second->Clone();
    });
  };
  // Rewrites a canonical (core-level) expr into one over the view's
  // output columns; null when the view does not carry the value. For
  // aggregated views only group-key columns survive as output rows'
  // per-group-constant values.
  auto remap = [&](const ExprPtr& canon) -> ExprPtr {
    if (canon == nullptr) return nullptr;
    if (IsInstanceStable(*canon)) {
      auto it = vs.input_by_hash.find(ExprPreciseHash(*canon));
      if (it != vs.input_by_hash.end() &&
          (vs.cap.aggregate == nullptr || vs.group_keys.count(it->second))) {
        return Col(it->second);
      }
    }
    return SubstituteColumnRefs(*canon, [&](const std::string& c) -> ExprPtr {
      auto it = vs.input_by_hash.find(ColRefHash(c));
      if (it == vs.input_by_hash.end()) return nullptr;
      if (vs.cap.aggregate != nullptr && !vs.group_keys.count(it->second)) {
        return nullptr;
      }
      return Col(it->second);
    });
  };

  const Schema& target = node->output_schema();
  std::vector<std::string> comp_group_keys;
  std::vector<AggregateSpec> comp_specs;
  std::vector<NamedExpr> final_exprs;
  int temp_counter = 0;
  auto temp_name = [&]() { return "__cv_c" + std::to_string(temp_counter++); };

  if (qcap.aggregate != nullptr) {
    // Re-aggregation emits groups in a different order than the original
    // plan's exchange-fed aggregate; only safe when an ancestor Sort makes
    // group order immaterial.
    const auto& gq = qcap.aggregate->group_keys();
    if (!OrderImmaterialAbove(ancestors, gq)) return nullptr;

    for (const auto& qk : gq) {
      ExprPtr rk = remap(canonical(Col(qk)));
      if (rk == nullptr || rk->kind() != ExprKind::kColumnRef) return nullptr;
      std::string vk = static_cast<const ColumnRefExpr&>(*rk).name();
      if (std::find(comp_group_keys.begin(), comp_group_keys.end(), vk) ==
          comp_group_keys.end()) {
        comp_group_keys.push_back(vk);
      }
      final_exprs.push_back(NamedExpr{Col(vk), qk});
    }

    if (vs.cap.aggregate == nullptr) {
      // View holds raw (filtered/projected) rows: fully re-run each
      // aggregate over them. Row feed is byte-identical to the original
      // aggregate's logical input, so any aggregate function is safe.
      for (const auto& spec : qcap.aggregate->aggregates()) {
        ExprPtr arg;
        if (spec.arg != nullptr) {
          arg = remap(canonical(spec.arg));
          if (arg == nullptr) return nullptr;
        }
        std::string tmp = temp_name();
        comp_specs.push_back(AggregateSpec{spec.func, arg, tmp});
        final_exprs.push_back(NamedExpr{Col(tmp), spec.output_name});
      }
    } else {
      // View is pre-aggregated at a finer group-by: decompose each query
      // aggregate from the view's partial aggregates. Only decomposable
      // combinations are accepted; SUM/AVG require int64 arguments
      // because float addition is not associative (byte-identity).
      struct VSpec {
        const AggregateSpec* spec;
        bool stable = false;
        Hash128 canon;
        DataType out_type;
      };
      std::unordered_map<std::string, ExprPtr> vprov;
      if (vs.cap.project != nullptr) {
        for (const auto& ne : vs.cap.project->exprs()) {
          vprov.emplace(ne.name, ne.expr);
        }
      }
      const Schema& agg_schema = vs.cap.aggregate->output_schema();
      std::vector<VSpec> vspecs;
      for (const auto& spec : vs.cap.aggregate->aggregates()) {
        VSpec v;
        v.spec = &spec;
        int idx = agg_schema.FieldIndex(spec.output_name);
        if (idx < 0) return nullptr;
        v.out_type = agg_schema.field(static_cast<size_t>(idx)).type;
        if (spec.arg != nullptr) {
          ExprPtr canon = spec.arg;
          if (vs.cap.project != nullptr) {
            canon = SubstituteColumnRefs(
                *spec.arg, [&](const std::string& c) -> ExprPtr {
                  auto it = vprov.find(c);
                  return it == vprov.end() ? nullptr : it->second->Clone();
                });
          }
          if (canon != nullptr && IsInstanceStable(*canon)) {
            v.stable = true;
            v.canon = ExprPreciseHash(*canon);
          }
        }
        vspecs.push_back(std::move(v));
      }
      auto find_vspec = [&](AggFunc func, bool has_arg,
                            const Hash128& canon) -> const VSpec* {
        for (const auto& v : vspecs) {
          if (v.spec->func != func) continue;
          if (has_arg != (v.spec->arg != nullptr)) continue;
          if (has_arg && (!v.stable || v.canon != canon)) continue;
          return &v;
        }
        return nullptr;
      };

      for (const auto& spec : qcap.aggregate->aggregates()) {
        Hash128 qcanon;
        if (spec.arg != nullptr) {
          ExprPtr canon = canonical(spec.arg);
          if (canon == nullptr || !IsInstanceStable(*canon)) return nullptr;
          qcanon = ExprPreciseHash(*canon);
        }
        switch (spec.func) {
          case AggFunc::kCount: {
            const VSpec* v =
                find_vspec(AggFunc::kCount, spec.arg != nullptr, qcanon);
            if (v == nullptr) return nullptr;
            std::string tmp = temp_name();
            // Partial counts roll up as an int64 sum.
            comp_specs.push_back(AggregateSpec{
                AggFunc::kSum, Col(v->spec->output_name), tmp});
            final_exprs.push_back(NamedExpr{Col(tmp), spec.output_name});
            break;
          }
          case AggFunc::kSum: {
            const VSpec* v = find_vspec(AggFunc::kSum, true, qcanon);
            if (v == nullptr || v->out_type != DataType::kInt64) {
              return nullptr;  // float sums are order-sensitive
            }
            std::string tmp = temp_name();
            comp_specs.push_back(AggregateSpec{
                AggFunc::kSum, Col(v->spec->output_name), tmp});
            final_exprs.push_back(NamedExpr{Col(tmp), spec.output_name});
            break;
          }
          case AggFunc::kMin:
          case AggFunc::kMax: {
            const VSpec* v = find_vspec(spec.func, true, qcanon);
            if (v == nullptr) return nullptr;
            std::string tmp = temp_name();
            comp_specs.push_back(AggregateSpec{
                spec.func, Col(v->spec->output_name), tmp});
            final_exprs.push_back(NamedExpr{Col(tmp), spec.output_name});
            break;
          }
          case AggFunc::kAvg: {
            // AVG(x) = SUM(sum_x) / SUM(count_x), exactly reproducing the
            // engine's sum/count division (int64 sums are exact; the
            // division and its NULL-on-empty semantics match AggState).
            if (spec.arg == nullptr ||
                spec.arg->output_type() != DataType::kInt64) {
              return nullptr;
            }
            const VSpec* sum_v = find_vspec(AggFunc::kSum, true, qcanon);
            const VSpec* cnt_v = find_vspec(AggFunc::kCount, true, qcanon);
            if (sum_v == nullptr || cnt_v == nullptr ||
                sum_v->out_type != DataType::kInt64) {
              return nullptr;
            }
            std::string tmp_sum = temp_name();
            std::string tmp_cnt = temp_name();
            comp_specs.push_back(AggregateSpec{
                AggFunc::kSum, Col(sum_v->spec->output_name), tmp_sum});
            comp_specs.push_back(AggregateSpec{
                AggFunc::kSum, Col(cnt_v->spec->output_name), tmp_cnt});
            final_exprs.push_back(NamedExpr{
                Div(Col(tmp_sum), Col(tmp_cnt)), spec.output_name});
            break;
          }
        }
      }
    }
  } else {
    // No query aggregate: the view must hold raw rows too.
    if (vs.cap.aggregate != nullptr) return nullptr;
    for (const auto& field : target.fields()) {
      ExprPtr canon;
      if (qcap.project != nullptr) {
        auto it = qprov.find(field.name);
        if (it == qprov.end()) return nullptr;
        canon = it->second->Clone();
      } else {
        canon = Col(field.name);
      }
      ExprPtr e = remap(canon);
      if (e == nullptr) return nullptr;
      final_exprs.push_back(NamedExpr{e, field.name});
    }
  }

  // ---- Tier 2.5: a live instance over the same core whose concrete
  // predicate contains the query's.
  std::vector<ExprPtr> qconjuncts;
  FlattenConjuncts(qcap.filter != nullptr ? qcap.filter->predicate()
                                          : nullptr,
                   &qconjuncts);
  std::vector<Hash128> qhashes;
  for (const auto& c : qconjuncts) qhashes.push_back(ExprPreciseHash(*c));

  bool verified_counted = false;
  for (const auto& info :
       catalog_->FindSubsumableInstances(ann.normalized_signature)) {
    const auto& rf = info.reuse_features;
    if (!rf) continue;
    if (rf->core_precise != qf.core_precise) continue;
    if (!rf->predicate.Contains(qf.predicate)) continue;
    if (!verified_counted) {
      verified_counted = true;
      ++funnel_.containment_verified;
    }

    // Residual filter: the query conjuncts the view did not already
    // apply. Conjuncts the view applied verbatim (precise-hash match) are
    // idempotent and skipped; containment guarantees the remainder,
    // re-applied over the view's rows, reproduces the query's row set
    // exactly (same values, same relative order).
    std::vector<ExprPtr> residual;
    bool remappable = true;
    for (size_t i = 0; i < qconjuncts.size(); ++i) {
      if (std::binary_search(rf->predicate.conjuncts.begin(),
                             rf->predicate.conjuncts.end(), qhashes[i])) {
        continue;  // already enforced by the view
      }
      ExprPtr e = remap(qconjuncts[i]->Clone());
      if (e == nullptr) {
        remappable = false;  // references a column the view lost
        break;
      }
      residual.push_back(std::move(e));
    }
    if (!remappable) continue;

    // Same cost gate as the exact tier: reading the view (at the same
    // DOP) must beat recomputing the subtree.
    double read_cost = cost_model_->ViewReadCost(info.rows, info.bytes) /
                       std::max(1, cost_model_->config().default_dop);
    if (read_cost >= node->estimates().cost) {
      ++*rejected_by_cost;
      continue;
    }

    // ---- Tier 3: assemble the compensation plan.
    int comp_nodes = 0;
    // compensation: scan the subsumed view instance in place of the
    // replaced subtree; it carries the view's own signatures so cached
    // plans revalidate it against the catalog like any exact view read.
    PlanNodePtr comp = std::make_shared<ViewReadNode>(
        info.path, ann.normalized_signature, info.precise_signature,
        *vs.view_schema, info.design, info.rows, info.bytes);
    if (!residual.empty()) {
      // compensation: residual filter re-applies the query conjuncts the
      // weaker view predicate did not enforce.
      comp = std::make_shared<FilterNode>(comp, AndFold(residual));
      ++comp_nodes;
    }
    if (qcap.aggregate != nullptr) {
      // compensation: re-aggregate over the coarser query group-by; kHash
      // is forced because RepairProperties does not re-run algorithm
      // selection and the byte-identity argument assumes hash grouping.
      auto agg = std::make_shared<AggregateNode>(comp, comp_group_keys,
                                                 comp_specs);
      agg->set_algorithm(AggAlgorithm::kHash);
      comp = agg;
      ++comp_nodes;
    }
    // compensation: final projection narrows / renames the view's
    // superset output back to the replaced subtree's exact schema.
    comp = std::make_shared<ProjectNode>(comp, final_exprs);
    ++comp_nodes;

    Status st = comp->Bind();
    if (!st.ok() || !(comp->output_schema() == target)) {
      // Conservative: a compensation that cannot reproduce the exact
      // schema is discarded rather than risked.
      continue;
    }
    ++funnel_.views_reused_subsumed;
    funnel_.compensation_nodes_added += comp_nodes;
    return comp;
  }
  return nullptr;
}

}  // namespace cloudviews
