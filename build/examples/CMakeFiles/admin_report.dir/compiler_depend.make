# Empty compiler generated dependencies file for admin_report.
# This may be replaced when dependencies are built.
