#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "core/cloudviews.h"
#include "signature/signature.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace {

using tpcds::kNumQueries;
using tpcds::TableStream;
using tpcds::TpcdsGenerator;
using tpcds::TpcdsOptions;

TpcdsOptions SmallOptions() {
  TpcdsOptions options;
  options.store_sales_rows = 2000;
  options.web_sales_rows = 800;
  options.catalog_sales_rows = 1000;
  options.customers = 200;
  return options;
}

TEST(TpcdsGeneratorTest, WritesAllTablesWithExpectedCardinalities) {
  CloudViews cv;
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(cv.storage()).ok());
  auto expect_rows = [&](const char* table, int64_t rows) {
    auto handle = cv.storage()->OpenStream(TableStream(table));
    ASSERT_TRUE(handle.ok()) << table;
    EXPECT_EQ((*handle)->total_rows, rows) << table;
  };
  expect_rows("date_dim", 730);
  expect_rows("item", 200);
  expect_rows("customer", 200);
  expect_rows("store", 12);
  expect_rows("promotion", 30);
  expect_rows("store_sales", 2000);
  expect_rows("web_sales", 800);
  expect_rows("catalog_sales", 1000);
}

TEST(TpcdsGeneratorTest, DeterministicAcrossRuns) {
  CloudViews cv1, cv2;
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(cv1.storage()).ok());
  ASSERT_TRUE(gen.WriteTables(cv2.storage()).ok());
  auto a = *cv1.storage()->OpenStream(TableStream("store_sales"));
  auto b = *cv2.storage()->OpenStream(TableStream("store_sales"));
  ASSERT_EQ(a->total_rows, b->total_rows);
  Batch ba = CombineBatches(a->schema, a->batches);
  Batch bb = CombineBatches(b->schema, b->batches);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(ba.GetRow(r)[1].int64_value(), bb.GetRow(r)[1].int64_value());
  }
}

TEST(TpcdsQueriesTest, AllQueriesBuildAndBind) {
  for (int q = 1; q <= kNumQueries; ++q) {
    auto plan = tpcds::BuildQuery(q);
    ASSERT_NE(plan, nullptr) << "q" << q;
    Status st = plan->Bind();
    ASSERT_TRUE(st.ok()) << "q" << q << ": " << st.ToString();
  }
}

TEST(TpcdsQueriesTest, QueriesAreDeterministic) {
  for (int q : {1, 17, 42, 99}) {
    auto a = tpcds::BuildQuery(q);
    auto b = tpcds::BuildQuery(q);
    ASSERT_TRUE(a->Bind().ok());
    ASSERT_TRUE(b->Bind().ok());
    EXPECT_EQ(a->SubtreeHash(SignatureMode::kPrecise),
              b->SubtreeHash(SignatureMode::kPrecise));
  }
}

TEST(TpcdsQueriesTest, QueriesShareSubexpressions) {
  // Count distinct year-sliced channel bases: far fewer than 99 queries.
  std::set<std::string> distinct_base;
  std::unordered_map<Hash128, int, Hash128Hasher> prefix_freq;
  for (int q = 1; q <= kNumQueries; ++q) {
    auto plan = tpcds::BuildQuery(q);
    ASSERT_TRUE(plan->Bind().ok());
    for (const auto& entry : EnumerateSubgraphs(plan)) {
      if (entry.node->kind() == OpKind::kJoin) {
        ++prefix_freq[entry.sigs.normalized];
      }
    }
  }
  int shared = 0, max_freq = 0;
  for (const auto& [sig, freq] : prefix_freq) {
    if (freq >= 3) ++shared;
    max_freq = std::max(max_freq, freq);
  }
  EXPECT_GE(shared, 6);     // several heavily shared join prefixes
  EXPECT_GE(max_freq, 10);  // the hottest base appears in many queries
}

TEST(TpcdsQueriesTest, FullBenchmarkExecutes) {
  CloudViews cv;
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(cv.storage()).ok());
  for (int q = 1; q <= kNumQueries; ++q) {
    auto result = cv.Submit(tpcds::MakeQueryJob(q), false);
    ASSERT_TRUE(result.ok()) << "q" << q << ": "
                             << result.status().ToString();
    EXPECT_TRUE(cv.storage()->StreamExists(
        "tpcds_q" + std::to_string(q) + "_out"))
        << q;
  }
  EXPECT_EQ(cv.repository()->NumJobs(), 99u);
}

TEST(TpcdsQueriesTest, CloudViewsLifecycleImprovesReuse) {
  CloudViews cv = [] {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 10;
    config.analyzer.selection.min_frequency = 3;
    return CloudViews(config);
  }();
  TpcdsGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.WriteTables(cv.storage()).ok());
  for (int q = 1; q <= kNumQueries; ++q) {
    ASSERT_TRUE(cv.Submit(tpcds::MakeQueryJob(q), false).ok());
  }
  auto analysis = cv.RunAnalyzerAndLoad();
  EXPECT_EQ(analysis.annotations.size(), 10u);

  int reused = 0, built = 0;
  for (int q = 1; q <= kNumQueries; ++q) {
    auto r = cv.Submit(tpcds::MakeQueryJob(q));
    ASSERT_TRUE(r.ok()) << "q" << q;
    reused += r->views_reused;
    built += r->views_materialized;
  }
  EXPECT_GT(built, 0);
  // A large share of the 99 queries hit at least one of the ten views.
  EXPECT_GT(reused, 30);
}

}  // namespace
}  // namespace cloudviews
