#ifndef CLOUDVIEWS_WORKLOAD_PRODUCTION_WORKLOAD_H_
#define CLOUDVIEWS_WORKLOAD_PRODUCTION_WORKLOAD_H_

#include <string>
#include <vector>

#include "runtime/job_service.h"
#include "storage/storage_manager.h"

namespace cloudviews {

/// \brief The Sec 7.1 evaluation workload, reconstructed: 32 recurring jobs
/// drawn from one business unit, clustered around 3 overlapping
/// computations with 16, 12, and 4 jobs respectively. The first job of
/// each group (in arrival order) materializes its view; the rest reuse it.
class ProductionWorkload {
 public:
  struct Options {
    size_t rows_per_input = 4000;
    uint64_t seed = 2018;
  };

  ProductionWorkload();
  explicit ProductionWorkload(Options options);

  /// Number of jobs (32) and their group sizes.
  static constexpr int kNumJobs = 32;
  static const std::vector<int>& GroupSizes();

  /// Writes the instance's input streams.
  void WriteInputs(StorageManager* storage, const std::string& date) const;

  /// The 32 jobs of one recurring instance, in arrival order (groups
  /// interleaved the way concurrent pipelines arrive).
  std::vector<JobDefinition> Instance(const std::string& date) const;

  /// Group index (0..2) of each job in Instance() order.
  const std::vector<int>& job_groups() const { return job_groups_; }

 private:
  PlanNodePtr BuildSharedComputation(int group,
                                     const std::string& date) const;
  PlanNodePtr BuildJob(int group, int member, const std::string& date) const;

  Options options_;
  std::vector<int> job_groups_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_WORKLOAD_PRODUCTION_WORKLOAD_H_
