file(REMOVE_RECURSE
  "libcv_expr.a"
)
