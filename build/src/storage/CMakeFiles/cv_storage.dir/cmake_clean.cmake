file(REMOVE_RECURSE
  "CMakeFiles/cv_storage.dir/storage_manager.cc.o"
  "CMakeFiles/cv_storage.dir/storage_manager.cc.o.d"
  "libcv_storage.a"
  "libcv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
