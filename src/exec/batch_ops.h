#ifndef CLOUDVIEWS_EXEC_BATCH_OPS_H_
#define CLOUDVIEWS_EXEC_BATCH_OPS_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "plan/physical_properties.h"
#include "types/batch.h"

namespace cloudviews {

/// Maps column names to indices in `schema`; Internal error on a miss.
Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names);

/// 128-bit key of the given columns of one row (used by hash join, hash
/// aggregate, and hash partitioning).
Hash128 RowKey(const Batch& batch, size_t row, const std::vector<int>& cols);

/// Lexicographic comparison of row `ra` of `a` against row `rb` of `b` on
/// the given (same-typed) key columns; nulls first, as Value::Compare.
int CompareRowsOnColumns(const Batch& a, size_t ra, const std::vector<int>& ca,
                         const Batch& b, size_t rb,
                         const std::vector<int>& cb);

/// Sort keys resolved against a schema; unknown keys are skipped (they are
/// validated at bind time), matching SortBatch.
struct ResolvedSortKeys {
  std::vector<int> cols;
  std::vector<bool> ascending;
  bool empty() const { return cols.empty(); }
};
ResolvedSortKeys ResolveSortKeys(const Schema& schema,
                                 const std::vector<SortKey>& keys);

/// -1/0/1 ordering of two rows under the resolved sort keys.
int CompareRowsSorted(const Batch& a, size_t ra, const Batch& b, size_t rb,
                      const ResolvedSortKeys& keys);

/// Row permutation that stable-sorts `data` under the resolved keys.
std::vector<size_t> StableSortOrder(const Batch& data,
                                    const ResolvedSortKeys& keys);

/// Materializes the given rows of src, in order, into a new batch.
Batch GatherRows(const Batch& src, const std::vector<size_t>& rows);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_BATCH_OPS_H_
