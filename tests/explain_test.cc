#include <gtest/gtest.h>

#include "core/cloudviews.h"
#include "common/string_util.h"
#include "core/explain.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

class ExplainTest : public ::testing::Test {
 protected:
  static CloudViewsConfig MakeConfig() {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    return config;
  }

  static JobDefinition Job(const std::string& id, const std::string& date,
                           const std::string& out_suffix) {
    JobDefinition def;
    def.template_id = id;
    def.vc = "vc";
    def.user = "u-" + id;
    def.logical_plan = PlanBuilder::From(SharedAggPlan(date))
                           .Output(id + "_out_" + date + out_suffix)
                           .Build();
    return def;
  }

  CloudViews cv_{MakeConfig()};
};

TEST_F(ExplainTest, ExplainJobTracesViewProvenance) {
  WriteClickStream(cv_.storage(), "clicks_2018-01-01", 800, 1, "2018-01-01");
  ASSERT_TRUE(cv_.Submit(Job("jobA", "2018-01-01", "")).ok());
  ASSERT_TRUE(cv_.Submit(Job("jobB", "2018-01-01", "")).ok());
  cv_.RunAnalyzerAndLoad();

  WriteClickStream(cv_.storage(), "clicks_2018-01-02", 800, 2, "2018-01-02");
  auto builder = cv_.Submit(Job("jobA", "2018-01-02", ""));
  ASSERT_TRUE(builder.ok());
  ASSERT_EQ(builder->views_materialized, 1);
  std::string builder_explain = ExplainJob(*builder);
  EXPECT_NE(builder_explain.find("materialized view /views/"),
            std::string::npos);
  EXPECT_NE(builder_explain.find("lifetime 86400s"), std::string::npos);
  EXPECT_NE(builder_explain.find("executed plan:"), std::string::npos);

  auto reuser = cv_.Submit(Job("jobB", "2018-01-02", ""));
  ASSERT_TRUE(reuser.ok());
  ASSERT_EQ(reuser->views_reused, 1);
  std::string reuse_explain = ExplainJob(*reuser);
  EXPECT_NE(reuse_explain.find("reused view /views/"), std::string::npos);
  // Provenance: the reused view is traced back to the producing job.
  EXPECT_NE(reuse_explain.find(StrFormat(
                "produced by job %llu",
                static_cast<unsigned long long>(builder->job_id))),
            std::string::npos);
  EXPECT_NE(reuse_explain.find("1 view(s) reused"), std::string::npos);
}

TEST_F(ExplainTest, ExplainSelectionShowsWhy) {
  WriteClickStream(cv_.storage(), "clicks_2018-01-01", 800, 1, "2018-01-01");
  ASSERT_TRUE(cv_.Submit(Job("jobA", "2018-01-01", "")).ok());
  ASSERT_TRUE(cv_.Submit(Job("jobB", "2018-01-01", "")).ok());
  CloudViewsAnalyzer analyzer(MakeConfig().analyzer);
  AnalysisResult analysis = analyzer.Analyze(cv_.repository()->Jobs());
  ASSERT_EQ(analysis.selected.size(), 1u);
  std::string text = ExplainViewSelection(analysis);
  EXPECT_NE(text.find("selected because: 2 occurrence(s) across 2 job(s)"),
            std::string::npos);
  EXPECT_NE(text.find("design:"), std::string::npos);
  EXPECT_NE(text.find("lifetime 86400s"), std::string::npos);
  EXPECT_NE(text.find("clicks_{date}"), std::string::npos);
}

TEST_F(ExplainTest, ExplainPlainJobIsQuiet) {
  WriteClickStream(cv_.storage(), "clicks_2018-01-01", 100, 1, "2018-01-01");
  auto r = cv_.Submit(Job("jobA", "2018-01-01", ""), false);
  ASSERT_TRUE(r.ok());
  std::string text = ExplainJob(*r);
  EXPECT_NE(text.find("0 view(s) reused, 0 materialized"),
            std::string::npos);
  EXPECT_EQ(text.find("reused view"), std::string::npos);
}

}  // namespace
}  // namespace cloudviews
