// Randomized multi-job crash-stress: hundreds of mixed recurring jobs run
// while every reuse-pipeline seam (view reads, view writes, torn writes,
// metadata lookups, build-lock proposals) fails probabilistically. The
// pinned invariant is the "do no harm" contract: every submitted job either
// succeeds with byte-identical output to a fault-free no-reuse baseline, or
// fails only with an injected non-reuse fault (none are armed here, so all
// jobs must succeed). At shutdown no build lock is leaked and no torn or
// unregistered partial view survives in the store.
//
// The fault schedule derives entirely from the injector seed (CV_FAULT_SEED,
// default 42); CI sweeps seeds across sanitizer configs. When
// CV_FAULT_ARTIFACT_DIR is set the injector's event log is written there as
// JSON for post-mortem upload.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cloudviews.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("CV_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

std::string DateForDay(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2018-%02d-%02d", 2 + i / 28, 1 + i % 28);
  return buf;
}

JobDefinition MakeJob(const std::string& id, const std::string& date,
                      PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

// Three recurring templates sharing the aggregate subgraph the analyzer
// mines, with distinct downstream shapes and outputs.
JobDefinition JobA(const std::string& date) {
  return MakeJob("jobA", date,
                 PlanBuilder::From(SharedAggPlan(date))
                     .Sort({{"n", false}})
                     .Output("A_" + date)
                     .Build());
}
JobDefinition JobB(const std::string& date) {
  return MakeJob("jobB", date,
                 PlanBuilder::From(SharedAggPlan(date))
                     .Filter(Gt(Col("n"), Lit(int64_t{0})))
                     .Output("B_" + date)
                     .Build());
}
JobDefinition JobC(const std::string& date) {
  return MakeJob("jobC", date,
                 PlanBuilder::From(SharedAggPlan(date))
                     .Sort({{"total_latency", false}})
                     .Output("C_" + date)
                     .Build());
}

/// Canonical row-sorted rendering of a stored stream for cross-instance
/// output comparison.
std::string Fingerprint(StorageManager* storage, const std::string& stream) {
  auto open = storage->OpenStream(stream);
  if (!open.ok()) return "<unreadable: " + open.status().ToString() + ">";
  Batch all = CombineBatches((*open)->schema, (*open)->batches);
  std::vector<SortKey> keys;
  for (const auto& f : (*open)->schema.fields()) {
    keys.push_back({f.name, /*ascending=*/true});
  }
  all = SortBatch(all, keys);
  std::string out;
  for (size_t r = 0; r < all.num_rows(); ++r) {
    for (const Value& v : all.GetRow(r)) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

TEST(CrashStressTest, EveryJobSucceedsByteIdenticalUnderFaults) {
  const uint64_t seed = SeedFromEnv();
  const int kDays = 70;  // 3 templates/day -> 210 mixed recurring jobs
  SCOPED_TRACE("CV_FAULT_SEED=" + std::to_string(seed));

  // Fault-free baseline instance: plain no-reuse runs define the expected
  // bytes for every output.
  CloudViews baseline;
  // Faulted instance: reuse on, every pipeline seam failing at the armed
  // probabilities, four worker threads plus concurrent submissions so the
  // sanitizer configs see real interleavings.
  fault::FaultInjector injector(seed);
  fault::RecordingSleeper sleeper;
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 2;
  config.analyzer.selection.min_frequency = 2;
  config.fault = &injector;
  config.sleeper = &sleeper;
  config.retry.max_attempts = 2;
  config.exec.worker_threads = 4;
  CloudViews cv(config);

  auto write_day = [&](int day) {
    std::string date = DateForDay(day);
    size_t rows = 400 + static_cast<size_t>((day * 37) % 300);
    for (StorageManager* s : {baseline.storage(), cv.storage()}) {
      WriteClickStream(s, "clicks_" + date, rows,
                       /*seed=*/1000 + static_cast<uint64_t>(day), date);
    }
  };

  // Day 0: seed recurring history on the faulted instance and mine it.
  write_day(0);
  {
    std::string date = DateForDay(0);
    for (const auto& def : {JobA(date), JobB(date), JobC(date)}) {
      auto b = baseline.Submit(def, false);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      auto r = cv.Submit(def, false);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  cv.RunAnalyzerAndLoad();
  ASSERT_GE(cv.metadata()->NumAnnotations(), 1u);

  // Arm the reuse-pipeline faults. None are crash faults and none touch the
  // jobs' own computation, so no job failure is acceptable from here on.
  // That includes the sharing seams: a leader "crash" armed with
  // crash=false fails only the fan-out (followers degrade to independent
  // execution), and an injected piggyback timeout just keeps the blind
  // plan.
  {
    fault::FaultSpec spec;
    spec.probability = 0.25;
    injector.Arm(fault::points::kStorageViewRead, spec);
    spec.probability = 0.20;
    injector.Arm(fault::points::kStorageViewWrite, spec);
    spec.probability = 0.10;
    injector.Arm(fault::points::kStorageViewWriteTorn, spec);
    spec.probability = 0.15;
    spec.code = StatusCode::kAborted;
    injector.Arm(fault::points::kMetadataLookup, spec);
    spec.probability = 0.10;
    spec.code = StatusCode::kIOError;
    injector.Arm(fault::points::kMetadataPropose, spec);
    spec.probability = 0.15;
    spec.code = StatusCode::kInternal;
    injector.Arm(fault::points::kSharingLeaderCrash, spec);
    spec.probability = 0.20;
    spec.code = StatusCode::kExpired;
    injector.Arm(fault::points::kSharingPiggybackTimeout, spec);
  }

  int jobs = 0;
  int fallbacks = 0;
  int degraded_lookups = 0;
  int reused = 0;
  int sharing_submissions = 0;
  for (int day = 1; day <= kDays; ++day) {
    write_day(day);
    std::string date = DateForDay(day);
    std::vector<JobDefinition> defs;
    defs.push_back(JobA(date));
    defs.push_back(JobB(date));
    defs.push_back(JobC(date));
    for (const auto& def : defs) {
      auto b = baseline.Submit(def, false);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
    }
    std::vector<Result<JobResult>> results;
    if (day % 3 == 0) {
      // Concurrent submissions: the same day's jobs race on the shared
      // metadata service and build locks, with work sharing and build
      // piggybacking on. Duplicate submissions of the same job make the
      // in-flight registry elect leaders and followers for real (they
      // write the same output stream with identical bytes, so the
      // fingerprint check is unaffected).
      defs.push_back(JobA(date));
      defs.push_back(JobB(date));
      JobServiceOptions options;
      options.enable_cloudviews = true;
      options.enable_inflight_sharing = true;
      options.enable_piggyback = true;
      options.piggyback_wait_seconds = 2;
      sharing_submissions += static_cast<int>(defs.size());
      results = cv.job_service()->SubmitConcurrent(defs, options);
    } else {
      for (const auto& def : defs) results.push_back(cv.Submit(def));
    }
    for (auto& r : results) {
      ++jobs;
      ASSERT_TRUE(r.ok()) << "job failed under reuse-pipeline faults (seed "
                          << seed << "): " << r.status().ToString();
      fallbacks += r->views_fallback;
      degraded_lookups += r->lookup_degraded ? 1 : 0;
      reused += r->views_reused;
    }
    for (const char* prefix : {"A_", "B_", "C_"}) {
      std::string stream = prefix + date;
      EXPECT_EQ(Fingerprint(cv.storage(), stream),
                Fingerprint(baseline.storage(), stream))
          << stream << " diverged from the fault-free baseline";
    }
    if (::testing::Test::HasFailure()) break;
  }

  if (!::testing::Test::HasFailure()) {
    EXPECT_GE(jobs, 200);
    // The schedule actually exercised the machinery: view reads failed and
    // at least one degradation path ran. With p=0.25 over hundreds of view
    // reads a silent schedule means the wiring is broken, not bad luck.
    EXPECT_GT(injector.fires(fault::points::kStorageViewRead), 0u);
    EXPECT_GT(injector.total_fires(), 0u);
    EXPECT_GT(reused, 0);
    EXPECT_GT(fallbacks + degraded_lookups +
                  static_cast<int>(cv.metadata()->counters().locks_abandoned),
              0);

    // Work-sharing bookkeeping: every sharing-enabled submission was
    // accounted exactly once (leader or follower; degraded followers are a
    // subset of followers), and no in-flight registry entry survived its
    // leader — a leak here would strand every later identical submission.
    auto counter_value = [&](const char* name) {
      return cv.metrics()->GetCounter(name, {}, "")->value();
    };
    EXPECT_EQ(counter_value("cv_sharing_leader_total") +
                  counter_value("cv_sharing_follower_total"),
              static_cast<uint64_t>(sharing_submissions));
    EXPECT_GT(counter_value("cv_sharing_leader_total"), 0u);
    EXPECT_EQ(cv.job_service()->inflight_sharing().NumPending(), 0u)
        << "in-flight sharing entries leaked at shutdown";

    // Shutdown hygiene: no leaked build locks, and every surviving view
    // stream is complete and registered (torn partials and stale copies
    // were all cleaned up). The workload is over — disarm so the audit's
    // own reads don't draw faults (events stay recorded; Reset would wipe
    // them).
    injector.Disarm(fault::points::kStorageViewRead);
    EXPECT_EQ(cv.metadata()->NumActiveLocks(), 0u)
        << "leaked build locks at shutdown";
    std::set<std::string> registered;
    for (const auto& v : cv.metadata()->ListViews()) registered.insert(v.path);
    std::vector<std::string> stored = cv.storage()->ListStreams("/views/");
    EXPECT_EQ(stored.size(), registered.size());
    for (const auto& path : stored) {
      EXPECT_TRUE(registered.count(path) > 0)
          << "orphaned view file at shutdown: " << path;
      auto open = cv.storage()->OpenStream(path);
      EXPECT_TRUE(open.ok()) << path << ": " << open.status().ToString();
    }
  }

  if (const char* dir = std::getenv("CV_FAULT_ARTIFACT_DIR")) {
    std::string path = std::string(dir) + "/fault_events_seed" +
                       std::to_string(seed) + ".json";
    Status written = injector.WriteEventsJson(path);
    EXPECT_TRUE(written.ok()) << written.ToString();
  }
}

}  // namespace
}  // namespace cloudviews
