# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tpcds_test[1]_include.cmake")
include("/root/repo/build/tests/lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
