// Fixture: RebindInstance rebinds the stream name but drops the guid — a
// skeleton-tier cache hit would run with a stale instance guid.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_REBIND_FIELD_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_REBIND_FIELD_H_

#include <string>
#include <utility>

namespace fixture {

class BadRebindNode {
 public:
  void RebindInstance(std::string stream_name, std::string guid) {
    stream_name_ = std::move(stream_name);
    (void)guid;  // guid_ silently keeps the template's value
  }

 private:
  std::string stream_name_;
  std::string guid_;
};

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_REBIND_FIELD_H_
