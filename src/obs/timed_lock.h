#ifndef CLOUDVIEWS_OBS_TIMED_LOCK_H_
#define CLOUDVIEWS_OBS_TIMED_LOCK_H_

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace obs {

/// \brief MutexLock that feeds the acquisition wait into a histogram.
///
/// Drop-in replacement for MutexLock on contended paths whose wait time is
/// a signal worth exporting (e.g. the metadata service's build-lock
/// mutex). With a null histogram it degenerates to a plain MutexLock —
/// no clock reads.
class SCOPED_CAPABILITY TimedMutexLock {
 public:
  TimedMutexLock(Mutex& mu, Histogram* wait_hist, MonotonicClock* clock)
      ACQUIRE(mu)
      : mu_(mu) {
    if (wait_hist != nullptr) {
      double start = clock->NowSeconds();
      mu_.Lock();
      wait_hist->Observe(clock->NowSeconds() - start);
    } else {
      mu_.Lock();
    }
  }

  /// Same, feeding the wait into two histograms — a specific one (e.g. one
  /// metadata shard stripe) and an aggregate one. Either may be null; with
  /// both null it degenerates to a plain MutexLock.
  TimedMutexLock(Mutex& mu, Histogram* wait_hist, Histogram* aggregate_hist,
                 MonotonicClock* clock) ACQUIRE(mu)
      : mu_(mu) {
    if (wait_hist != nullptr || aggregate_hist != nullptr) {
      double start = clock->NowSeconds();
      mu_.Lock();
      double waited = clock->NowSeconds() - start;
      if (wait_hist != nullptr) wait_hist->Observe(waited);
      if (aggregate_hist != nullptr) aggregate_hist->Observe(waited);
    } else {
      mu_.Lock();
    }
  }
  ~TimedMutexLock() RELEASE() { mu_.Unlock(); }

  TimedMutexLock(const TimedMutexLock&) = delete;
  TimedMutexLock& operator=(const TimedMutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_TIMED_LOCK_H_
