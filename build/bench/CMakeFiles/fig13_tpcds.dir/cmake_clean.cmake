file(REMOVE_RECURSE
  "CMakeFiles/fig13_tpcds.dir/fig13_tpcds.cc.o"
  "CMakeFiles/fig13_tpcds.dir/fig13_tpcds.cc.o.d"
  "fig13_tpcds"
  "fig13_tpcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tpcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
