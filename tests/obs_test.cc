#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timed_lock.h"
#include "obs/trace.h"

namespace cloudviews {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.Set(3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(MetricsTest, ScopedGaugeIncrementRestoresLevel) {
  Gauge g;
  {
    ScopedGaugeIncrement a(&g);
    ScopedGaugeIncrement b(&g);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
  }
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  ScopedGaugeIncrement null_ok(nullptr);  // must not crash
}

TEST(MetricsTest, HistogramBucketsAreExponential) {
  HistogramOptions opts;
  opts.first_bound = 0.001;
  opts.growth = 10.0;
  opts.num_buckets = 3;  // bounds 0.001, 0.01, 0.1 + overflow
  Histogram h(opts);
  ASSERT_EQ(h.bounds().size(), 3u);
  h.Observe(0.0005);  // bucket 0
  h.Observe(0.005);   // bucket 1
  h.Observe(0.05);    // bucket 2
  h.Observe(5.0);     // overflow
  auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0005 + 0.005 + 0.05 + 5.0);
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameSeriesReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("cv_x_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("cv_x_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* c = registry.GetCounter("cv_x_total", {{"k", "w"}});
  EXPECT_NE(a, c);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a =
      registry.GetCounter("cv_x_total", {{"a", "1"}, {"b", "2"}});
  Counter* b =
      registry.GetCounter("cv_x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("cv_b_total")->Increment(2);
  registry.GetGauge("cv_a")->Set(7);
  registry.GetHistogram("cv_c_seconds")->Observe(0.5);
  auto families = registry.Snapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "cv_a");
  EXPECT_EQ(families[1].name, "cv_b_total");
  EXPECT_EQ(families[2].name, "cv_c_seconds");
  EXPECT_EQ(families[0].type, MetricType::kGauge);
  EXPECT_EQ(families[1].type, MetricType::kCounter);
  EXPECT_EQ(families[2].type, MetricType::kHistogram);
  EXPECT_DOUBLE_EQ(families[0].series[0].value, 7.0);
  EXPECT_DOUBLE_EQ(families[1].series[0].value, 2.0);
  EXPECT_EQ(families[2].series[0].count, 1u);
}

/// The concurrency contract: registration from many threads for the same
/// and different names, plus lock-free mutation, must produce exact totals
/// (run under TSan in the sanitizer build).
TEST(MetricsRegistryTest, ConcurrentHammerProducesExactTotals) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Re-resolve instruments every few iterations so the shard locks
      // are exercised concurrently with the lock-free mutations.
      Counter* shared = registry.GetCounter("cv_hammer_total");
      Histogram* hist = registry.GetHistogram("cv_hammer_seconds");
      Gauge* gauge = registry.GetGauge("cv_hammer_level");
      Counter* own = registry.GetCounter(
          "cv_hammer_per_thread_total", {{"t", std::to_string(t)}});
      for (int i = 0; i < kIters; ++i) {
        if (i % 1024 == 0) {
          shared = registry.GetCounter("cv_hammer_total");
        }
        shared->Increment();
        own->Increment();
        hist->Observe(1e-4);
        gauge->Add(1);
        gauge->Add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("cv_hammer_total")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetHistogram("cv_hammer_seconds")->count(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.GetGauge("cv_hammer_level")->value(), 0.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetCounter("cv_hammer_per_thread_total",
                              {{"t", std::to_string(t)}})
                  ->value(),
              static_cast<uint64_t>(kIters));
  }
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

/// Builds a registry with one instrument of each type and fixed values,
/// so the rendered exposition is byte-deterministic.
void FillGoldenRegistry(MetricsRegistry* registry) {
  registry
      ->GetCounter("cv_jobs_submitted_total", {}, "Jobs submitted")
      ->Increment(3);
  registry
      ->GetCounter("cv_job_stage_errors_total", {{"stage", "execute"}},
                   "Stage errors")
      ->Increment(1);
  registry
      ->GetCounter("cv_job_stage_errors_total", {{"stage", "optimize"}},
                   "Stage errors")
      ->Increment(2);
  registry->GetGauge("cv_jobs_active", {}, "Jobs in flight")->Set(2);
  HistogramOptions opts;
  opts.first_bound = 0.001;
  opts.growth = 10.0;
  opts.num_buckets = 3;
  Histogram* h = registry->GetHistogram("cv_job_latency_seconds", {}, opts,
                                        "Job latency");
  h->Observe(0.0005);
  h->Observe(0.05);
  h->Observe(2.0);
}

std::string GoldenPath() {
  return std::string(CV_TEST_GOLDEN_DIR) + "/metrics.prom";
}

TEST(ExportTest, PrometheusRenderingMatchesGoldenFile) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  std::string actual = RenderPrometheus(registry);

  if (std::getenv("CV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to update " << GoldenPath();
    return;
  }
  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << "; run with CV_UPDATE_GOLDEN=1 to (re)generate";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(actual, ss.str())
      << "exposition drifted; rerun with CV_UPDATE_GOLDEN=1 if intended";
}

TEST(ExportTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  std::string text = RenderPrometheus(registry);
  // 0.0005 and 0.05 fall below le="0.1"; everything is below +Inf.
  EXPECT_NE(text.find("cv_job_latency_seconds_bucket{le=\"0.1\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cv_job_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cv_job_latency_seconds_count 3"), std::string::npos);
}

TEST(ExportTest, MetricsJsonContainsEveryFamily) {
  MetricsRegistry registry;
  FillGoldenRegistry(&registry);
  std::string json = RenderMetricsJson(registry);
  EXPECT_NE(json.find("\"cv_jobs_submitted_total\""), std::string::npos);
  EXPECT_NE(json.find("\"cv_jobs_active\""), std::string::npos);
  EXPECT_NE(json.find("\"cv_job_latency_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"execute\""), std::string::npos);
}

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Key("text").String("a\"b\\c\nd");
  w.Key("arr").BeginArray().Int(-1).Uint(2).Bool(true).Null().EndArray();
  w.Key("num").Double(0.25);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"text\":\"a\\\"b\\\\c\\nd\","
            "\"arr\":[-1,2,true,null],\"num\":0.25}");
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanTreeShapeAndTimesWithFakeClock) {
  FakeMonotonicClock clock(100.0);
  Tracer tracer(&clock);

  Span job = tracer.StartTrace("job");
  job.SetAttribute("job_id", uint64_t{7});
  clock.AdvanceSeconds(0.5);
  {
    Span opt = job.StartChild("optimize");
    clock.AdvanceSeconds(0.25);
    {
      Span reuse = opt.StartChild("reuse");
      reuse.SetAttribute("views_reused", int64_t{2});
      clock.AdvanceSeconds(0.125);
    }
  }
  clock.AdvanceSeconds(1.0);
  auto root = job.Finish();
  ASSERT_NE(root, nullptr);

  EXPECT_EQ(root->name, "job");
  EXPECT_DOUBLE_EQ(root->start_seconds, 100.0);
  EXPECT_DOUBLE_EQ(root->end_seconds, 101.875);
  ASSERT_EQ(root->attributes.size(), 1u);
  EXPECT_EQ(root->attributes[0].first, "job_id");
  EXPECT_EQ(root->attributes[0].second, "7");

  ASSERT_EQ(root->children.size(), 1u);
  const SpanRecord& opt = *root->children[0];
  EXPECT_EQ(opt.name, "optimize");
  EXPECT_DOUBLE_EQ(opt.start_seconds, 100.5);
  EXPECT_DOUBLE_EQ(opt.end_seconds, 100.875);
  ASSERT_EQ(opt.children.size(), 1u);
  EXPECT_EQ(opt.children[0]->name, "reuse");
  EXPECT_EQ(opt.children[0]->attributes[0].second, "2");

  const SpanRecord* found = root->Find("reuse");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->end_seconds - found->start_seconds, 0.125);
  EXPECT_EQ(root->Find("absent"), nullptr);

  // The tracer retains the identical tree.
  EXPECT_EQ(tracer.LatestTrace().get(), root.get());
}

TEST(TraceTest, InactiveSpanIsANoop) {
  Span inactive;
  EXPECT_FALSE(inactive.active());
  inactive.SetAttribute("k", "v");
  Span child = inactive.StartChild("child");
  EXPECT_FALSE(child.active());
  inactive.End();
  EXPECT_EQ(inactive.Finish(), nullptr);
}

TEST(TraceTest, RootEndClosesOpenDescendants) {
  FakeMonotonicClock clock;
  Tracer tracer(&clock);
  Span job = tracer.StartTrace("job");
  Span child = job.StartChild("execute");  // never explicitly ended
  clock.AdvanceSeconds(2.0);
  auto root = job.Finish();
  ASSERT_NE(root, nullptr);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_DOUBLE_EQ(root->children[0]->end_seconds, 2.0);
}

TEST(TraceTest, RetentionDropsOldestTraces) {
  Tracer tracer(nullptr, /*max_traces=*/2);
  for (int i = 0; i < 3; ++i) {
    Span s = tracer.StartTrace("t" + std::to_string(i));
    s.End();
  }
  auto traces = tracer.FinishedTraces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0]->name, "t1");
  EXPECT_EQ(traces[1]->name, "t2");
  EXPECT_EQ(tracer.dropped_traces(), 1u);
}

TEST(TraceTest, SpanToJsonRendersTree) {
  FakeMonotonicClock clock;
  Tracer tracer(&clock);
  Span job = tracer.StartTrace("job");
  { Span child = job.StartChild("record"); }
  auto root = job.Finish();
  JsonWriter w;
  SpanToJson(*root, &w);
  std::string json = w.Take();
  EXPECT_NE(json.find("\"name\":\"job\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"record\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// TimedMutexLock.
// ---------------------------------------------------------------------------

TEST(TimedLockTest, ObservesOneWaitPerAcquisition) {
  Mutex mu;
  Histogram wait;
  {
    TimedMutexLock lock(mu, &wait, MonotonicClock::Real());
  }
  {
    TimedMutexLock lock(mu, &wait, MonotonicClock::Real());
  }
  EXPECT_EQ(wait.count(), 2u);
  // Null histogram degrades to a plain MutexLock.
  { TimedMutexLock lock(mu, nullptr, nullptr); }
}

}  // namespace
}  // namespace obs
}  // namespace cloudviews
