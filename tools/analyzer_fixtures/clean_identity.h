// Fixture: a fully covered identity class — direct references, coverage
// through same-class delegation (operator== -> Compare), an out-of-line
// hash body, reasoned sig-skips for intentional omissions, and a defaulted
// equality operator covering everything. Must produce zero violations.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_CLEAN_IDENTITY_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_CLEAN_IDENTITY_H_

#include <memory>
#include <string>

namespace fixture {

class HashBuilder {
 public:
  void Add(const std::string& s) { (void)s; }
};

class CleanNode {
 public:
  void HashInto(HashBuilder* b) const;

  bool operator==(const CleanNode& o) const { return Compare(o) == 0; }

  std::shared_ptr<CleanNode> Clone() const {
    auto n = std::make_shared<CleanNode>();
    n->template_name_ = template_name_;
    n->stream_name_ = stream_name_;
    n->cached_display_ = cached_display_;
    return n;
  }

 private:
  int Compare(const CleanNode& o) const {
    if (template_name_ != o.template_name_) return 1;
    if (stream_name_ != o.stream_name_) return 1;
    return 0;
  }

  std::string template_name_;
  std::string stream_name_;
  // sig-skip(hash, equals): derived display cache, rebuilt on demand; it
  // never affects results
  std::string cached_display_;
};

inline void CleanNode::HashInto(HashBuilder* b) const {
  b->Add(template_name_);
  b->Add(stream_name_);
}

struct DefaultedPair {
  int lo = 0;
  int hi = 0;
  bool operator==(const DefaultedPair& o) const = default;
};

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_CLEAN_IDENTITY_H_
