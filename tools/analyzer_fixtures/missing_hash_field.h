// Fixture: `guid_` is omitted from HashInto, so two nodes differing only
// in guid collide to one signature. The analyzer must flag it.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASH_FIELD_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASH_FIELD_H_

#include <string>

namespace fixture {

class HashBuilder;

class BadHashNode {
 public:
  void HashInto(HashBuilder* b) const;

 private:
  std::string stream_name_;
  std::string guid_;
};

inline void BadHashNode::HashInto(HashBuilder* b) const {
  (void)b;
  (void)stream_name_;  // guid_ is never touched
}

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASH_FIELD_H_
