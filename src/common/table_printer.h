#ifndef CLOUDVIEWS_COMMON_TABLE_PRINTER_H_
#define CLOUDVIEWS_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cloudviews {

/// \brief Aligned text-table renderer used by the figure benches to print
/// the series a paper figure plots.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: formats each double with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_TABLE_PRINTER_H_
