#ifndef CLOUDVIEWS_NET_SERVER_H_
#define CLOUDVIEWS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "core/cloudviews.h"
#include "net/admission.h"
#include "net/net_config.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/submission_queue.h"

namespace cloudviews {
namespace net {

/// \brief The job-service network front door: a thread-per-connection TCP
/// server speaking the versioned frame protocol of wire.h.
///
/// Request flow for a submit:
///   read frame -> decode -> parse script against the server's catalog ->
///   AdmissionController::Acquire (drain gate, injected faults, per-conn
///   cap) -> SubmissionQueue::TryEnqueue (global bound) -> worker runs
///   CloudViews::Submit with the request's "net.request" span as parent ->
///   outcome recorded in the ticket table -> response framed back.
/// Any admission failure returns a typed kRetryAfter instead of queuing
/// unboundedly; any protocol failure returns kError or closes, never
/// crashes.
///
/// Stop() is a drain: the admission gate flips first (new submits shed
/// with kDraining), queued jobs finish, then sockets shut down and threads
/// join. In-flight work is never dropped.
class JobServiceServer {
 public:
  /// `cv` must outlive the server. The server shares the instance's
  /// metrics registry, tracer, and fault injector.
  JobServiceServer(CloudViews* cv, NetServerConfig config);
  ~JobServiceServer();

  JobServiceServer(const JobServiceServer&) = delete;
  JobServiceServer& operator=(const JobServiceServer&) = delete;

  /// Binds + listens + starts the accept loop; returns the bound port
  /// (useful with config.port == 0).
  Result<uint16_t> Start();

  /// Drain shutdown (see class comment). Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

  /// Point-in-time stats, same values the kServerStats request returns.
  ServerStatsResponse Stats() const;

 private:
  struct Connection {
    uint64_t id = 0;
    Socket sock;
    /// Serializes response frames: the connection thread (errors, polls)
    /// and queue workers (submit results) both write.
    Mutex write_mu;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Ticket-table entry; tickets are server-assigned and survive the
  /// submitting connection, so a client may poll from a new connection.
  struct JobRecord {
    WireJobState state = WireJobState::kQueued;
    JobOutcome outcome;
    WireTimings timings;
    uint8_t error_code = 0;
    std::string error_message;
    std::string profile_json;
  };

  void AcceptLoop();
  void ConnectionLoop(const std::shared_ptr<Connection>& conn);
  /// Handles one decoded frame; returns false when the connection must
  /// close (protocol violation or write failure).
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header, const std::string& payload);
  bool HandleSubmit(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  /// Runs on a queue worker: executes the job, records the outcome, sends
  /// the kSubmitResult when the client is waiting. Shared-ptr captures keep
  /// the connection, span, and admission token alive inside the copyable
  /// queue closure; the token releases when the closure is destroyed.
  void RunSubmission(const std::shared_ptr<Connection>& conn, uint64_t ticket,
                     const JobDefinition& def, bool enable_cloudviews,
                     bool wait, double admit_seconds,
                     const std::shared_ptr<obs::Span>& span,
                     AdmissionToken* token);

  bool SendResponse(Connection* conn, MsgType type,
                    const std::string& payload);
  bool SendError(Connection* conn, const Status& status);
  bool SendRetryAfter(Connection* conn, ShedReason reason);

  uint64_t NewTicket() { return next_ticket_.fetch_add(1); }
  void RecordQueued(uint64_t ticket);
  void RecordRunning(uint64_t ticket);
  void RecordDone(uint64_t ticket, const JobOutcome& outcome,
                  const WireTimings& timings, std::string profile_json);
  void RecordFailed(uint64_t ticket, const Status& status,
                    std::string profile_json);
  /// Holds job_mu_; evicts oldest finished records past the table bound.
  void EvictFinishedLocked() REQUIRES(job_mu_);

  void ReapFinishedConnections() EXCLUDES(conns_mu_);

  CloudViews* const cv_;
  const NetServerConfig config_;
  AdmissionController admission_;
  SubmissionQueue queue_;

  Socket listener_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> next_ticket_{1};

  mutable Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  mutable Mutex job_mu_;
  std::unordered_map<uint64_t, JobRecord> jobs_ GUARDED_BY(job_mu_);
  /// Finished tickets in completion order, for bounded-memory eviction.
  std::deque<uint64_t> finished_order_ GUARDED_BY(job_mu_);

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};

  // Observability (never null; CloudViews always owns a registry).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* conns_total_ = nullptr;
  obs::Counter* conns_rejected_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Gauge* conns_gauge_ = nullptr;
  obs::Histogram* request_seconds_ = nullptr;
};

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_SERVER_H_
