file(REMOVE_RECURSE
  "CMakeFiles/cv_workload.dir/production_workload.cc.o"
  "CMakeFiles/cv_workload.dir/production_workload.cc.o.d"
  "CMakeFiles/cv_workload.dir/synthetic.cc.o"
  "CMakeFiles/cv_workload.dir/synthetic.cc.o.d"
  "libcv_workload.a"
  "libcv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
