// Recurring-job fast-path tests: the signature-keyed plan cache (full and
// skeleton tiers), its catalog-epoch invalidation triggers (new-view
// registration, view expiry, build-lock handoff), the fault-matrix
// interaction (a cached plan whose view read fails still takes the
// views_fallback path and drops the entry), and the workload-repository
// ingest fixes (partially-wired instruments, O(n) inclusive-CPU
// attribution).
//
// The load-bearing assertions mirror the acceptance criteria: a warm-cache
// submission of a recurring template has NO `logical_rewrite` span in its
// job profile, and cache-on output is byte-identical to cache-off across
// all 99 TPC-DS queries.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cloudviews.h"
#include "core/explain.h"
#include "fault/fault_injector.h"
#include "runtime/plan_cache.h"
#include "signature/signature.h"
#include "tests/test_util.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

JobDefinition MakeJob(const std::string& id, PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

JobDefinition JobA(const std::string& date) {
  return MakeJob("jobA", PlanBuilder::From(SharedAggPlan(date))
                             .Sort({{"n", false}})
                             .Output("A_" + date)
                             .Build());
}

JobDefinition JobB(const std::string& date) {
  return MakeJob("jobB", PlanBuilder::From(SharedAggPlan(date))
                             .Filter(Gt(Col("n"), Lit(int64_t{0})))
                             .Output("B_" + date)
                             .Build());
}

/// Canonical row-sorted rendering of a stored stream for cross-instance
/// output comparison (same contract as crash_stress_test).
std::string Fingerprint(StorageManager* storage, const std::string& stream) {
  auto open = storage->OpenStream(stream);
  if (!open.ok()) return "<unreadable: " + open.status().ToString() + ">";
  Batch all = CombineBatches((*open)->schema, (*open)->batches);
  std::vector<SortKey> keys;
  for (const auto& f : (*open)->schema.fields()) {
    keys.push_back({f.name, /*ascending=*/true});
  }
  all = SortBatch(all, keys);
  std::string out;
  for (size_t r = 0; r < all.num_rows(); ++r) {
    for (const Value& v : all.GetRow(r)) out += v.ToString() + "|";
    out += "\n";
  }
  return out;
}

PlanNodePtr BoundSharedPlan(const std::string& date) {
  PlanNodePtr plan = SharedAggPlan(date);
  EXPECT_TRUE(plan->Bind().ok());
  return plan;
}

// ---------------------------------------------------------------------------
// PlanCache unit behaviour
// ---------------------------------------------------------------------------

class PlanCacheUnitTest : public ::testing::Test {
 protected:
  static PlanCache::Key KeyFor(const PlanNode& plan, bool cloudviews) {
    return PlanCache::Key{ComputeSignatures(plan).normalized, cloudviews};
  }

  static PlanCache::Entry EntryFor(const PlanNodePtr& plan, uint64_t epoch,
                                   bool with_rewritten) {
    PlanCache::Entry entry;
    entry.catalog_epoch = epoch;
    entry.precise = ComputeSignatures(*plan).precise;
    entry.skeleton = plan->Clone();
    if (with_rewritten) entry.rewritten = plan->Clone();
    return entry;
  }
};

TEST_F(PlanCacheUnitTest, MissThenInsertThenFullHit) {
  PlanCache cache(4);
  PlanNodePtr plan = BoundSharedPlan("2018-01-01");
  PlanCache::Key key = KeyFor(*plan, true);
  Hash128 precise = ComputeSignatures(*plan).precise;

  auto miss = cache.Lookup(key, /*epoch=*/7, precise);
  EXPECT_EQ(miss.entry, nullptr);
  EXPECT_FALSE(miss.rewritten_valid);

  cache.Insert(key, EntryFor(plan, /*epoch=*/7, /*with_rewritten=*/true));
  auto hit = cache.Lookup(key, 7, precise);
  ASSERT_NE(hit.entry, nullptr);
  EXPECT_TRUE(hit.rewritten_valid);
  ASSERT_NE(hit.entry->skeleton, nullptr);
  ASSERT_NE(hit.entry->rewritten, nullptr);

  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(PlanCacheUnitTest, EpochMismatchInvalidatesRewrittenKeepsSkeleton) {
  PlanCache cache(4);
  PlanNodePtr plan = BoundSharedPlan("2018-01-01");
  PlanCache::Key key = KeyFor(*plan, true);
  Hash128 precise = ComputeSignatures(*plan).precise;
  cache.Insert(key, EntryFor(plan, /*epoch=*/7, true));

  auto probe = cache.Lookup(key, /*epoch=*/8, precise);
  ASSERT_NE(probe.entry, nullptr);
  EXPECT_FALSE(probe.rewritten_valid);  // the catalog moved underneath it
  EXPECT_NE(probe.entry->skeleton, nullptr);  // template tier survives
  EXPECT_EQ(cache.stats().epoch_invalidations, 1u);
}

TEST_F(PlanCacheUnitTest, PreciseMismatchIsSkeletonTierOnly) {
  PlanCache cache(4);
  PlanNodePtr day1 = BoundSharedPlan("2018-01-01");
  PlanNodePtr day2 = BoundSharedPlan("2018-01-02");
  // Same template => same normalized signature, different precise.
  ASSERT_EQ(ComputeSignatures(*day1).normalized,
            ComputeSignatures(*day2).normalized);
  ASSERT_NE(ComputeSignatures(*day1).precise,
            ComputeSignatures(*day2).precise);

  PlanCache::Key key = KeyFor(*day1, true);
  cache.Insert(key, EntryFor(day1, 7, true));
  auto probe = cache.Lookup(key, 7, ComputeSignatures(*day2).precise);
  ASSERT_NE(probe.entry, nullptr);
  EXPECT_FALSE(probe.rewritten_valid);  // new data, not a full hit
  EXPECT_EQ(cache.stats().epoch_invalidations, 0u);
}

TEST_F(PlanCacheUnitTest, LruEvictsOldestAtCapacity) {
  PlanCache cache(2);
  PlanNodePtr a = BoundSharedPlan("2018-01-01");
  PlanNodePtr b = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                      .Sort({{"n", false}})
                      .Build();
  PlanNodePtr c = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                      .Filter(Gt(Col("n"), Lit(int64_t{0})))
                      .Build();
  ASSERT_TRUE(b->Bind().ok());
  ASSERT_TRUE(c->Bind().ok());
  cache.Insert(KeyFor(*a, true), EntryFor(a, 1, true));
  cache.Insert(KeyFor(*b, true), EntryFor(b, 1, true));
  // Touch `a` so `b` becomes the LRU victim.
  cache.Lookup(KeyFor(*a, true), 1, ComputeSignatures(*a).precise);
  cache.Insert(KeyFor(*c, true), EntryFor(c, 1, true));

  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.Lookup(KeyFor(*b, true), 1,
                         ComputeSignatures(*b).precise).entry,
            nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(*a, true), 1,
                         ComputeSignatures(*a).precise).entry,
            nullptr);
}

TEST_F(PlanCacheUnitTest, InvalidateDropsEntry) {
  PlanCache cache(4);
  PlanNodePtr plan = BoundSharedPlan("2018-01-01");
  PlanCache::Key key = KeyFor(*plan, true);
  cache.Insert(key, EntryFor(plan, 1, true));
  cache.Invalidate(key);
  EXPECT_EQ(cache.Lookup(key, 1, ComputeSignatures(*plan).precise).entry,
            nullptr);
  EXPECT_EQ(cache.stats().explicit_invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.Invalidate(key);  // absent: no-op, still counted once
  EXPECT_EQ(cache.stats().explicit_invalidations, 1u);
}

TEST_F(PlanCacheUnitTest, CloudviewsFlagSplitsKeys) {
  PlanCache cache(4);
  PlanNodePtr plan = BoundSharedPlan("2018-01-01");
  Hash128 precise = ComputeSignatures(*plan).precise;
  cache.Insert(KeyFor(*plan, true), EntryFor(plan, 1, true));
  EXPECT_EQ(cache.Lookup(KeyFor(*plan, false), 1, precise).entry, nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(*plan, true), 1, precise).entry, nullptr);
}

// ---------------------------------------------------------------------------
// Parameter-hole detection and skeleton rebinding
// ---------------------------------------------------------------------------

TEST(ParamHoleTest, NodeLocalTemplateHasNoExprLevelHoles) {
  PlanNodePtr plan = SharedAggPlan("2018-01-01");
  // Extract stream/guid are node-local holes, and the filter literal is a
  // plain int64 — positional rebinding is sound.
  EXPECT_FALSE(HasExprLevelParamHoles(*plan));
}

TEST(ParamHoleTest, DateLiteralIsAnExprLevelHole) {
  int64_t day = 0;
  ASSERT_TRUE(ParseDate("2018-01-01", &day));
  PlanNodePtr plan =
      PlanBuilder::From(SharedAggPlan("2018-01-01"))
          .Filter(Eq(Col("page"), Lit(Value::Date(day))))
          .Build();
  // Normalized signatures abstract date values, so the same template can
  // carry per-instance dates inside expressions the rewrites may move.
  EXPECT_TRUE(HasExprLevelParamHoles(*plan));
}

TEST(ParamHoleTest, BoundParameterIsAnExprLevelHole) {
  PlanNodePtr plan =
      PlanBuilder::From(SharedAggPlan("2018-01-01"))
          .Filter(Gt(Col("n"), Param("threshold", Value::Int64(3))))
          .Build();
  EXPECT_TRUE(HasExprLevelParamHoles(*plan));
}

TEST(ParamHoleTest, RebindUpdatesNodeLocalParamsAcrossInstances) {
  PlanNodePtr skeleton = JobA("2018-01-01").logical_plan;
  PlanNodePtr fresh = JobA("2018-01-02").logical_plan;
  ASSERT_TRUE(RebindSkeletonParams(skeleton.get(), fresh.get()));

  const PlanNode* n = skeleton.get();
  while (!n->children().empty()) n = n->children()[0].get();
  ASSERT_EQ(n->kind(), OpKind::kExtract);
  const auto* extract = static_cast<const ExtractNode*>(n);
  EXPECT_EQ(extract->stream_name(), "clicks_2018-01-02");
  EXPECT_EQ(extract->guid(), "guid-clicks_2018-01-02");
  const PlanNode* root = skeleton.get();
  ASSERT_EQ(root->kind(), OpKind::kOutput);
  EXPECT_EQ(static_cast<const OutputNode*>(root)->stream_name(),
            "A_2018-01-02");
}

TEST(ParamHoleTest, RebindRefusesMismatchedTemplates) {
  PlanNodePtr skeleton = JobA("2018-01-01").logical_plan;
  // No Output tail: one hole fewer than the skeleton — the pairing cannot
  // line up, and the skeleton must be left untouched.
  PlanNodePtr other = SharedAggPlan("2018-01-02");
  EXPECT_FALSE(RebindSkeletonParams(skeleton.get(), other.get()));
  const PlanNode* n = skeleton.get();
  while (!n->children().empty()) n = n->children()[0].get();
  EXPECT_EQ(static_cast<const ExtractNode*>(n)->stream_name(),
            "clicks_2018-01-01");
}

TEST(ParamHoleTest, RebindRefusesDifferentExtractTemplate) {
  PlanNodePtr skeleton = SharedAggPlan("2018-01-01");
  PlanNodePtr other =
      PlanBuilder::Extract("impressions_{date}", "impressions_2018-01-02",
                           "guid-impressions", testing_util::ClickSchema())
          .Filter(Gt(Col("latency"), Lit(int64_t{50})))
          .Aggregate({"page"},
                     {{AggFunc::kCount, nullptr, "n"},
                      {AggFunc::kSum, Col("latency"), "total_latency"}})
          .Build();
  EXPECT_FALSE(RebindSkeletonParams(skeleton.get(), other.get()));
}

// ---------------------------------------------------------------------------
// Job-service integration: tiers, spans, profile fields
// ---------------------------------------------------------------------------

class PlanCacheServiceTest : public ::testing::Test {
 protected:
  static CloudViewsConfig Config() {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 1;
    config.analyzer.selection.min_frequency = 2;
    return config;
  }

  /// Day-1 history for the shared aggregate + analysis load, so later
  /// submissions materialize and reuse views.
  static void SeedHistory(CloudViews* cv) {
    WriteClickStream(cv->storage(), "clicks_2018-01-01", 1500, 1,
                     "2018-01-01");
    ASSERT_TRUE(cv->Submit(JobA("2018-01-01"), false).ok());
    ASSERT_TRUE(cv->Submit(JobB("2018-01-01"), false).ok());
    cv->RunAnalyzerAndLoad();
    ASSERT_GE(cv->metadata()->NumAnnotations(), 1u);
  }
};

TEST_F(PlanCacheServiceTest, FullHitSkipsCompileEntirely) {
  CloudViews cv;
  WriteClickStream(cv.storage(), "clicks_2018-01-01", 1200, 1, "2018-01-01");

  auto cold = cv.Submit(JobA("2018-01-01"));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->plan_cache_hit);
  EXPECT_EQ(cold->catalog_epoch, 1u);
  ASSERT_NE(cold->trace, nullptr);
  EXPECT_NE(cold->trace->Find("logical_rewrite"), nullptr);
  EXPECT_EQ(cold->trace->Find("plan_cache"), nullptr);

  // Same template over the same data at the same catalog epoch: the entire
  // compile pipeline — metadata lookup included — is skipped.
  auto warm = cv.Submit(JobA("2018-01-01"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(warm->catalog_epoch, cold->catalog_epoch);
  ASSERT_NE(warm->trace, nullptr);
  EXPECT_NE(warm->trace->Find("plan_cache"), nullptr);
  EXPECT_EQ(warm->trace->Find("optimize"), nullptr);
  EXPECT_EQ(warm->trace->Find("logical_rewrite"), nullptr);
  EXPECT_EQ(warm->trace->Find("metadata_lookup"), nullptr);

  auto stats = cv.job_service()->plan_cache().stats();
  EXPECT_EQ(stats.hits_full, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // The profile JSON carries the new fields.
  std::string json = JobProfileJson(*warm);
  EXPECT_NE(json.find("\"plan_cache_hit\":true"), std::string::npos);
  EXPECT_NE(json.find("\"catalog_epoch\":1"), std::string::npos);

  // Cache-off reference instance: byte-identical output.
  CloudViews plain;
  WriteClickStream(plain.storage(), "clicks_2018-01-01", 1200, 1,
                   "2018-01-01");
  JobServiceOptions off;
  off.enable_cloudviews = true;
  off.enable_plan_cache = false;
  ASSERT_TRUE(plain.job_service()->SubmitJob(JobA("2018-01-01"), off).ok());
  EXPECT_EQ(Fingerprint(cv.storage(), "A_2018-01-01"),
            Fingerprint(plain.storage(), "A_2018-01-01"));
}

TEST_F(PlanCacheServiceTest, SkeletonHitRebindsNewDateWithoutLogicalRewrite) {
  CloudViews cv;
  CloudViews plain;
  for (CloudViews* instance : {&cv, &plain}) {
    WriteClickStream(instance->storage(), "clicks_2018-01-01", 1200, 1,
                     "2018-01-01");
    WriteClickStream(instance->storage(), "clicks_2018-01-02", 900, 2,
                     "2018-01-02");
  }
  ASSERT_TRUE(cv.Submit(JobA("2018-01-01")).ok());

  // New data for the same template: the skeleton tier rebinds the `{date}`
  // holes and re-runs physical planning only.
  auto warm = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  ASSERT_NE(warm->trace, nullptr);
  const obs::SpanRecord* optimize = warm->trace->Find("optimize");
  ASSERT_NE(optimize, nullptr);
  EXPECT_EQ(warm->trace->Find("logical_rewrite"), nullptr);
  bool tagged = false;
  for (const auto& [k, v] : optimize->attributes) {
    if (k == "plan_cache" && v == "skeleton") tagged = true;
  }
  EXPECT_TRUE(tagged);
  auto stats = cv.job_service()->plan_cache().stats();
  EXPECT_EQ(stats.hits_skeleton, 1u);

  JobServiceOptions off;
  off.enable_cloudviews = true;
  off.enable_plan_cache = false;
  for (const char* date : {"2018-01-01", "2018-01-02"}) {
    ASSERT_TRUE(plain.job_service()->SubmitJob(JobA(date), off).ok());
    EXPECT_EQ(Fingerprint(cv.storage(), std::string("A_") + date),
              Fingerprint(plain.storage(), std::string("A_") + date));
  }
}

TEST_F(PlanCacheServiceTest, CacheOffTakesTheLegacyPath) {
  CloudViews cv;
  WriteClickStream(cv.storage(), "clicks_2018-01-01", 800, 1, "2018-01-01");
  JobServiceOptions off;
  off.enable_cloudviews = true;
  off.enable_plan_cache = false;
  for (int i = 0; i < 2; ++i) {
    auto r = cv.job_service()->SubmitJob(JobA("2018-01-01"), off);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->plan_cache_hit);
    EXPECT_EQ(r->catalog_epoch, 0u);  // cache disabled: epoch never read
    ASSERT_NE(r->trace, nullptr);
    EXPECT_NE(r->trace->Find("logical_rewrite"), nullptr);
  }
  auto stats = cv.job_service()->plan_cache().stats();
  EXPECT_EQ(stats.misses + stats.hits_full + stats.hits_skeleton, 0u);
}

TEST_F(PlanCacheServiceTest, NewViewRegistrationInvalidatesFullHit) {
  CloudViews cv(Config());
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");

  // Occurrence 1: builds the view (side effects — rewritten tier not
  // cached). Occurrence 2: reuses it via the skeleton tier and caches the
  // rewritten plan. Occurrence 3: full hit over the live view.
  auto first = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->views_materialized, 1);
  auto second = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->views_reused, 1);
  auto third = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->views_reused, 1);
  EXPECT_TRUE(third->plan_cache_hit);
  auto before = cv.job_service()->plan_cache().stats();
  EXPECT_GE(before.hits_full, 1u);

  // Re-running the analyzer reloads the catalog => epoch bump => the
  // cached rewrite must not be served at the stale epoch.
  uint64_t epoch_before = cv.metadata()->CatalogEpoch();
  cv.RunAnalyzerAndLoad();
  EXPECT_GT(cv.metadata()->CatalogEpoch(), epoch_before);

  auto fourth = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(fourth.ok());
  auto after = cv.job_service()->plan_cache().stats();
  EXPECT_EQ(after.hits_full, before.hits_full);  // NOT served full
  EXPECT_GT(after.epoch_invalidations, before.epoch_invalidations);
  EXPECT_GT(after.hits_skeleton, before.hits_skeleton);
  EXPECT_EQ(fourth->views_reused, 1);  // replanned against the live catalog
}

TEST_F(PlanCacheServiceTest, BuildLockHandoffInvalidatesViaEpoch) {
  CloudViews cv(Config());
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());  // builds the view
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());  // caches the rewrite
  auto warm = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  auto before = cv.job_service()->plan_cache().stats();
  ASSERT_GE(before.hits_full, 1u);

  // A build lock changing hands (granted to a phantom builder, then handed
  // back) is a catalog state change: both transitions bump the epoch.
  Hash128 other_norm{0xAAu, 0xBBu};
  Hash128 other_precise{0xCCu, 0xDDu};
  uint64_t epoch0 = cv.metadata()->CatalogEpoch();
  ASSERT_TRUE(
      cv.metadata()->ProposeMaterialize(other_norm, other_precise, 9999, 10));
  uint64_t epoch1 = cv.metadata()->CatalogEpoch();
  EXPECT_GT(epoch1, epoch0);

  auto during = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(during.ok());
  auto mid = cv.job_service()->plan_cache().stats();
  EXPECT_EQ(mid.hits_full, before.hits_full);
  EXPECT_GT(mid.epoch_invalidations, before.epoch_invalidations);
  EXPECT_EQ(during->views_reused, 1);

  cv.metadata()->AbandonLock(other_precise, 9999);
  EXPECT_GT(cv.metadata()->CatalogEpoch(), epoch1);
  auto post = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(post.ok());
  EXPECT_GT(cv.job_service()->plan_cache().stats().epoch_invalidations,
            mid.epoch_invalidations);

  // With the catalog quiet again, the tier recovers to full hits.
  auto settled = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(settled.ok());
  EXPECT_GT(cv.job_service()->plan_cache().stats().hits_full,
            before.hits_full);
}

TEST_F(PlanCacheServiceTest, ClockDrivenViewExpiryDemotesFullHit) {
  CloudViews cv(Config());
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02"))->plan_cache_hit);
  auto before = cv.job_service()->plan_cache().stats();

  // The view's lineage lifetime elapses with NO epoch bump (nothing was
  // purged): the full-hit candidate must fail live-view validation and
  // demote — never serve a scan of an expired view.
  cv.clock()->AdvanceSeconds(30 * kSecondsPerDay);
  auto r = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok());
  auto after = cv.job_service()->plan_cache().stats();
  EXPECT_GT(after.demotions, before.demotions);
  EXPECT_EQ(after.hits_full, before.hits_full);
  EXPECT_EQ(r->views_reused, 0);  // the expired view was not read
}

TEST_F(PlanCacheServiceTest, PurgeExpiredBumpsEpochAndInvalidates) {
  CloudViews cv(Config());
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02"))->plan_cache_hit);
  auto before = cv.job_service()->plan_cache().stats();

  cv.clock()->AdvanceSeconds(30 * kSecondsPerDay);
  uint64_t epoch_before = cv.metadata()->CatalogEpoch();
  ASSERT_GE(cv.PurgeExpired(), 1u);
  EXPECT_GT(cv.metadata()->CatalogEpoch(), epoch_before);

  auto r = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok());
  auto after = cv.job_service()->plan_cache().stats();
  EXPECT_GT(after.epoch_invalidations, before.epoch_invalidations);
  EXPECT_EQ(after.hits_full, before.hits_full);
  // The annotation is still live, so the skeleton-tier replan rebuilds.
  EXPECT_EQ(r->views_materialized, 1);
}

TEST_F(PlanCacheServiceTest, CachedPlanWhoseViewReadFailsTakesFallback) {
  fault::FaultInjector injector(7);
  fault::RecordingSleeper sleeper;
  CloudViewsConfig config = Config();
  config.fault = &injector;
  config.sleeper = &sleeper;
  config.retry.max_attempts = 2;
  CloudViews cv(config);
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 1500, 2, "2018-01-02");
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02"))->plan_cache_hit);
  auto before = cv.job_service()->plan_cache().stats();

  // Every storage-level view read now fails. Metadata still lists the view,
  // so the full-hit validation passes — the failure surfaces mid-run and
  // must take the standard views_fallback degradation, then drop the entry.
  fault::FaultSpec spec;
  spec.probability = 1.0;
  injector.Arm(fault::points::kStorageViewRead, spec);
  auto r = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->views_fallback, 1);
  EXPECT_EQ(r->views_reused, 0);
  auto after = cv.job_service()->plan_cache().stats();
  EXPECT_GT(after.explicit_invalidations, before.explicit_invalidations);

  // Byte-identical to a fault-free no-reuse baseline.
  CloudViews baseline;
  WriteClickStream(baseline.storage(), "clicks_2018-01-02", 1500, 2,
                   "2018-01-02");
  ASSERT_TRUE(baseline.Submit(JobA("2018-01-02"), false).ok());
  EXPECT_EQ(Fingerprint(cv.storage(), "A_2018-01-02"),
            Fingerprint(baseline.storage(), "A_2018-01-02"));

  // The entry is gone: the next occurrence replans from scratch.
  injector.Disarm(fault::points::kStorageViewRead);
  auto replan = cv.Submit(JobA("2018-01-02"));
  ASSERT_TRUE(replan.ok());
  EXPECT_GT(cv.job_service()->plan_cache().stats().misses, before.misses);
}

TEST_F(PlanCacheServiceTest, ConcurrentWarmSubmissionsStayCorrect) {
  CloudViews cv;
  CloudViews plain;
  std::vector<JobDefinition> defs;
  for (int day = 1; day <= 6; ++day) {
    std::string date = "2018-02-0" + std::to_string(day);
    for (CloudViews* instance : {&cv, &plain}) {
      WriteClickStream(instance->storage(), "clicks_" + date, 700 + day * 13,
                       static_cast<uint64_t>(day), date);
    }
    defs.push_back(JobA(date));
  }
  // Warm the cache, then submit all instances concurrently twice: probes,
  // inserts, and LRU updates race; results must stay byte-identical.
  ASSERT_TRUE(cv.Submit(defs[0]).ok());
  for (int round = 0; round < 2; ++round) {
    for (auto& r : cv.job_service()->SubmitConcurrent(defs, {})) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  auto stats = cv.job_service()->plan_cache().stats();
  EXPECT_GT(stats.hits_full + stats.hits_skeleton, 0u);
  JobServiceOptions off;
  off.enable_plan_cache = false;
  for (int day = 1; day <= 6; ++day) {
    std::string date = "2018-02-0" + std::to_string(day);
    ASSERT_TRUE(plain.job_service()->SubmitJob(JobA(date), off).ok());
    EXPECT_EQ(Fingerprint(cv.storage(), "A_" + date),
              Fingerprint(plain.storage(), "A_" + date));
  }
}

// ---------------------------------------------------------------------------
// Acceptance: byte-identical output cache-on vs cache-off, all 99 queries
// ---------------------------------------------------------------------------

TEST(PlanCacheTpcdsTest, ByteIdenticalCacheOnVsOffAcrossAllQueries) {
  tpcds::TpcdsOptions small;
  small.store_sales_rows = 2000;
  small.web_sales_rows = 800;
  small.catalog_sales_rows = 1000;
  small.customers = 200;

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 10;
  config.analyzer.selection.min_frequency = 3;
  CloudViews cached(config);
  CloudViews uncached(config);
  tpcds::TpcdsGenerator gen(small);
  ASSERT_TRUE(gen.WriteTables(cached.storage()).ok());
  ASSERT_TRUE(gen.WriteTables(uncached.storage()).ok());

  // Round 1 (plain) builds recurring history; then both catalogs load the
  // same analysis; round 2 runs with reuse, twice per query, so the cached
  // instance serves both skeleton and full tiers.
  for (CloudViews* instance : {&cached, &uncached}) {
    for (int q = 1; q <= tpcds::kNumQueries; ++q) {
      ASSERT_TRUE(instance->Submit(tpcds::MakeQueryJob(q), false).ok())
          << "q" << q;
    }
    instance->RunAnalyzerAndLoad();
  }
  JobServiceOptions on;
  on.enable_cloudviews = true;
  on.enable_plan_cache = true;
  JobServiceOptions off = on;
  off.enable_plan_cache = false;
  auto uncached_before = uncached.job_service()->plan_cache().stats();
  for (int pass = 0; pass < 2; ++pass) {
    for (int q = 1; q <= tpcds::kNumQueries; ++q) {
      auto a = cached.job_service()->SubmitJob(tpcds::MakeQueryJob(q), on);
      ASSERT_TRUE(a.ok()) << "q" << q << ": " << a.status().ToString();
      auto b = uncached.job_service()->SubmitJob(tpcds::MakeQueryJob(q), off);
      ASSERT_TRUE(b.ok()) << "q" << q << ": " << b.status().ToString();
      EXPECT_FALSE(b->plan_cache_hit);
      std::string out = "tpcds_q" + std::to_string(q) + "_out";
      ASSERT_EQ(Fingerprint(cached.storage(), out),
                Fingerprint(uncached.storage(), out))
          << out << " diverged between cache-on and cache-off (pass "
          << pass << ")";
    }
  }
  auto stats = cached.job_service()->plan_cache().stats();
  EXPECT_GT(stats.hits_full, 0u);
  EXPECT_GT(stats.hits_skeleton, 0u);
  // The cache-off submissions never touched the cache (the round-1 history
  // runs used the default options, so the absolute counts are non-zero).
  auto uncached_after = uncached.job_service()->plan_cache().stats();
  EXPECT_EQ(uncached_after.misses, uncached_before.misses);
  EXPECT_EQ(uncached_after.hits_full + uncached_after.hits_skeleton,
            uncached_before.hits_full + uncached_before.hits_skeleton);
}

// ---------------------------------------------------------------------------
// Metadata hot path: epoch discipline and per-shard instrumentation
// ---------------------------------------------------------------------------

TEST(CatalogEpochTest, EveryCatalogTransitionBumpsTheEpoch) {
  CloudViews cv;
  uint64_t epoch = cv.metadata()->CatalogEpoch();
  EXPECT_GE(epoch, 1u);

  Hash128 norm{1, 2};
  Hash128 precise{3, 4};
  ASSERT_TRUE(cv.metadata()->ProposeMaterialize(norm, precise, 1, 10));
  uint64_t after_grant = cv.metadata()->CatalogEpoch();
  EXPECT_GT(after_grant, epoch);

  // A denied proposal changes nothing and must NOT bump.
  EXPECT_FALSE(cv.metadata()->ProposeMaterialize(norm, precise, 2, 10));
  EXPECT_EQ(cv.metadata()->CatalogEpoch(), after_grant);

  cv.metadata()->AbandonLock(precise, 1);
  uint64_t after_abandon = cv.metadata()->CatalogEpoch();
  EXPECT_GT(after_abandon, after_grant);
  // Abandoning an already-released lock is a no-op — no bump.
  cv.metadata()->AbandonLock(precise, 1);
  EXPECT_EQ(cv.metadata()->CatalogEpoch(), after_abandon);
}

TEST_F(PlanCacheServiceTest, PerShardLockWaitHistogramsAreExported) {
  // Shard locks are only taken on the view hot path (FindMaterialized /
  // ProposeMaterialize / ReportMaterialized), so run a materializing job.
  CloudViews cv(Config());
  SeedHistory(&cv);
  WriteClickStream(cv.storage(), "clicks_2018-01-02", 500, 2, "2018-01-02");
  ASSERT_TRUE(cv.Submit(JobA("2018-01-02")).ok());
  ASSERT_GE(cv.metadata()->NumRegisteredViews(), 1u);

  // The aggregate histogram keeps its legacy name (dashboards depend on
  // it); the per-shard series add contention visibility.
  size_t aggregate = cv.metrics()
                         ->GetHistogram("cv_metadata_lock_wait_seconds")
                         ->count();
  EXPECT_GE(aggregate, 1u);
  size_t per_shard_total = 0;
  for (size_t i = 0; i < MetadataService::kNumShards; ++i) {
    per_shard_total +=
        cv.metrics()
            ->GetHistogram("cv_metadata_shard_lock_wait_seconds",
                           {{"shard", std::to_string(i)}})
            ->count();
  }
  // Analysis-snapshot reads hit the aggregate without touching a shard, so
  // per-shard observations are a subset.
  EXPECT_LE(per_shard_total, aggregate);
  EXPECT_GE(per_shard_total, 1u);
}

// ---------------------------------------------------------------------------
// Workload-repository ingest fixes
// ---------------------------------------------------------------------------

class RepositoryIngestTest : public ::testing::Test {
 protected:
  /// Executes one TPC-DS query and returns its repository record — a real
  /// multi-join plan with per-operator runtime stats.
  static JobRecord ExecutedRecord() {
    CloudViews cv;
    tpcds::TpcdsOptions small;
    small.store_sales_rows = 2000;
    small.web_sales_rows = 800;
    small.catalog_sales_rows = 1000;
    small.customers = 200;
    EXPECT_TRUE(tpcds::TpcdsGenerator(small).WriteTables(cv.storage()).ok());
    auto r = cv.Submit(tpcds::MakeQueryJob(17), false);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(cv.repository()->NumJobs(), 1u);
    return *cv.repository()->Jobs()[0];
  }
};

TEST_F(RepositoryIngestTest, PartiallyWiredInstrumentsDoNotCrashOrSkip) {
  JobRecord record = ExecutedRecord();
  obs::MetricsRegistry registry;

  {
    // Regression: only the observation counter wired. The old code guarded
    // the gauge update behind THIS counter's null check and dereferenced
    // the null gauge.
    WorkloadRepository repo;
    WorkloadRepository::Instruments inst;
    inst.subgraphs_observed =
        registry.GetCounter("test_subgraphs_observed_total");
    repo.SetInstruments(inst);
    repo.AddJob(record);
    EXPECT_GT(inst.subgraphs_observed->value(), 0u);
    EXPECT_GT(repo.NumIndexedSubgraphs(), 0u);
  }
  {
    // Only the gauge wired: it must still be updated (independent checks),
    // not skipped because the counter is absent.
    WorkloadRepository repo;
    WorkloadRepository::Instruments inst;
    inst.indexed_subgraphs = registry.GetGauge("test_indexed_subgraphs");
    repo.SetInstruments(inst);
    repo.AddJob(record);
    EXPECT_EQ(inst.indexed_subgraphs->value(),
              static_cast<double>(repo.NumIndexedSubgraphs()));
  }
  {
    // Nothing wired at all.
    WorkloadRepository repo;
    repo.AddJob(record);
    EXPECT_GT(repo.NumIndexedSubgraphs(), 0u);
  }
}

TEST_F(RepositoryIngestTest, PrefixSumCpuMatchesPerSubtreeWalk) {
  JobRecord record = ExecutedRecord();
  ASSERT_NE(record.plan, nullptr);
  ASSERT_FALSE(record.run_stats.operators.empty());

  // Reference accumulation using the original per-subtree walk.
  struct Acc {
    double rows = 0, bytes = 0, latency = 0, cpu = 0;
    int64_t n = 0;
  };
  std::unordered_map<Hash128, Acc, Hash128Hasher> expected;
  const PlanRuntimeStats& stats = record.run_stats.operators;
  for (const auto& entry : EnumerateSubgraphs(record.plan)) {
    auto it = stats.find(entry.node->id());
    if (it == stats.end()) continue;
    Acc& acc = expected[entry.sigs.normalized];
    acc.rows += it->second.rows;
    acc.bytes += it->second.bytes;
    acc.latency += it->second.inclusive_seconds;
    acc.cpu += SubtreeCpuSeconds(*entry.node, stats);
    ++acc.n;
  }
  ASSERT_FALSE(expected.empty());

  WorkloadRepository repo;
  repo.AddJob(record);
  EXPECT_EQ(repo.NumIndexedSubgraphs(), expected.size());
  for (const auto& [sig, acc] : expected) {
    auto got = repo.Lookup(sig);
    ASSERT_TRUE(got.has_value());
    double n = static_cast<double>(acc.n);
    // The prefix sum reassociates the additions, so allow rounding noise.
    EXPECT_NEAR(got->cpu_seconds, acc.cpu / n,
                1e-9 * std::abs(acc.cpu / n) + 1e-15);
    EXPECT_DOUBLE_EQ(got->rows, acc.rows / n);
    EXPECT_DOUBLE_EQ(got->bytes, acc.bytes / n);
    EXPECT_DOUBLE_EQ(got->latency_seconds, acc.latency / n);
    EXPECT_EQ(got->observations, acc.n);
  }
}

}  // namespace
}  // namespace cloudviews
