#ifndef CLOUDVIEWS_OPTIMIZER_VIEW_MATCHER_H_
#define CLOUDVIEWS_OPTIMIZER_VIEW_MATCHER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/view_interfaces.h"
#include "plan/plan_node.h"
#include "signature/containment.h"

namespace cloudviews {

/// \brief The containment-match funnel: how many candidates each tier of
/// the staged matcher let through. Exported through metrics, explain, and
/// the job profile (docs/job_profile_schema.md).
struct MatchFunnel {
  /// Tier-1 survivors: candidates that passed the cheap feature filter and
  /// entered structural verification.
  int candidates_filtered = 0;
  /// Candidates whose containment was proven (structure + a live instance
  /// whose predicate contains the query's).
  int containment_verified = 0;
  /// Tier-1 survivors rejected during verification (structure mismatch, no
  /// live instance, predicate not contained, cost, or an unsafe
  /// compensation).
  int containment_rejected = 0;
  /// Verified matches actually applied as compensated view reads.
  int views_reused_subsumed = 0;
  /// Filter / Aggregate / Project compensation nodes added around the
  /// subsumed view reads.
  int compensation_nodes_added = 0;

  void AddTo(MatchFunnel* other) const {
    other->candidates_filtered += candidates_filtered;
    other->containment_verified += containment_verified;
    other->containment_rejected += containment_rejected;
    other->views_reused_subsumed += views_reused_subsumed;
    other->compensation_nodes_added += compensation_nodes_added;
  }
};

/// \brief Tiers 1-3 of the staged view-matching pipeline (tier 0 — the
/// exact normalized/precise hash probe — stays in ViewRewriter).
///
///   tier 1   feature filter: table-set-key bucket lookup, aggregate /
///            group-by compatibility, predicate-column feasibility
///   tier 2   structural verification against the annotation's definition
///            skeleton: core equality, projection / aggregate mapping
///   tier 2.5 instance resolution: a live materialized instance with the
///            same core precise signature whose predicate contains the
///            query's (interval containment + opaque-conjunct equality)
///   tier 3   compensation plan: residual Filter, re-aggregation over the
///            coarser group-by (SUM/COUNT/MIN/MAX; AVG as SUM/COUNT), and
///            a final Project reproducing the replaced subtree's schema
///
/// Byte-identity discipline (see DESIGN.md "Containment-based reuse"):
/// the core must match by *precise* hash, so the view scans exactly the
/// rows the query would have computed; row-wise compensation (Filter /
/// Project) preserves row order exactly; re-aggregation may reorder
/// groups, so aggregate compensation is only applied when an ancestor
/// Sort provably makes group order immaterial; SUM/AVG decomposition is
/// restricted to int64 arguments (float addition is not associative).
class CandidateMatcher {
 public:
  /// `annotations` / `catalog` / `cost_model` must outlive the matcher.
  /// `parent_span` (may be null) hosts the lazily-created
  /// `containment_verify` child span — it is only created when at least
  /// one candidate reaches tier 2, so exact-only jobs keep their span
  /// tree byte-identical to tier-0-only builds.
  CandidateMatcher(const std::unordered_map<Hash128, ViewAnnotation,
                                            Hash128Hasher>& annotations,
                   ViewCatalogInterface* catalog, const CostModel* cost_model,
                   obs::Span* parent_span);

  /// True when any annotation carries containment features; when false the
  /// rewriter skips the containment path entirely.
  bool has_candidates() const { return !buckets_.empty(); }

  /// Attempts a containment match for `node` (whose exact probe already
  /// missed). `ancestors` is the node's root-to-parent ancestor chain,
  /// used by the order-safety gate for aggregate compensation.
  /// `node_normalized` is the node's already-computed normalized hash.
  /// On success returns the bound compensation subtree (schema-identical
  /// to `node`); on failure returns null. `rejected_by_cost` is bumped for
  /// matches discarded by the cost model.
  PlanNodePtr TryContainment(const PlanNodePtr& node,
                             const Hash128& node_normalized,
                             const std::vector<const PlanNode*>& ancestors,
                             int* rejected_by_cost);

  const MatchFunnel& funnel() const { return funnel_; }

  /// Ends the containment_verify span (if one was opened), stamping the
  /// funnel counters as attributes. Called once after the reuse walk.
  void FinishSpan();

 private:
  struct ViewSide;  // per-candidate structural analysis (view_matcher.cc)

  PlanNodePtr TryCandidate(const PlanNodePtr& node, const ViewAnnotation& ann,
                           const std::vector<const PlanNode*>& ancestors,
                           const CapDecomposition& qcap,
                           const ViewFeatures& qf,
                           int* rejected_by_cost);

  std::unordered_map<Hash128, std::vector<const ViewAnnotation*>,
                     Hash128Hasher>
      buckets_;
  ViewCatalogInterface* catalog_;
  const CostModel* cost_model_;
  obs::Span* parent_span_;
  obs::Span verify_span_;  // inactive until the first tier-2 entry
  bool span_opened_ = false;
  MatchFunnel funnel_;
};

/// True when output row order at a node is provably immaterial: walking
/// the ancestor chain upward crosses only order-preserving row-wise ops
/// (Filter, Exchange, and Projects that pass every `cols` column through
/// by identity) until a Sort whose key set covers `cols`. Rows unique on
/// `cols` then have a total sort order, so any reordering below the Sort
/// cannot change bytes. Exposed for unit tests.
bool OrderImmaterialAbove(const std::vector<const PlanNode*>& ancestors,
                          const std::vector<std::string>& cols);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_VIEW_MATCHER_H_
