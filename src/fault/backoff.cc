#include "fault/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cloudviews {
namespace fault {

namespace {

class RealSleeper : public Sleeper {
 public:
  void Sleep(double seconds) override {
    if (seconds <= 0) return;
    // The one sanctioned direct sleep in the repo: every retry loop goes
    // through this injectable seam (repo_lint "banned-sleep" exempts only
    // this file), so tests substitute a RecordingSleeper and never wait.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace

Sleeper* Sleeper::Real() {
  static RealSleeper* real = new RealSleeper();  // NOLINT(naked-new): leaked singleton, immortal by design
  return real;
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const std::function<Status()>& fn, Sleeper* sleeper,
                        int* retries) {
  if (sleeper == nullptr) sleeper = Sleeper::Real();
  const int attempts = std::max(1, policy.max_attempts);
  double backoff = policy.initial_backoff_seconds;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      sleeper->Sleep(std::min(backoff, policy.max_backoff_seconds));
      backoff *= policy.backoff_multiplier;
      if (retries != nullptr) ++*retries;
    }
    last = fn();
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace fault
}  // namespace cloudviews
