// Quickstart: the end-to-end CloudViews loop in ~80 lines.
//
// Two teams run recurring scripts that share a computation (filter +
// aggregate over the day's clicks). Day 1 runs plain and populates the
// workload repository; the analyzer then mines the overlap; on day 2 the
// first job materializes the shared view and the second reuses it —
// with zero changes to either script.
#include <cstdio>

#include "common/guid.h"
#include "common/random.h"
#include "core/cloudviews.h"
#include "parser/parser.h"

using namespace cloudviews;

namespace {

// Team A's script: slow-page report.
const char* kScriptA = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, AVG(latency) AS avg_latency
         FROM clicks WHERE latency > 200 GROUP BY page;
OUTPUT slow TO "slow_pages_{date}";
)";

// Team B's script: same cooking step, different tail.
const char* kScriptB = R"(
clicks = EXTRACT user:int, page:string, latency:int, when:date
         FROM "clicks_{date}";
slow   = SELECT page, COUNT(*) AS n, AVG(latency) AS avg_latency
         FROM clicks WHERE latency > 200 GROUP BY page;
top    = SELECT page, n, avg_latency FROM slow ORDER BY n DESC TOP 3;
OUTPUT top TO "top_slow_pages_{date}";
)";

void WriteClicks(CloudViews* cv, const std::string& date, uint64_t seed) {
  Schema schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
  static const char* kPages[] = {"/home", "/search", "/cart", "/checkout"};
  Rng rng(seed);
  int64_t day = 0;
  ParseDate(date, &day);
  Batch batch(schema);
  for (int i = 0; i < 5000; ++i) {
    (void)batch.AppendRow(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(1000))),
         Value::String(kPages[rng.Uniform(4)]),
         Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
         Value::Date(day)});
  }
  (void)cv->storage()->WriteStream(MakeStreamData(
      "clicks_" + date, GenerateGuid(), schema, {batch},
      cv->clock()->Now()));
}

JobDefinition MakeJob(CloudViews* cv, const char* script,
                      const std::string& team, const std::string& date) {
  ScopeScriptParser parser;
  ParamMap params;
  params["date"] = DateParam(date);
  StorageManager* storage = cv->storage();
  auto plan = parser.Parse(script, params, [storage](const std::string& s) {
    auto handle = storage->OpenStream(s);
    return handle.ok() ? (*handle)->guid : std::string();
  });
  if (!plan.ok()) {
    std::fprintf(stderr, "parse error: %s\n", plan.status().ToString().c_str());
    std::exit(1);
  }
  JobDefinition def;
  def.template_id = team;
  def.vc = "vc-" + team;
  def.user = team;
  def.logical_plan = *plan;
  return def;
}

void Report(const char* label, const Result<JobResult>& r) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("  %-22s latency %6.2fms  views built %d, reused %d\n", label,
              r->run_stats.latency_seconds * 1000, r->views_materialized,
              r->views_reused);
}

}  // namespace

int main() {
  CloudViews cv;

  std::printf("day 1: plain runs build workload history\n");
  WriteClicks(&cv, "2018-01-01", 1);
  Report("team-a (2018-01-01)",
         cv.Submit(MakeJob(&cv, kScriptA, "team-a", "2018-01-01")));
  Report("team-b (2018-01-01)",
         cv.Submit(MakeJob(&cv, kScriptB, "team-b", "2018-01-01")));

  std::printf("\nanalyzer: mining the repository\n");
  auto analysis = cv.RunAnalyzerAndLoad();
  std::printf("  %zu jobs analyzed, %zu subgraphs mined, %zu view(s) "
              "selected\n",
              analysis.jobs_analyzed, analysis.subgraphs_mined,
              analysis.annotations.size());
  for (const auto& comp : analysis.annotations) {
    std::printf("  view %s  freq=%lld  avg runtime %.2fms  design %s\n",
                comp.annotation.normalized_signature.ToHex()
                    .substr(0, 12)
                    .c_str(),
                static_cast<long long>(comp.annotation.frequency),
                comp.annotation.avg_runtime_seconds * 1000,
                comp.annotation.design.ToString().c_str());
  }

  std::printf("\nday 2: new data, unchanged scripts\n");
  WriteClicks(&cv, "2018-01-02", 2);
  Report("team-a (2018-01-02)",
         cv.Submit(MakeJob(&cv, kScriptA, "team-a", "2018-01-02")));
  Report("team-b (2018-01-02)",
         cv.Submit(MakeJob(&cv, kScriptB, "team-b", "2018-01-02")));

  std::printf("\nmaterialized views on the cluster:\n");
  for (const auto& view : cv.metadata()->ListViews()) {
    std::printf("  %s  (%.0f rows, built by job %llu)\n", view.path.c_str(),
                view.rows, static_cast<unsigned long long>(
                               view.producer_job_id));
  }
  std::printf("\nteam-b's day-2 output (reused the view):\n");
  auto out = cv.storage()->OpenStream("top_slow_pages_2018-01-02");
  if (out.ok()) {
    Batch b = CombineBatches((*out)->schema, (*out)->batches);
    std::printf("%s", b.ToString().c_str());
  }
  return 0;
}
