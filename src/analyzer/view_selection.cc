#include "analyzer/view_selection.h"

#include <algorithm>
#include <map>

namespace cloudviews {

namespace {

void SortByUtilityDesc(std::vector<const SubgraphAggregate*>* v) {
  std::sort(v->begin(), v->end(),
            [](const SubgraphAggregate* a, const SubgraphAggregate* b) {
              if (a->TotalUtility() != b->TotalUtility()) {
                return a->TotalUtility() > b->TotalUtility();
              }
              return a->normalized < b->normalized;  // deterministic ties
            });
}

double Density(const SubgraphAggregate& agg) {
  return agg.TotalUtility() / std::max(1.0, agg.AvgBytes());
}

}  // namespace

std::vector<const SubgraphAggregate*> ViewSelector::Filter(
    const std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>&
        aggregates) const {
  std::vector<const SubgraphAggregate*> out;
  // order-insensitive: every selection policy re-sorts the candidates
  // with a deterministic tie-break (utility/density, then normalized
  // signature) before any result is taken from the vector.
  for (const auto& [sig, agg] : aggregates) {
    if (agg.frequency < config_.min_frequency) continue;
    if (agg.AvgLatency() < config_.min_runtime_seconds) continue;
    if (agg.ViewToQueryCostRatio() < config_.min_cost_fraction_of_job) {
      continue;
    }
    if (config_.exclude_extract_roots &&
        agg.root_kind == OpKind::kExtract) {
      continue;
    }
    // An Output-rooted subgraph is the whole job; the view candidate is
    // the computation beneath it (entirely-duplicate jobs are surfaced to
    // their owners instead, Sec 8 "Discarding redundant jobs").
    if (agg.root_kind == OpKind::kOutput) continue;
    out.push_back(&agg);
  }
  return out;
}

void ViewSelector::ApplyPerJobCap(
    std::vector<const SubgraphAggregate*>* selected) const {
  if (config_.max_per_job <= 0) return;
  std::map<uint64_t, int> per_job;
  std::vector<const SubgraphAggregate*> kept;
  for (const SubgraphAggregate* agg : *selected) {
    bool ok = true;
    for (uint64_t job : agg->jobs) {
      if (per_job[job] >= config_.max_per_job) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (uint64_t job : agg->jobs) ++per_job[job];
    kept.push_back(agg);
  }
  *selected = std::move(kept);
}

std::vector<const SubgraphAggregate*> ViewSelector::PackGreedy(
    std::vector<const SubgraphAggregate*> candidates) const {
  std::sort(candidates.begin(), candidates.end(),
            [](const SubgraphAggregate* a, const SubgraphAggregate* b) {
              if (Density(*a) != Density(*b)) {
                return Density(*a) > Density(*b);
              }
              return a->normalized < b->normalized;
            });
  std::vector<const SubgraphAggregate*> out;
  double used = 0;
  for (const SubgraphAggregate* agg : candidates) {
    if (used + agg->AvgBytes() > config_.storage_budget_bytes) continue;
    used += agg->AvgBytes();
    out.push_back(agg);
  }
  SortByUtilityDesc(&out);
  return out;
}

std::vector<const SubgraphAggregate*> ViewSelector::PackKnapsack(
    std::vector<const SubgraphAggregate*> candidates) const {
  const double gran = std::max(1.0, config_.knapsack_granularity_bytes);
  size_t capacity =
      static_cast<size_t>(config_.storage_budget_bytes / gran);
  // Guard against a blow-up; the greedy result is a fine fallback.
  if (capacity == 0 || capacity > 2'000'000 || candidates.size() > 4096) {
    return PackGreedy(std::move(candidates));
  }
  size_t n = candidates.size();
  std::vector<size_t> weight(n);
  for (size_t i = 0; i < n; ++i) {
    weight[i] = static_cast<size_t>(candidates[i]->AvgBytes() / gran) + 1;
  }
  // dp[w] = best value using items so far with weight exactly <= w.
  std::vector<double> dp(capacity + 1, 0);
  std::vector<std::vector<bool>> take(n,
                                      std::vector<bool>(capacity + 1, false));
  for (size_t i = 0; i < n; ++i) {
    double value = candidates[i]->TotalUtility();
    for (size_t w = capacity + 1; w-- > weight[i];) {
      double with = dp[w - weight[i]] + value;
      if (with > dp[w]) {
        dp[w] = with;
        take[i][w] = true;
      }
    }
  }
  std::vector<const SubgraphAggregate*> out;
  size_t w = capacity;
  for (size_t i = n; i-- > 0;) {
    if (take[i][w]) {
      out.push_back(candidates[i]);
      w -= weight[i];
    }
  }
  SortByUtilityDesc(&out);
  return out;
}

std::vector<const SubgraphAggregate*> ViewSelector::Select(
    const std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>&
        aggregates) const {
  std::vector<const SubgraphAggregate*> candidates = Filter(aggregates);

  switch (config_.policy) {
    case SelectionConfig::Policy::kTopKUtility: {
      SortByUtilityDesc(&candidates);
      ApplyPerJobCap(&candidates);
      if (candidates.size() > static_cast<size_t>(config_.top_k)) {
        candidates.resize(static_cast<size_t>(config_.top_k));
      }
      return candidates;
    }
    case SelectionConfig::Policy::kTopKUtilityPerByte: {
      std::sort(candidates.begin(), candidates.end(),
                [](const SubgraphAggregate* a, const SubgraphAggregate* b) {
                  if (Density(*a) != Density(*b)) {
                    return Density(*a) > Density(*b);
                  }
                  return a->normalized < b->normalized;
                });
      ApplyPerJobCap(&candidates);
      if (candidates.size() > static_cast<size_t>(config_.top_k)) {
        candidates.resize(static_cast<size_t>(config_.top_k));
      }
      return candidates;
    }
    case SelectionConfig::Policy::kPackGreedy: {
      ApplyPerJobCap(&candidates);
      return PackGreedy(std::move(candidates));
    }
    case SelectionConfig::Policy::kPackKnapsack: {
      ApplyPerJobCap(&candidates);
      return PackKnapsack(std::move(candidates));
    }
  }
  return candidates;
}

std::vector<const SubgraphAggregate*> ViewSelector::SelectForEviction(
    const std::vector<const SubgraphAggregate*>& selected,
    double bytes_to_reclaim) {
  std::vector<const SubgraphAggregate*> by_utility = selected;
  std::sort(by_utility.begin(), by_utility.end(),
            [](const SubgraphAggregate* a, const SubgraphAggregate* b) {
              if (a->TotalUtility() != b->TotalUtility()) {
                return a->TotalUtility() < b->TotalUtility();  // min first
              }
              return a->normalized < b->normalized;
            });
  std::vector<const SubgraphAggregate*> out;
  double reclaimed = 0;
  for (const SubgraphAggregate* agg : by_utility) {
    if (reclaimed >= bytes_to_reclaim) break;
    reclaimed += agg->AvgBytes();
    out.push_back(agg);
  }
  return out;
}

}  // namespace cloudviews
