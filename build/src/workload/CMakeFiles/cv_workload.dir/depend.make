# Empty dependencies file for cv_workload.
# This may be replaced when dependencies are built.
