#include "workload/synthetic.h"

#include <algorithm>

#include "common/string_util.h"
#include "plan/plan_builder.h"

namespace cloudviews {

namespace {

Schema LogSchema() {
  return Schema({{"uid", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

Schema EventSchema() {
  return Schema({{"eid", DataType::kInt64},
                 {"kind", DataType::kString},
                 {"value", DataType::kDouble},
                 {"ts", DataType::kDate}});
}

bool IsLogDataset(int dataset) { return dataset % 2 == 0; }

std::string DatasetTemplate(int dataset) {
  return StrFormat("in%d_{date}", dataset);
}

std::string DatasetStream(int dataset, const std::string& date) {
  return StrFormat("in%d_%s", dataset, date.c_str());
}

PlanBuilder ExtractDataset(int dataset, const std::string& date) {
  std::string stream = DatasetStream(dataset, date);
  return PlanBuilder::Extract(DatasetTemplate(dataset), stream,
                              "guid-" + stream,
                              IsLogDataset(dataset) ? LogSchema()
                                                    : EventSchema());
}

/// Recurring date predicate shared by all fragments: normalizes away, but
/// pins the precise signature to the instance.
ExprPtr DatePredicate(int dataset, const std::string& date) {
  const char* col = IsLogDataset(dataset) ? "when" : "ts";
  return Ge(Col(col), Param("date", Value::DateFromString(date)));
}

}  // namespace

ClusterProfile Fig1ClusterProfile(int cluster_index) {
  ClusterProfile p;
  p.name = StrFormat("cluster%d", cluster_index + 1);
  p.seed = 1000 + static_cast<uint64_t>(cluster_index);
  p.uniform_sharing = true;
  switch (cluster_index) {
    case 0:
      p.num_templates = 220;
      p.num_users = 90;
      p.p_share = 0.88;
      p.num_shared_fragments = 36;
      break;
    case 1:
      p.num_templates = 180;
      p.num_users = 75;
      p.p_share = 0.80;
      p.num_shared_fragments = 40;
      break;
    case 2:  // the low-overlap outlier of Fig 1
      p.num_templates = 120;
      p.num_users = 40;
      p.p_share = 0.42;
      p.num_shared_fragments = 50;
      break;
    case 3:
      p.num_templates = 200;
      p.num_users = 80;
      p.p_share = 0.75;
      p.num_shared_fragments = 44;
      break;
    default:
      p.num_templates = 240;
      p.num_users = 95;
      p.p_share = 0.82;
      p.num_shared_fragments = 38;
      break;
  }
  return p;
}

ClusterProfile LargestClusterProfile() {
  ClusterProfile p;
  p.name = "largest";
  p.num_vcs = 160;
  p.num_users = 300;
  p.num_templates = 1100;
  p.num_shared_fragments = 500;
  p.p_share = 0.55;
  p.sharing_theta = 0.2;
  p.isolated_vc_fraction = 0.12;
  p.num_input_datasets = 40;
  p.rows_per_input = 200;
  p.seed = 7;
  return p;
}

ClusterProfile BusinessUnitProfile() {
  ClusterProfile p;
  p.name = "bu-large";
  p.num_vcs = 24;
  p.num_users = 80;
  p.num_templates = 500;
  p.num_shared_fragments = 90;
  p.p_share = 0.7;
  p.sharing_theta = 0.9;
  p.num_input_datasets = 120;
  p.rows_per_input = 300;
  p.seed = 17;
  return p;
}

SyntheticWorkloadGenerator::SyntheticWorkloadGenerator(ClusterProfile profile)
    : profile_(profile) {
  Rng rng(profile_.seed);
  ZipfGenerator zipf(static_cast<size_t>(profile_.num_shared_fragments),
                     profile_.sharing_theta);
  // Per-VC sharing propensity: some VCs are fully isolated, the rest vary
  // widely around the cluster average (Sec 2.1: overlap is cluster-wide
  // but not uniform).
  std::vector<double> vc_share(static_cast<size_t>(profile_.num_vcs));
  for (auto& p : vc_share) {
    if (profile_.uniform_sharing) {
      p = profile_.p_share;
    } else if (rng.Bernoulli(profile_.isolated_vc_fraction)) {
      p = 0.0;
    } else {
      p = std::min(0.97, (0.3 + 1.4 * rng.NextDouble()) * profile_.p_share);
    }
  }
  // VC sizes are themselves skewed: busy VCs submit many more jobs.
  ZipfGenerator vc_zipf(static_cast<size_t>(profile_.num_vcs), 0.5);
  templates_.reserve(static_cast<size_t>(profile_.num_templates));
  for (int t = 0; t < profile_.num_templates; ++t) {
    TemplateSpec spec;
    spec.vc = static_cast<int>(vc_zipf.Sample(&rng));
    if (rng.Bernoulli(vc_share[static_cast<size_t>(spec.vc)])) {
      // A handful of "hot" cooking fragments account for the extreme
      // overlap-frequency tail (Fig 2b tops out above 100 in the paper).
      spec.fragment_id = rng.Bernoulli(0.06)
                             ? static_cast<int>(rng.Uniform(2))
                             : static_cast<int>(zipf.Sample(&rng));
    } else {
      // A private fragment nobody else uses; ids continue past the shared
      // pool so its plan constants are unique.
      spec.fragment_id = profile_.num_shared_fragments + t;
    }
    spec.tail_kind = static_cast<int>(rng.Uniform(6));
    spec.user = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(profile_.num_users)));
    double which = rng.NextDouble();
    spec.period = which < 0.15 ? kSecondsPerHour
                               : (which < 0.95 ? kSecondsPerDay
                                               : kSecondsPerWeek);
    templates_.push_back(spec);
  }
}

void SyntheticWorkloadGenerator::WriteInputs(StorageManager* storage,
                                             const std::string& date) const {
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/list",
                                 "/detail", "/pay"};
  static const char* kKinds[] = {"click", "view", "purchase", "error"};
  for (int ds = 0; ds < profile_.num_input_datasets; ++ds) {
    // New data every instance: the seed mixes the date.
    Rng rng(profile_.seed * 31 + static_cast<uint64_t>(ds) * 7 +
            Fnv1a64(date.data(), date.size()));
    std::string name = DatasetStream(ds, date);
    if (IsLogDataset(ds)) {
      Batch b(LogSchema());
      for (size_t r = 0; r < profile_.rows_per_input; ++r) {
        (void)b.AppendRow({Value::Int64(static_cast<int64_t>(
                               rng.Uniform(500))),
                           Value::String(kPages[rng.Uniform(6)]),
                           Value::Int64(static_cast<int64_t>(
                               rng.Uniform(1000))),
                           Value::Date(day)});
      }
      (void)storage->WriteStream(MakeStreamData(
          name, "guid-" + name, LogSchema(), {b}, storage->clock()->Now()));
    } else {
      Batch b(EventSchema());
      for (size_t r = 0; r < profile_.rows_per_input; ++r) {
        (void)b.AppendRow({Value::Int64(static_cast<int64_t>(
                               rng.Uniform(500))),
                           Value::String(kKinds[rng.Uniform(4)]),
                           Value::Double(rng.NextDouble() * 100.0),
                           Value::Date(day)});
      }
      (void)storage->WriteStream(MakeStreamData(name, "guid-" + name,
                                                EventSchema(), {b},
                                                storage->clock()->Now()));
    }
  }
}

PlanNodePtr SyntheticWorkloadGenerator::BuildFragment(
    int fragment_id, const std::string& date) const {
  int ds = fragment_id % profile_.num_input_datasets;
  int64_t c = 10 + (static_cast<int64_t>(fragment_id) * 37) % 700;
  int shape = fragment_id % 5;
  bool logs = IsLogDataset(ds);
  const char* num_col = logs ? "latency" : "eid";
  const char* str_col = logs ? "page" : "kind";
  const char* num2_col = logs ? "uid" : "eid";

  switch (shape) {
    case 0: {
      // Filtered group-by aggregate (the canonical shared cooking step).
      std::vector<AggregateSpec> aggs;
      aggs.push_back({AggFunc::kCount, nullptr, "n"});
      if (logs) {
        aggs.push_back({AggFunc::kSum, Col("latency"), "total"});
      } else {
        aggs.push_back({AggFunc::kAvg, Col("value"), "avg_value"});
      }
      return ExtractDataset(ds, date)
          .Filter(And(Gt(Col(num_col), Lit(c)), DatePredicate(ds, date)))
          .Aggregate({str_col}, std::move(aggs))
          .Sort({{str_col, true}})
          .Build();
    }
    case 1: {
      // Filter + derived-column projection (ComputeScalar style).
      return ExtractDataset(ds, date)
          .Filter(And(Lt(Col(num_col), Lit(c + 400)),
                      DatePredicate(ds, date)))
          .Project({{Col(str_col), "key"},
                    {Add(Col(num2_col), Lit(c)), "score"}})
          .Exchange(Partitioning::Hash({"key"}, 8))
          .Sort({{"score", false}})
          .Build();
    }
    case 2: {
      // Filter (fragment-specific) feeding a user-defined processor; the
      // constant keeps private fragments from sharing a prep prefix.
      Schema schema = logs ? LogSchema() : EventSchema();
      return ExtractDataset(ds, date)
          .Filter(And(Gt(Col(num_col), Lit(c / 2)),
                      DatePredicate(ds, date)))
          .Process("cleanse", "datacooking", "3.2", schema)
          .Exchange(Partitioning::Hash({num2_col}, 8))
          .Sort({{num_col, true}})
          .Build();
    }
    case 3: {
      // Two-input join (producer/consumer pattern across datasets).
      int other = (ds + 1) % profile_.num_input_datasets;
      if (IsLogDataset(other) == logs) {
        other = (ds + 2) % profile_.num_input_datasets;
      }
      auto left = ExtractDataset(ds, date)
                      .Filter(And(Ge(Col(num_col), Lit(c % 50)),
                                  DatePredicate(ds, date)));
      const char* other_num = IsLogDataset(other) ? "latency" : "eid";
      auto right = ExtractDataset(other, date)
                       .Filter(And(Lt(Col(other_num), Lit(c + 650)),
                                   DatePredicate(other, date)));
      const char* lkey = logs ? "uid" : "eid";
      const char* rkey = IsLogDataset(other) ? "uid" : "eid";
      return std::move(left)
          .Join(std::move(right), JoinType::kInner, {{lkey, rkey}})
          .Exchange(Partitioning::Hash({lkey}, 8))
          .Sort({{lkey, true}})
          .Build();
    }
    default: {
      // Filter + sort (explicit shuffle/sort-heavy cooking output).
      return ExtractDataset(ds, date)
          .Filter(And(Ge(Col(num_col), Lit(c % 100)),
                      DatePredicate(ds, date)))
          .Sort({{str_col, true}, {num_col, false}})
          .Build();
    }
  }
}

PlanNodePtr SyntheticWorkloadGenerator::BuildTail(const TemplateSpec& spec,
                                                  int template_id,
                                                  PlanNodePtr input,
                                                  const std::string& date)
    const {
  // Bind a clone to learn the fragment's output schema; the returned tail
  // reuses the original (unbound) input.
  PlanNodePtr probe = input->Clone();
  if (!probe->Bind().ok()) return nullptr;
  const Schema& schema = probe->output_schema();
  int first_num = -1, first_str = -1;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    DataType t = schema.field(i).type;
    if (first_num < 0 &&
        (t == DataType::kInt64 || t == DataType::kDouble)) {
      first_num = static_cast<int>(i);
    }
    if (first_str < 0 && t == DataType::kString) {
      first_str = static_cast<int>(i);
    }
  }
  std::string out_name =
      StrFormat("out_t%d_%s", template_id, date.c_str());

  switch (spec.tail_kind) {
    case 0:
      // Bare output: templates sharing fragment + tail 0 are entirely
      // duplicate jobs ("Discarding redundant jobs", Sec 8).
      return PlanBuilder::From(input).Output(out_name).Build();
    case 1: {
      if (first_num < 0) {
        return PlanBuilder::From(input).Output(out_name).Build();
      }
      return PlanBuilder::From(input)
          .Sort({{schema.field(static_cast<size_t>(first_num)).name, false}})
          .Top(10 + template_id % 20)
          .Output(out_name)
          .Build();
    }
    case 2: {
      if (first_num < 0) {
        return PlanBuilder::From(input).Output(out_name).Build();
      }
      const std::string& col =
          schema.field(static_cast<size_t>(first_num)).name;
      return PlanBuilder::From(input)
          .Filter(Gt(Col(col), Lit(static_cast<int64_t>(template_id % 50))))
          .Output(out_name)
          .Build();
    }
    case 3: {
      std::vector<NamedExpr> exprs;
      for (const auto& f : schema.fields()) exprs.push_back({Col(f.name), f.name});
      if (first_num >= 0) {
        exprs.push_back(
            {Mul(Col(schema.field(static_cast<size_t>(first_num)).name),
                 Lit(static_cast<int64_t>(1 + template_id % 7))),
             "derived"});
      }
      return PlanBuilder::From(input)
          .Project(std::move(exprs))
          .Output(out_name)
          .Build();
    }
    default: {
      // Heavy private post-processing: join the fragment output with
      // another dataset and aggregate. This keeps the shared fragment a
      // *fraction* of the job (the view-to-query ratios of Fig 5d).
      int join_col = first_str >= 0 ? first_str : first_num;
      if (join_col < 0) {
        return PlanBuilder::From(input).Output(out_name).Build();
      }
      const Field& jf = schema.field(static_cast<size_t>(join_col));
      int other_ds =
          (template_id * 13 + 5) % profile_.num_input_datasets;
      bool other_logs = IsLogDataset(other_ds);
      const char* other_key =
          jf.type == DataType::kString ? (other_logs ? "page" : "kind")
                                       : (other_logs ? "uid" : "eid");
      const char* other_val = other_logs ? "latency" : "eid";
      auto other =
          ExtractDataset(other_ds, date)
              .Filter(Gt(Col(other_logs ? "latency" : "eid"),
                         Lit(static_cast<int64_t>(template_id % 90))))
              .Project({{Col(other_key), "jk"}, {Col(other_val), "jv"}});
      std::vector<AggregateSpec> aggs;
      aggs.push_back({AggFunc::kCount, nullptr, "n2"});
      if (spec.tail_kind == 4) {
        aggs.push_back({AggFunc::kSum, Col("jv"), "jv_total"});
      } else {
        aggs.push_back({AggFunc::kMax, Col("jv"), "jv_max"});
      }
      return PlanBuilder::From(input)
          .Join(std::move(other), JoinType::kInner, {{jf.name, "jk"}})
          .Aggregate({jf.name}, std::move(aggs))
          .Sort({{jf.name, true}})
          .Output(out_name)
          .Build();
    }
  }
}

std::vector<JobDefinition> SyntheticWorkloadGenerator::Instance(
    const std::string& date) const {
  std::vector<JobDefinition> jobs;
  jobs.reserve(templates_.size());
  for (size_t t = 0; t < templates_.size(); ++t) {
    const TemplateSpec& spec = templates_[t];
    JobDefinition def;
    def.template_id = StrFormat("%s_t%zu", profile_.name.c_str(), t);
    def.cluster = profile_.name;
    def.vc = StrFormat("vc%d", spec.vc);
    def.business_unit = StrFormat("bu%d", spec.vc / 5);
    def.user = StrFormat("u%d", spec.user);
    def.recurrence_period = spec.period;
    PlanNodePtr fragment = BuildFragment(spec.fragment_id, date);
    def.logical_plan =
        BuildTail(spec, static_cast<int>(t), fragment, date);
    jobs.push_back(std::move(def));
  }
  return jobs;
}

}  // namespace cloudviews
