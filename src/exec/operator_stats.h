#ifndef CLOUDVIEWS_EXEC_OPERATOR_STATS_H_
#define CLOUDVIEWS_EXEC_OPERATOR_STATS_H_

#include <map>
#include <string>

#include "plan/plan_node.h"

namespace cloudviews {

/// \brief Runtime statistics of one executed operator, keyed by the plan
/// node id.
///
/// These are the measurements the CloudViews feedback loop reconciles with
/// compile-time query trees (Sec 5.1): latency, cardinality, data size and
/// resource consumption per query subgraph.
struct OperatorRuntimeStats {
  int node_id = -1;
  OpKind kind = OpKind::kExtract;
  /// Output cardinality.
  double rows = 0;
  /// Output size in bytes.
  double bytes = 0;
  /// Wall-clock seconds spent in this operator alone.
  double exclusive_seconds = 0;
  /// Wall-clock seconds of the whole subtree rooted here (the "latency" of
  /// the subgraph).
  double inclusive_seconds = 0;
  /// CPU seconds attributed to this operator (thread CPU clock; differs
  /// from wall time when jobs run concurrently).
  double cpu_seconds = 0;
};

/// Stats for all operators of one executed job plan.
using PlanRuntimeStats = std::map<int, OperatorRuntimeStats>;

/// Aggregate measures for a whole job run.
struct JobRunStats {
  double latency_seconds = 0;  // end-to-end wall clock
  double cpu_seconds = 0;      // sum of operator CPU times
  double output_rows = 0;
  double output_bytes = 0;
  PlanRuntimeStats operators;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_OPERATOR_STATS_H_
