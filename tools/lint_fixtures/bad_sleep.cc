// Fixture: seeded banned-sleep violations (hand-rolled sleeps in retry
// loops are untestable and undeterministic; route every backoff through
// fault::RetryWithBackoff and its injectable Sleeper).
#include <chrono>
#include <thread>

#include <unistd.h>

bool FlakyOp();

void NaiveRetry() {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (FlakyOp()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void NaiveDeadline(std::chrono::time_point<std::chrono::file_clock> t) {
  std::this_thread::sleep_until(t + std::chrono::seconds(1));
}

void LegacySleeps() {
  usleep(1000);
  timespec ts{0, 1000000};
  nanosleep(&ts, nullptr);
}
