#ifndef CLOUDVIEWS_NET_SOCKET_H_
#define CLOUDVIEWS_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"

namespace cloudviews {
namespace net {

/// \brief RAII wrapper over a POSIX TCP socket.
///
/// All direct socket syscalls in the repo live in socket.cc — everything
/// else (server, client, tests, bench) goes through this class, which is
/// what the `raw-socket` lint rule enforces. Blocking I/O only; the server
/// unblocks readers at shutdown with ShutdownBoth() from another thread.
class Socket {
 public:
  Socket() = default;
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a listening socket bound to `address:port` (port 0 picks an
  /// ephemeral port; BoundPort() reports the actual one).
  static Result<Socket> Listen(const std::string& address, uint16_t port,
                               int backlog);

  /// Connects to `address:port`.
  static Result<Socket> Connect(const std::string& address, uint16_t port);

  /// Blocks until a client connects; valid on listening sockets only.
  /// Returns kAborted once the socket has been shut down.
  Result<Socket> Accept();

  /// The locally bound port (after Listen).
  Result<uint16_t> BoundPort() const;

  /// Writes all of `data`, looping over partial sends. SIGPIPE is
  /// suppressed (MSG_NOSIGNAL); a peer reset surfaces as kIOError.
  Status SendAll(std::string_view data);

  /// Reads exactly `n` bytes into `out` (resized), looping over partial
  /// reads. A clean EOF before any byte returns kAborted ("closed"); an
  /// EOF mid-buffer returns kParseError ("truncated").
  Status RecvExactly(size_t n, std::string* out);

  /// Half-closes both directions, unblocking any blocked Accept/Recv on
  /// this socket from another thread. Idempotent; keeps the fd open so a
  /// racing reader never sees a recycled descriptor.
  void ShutdownBoth();

  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  explicit Socket(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Sends one protocol frame (header + payload).
Status SendFrame(Socket* sock, MsgType type, std::string_view payload);

/// Receives one protocol frame: reads the 8-byte header, validates it (see
/// DecodeFrameHeader for the error classes), then reads exactly
/// payload_len bytes. The payload buffer is only allocated after the
/// length check passes.
Status RecvFrame(Socket* sock, FrameHeader* header, std::string* payload);

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_SOCKET_H_
