#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "exec/processor_registry.h"
#include "plan/plan_builder.h"
#include "signature/signature.h"

namespace cloudviews {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : storage_(&clock_) {}

  void SetUp() override {
    Schema sales({{"region", DataType::kString},
                  {"product", DataType::kInt64},
                  {"amount", DataType::kDouble},
                  {"qty", DataType::kInt64}});
    Batch b(sales);
    auto add = [&](const char* r, int64_t p, double a, int64_t q) {
      ASSERT_TRUE(b.AppendRow({Value::String(r), Value::Int64(p),
                               Value::Double(a), Value::Int64(q)})
                      .ok());
    };
    add("east", 1, 10.0, 1);
    add("west", 2, 20.0, 2);
    add("east", 1, 30.0, 3);
    add("north", 3, 40.0, 4);
    add("west", 1, 50.0, 5);
    ASSERT_TRUE(storage_
                    .WriteStream(MakeStreamData("sales", "g-sales", sales,
                                                {b}, clock_.Now()))
                    .ok());
    sales_schema_ = sales;

    Schema products({{"pid", DataType::kInt64},
                     {"category", DataType::kString}});
    Batch p(products);
    ASSERT_TRUE(p.AppendRow({Value::Int64(1), Value::String("toys")}).ok());
    ASSERT_TRUE(p.AppendRow({Value::Int64(2), Value::String("books")}).ok());
    ASSERT_TRUE(
        storage_
            .WriteStream(MakeStreamData("products", "g-prod", products, {p},
                                        clock_.Now()))
            .ok());
    products_schema_ = products;
  }

  PlanBuilder Sales() {
    return PlanBuilder::Extract("sales", "sales", "g-sales", sales_schema_);
  }
  PlanBuilder Products() {
    return PlanBuilder::Extract("products", "products", "g-prod",
                                products_schema_);
  }

  /// Binds, ids, and executes; expects success.
  JobRunStats Run(PlanNodePtr plan, ExecContext ctx = {}) {
    EXPECT_TRUE(plan->Bind().ok());
    AssignNodeIds(plan.get());
    ctx.storage = &storage_;
    Executor exec(ctx);
    auto result = exec.Execute(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  /// Runs a plan ending in Output and returns the written stream.
  StreamHandle RunToStream(PlanNodePtr plan, const std::string& out_name) {
    Run(std::move(plan));
    auto handle = storage_.OpenStream(out_name);
    EXPECT_TRUE(handle.ok());
    return *handle;
  }

  SimulatedClock clock_;
  StorageManager storage_;
  Schema sales_schema_;
  Schema products_schema_;
};

TEST_F(ExecTest, ExtractReadsAllRows) {
  auto stats = Run(Sales().Build());
  EXPECT_EQ(stats.output_rows, 5);
  EXPECT_GT(stats.output_bytes, 0);
}

TEST_F(ExecTest, ExtractMissingStreamFails) {
  auto plan = PlanBuilder::Extract("ghost", "ghost", "g", sales_schema_)
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  AssignNodeIds(plan.get());
  ExecContext ctx;
  ctx.storage = &storage_;
  Executor exec(ctx);
  EXPECT_TRUE(exec.Execute(plan).status().IsNotFound());
}

TEST_F(ExecTest, ExtractSchemaMismatchFails) {
  Schema wrong({{"region", DataType::kString}});
  auto plan = PlanBuilder::Extract("sales", "sales", "g", wrong).Build();
  ASSERT_TRUE(plan->Bind().ok());
  AssignNodeIds(plan.get());
  ExecContext ctx;
  ctx.storage = &storage_;
  Executor exec(ctx);
  EXPECT_TRUE(exec.Execute(plan).status().IsTypeError());
}

TEST_F(ExecTest, FilterSelectsMatchingRows) {
  auto stats = Run(Sales().Filter(Gt(Col("amount"), Lit(25.0))).Build());
  EXPECT_EQ(stats.output_rows, 3);
}

TEST_F(ExecTest, ProjectComputesExpressions) {
  auto handle = RunToStream(
      Sales()
          .Project({{Col("region"), "region"},
                    {Mul(Col("amount"), Lit(2.0)), "double_amount"}})
          .Output("proj_out")
          .Build(),
      "proj_out");
  Batch out = CombineBatches(handle->schema, handle->batches);
  ASSERT_EQ(out.num_rows(), 5u);
  EXPECT_DOUBLE_EQ(out.GetRow(0)[1].double_value(), 20.0);
}

TEST_F(ExecTest, HashJoinInner) {
  auto stats = Run(Sales()
                       .Join(Products(), JoinType::kInner,
                             {{"product", "pid"}})
                       .Build());
  EXPECT_EQ(stats.output_rows, 4);  // products 1 and 2 only
}

TEST_F(ExecTest, HashJoinLeftOuterPadsNulls) {
  auto handle = RunToStream(Sales()
                                .Join(Products(), JoinType::kLeftOuter,
                                      {{"product", "pid"}})
                                .Output("lo_out")
                                .Build(),
                            "lo_out");
  Batch out = CombineBatches(handle->schema, handle->batches);
  EXPECT_EQ(out.num_rows(), 5u);
  bool found_null = false;
  int cat_idx = out.schema().FieldIndex("category");
  ASSERT_GE(cat_idx, 0);
  for (size_t r = 0; r < out.num_rows(); ++r) {
    found_null |= out.column(static_cast<size_t>(cat_idx)).IsNull(r);
  }
  EXPECT_TRUE(found_null);  // product 3 has no match
}

TEST_F(ExecTest, MergeJoinMatchesHashJoin) {
  auto make = [&](JoinAlgorithm alg) {
    auto left = Sales().Sort({{"product", true}}).Build();
    auto right = Products().Sort({{"pid", true}}).Build();
    auto join = std::make_shared<JoinNode>(
        left, right, JoinType::kInner,
        std::vector<std::pair<std::string, std::string>>{
            {"product", "pid"}});
    join->set_algorithm(alg);
    return PlanBuilder::From(join)
        .Aggregate({}, {{AggFunc::kCount, nullptr, "n"},
                        {AggFunc::kSum, Col("amount"), "total"}})
        .Build();
  };
  auto h = RunToStream(PlanBuilder::From(make(JoinAlgorithm::kHash))
                           .Output("h_out")
                           .Build(),
                       "h_out");
  auto m = RunToStream(PlanBuilder::From(make(JoinAlgorithm::kMerge))
                           .Output("m_out")
                           .Build(),
                       "m_out");
  Batch hb = CombineBatches(h->schema, h->batches);
  Batch mb = CombineBatches(m->schema, m->batches);
  ASSERT_EQ(hb.num_rows(), 1u);
  ASSERT_EQ(mb.num_rows(), 1u);
  EXPECT_EQ(hb.GetRow(0)[0].int64_value(), mb.GetRow(0)[0].int64_value());
  EXPECT_DOUBLE_EQ(hb.GetRow(0)[1].double_value(),
                   mb.GetRow(0)[1].double_value());
}

TEST_F(ExecTest, HashAggregateGroups) {
  auto handle = RunToStream(
      Sales()
          .Aggregate({"region"}, {{AggFunc::kCount, nullptr, "n"},
                                  {AggFunc::kSum, Col("amount"), "total"}})
          .Sort({{"region", true}})
          .Output("agg_out")
          .Build(),
      "agg_out");
  Batch out = CombineBatches(handle->schema, handle->batches);
  ASSERT_EQ(out.num_rows(), 3u);
  // Sorted: east, north, west.
  EXPECT_EQ(out.GetRow(0)[0].string_value(), "east");
  EXPECT_EQ(out.GetRow(0)[1].int64_value(), 2);
  EXPECT_DOUBLE_EQ(out.GetRow(0)[2].double_value(), 40.0);
  EXPECT_EQ(out.GetRow(2)[0].string_value(), "west");
  EXPECT_DOUBLE_EQ(out.GetRow(2)[2].double_value(), 70.0);
}

TEST_F(ExecTest, StreamAggregateMatchesHashAggregate) {
  auto make = [&](AggAlgorithm alg) {
    auto sorted = Sales().Sort({{"region", true}}).Build();
    auto agg = std::make_shared<AggregateNode>(
        sorted, std::vector<std::string>{"region"},
        std::vector<AggregateSpec>{{AggFunc::kSum, Col("qty"), "q"}});
    agg->set_algorithm(alg);
    return PlanBuilder::From(agg).Sort({{"region", true}}).Build();
  };
  auto h = RunToStream(
      PlanBuilder::From(make(AggAlgorithm::kHash)).Output("ha").Build(),
      "ha");
  auto s = RunToStream(
      PlanBuilder::From(make(AggAlgorithm::kStream)).Output("sa").Build(),
      "sa");
  Batch hb = CombineBatches(h->schema, h->batches);
  Batch sb = CombineBatches(s->schema, s->batches);
  ASSERT_EQ(hb.num_rows(), sb.num_rows());
  for (size_t r = 0; r < hb.num_rows(); ++r) {
    EXPECT_EQ(hb.GetRow(r)[0].string_value(), sb.GetRow(r)[0].string_value());
    EXPECT_EQ(hb.GetRow(r)[1].int64_value(), sb.GetRow(r)[1].int64_value());
  }
}

TEST_F(ExecTest, GlobalAggregateOnEmptyInputYieldsOneRow) {
  auto handle = RunToStream(
      Sales()
          .Filter(Gt(Col("amount"), Lit(1e9)))  // nothing passes
          .Aggregate({}, {{AggFunc::kCount, nullptr, "n"},
                          {AggFunc::kMax, Col("amount"), "m"}})
          .Output("empty_agg")
          .Build(),
      "empty_agg");
  Batch out = CombineBatches(handle->schema, handle->batches);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.GetRow(0)[0].int64_value(), 0);
  EXPECT_TRUE(out.GetRow(0)[1].is_null());
}

TEST_F(ExecTest, GroupedAggregateOnEmptyInputYieldsNoRows) {
  auto stats = Run(Sales()
                       .Filter(Gt(Col("amount"), Lit(1e9)))
                       .Aggregate({"region"}, {{AggFunc::kCount, nullptr,
                                                "n"}})
                       .Build());
  EXPECT_EQ(stats.output_rows, 0);
}

TEST_F(ExecTest, SortOrdersRows) {
  auto handle = RunToStream(
      Sales().Sort({{"amount", false}}).Output("sorted").Build(), "sorted");
  Batch out = CombineBatches(handle->schema, handle->batches);
  int amount_idx = out.schema().FieldIndex("amount");
  double prev = 1e18;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    double v = out.GetRow(r)[static_cast<size_t>(amount_idx)].double_value();
    EXPECT_LE(v, prev);
    prev = v;
  }
}

TEST_F(ExecTest, ExchangePreservesMultiset) {
  auto handle = RunToStream(Sales()
                                .Exchange(Partitioning::Hash({"region"}, 4))
                                .Output("exch")
                                .Build(),
                            "exch");
  Batch out = CombineBatches(handle->schema, handle->batches);
  EXPECT_EQ(out.num_rows(), 5u);
  std::multiset<double> amounts;
  int idx = out.schema().FieldIndex("amount");
  for (size_t r = 0; r < out.num_rows(); ++r) {
    amounts.insert(out.GetRow(r)[static_cast<size_t>(idx)].double_value());
  }
  EXPECT_EQ(amounts, (std::multiset<double>{10, 20, 30, 40, 50}));
}

TEST_F(ExecTest, PartitionBatchHashIsDeterministicAndComplete) {
  auto handle = *storage_.OpenStream("sales");
  Batch data = CombineBatches(handle->schema, handle->batches);
  auto parts = PartitionBatch(data, Partitioning::Hash({"region"}, 3));
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (const auto& p : *parts) total += p.num_rows();
  EXPECT_EQ(total, 5u);
  // Same region always lands in the same partition.
  auto parts2 = PartitionBatch(data, Partitioning::Hash({"region"}, 3));
  for (size_t i = 0; i < parts->size(); ++i) {
    EXPECT_EQ((*parts)[i].num_rows(), (*parts2)[i].num_rows());
  }
}

TEST_F(ExecTest, UnionAllConcatenates) {
  auto stats =
      Run(Sales().UnionAll(Sales()).Build());
  EXPECT_EQ(stats.output_rows, 10);
}

TEST_F(ExecTest, TopLimitsRows) {
  EXPECT_EQ(Run(Sales().Top(3).Build()).output_rows, 3);
  EXPECT_EQ(Run(Sales().Top(100).Build()).output_rows, 5);
}

TEST_F(ExecTest, ProcessAppliesRegisteredUdo) {
  auto stats = Run(Sales()
                       .Process("identity", "userlib", "1.0", sales_schema_)
                       .Build());
  EXPECT_EQ(stats.output_rows, 5);
}

TEST_F(ExecTest, ProcessUnknownProcessorFails) {
  auto plan =
      Sales().Process("missing_udo", "lib", "1.0", sales_schema_).Build();
  ASSERT_TRUE(plan->Bind().ok());
  AssignNodeIds(plan.get());
  ExecContext ctx;
  ctx.storage = &storage_;
  Executor exec(ctx);
  EXPECT_TRUE(exec.Execute(plan).status().IsNotFound());
}

TEST_F(ExecTest, SpoolWritesViewAndPassesThrough) {
  auto base = Sales().Filter(Gt(Col("amount"), Lit(15.0))).Build();
  ASSERT_TRUE(base->Bind().ok());
  auto sigs = ComputeSignatures(*base);
  std::string path = EncodeViewPath(sigs.normalized, sigs.precise, 42);
  PhysicalProperties design{Partitioning::Hash({"region"}, 2),
                            {{{"amount", true}}}};
  auto plan = PlanBuilder::From(std::make_shared<SpoolNode>(
                  base, path, sigs.normalized, sigs.precise, design))
                  .Aggregate({}, {{AggFunc::kCount, nullptr, "n"}})
                  .Output("spool_job_out")
                  .Build();

  bool published = false;
  ExecContext ctx;
  ctx.view_expiry = 12345;
  ctx.on_view_materialized = [&](const SpoolNode& node,
                                 const StreamData& view) {
    published = true;
    EXPECT_EQ(node.view_path(), path);
    EXPECT_EQ(view.name, path);
  };
  Run(plan, ctx);
  EXPECT_TRUE(published);

  auto view = storage_.OpenStream(path);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->total_rows, 4);
  EXPECT_EQ((*view)->expires_at, 12345);
  EXPECT_EQ((*view)->batches.size(), 2u);  // two hash partitions
  // Each partition is sorted by amount per the design.
  for (const auto& p : (*view)->batches) {
    double prev = -1;
    int idx = p.schema().FieldIndex("amount");
    for (size_t r = 0; r < p.num_rows(); ++r) {
      double v = p.GetRow(r)[static_cast<size_t>(idx)].double_value();
      EXPECT_GE(v, prev);
      prev = v;
    }
  }

  // The enclosing job still sees all 4 rows (pass-through).
  auto out = storage_.OpenStream("spool_job_out");
  ASSERT_TRUE(out.ok());
  Batch ob = CombineBatches((*out)->schema, (*out)->batches);
  EXPECT_EQ(ob.GetRow(0)[0].int64_value(), 4);
}

TEST_F(ExecTest, ViewReadConsumesMaterializedView) {
  // Materialize manually, then read through a ViewReadNode.
  auto base = Sales().Filter(Gt(Col("amount"), Lit(15.0))).Build();
  ASSERT_TRUE(base->Bind().ok());
  auto sigs = ComputeSignatures(*base);
  std::string path = EncodeViewPath(sigs.normalized, sigs.precise, 1);
  auto spool_plan = std::make_shared<SpoolNode>(base, path, sigs.normalized,
                                                sigs.precise,
                                                PhysicalProperties{});
  Run(PlanBuilder::From(spool_plan).Build());

  auto view_read = std::make_shared<ViewReadNode>(
      path, sigs.normalized, sigs.precise, base->output_schema(),
      PhysicalProperties{}, 4, 100);
  auto stats = Run(PlanBuilder::From(view_read)
                       .Aggregate({"region"}, {{AggFunc::kCount, nullptr,
                                                "n"}})
                       .Build());
  EXPECT_EQ(stats.output_rows, 3);  // east, north, west survive the filter
}

TEST_F(ExecTest, StatsCoverEveryOperator) {
  auto plan = Sales()
                  .Filter(Gt(Col("qty"), Lit(int64_t{1})))
                  .Aggregate({"region"}, {{AggFunc::kCount, nullptr, "n"}})
                  .Output("stats_out")
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  int n = AssignNodeIds(plan.get());
  ExecContext ctx;
  ctx.storage = &storage_;
  Executor exec(ctx);
  auto stats = *exec.Execute(plan);
  EXPECT_EQ(stats.operators.size(), static_cast<size_t>(n));
  // Inclusive time of the root covers children.
  const auto& root = stats.operators.at(0);
  for (const auto& [id, op] : stats.operators) {
    EXPECT_GE(root.inclusive_seconds, op.exclusive_seconds);
    EXPECT_GE(op.inclusive_seconds, op.exclusive_seconds);
  }
  EXPECT_GT(stats.cpu_seconds, 0);
  EXPECT_GE(stats.latency_seconds, root.inclusive_seconds);
}

TEST_F(ExecTest, ReduceAppliesProcessorPerGroup) {
  // first_of_group under REDUCE = dedup by key; input must arrive sorted.
  auto sorted = Sales().Sort({{"region", true}}).Build();
  auto reduce = std::make_shared<ReduceNode>(
      sorted, std::vector<std::string>{"region"}, "first_of_group",
      "dedup", "1.0", Schema());
  auto stats = Run(PlanBuilder::From(reduce).Build());
  EXPECT_EQ(stats.output_rows, 3);  // east, north, west
}

TEST_F(ExecTest, ReduceMatchesDistinctAggregate) {
  auto make_reduce = [&] {
    auto sorted = Sales().Sort({{"product", true}}).Build();
    auto reduce = std::make_shared<ReduceNode>(
        sorted, std::vector<std::string>{"product"}, "first_of_group",
        "dedup", "1.0", Schema());
    return Run(PlanBuilder::From(reduce).Build()).output_rows;
  };
  auto agg_rows = Run(Sales()
                          .Aggregate({"product"},
                                     {{AggFunc::kCount, nullptr, "n"}})
                          .Build())
                      .output_rows;
  EXPECT_EQ(make_reduce(), agg_rows);
}

TEST_F(ExecTest, OutputRecordsDeliveredLayout) {
  auto handle = RunToStream(Sales()
                                .Exchange(Partitioning::Hash({"region"}, 4))
                                .Sort({{"amount", true}})
                                .Output("laid_out")
                                .Build(),
                            "laid_out");
  EXPECT_EQ(handle->props.partitioning.scheme, PartitionScheme::kHash);
  EXPECT_TRUE(handle->props.sort_order.IsSorted());
}

TEST_F(ExecTest, CombineBatchesHandlesEmptyAndSingleRow) {
  Schema s({{"x", DataType::kInt64}});
  EXPECT_EQ(CombineBatches(s, {}).num_rows(), 0u);

  Batch empty(s);
  Batch one(s);
  ASSERT_TRUE(one.AppendRow({Value::Int64(7)}).ok());
  Batch combined = CombineBatches(s, {empty, one, empty});
  ASSERT_EQ(combined.num_rows(), 1u);
  EXPECT_EQ(combined.GetRow(0)[0].int64_value(), 7);
}

TEST_F(ExecTest, CombineBatchesPreservesNulls) {
  Schema s({{"x", DataType::kInt64}});
  Batch a(s), b(s);
  ASSERT_TRUE(a.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Null(DataType::kInt64)}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int64(3)}).ok());
  Batch combined = CombineBatches(s, {a, b});
  ASSERT_EQ(combined.num_rows(), 3u);
  EXPECT_FALSE(combined.column(0).IsNull(0));
  EXPECT_TRUE(combined.column(0).IsNull(1));
  EXPECT_EQ(combined.GetRow(2)[0].int64_value(), 3);
}

TEST_F(ExecTest, SortBatchEmptyAndSingleRow) {
  Schema s({{"k", DataType::kInt64}});
  Batch empty(s);
  EXPECT_EQ(SortBatch(empty, {{"k", true}}).num_rows(), 0u);

  Batch one(s);
  ASSERT_TRUE(one.AppendRow({Value::Int64(5)}).ok());
  Batch sorted = SortBatch(one, {{"k", false}});
  ASSERT_EQ(sorted.num_rows(), 1u);
  EXPECT_EQ(sorted.GetRow(0)[0].int64_value(), 5);
}

TEST_F(ExecTest, SortBatchIsStableOnDuplicateKeys) {
  Schema s({{"k", DataType::kInt64}, {"seq", DataType::kInt64}});
  Batch in(s);
  int64_t keys[] = {1, 0, 1, 0, 1};
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(in.AppendRow({Value::Int64(keys[i]), Value::Int64(i)}).ok());
  }
  Batch sorted = SortBatch(in, {{"k", true}});
  // Equal keys keep their input order.
  int64_t expected_seq[] = {1, 3, 0, 2, 4};
  ASSERT_EQ(sorted.num_rows(), 5u);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(sorted.GetRow(r)[1].int64_value(), expected_seq[r]) << r;
  }
}

TEST_F(ExecTest, PartitionBatchHandlesEmptyAndSingleRow) {
  Schema s({{"k", DataType::kString}});
  Batch empty(s);
  auto parts = PartitionBatch(empty, Partitioning::Hash({"k"}, 3));
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  for (const auto& p : *parts) EXPECT_EQ(p.num_rows(), 0u);

  Batch one(s);
  ASSERT_TRUE(one.AppendRow({Value::String("x")}).ok());
  auto one_parts = PartitionBatch(one, Partitioning::Hash({"k"}, 3));
  ASSERT_TRUE(one_parts.ok());
  size_t total = 0;
  for (const auto& p : *one_parts) total += p.num_rows();
  EXPECT_EQ(total, 1u);
}

TEST_F(ExecTest, UnboundPlanRejected) {
  auto plan = Sales().Build();
  ExecContext ctx;
  ctx.storage = &storage_;
  Executor exec(ctx);
  EXPECT_TRUE(exec.Execute(plan).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cloudviews
