file(REMOVE_RECURSE
  "CMakeFiles/ablation_physical_design.dir/ablation_physical_design.cc.o"
  "CMakeFiles/ablation_physical_design.dir/ablation_physical_design.cc.o.d"
  "ablation_physical_design"
  "ablation_physical_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
