// Fixture: banned constructs named inside a multi-line raw string. The old
// line-oriented sanitizer lost the raw-string state across lines, so the
// continuation lines leaked into rule matching and fired banned-random /
// banned-sync / banned-sleep / banned-clock. The token-level rules must
// see one string literal and report nothing.
#include <string>

namespace cloudviews_fixture {

inline std::string BannedConstructsDoc() {
  return R"doc(
    Operators must never call srand(), std::rand(), or random_device
    directly; std::mutex, std::lock_guard and friends are reserved for
    common/mutex.h; sleep_for(), usleep() and nanosleep() belong in
    fault/backoff; steady_clock and time(nullptr) live in common/clock.h.
    Even a naked new or assert(--x) mentioned here must not fire.
  )doc";
}

inline std::string CustomDelimiter() {
  return R"x(unbalanced " quote and a )stray( paren inside)x";
}

}  // namespace cloudviews_fixture
