# Empty compiler generated dependencies file for fig04_operator_overlap.
# This may be replaced when dependencies are built.
