// Fixture: seeded assert-side-effect violations (the mutation disappears
// in NDEBUG builds).
#include <cassert>

int ConsumeBudget(int budget) {
  assert(--budget >= 0);
  int written = 0;
  assert((written = budget) >= 0);
  return budget + written;
}
