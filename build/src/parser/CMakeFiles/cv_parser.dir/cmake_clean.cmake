file(REMOVE_RECURSE
  "CMakeFiles/cv_parser.dir/lexer.cc.o"
  "CMakeFiles/cv_parser.dir/lexer.cc.o.d"
  "CMakeFiles/cv_parser.dir/parser.cc.o"
  "CMakeFiles/cv_parser.dir/parser.cc.o.d"
  "libcv_parser.a"
  "libcv_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
