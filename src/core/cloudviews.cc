#include "core/cloudviews.h"

#include <algorithm>

namespace cloudviews {

CloudViews::CloudViews(CloudViewsConfig config)
    : config_(config), clock_(config.clock_start),
      tracer_(config.wall_clock) {
  storage_ = std::make_unique<StorageManager>(&clock_);
  metadata_ = std::make_unique<MetadataService>(
      &clock_, storage_.get(), config.metadata, config.wall_clock);
  repository_ = std::make_unique<WorkloadRepository>();
  job_service_ = std::make_unique<JobService>(
      &clock_, storage_.get(), metadata_.get(), repository_.get(),
      config.optimizer, config.exec, config.fault, config.retry,
      config.sleeper);
  if (config_.fault != nullptr) {
    storage_->SetFaultInjector(config_.fault);
    metadata_->SetFaultInjector(config_.fault);
  }
  if (config_.enable_observability) {
    storage_->SetMetrics(&metrics_);
    metadata_->SetMetrics(&metrics_, config_.wall_clock);
    repository_->SetMetrics(&metrics_);
    job_service_->SetObservability(&metrics_, &tracer_,
                                   config_.wall_clock);
    if (config_.fault != nullptr) config_.fault->SetMetrics(&metrics_);
  }
}

Result<JobResult> CloudViews::Submit(const JobDefinition& def,
                                     bool enable_cloudviews) {
  JobServiceOptions options;
  options.enable_cloudviews = enable_cloudviews;
  return Submit(def, options);
}

Result<JobResult> CloudViews::Submit(const JobDefinition& def,
                                     const JobServiceOptions& options) {
  auto result = job_service_->SubmitJob(def, options);
  if (result.ok()) {
    MutexLock lock(stats_mu_);
    ++jobs_since_analysis_;
    if (result->views_reused > 0 || result->views_materialized > 0) {
      ++view_hits_since_analysis_;
    }
  }
  return result;
}

AnalysisResult CloudViews::RunAnalyzerAndLoad() {
  return RunAnalyzerAndLoad(0, clock_.Now() + 1);
}

AnalysisResult CloudViews::RunAnalyzerAndLoad(LogicalTime from,
                                              LogicalTime to) {
  CloudViewsAnalyzer analyzer(config_.analyzer);
  AnalysisResult result = analyzer.Analyze(repository_->JobsInWindow(from, to));
  metadata_->LoadAnalysis(result.annotations);
  MutexLock lock(stats_mu_);
  jobs_since_analysis_ = 0;
  view_hits_since_analysis_ = 0;
  analysis_loaded_ = !result.annotations.empty();
  return result;
}

Result<int> CloudViews::BuildViewsOffline(const JobDefinition& def) {
  return job_service_->MaterializeOfflineViews(def);
}

size_t CloudViews::ReclaimViewStorage(double bytes_to_reclaim) {
  // Same selection routine as Sec 5.2 with the objective flipped to min
  // (Sec 5.4): drop the least useful views first.
  struct Candidate {
    Hash128 precise;
    double utility;
    double bytes;
  };
  std::vector<Candidate> candidates;
  for (const auto& view : metadata_->ListViews()) {
    Candidate c;
    c.precise = view.precise_signature;
    c.bytes = view.bytes;
    c.utility = 0;
    if (auto ann = metadata_->FindAnnotation(view.normalized_signature)) {
      c.utility = static_cast<double>(ann->frequency - 1) *
                  ann->avg_runtime_seconds;
    }
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.utility != b.utility) return a.utility < b.utility;
              return b.bytes < a.bytes;  // bigger first on utility ties
            });
  double reclaimed = 0;
  size_t dropped = 0;
  for (const auto& c : candidates) {
    if (reclaimed >= bytes_to_reclaim) break;
    if (metadata_->DropView(c.precise).ok()) {
      reclaimed += c.bytes;
      ++dropped;
    }
  }
  return dropped;
}

size_t CloudViews::PurgeExpired() {
  size_t purged = metadata_->PurgeExpired();
  purged += storage_->PurgeExpired();
  return purged;
}

bool CloudViews::AnalysisLooksStale(double min_hit_rate) const {
  MutexLock lock(stats_mu_);
  if (!analysis_loaded_) return true;
  if (jobs_since_analysis_ < 20) return false;  // not enough evidence yet
  double hit_rate = static_cast<double>(view_hits_since_analysis_) /
                    static_cast<double>(jobs_since_analysis_);
  return hit_rate < min_hit_rate;
}

}  // namespace cloudviews
