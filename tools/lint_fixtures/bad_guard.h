#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

// Fixture: seeded header-guard violation — the guard does not follow the
// CLOUDVIEWS_<PATH>_H_ convention.
inline int GuardFixture() { return 1; }

#endif  // WRONG_GUARD_NAME_H
