#ifndef CLOUDVIEWS_COMMON_RESULT_H_
#define CLOUDVIEWS_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/status.h"

namespace cloudviews {

/// \brief Holds either a value of type T or an error Status.
///
/// A Result is never empty: it is constructed from either a value or a
/// non-OK Status. Accessing the value of an errored Result (or building a
/// Result from an OK status) prints the status and aborts — in every build
/// type, so release binaries fail loudly instead of reading a moved-from
/// variant (mirrors arrow::Result / CHECK semantics; see
/// tests/result_death_test.cc). Like Status, the class is [[nodiscard]].
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor): mirrors absl::StatusOr

  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor): mirrors absl::StatusOr
    if (std::get<Status>(repr_).ok()) {
      internal::AbortWithStatus("Result constructed from OK status",
                                std::get<Status>(repr_));
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if a value is held, the error otherwise.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  [[nodiscard]] const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  [[nodiscard]] T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  [[nodiscard]] T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Shorthand operators mirroring std::optional access.
  [[nodiscard]] const T& operator*() const& { return ValueOrDie(); }
  [[nodiscard]] T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      internal::AbortWithStatus("ValueOrDie on errored Result",
                                std::get<Status>(repr_));
    }
  }

  std::variant<Status, T> repr_;
};

/// Assigns the value of `rexpr` to `lhs`, or returns its error.
#define CV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define CV_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CV_ASSIGN_OR_RETURN_NAME(x, y) CV_ASSIGN_OR_RETURN_CONCAT(x, y)

#define CV_ASSIGN_OR_RETURN(lhs, rexpr) \
  CV_ASSIGN_OR_RETURN_IMPL(             \
      CV_ASSIGN_OR_RETURN_NAME(_cv_result_, __COUNTER__), lhs, rexpr)

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_RESULT_H_
