// Fixture: iterating an unordered_map while building a signature — hash
// order would reach the result. One loop is justified order-insensitive
// (a commutative sum) and must pass; the other two must be flagged.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using AnnotationIndex = std::unordered_map<uint64_t, std::string>;

uint64_t BadSignature(const std::unordered_map<std::string, int>& parts) {
  uint64_t h = 0;
  for (const auto& [name, weight] : parts) {  // flagged: order-dependent
    h = h * 31 + static_cast<uint64_t>(weight) +
        static_cast<uint64_t>(name.size());
  }
  return h;
}

uint64_t BadAliasWalk(const AnnotationIndex& index) {
  uint64_t h = 0;
  for (const auto& [sig, text] : index) {  // flagged: alias of unordered_map
    h = h * 31 + sig + static_cast<uint64_t>(text.size());
  }
  return h;
}

int JustifiedSum(const std::unordered_set<int>& values) {
  int total = 0;
  // order-insensitive: integer addition is commutative, the iteration
  // order cannot reach the result
  for (int v : values) {
    total += v;
  }
  return total;
}

}  // namespace fixture
