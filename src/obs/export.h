#ifndef CLOUDVIEWS_OBS_EXPORT_H_
#define CLOUDVIEWS_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cloudviews {
namespace obs {

/// \brief Renders the registry in the Prometheus text exposition format
/// (v0.0.4): `# HELP` / `# TYPE` headers, `_bucket{le=...}` / `_sum` /
/// `_count` histogram series. Output is sorted by family name then label
/// set, so a deterministic workload produces byte-identical snapshots
/// (golden-tested).
std::string RenderPrometheus(const MetricsRegistry& registry);

/// \brief Renders the registry as a JSON document (families -> series),
/// the form embedded into bench artifacts like BENCH_executor.json.
std::string RenderMetricsJson(const MetricsRegistry& registry);

/// Appends one span tree to an open JsonWriter as
/// {"name":..., "start_seconds":..., "end_seconds":...,
///  "attributes":{...}, "children":[...]}.
void SpanToJson(const SpanRecord& span, JsonWriter* writer);

}  // namespace obs
}  // namespace cloudviews

#endif  // CLOUDVIEWS_OBS_EXPORT_H_
