file(REMOVE_RECURSE
  "CMakeFiles/cv_exec.dir/executor.cc.o"
  "CMakeFiles/cv_exec.dir/executor.cc.o.d"
  "CMakeFiles/cv_exec.dir/processor_registry.cc.o"
  "CMakeFiles/cv_exec.dir/processor_registry.cc.o.d"
  "libcv_exec.a"
  "libcv_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
