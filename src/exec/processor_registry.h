#ifndef CLOUDVIEWS_EXEC_PROCESSOR_REGISTRY_H_
#define CLOUDVIEWS_EXEC_PROCESSOR_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "types/batch.h"

namespace cloudviews {

/// A row-wise user-defined operator body: consumes a batch, produces a
/// batch with the declared output schema (may change the row count).
using ProcessorFn =
    std::function<Status(const Batch& input, Batch* output)>;

/// \brief Catalog of PROCESS operator implementations (SCOPE UDOs).
///
/// Shipping a new library version re-registers the processor; the plan's
/// ProcessNode carries library+version so precise signatures change.
class ProcessorRegistry {
 public:
  static ProcessorRegistry* Global();

  void Register(const std::string& name, ProcessorFn fn);
  Result<const ProcessorFn*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  ProcessorRegistry();

  std::unordered_map<std::string, ProcessorFn> entries_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_PROCESSOR_REGISTRY_H_
