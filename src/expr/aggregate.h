#ifndef CLOUDVIEWS_EXPR_AGGREGATE_H_
#define CLOUDVIEWS_EXPR_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"

namespace cloudviews {

enum class AggFunc : int {
  kCount = 0,  // count(*) when arg is null, else count of non-null arg
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
};

const char* AggFuncToString(AggFunc f);
bool AggFuncFromString(const std::string& name, AggFunc* out);

/// \brief One aggregate in a GROUP BY operator's output.
struct AggregateSpec {
  AggFunc func;
  ExprPtr arg;  // nullptr for count(*)
  std::string output_name;

  /// Binds the argument and returns the aggregate's output type.
  Result<DataType> Bind(const Schema& input) const;

  void HashInto(HashBuilder* hb, SignatureMode mode) const;
  std::string ToString() const;
  AggregateSpec Clone() const;
};

/// \brief Incremental accumulator for one aggregate over one group.
class AggState {
 public:
  explicit AggState(AggFunc func) : func_(func) {}

  void Update(const Value& v);
  /// Combines with row counting for count(*) (no argument evaluated).
  void UpdateCountStar() { ++count_; }

  Value Finish(DataType output_type) const;

 private:
  AggFunc func_;
  int64_t count_ = 0;
  bool any_ = false;
  double sum_ = 0;
  int64_t isum_ = 0;
  Value min_, max_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXPR_AGGREGATE_H_
