file(REMOVE_RECURSE
  "CMakeFiles/fig02_vc_overlap.dir/fig02_vc_overlap.cc.o"
  "CMakeFiles/fig02_vc_overlap.dir/fig02_vc_overlap.cc.o.d"
  "fig02_vc_overlap"
  "fig02_vc_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_vc_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
