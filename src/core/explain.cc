#include "core/explain.h"

#include <set>

#include "common/string_util.h"
#include "obs/export.h"
#include "obs/json.h"
#include "storage/storage_manager.h"

namespace cloudviews {

namespace {

void AppendAnalyzedNode(const PlanNode* node, const PlanRuntimeStats& stats,
                        int depth, std::set<const PlanNode*>* seen,
                        std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (!seen->insert(node).second) {
    *out += StrFormat("%s%s [shared, stats under node %d above]\n",
                      indent.c_str(), node->Label().c_str(), node->id());
    return;
  }
  auto it = stats.find(node->id());
  if (it != stats.end()) {
    const OperatorRuntimeStats& s = it->second;
    *out += StrFormat(
        "%s%s  (actual: %.0f rows / %s; excl %.3fms, incl %.3fms, cpu "
        "%.3fms)\n",
        indent.c_str(), node->Label().c_str(), s.rows,
        HumanBytes(s.bytes).c_str(), s.exclusive_seconds * 1000,
        s.inclusive_seconds * 1000, s.cpu_seconds * 1000);
  } else {
    *out += StrFormat("%s%s  (not executed)\n", indent.c_str(),
                      node->Label().c_str());
  }
  for (const auto& child : node->children()) {
    AppendAnalyzedNode(child.get(), stats, depth + 1, seen, out);
  }
}

void AppendSpanLines(const obs::SpanRecord& span, int depth,
                     std::string* out) {
  *out += StrFormat("%s%s %.3fms", std::string(depth * 2, ' ').c_str(),
                    span.name.c_str(),
                    (span.end_seconds - span.start_seconds) * 1000);
  for (const auto& [key, value] : span.attributes) {
    *out += StrFormat(" %s=%s", key.c_str(), value.c_str());
  }
  *out += "\n";
  for (const auto& child : span.children) {
    AppendSpanLines(*child, depth + 1, out);
  }
}

void PlanNodeToJson(const PlanNode* node, const PlanRuntimeStats& stats,
                    std::set<const PlanNode*>* seen, obs::JsonWriter* w) {
  w->BeginObject();
  w->Key("node_id").Int(node->id());
  w->Key("label").String(node->Label());
  w->Key("kind").String(OpKindToString(node->kind()));
  if (!seen->insert(node).second) {
    // Shared subtree: the stats and children already appear under the
    // first occurrence of this node_id.
    w->Key("shared").Bool(true);
    w->EndObject();
    return;
  }
  auto it = stats.find(node->id());
  if (it != stats.end()) {
    const OperatorRuntimeStats& s = it->second;
    w->Key("rows").Double(s.rows);
    w->Key("bytes").Double(s.bytes);
    w->Key("exclusive_seconds").Double(s.exclusive_seconds);
    w->Key("inclusive_seconds").Double(s.inclusive_seconds);
    w->Key("cpu_seconds").Double(s.cpu_seconds);
  }
  if (!node->children().empty()) {
    w->Key("children").BeginArray();
    for (const auto& child : node->children()) {
      PlanNodeToJson(child.get(), stats, seen, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::string ExplainJob(const JobResult& result) {
  std::string out;
  out += StrFormat("job %llu\n",
                   static_cast<unsigned long long>(result.job_id));
  out += StrFormat(
      "  compile %.3fms (metadata lookup %.1fms), estimated cost %.1f\n",
      result.compile_seconds * 1000, result.metadata_lookup_seconds * 1000,
      result.estimated_cost);
  out += StrFormat(
      "  run: latency %.3fms, cpu %.3fms, output %.0f rows / %s\n",
      result.run_stats.latency_seconds * 1000,
      result.run_stats.cpu_seconds * 1000, result.run_stats.output_rows,
      HumanBytes(result.run_stats.output_bytes).c_str());
  out += StrFormat(
      "  cloudviews: %d view(s) reused, %d materialized, %d reuse "
      "candidate(s) rejected on cost, %d build lock(s) denied\n",
      result.views_reused, result.views_materialized,
      result.reuse_rejected_by_cost, result.materialize_lock_denied);
  if (result.candidates_filtered > 0 || result.views_reused_subsumed > 0) {
    out += StrFormat(
        "  containment: %d candidate(s) filtered, %d verified, %d rejected; "
        "%d view(s) reused by subsumption with %d compensation node(s)\n",
        result.candidates_filtered, result.containment_verified,
        result.containment_rejected, result.views_reused_subsumed,
        result.compensation_nodes_added);
  }
  if (result.views_fallback > 0 || result.lookup_degraded) {
    out += StrFormat(
        "  degraded: %d view read(s) fell back to the original plan%s\n",
        result.views_fallback,
        result.lookup_degraded ? ", metadata lookup unavailable" : "");
  }
  if (result.plan_cache_hit) {
    out += StrFormat(
        "  plan cache: hit (recurring-job fast path, catalog epoch %llu)\n",
        static_cast<unsigned long long>(result.catalog_epoch));
  }
  if (result.shared_execution) {
    out += StrFormat(
        "  work sharing: adopted in-flight execution of leader job %llu\n",
        static_cast<unsigned long long>(result.share_leader_job_id));
  } else if (result.share_followers > 0) {
    out += StrFormat(
        "  work sharing: led a shared execution adopted by %d follower(s)\n",
        result.share_followers);
  }
  if (result.piggyback_waits > 0) {
    out += StrFormat(
        "  piggyback: %d build-lock wait(s) — %d hit(s), %d timeout(s), %d "
        "abandoned builder(s)\n",
        result.piggyback_waits, result.piggyback_hits,
        result.piggyback_timeouts, result.piggyback_abandoned);
  }

  if (result.executed_plan == nullptr) return out;
  std::vector<PlanNode*> nodes;
  CollectNodes(result.executed_plan, &nodes);
  for (PlanNode* n : nodes) {
    if (n->kind() == OpKind::kViewRead) {
      auto* view = static_cast<ViewReadNode*>(n);
      Hash128 norm, precise;
      uint64_t producer = 0;
      std::string provenance = "unknown producer";
      if (ParseViewPath(view->view_path(), &norm, &precise, &producer)) {
        provenance = StrFormat(
            "produced by job %llu",
            static_cast<unsigned long long>(producer));
      }
      out += StrFormat("  reused view %s\n    %s; %.0f rows / %s; design "
                       "%s\n",
                       view->view_path().c_str(), provenance.c_str(),
                       view->actual_rows(),
                       HumanBytes(view->actual_bytes()).c_str(),
                       view->props().ToString().c_str());
    }
    if (n->kind() == OpKind::kSpool) {
      auto* spool = static_cast<SpoolNode*>(n);
      out += StrFormat(
          "  materialized view %s\n    design %s; lifetime %llds\n",
          spool->view_path().c_str(), spool->design().ToString().c_str(),
          static_cast<long long>(spool->lifetime_seconds()));
    }
  }
  out += "  executed plan:\n";
  for (const auto& line : Split(result.executed_plan->TreeString(), '\n')) {
    if (!line.empty()) out += "    " + line + "\n";
  }
  return out;
}

std::string ExplainAnalyze(const JobResult& result) {
  std::string out;
  out += StrFormat(
      "EXPLAIN ANALYZE job %llu: latency %.3fms, cpu %.3fms, output %.0f "
      "rows / %s\n",
      static_cast<unsigned long long>(result.job_id),
      result.run_stats.latency_seconds * 1000,
      result.run_stats.cpu_seconds * 1000, result.run_stats.output_rows,
      HumanBytes(result.run_stats.output_bytes).c_str());
  if (result.trace != nullptr) {
    out += "  lifecycle:\n";
    std::string spans;
    AppendSpanLines(*result.trace, 2, &spans);
    out += spans;
  }
  if (result.executed_plan != nullptr) {
    out += "  plan:\n";
    std::set<const PlanNode*> seen;
    AppendAnalyzedNode(result.executed_plan.get(),
                       result.run_stats.operators, 2, &seen, &out);
  }
  return out;
}

std::string JobProfileJson(const JobResult& result) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("job_id").Uint(result.job_id);
  w.Key("compile_seconds").Double(result.compile_seconds);
  w.Key("metadata_lookup_seconds").Double(result.metadata_lookup_seconds);
  w.Key("estimated_cost").Double(result.estimated_cost);
  w.Key("views_reused").Int(result.views_reused);
  w.Key("views_materialized").Int(result.views_materialized);
  w.Key("reuse_rejected_by_cost").Int(result.reuse_rejected_by_cost);
  w.Key("materialize_lock_denied").Int(result.materialize_lock_denied);
  w.Key("candidates_filtered").Int(result.candidates_filtered);
  w.Key("containment_verified").Int(result.containment_verified);
  w.Key("containment_rejected").Int(result.containment_rejected);
  w.Key("views_reused_subsumed").Int(result.views_reused_subsumed);
  w.Key("compensation_nodes_added").Int(result.compensation_nodes_added);
  w.Key("views_fallback").Int(result.views_fallback);
  w.Key("lookup_degraded").Bool(result.lookup_degraded);
  w.Key("plan_cache_hit").Bool(result.plan_cache_hit);
  w.Key("catalog_epoch").Uint(result.catalog_epoch);
  w.Key("shared_execution").Bool(result.shared_execution);
  w.Key("share_leader_job_id").Uint(result.share_leader_job_id);
  w.Key("share_followers").Int(result.share_followers);
  w.Key("piggyback_waits").Int(result.piggyback_waits);
  w.Key("piggyback_hits").Int(result.piggyback_hits);
  w.Key("piggyback_timeouts").Int(result.piggyback_timeouts);
  w.Key("piggyback_abandoned").Int(result.piggyback_abandoned);
  w.Key("run").BeginObject();
  w.Key("latency_seconds").Double(result.run_stats.latency_seconds);
  w.Key("cpu_seconds").Double(result.run_stats.cpu_seconds);
  w.Key("output_rows").Double(result.run_stats.output_rows);
  w.Key("output_bytes").Double(result.run_stats.output_bytes);
  w.EndObject();
  w.Key("trace");
  if (result.trace != nullptr) {
    obs::SpanToJson(*result.trace, &w);
  } else {
    w.Null();
  }
  w.Key("plan");
  if (result.executed_plan != nullptr) {
    std::set<const PlanNode*> seen;
    PlanNodeToJson(result.executed_plan.get(), result.run_stats.operators,
                   &seen, &w);
  } else {
    w.Null();
  }
  w.EndObject();
  return w.Take();
}

std::string ExplainViewSelection(const AnalysisResult& analysis,
                                 size_t limit) {
  std::string out;
  out += StrFormat(
      "analysis over %zu job(s): %zu subgraph template(s) mined, %zu "
      "selected (%.1fms)\n",
      analysis.jobs_analyzed, analysis.subgraphs_mined,
      analysis.selected.size(), analysis.analysis_seconds * 1000);
  size_t n = std::min(limit, analysis.selected.size());
  for (size_t i = 0; i < n; ++i) {
    const SubgraphAggregate& agg = analysis.selected[i];
    out += StrFormat(
        "  #%zu %s (%s-rooted, %zu ops)\n", i + 1,
        agg.normalized.ToHex().substr(0, 16).c_str(),
        OpKindToString(agg.root_kind), agg.subtree_size);
    out += StrFormat(
        "     selected because: %lld occurrence(s) across %zu job(s) / %zu "
        "user(s), avg runtime %.3fms -> utility %.4fs\n",
        static_cast<long long>(agg.frequency), agg.jobs.size(),
        agg.users.size(), agg.AvgLatency() * 1000, agg.TotalUtility());
    out += StrFormat(
        "     costs: %s storage per instance; view/query cost ratio %.3f\n",
        HumanBytes(agg.AvgBytes()).c_str(), agg.ViewToQueryCostRatio());
    int popular = 0, total_designs = 0;
    for (const auto& [fp, entry] : agg.designs) {
      total_designs += entry.first;
      popular = std::max(popular, entry.first);
    }
    out += StrFormat(
        "     design: %s (seen in %d of %d occurrences); lifetime %llds "
        "from input lineage over {%s}\n",
        agg.PopularDesign().ToString().c_str(), popular, total_designs,
        static_cast<long long>(agg.max_recurrence_period),
        Join(std::vector<std::string>(agg.input_templates.begin(),
                                      agg.input_templates.end()),
             ", ")
            .c_str());
  }
  return out;
}

}  // namespace cloudviews
