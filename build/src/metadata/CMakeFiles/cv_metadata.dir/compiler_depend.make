# Empty compiler generated dependencies file for cv_metadata.
# This may be replaced when dependencies are built.
