#ifndef CLOUDVIEWS_STORAGE_STORAGE_MANAGER_H_
#define CLOUDVIEWS_STORAGE_STORAGE_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "common/result.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "plan/physical_properties.h"
#include "types/batch.h"

namespace cloudviews {

/// \brief An immutable stored stream (job input, job output, or
/// materialized view).
///
/// The GUID identifies the data version: recurring instances write new
/// GUIDs under new names, and any in-place rewrite (e.g. a GDPR scrub)
/// installs a fresh GUID, which changes downstream precise signatures.
struct StreamData {
  std::string name;
  std::string guid;
  Schema schema;
  std::vector<Batch> batches;
  /// How the stream is physically laid out (views record their mined
  /// design here; plain outputs usually leave it unspecified).
  PhysicalProperties props;
  LogicalTime created_at = 0;
  /// 0 means never expires; the storage manager purges past this time.
  LogicalTime expires_at = 0;
  int64_t total_rows = 0;
  int64_t total_bytes = 0;
  /// False for a torn write: the writer failed partway, so some batches
  /// are missing. OpenStream refuses incomplete streams — a torn partial
  /// must never be read (or registered) as if it were the full view.
  bool complete = true;
};

using StreamHandle = std::shared_ptr<const StreamData>;

/// Builds the physical path of a materialized view. The path encodes the
/// precise signature and producing job id, exactly as the paper stores
/// them "into the physical path of the materialized files" (Sec 5, 6.2).
std::string EncodeViewPath(const Hash128& normalized,
                           const Hash128& precise, uint64_t producer_job_id);

/// Recovers signature components from a view path; returns false when the
/// path is not a view path.
[[nodiscard]] bool ParseViewPath(const std::string& path, Hash128* normalized,
                   Hash128* precise, uint64_t* producer_job_id);

/// \brief Thread-safe in-memory store of all streams in the simulated
/// cluster; stands in for the SCOPE distributed store.
class StorageManager {
 public:
  explicit StorageManager(SimulatedClock* clock) : clock_(clock) {}

  /// Publishes stream/byte gauges (total and materialized-view slices) and
  /// a written-bytes counter into `metrics`. Call before concurrent use.
  void SetMetrics(obs::MetricsRegistry* metrics) EXCLUDES(mu_);

  /// Routes reads/writes through `fault` (storage.read / storage.write /
  /// storage.view_* points, keyed by stream name). Call before concurrent
  /// use; null disables injection.
  void SetFaultInjector(fault::FaultInjector* fault) { fault_ = fault; }

  /// Writes (or replaces) a stream. Expiry of 0 = never.
  Status WriteStream(StreamData data) EXCLUDES(mu_);

  Result<StreamHandle> OpenStream(const std::string& name) const
      EXCLUDES(mu_);
  [[nodiscard]] bool StreamExists(const std::string& name) const
      EXCLUDES(mu_);
  Status DeleteStream(const std::string& name) EXCLUDES(mu_);

  /// Deletes streams whose expiry passed; returns the number purged
  /// (Sec 5.4: "our Storage Manager takes care of purging the file once
  /// it expires").
  size_t PurgeExpired() EXCLUDES(mu_);

  std::vector<std::string> ListStreams(const std::string& prefix = "") const
      EXCLUDES(mu_);

  int64_t TotalBytes() const EXCLUDES(mu_);
  size_t NumStreams() const EXCLUDES(mu_);

  SimulatedClock* clock() const { return clock_; }

 private:
  /// Recomputes the level gauges from the stream map. O(streams), called
  /// only on mutation (writes replace existing names, so deltas would be
  /// error-prone for no gain at this scale).
  void UpdateGauges() REQUIRES(mu_);

  struct Instruments {
    obs::Counter* bytes_written = nullptr;
    obs::Gauge* streams = nullptr;
    obs::Gauge* total_bytes = nullptr;
    obs::Gauge* view_bytes = nullptr;
    obs::Gauge* view_count = nullptr;
  };

  SimulatedClock* clock_;
  /// Set once before concurrent use (test/CI wiring), read-only afterwards.
  fault::FaultInjector* fault_ = nullptr;
  Instruments obs_;
  mutable Mutex mu_;
  std::map<std::string, StreamHandle> streams_ GUARDED_BY(mu_);
};

/// Convenience: assembles a StreamData from batches, computing row/byte
/// totals.
StreamData MakeStreamData(std::string name, std::string guid, Schema schema,
                          std::vector<Batch> batches, LogicalTime now,
                          LogicalTime expires_at = 0,
                          PhysicalProperties props = {});

}  // namespace cloudviews

#endif  // CLOUDVIEWS_STORAGE_STORAGE_MANAGER_H_
