#ifndef CLOUDVIEWS_COMMON_MUTEX_H_
#define CLOUDVIEWS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cloudviews {

/// \brief std::mutex wrapper carrying the clang capability attributes.
///
/// libstdc++'s std::mutex is not annotated, so clang's thread-safety
/// analysis cannot see it; this wrapper is what makes GUARDED_BY /
/// REQUIRES enforceable across the tree. Use MutexLock for scoped
/// acquisition; raw std::mutex is banned outside this header by
/// tools/repo_lint.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII scoped lock over a Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex.
///
/// Wait takes the mutex the caller already holds (REQUIRES teaches the
/// analysis); re-check the predicate in a while loop around Wait so
/// guarded reads stay inside the caller's locked scope:
/// \code
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
/// \endcode
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously), and
  /// reacquires `mu` before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// Like Wait but also returns after `timeout`; callers re-check their
  /// predicate either way.
  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_MUTEX_H_
