#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "exec/batch_ops.h"
#include "exec/physical_operator.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace cloudviews {

Batch CombineBatches(const Schema& schema,
                     const std::vector<Batch>& batches) {
  Batch out(schema);
  for (const auto& b : batches) {
    out.AppendRowsFrom(b, 0, b.num_rows());
  }
  return out;
}

Batch SortBatch(const Batch& data, const std::vector<SortKey>& keys) {
  ResolvedSortKeys resolved = ResolveSortKeys(data.schema(), keys);
  return GatherRows(data, StableSortOrder(data, resolved));
}

Result<std::vector<Batch>> PartitionBatch(const Batch& data,
                                          const Partitioning& partitioning) {
  int count = partitioning.partition_count > 0 ? partitioning.partition_count
                                               : 1;
  std::vector<Batch> parts;
  parts.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) parts.emplace_back(data.schema());

  switch (partitioning.scheme) {
    case PartitionScheme::kAny:
    case PartitionScheme::kSingleton: {
      parts[0] = data;
      return parts;
    }
    case PartitionScheme::kRoundRobin: {
      for (size_t r = 0; r < data.num_rows(); ++r) {
        parts[r % static_cast<size_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kHash: {
      CV_ASSIGN_OR_RETURN(std::vector<int> cols,
                          ResolveColumns(data.schema(),
                                         partitioning.columns));
      for (size_t r = 0; r < data.num_rows(); ++r) {
        uint64_t h = RowKey(data, r, cols).lo;
        parts[h % static_cast<uint64_t>(count)].AppendRowFrom(data, r);
      }
      return parts;
    }
    case PartitionScheme::kRange: {
      // Approximate range partitioning: sort on the partition columns and
      // cut into equal-sized runs.
      std::vector<SortKey> keys;
      for (const auto& c : partitioning.columns) keys.push_back({c, true});
      Batch sorted = SortBatch(data, keys);
      size_t per = (sorted.num_rows() + static_cast<size_t>(count) - 1) /
                   static_cast<size_t>(count);
      if (per == 0) per = 1;
      for (size_t r = 0; r < sorted.num_rows(); ++r) {
        parts[std::min(r / per, static_cast<size_t>(count) - 1)]
            .AppendRowFrom(sorted, r);
      }
      return parts;
    }
  }
  return Status::Internal("unknown partition scheme");
}

/// First-execution-wins latch for a plan node reachable through more than
/// one parent. The first arriving thread runs the node; later arrivals
/// block on `cv` and copy the memoized result.
struct Executor::SharedNodeState {
  Mutex mu;
  CondVar cv;
  bool started GUARDED_BY(mu) = false;
  bool done GUARDED_BY(mu) = false;
  Status status GUARDED_BY(mu) = Status::OK();
  MorselSet result GUARDED_BY(mu);
};

/// Shared (per Execute call) driver state.
struct Executor::ExecState {
  /// Null runs everything inline on the submitting thread.
  ThreadPool* pool = nullptr;
  size_t morsel_rows = 4096;
  MonotonicClock* clock = nullptr;
  /// Executor-wide counters (null when uninstrumented).
  obs::Counter* morsels = nullptr;
  obs::Counter* rows = nullptr;
  obs::Counter* bytes = nullptr;
  /// One latch per node that appears under multiple parents; populated
  /// before execution starts, so lookups during execution are lock-free.
  std::unordered_map<const PlanNode*, std::unique_ptr<SharedNodeState>>
      shared_nodes;
  Mutex mu;
  /// Aggregate stats for the whole Execute call; concurrently-finishing
  /// operators insert their per-operator rows under mu.
  JobRunStats* stats PT_GUARDED_BY(mu) = nullptr;
};

namespace {

/// Counts how many distinct parent edges reach each node. Stops descending
/// on re-visit, so shared subtrees are walked once.
void CountParentEdges(const PlanNode* node,
                      std::unordered_map<const PlanNode*, int>* counts) {
  if (++(*counts)[node] > 1) return;
  for (const auto& child : node->children()) {
    CountParentEdges(child.get(), counts);
  }
}

/// Collects the multi-parent nodes in post-order (children before
/// parents), visiting each node once, so pre-execution runs every shared
/// subtree after the shared subtrees it itself depends on.
void CollectSharedPostOrder(
    PlanNode* node, const std::unordered_map<const PlanNode*, int>& counts,
    std::unordered_set<const PlanNode*>* visited,
    std::vector<PlanNode*>* out) {
  if (!visited->insert(node).second) return;
  for (const auto& child : node->children()) {
    CollectSharedPostOrder(child.get(), counts, visited, out);
  }
  if (counts.at(node) > 1) out->push_back(node);
}

}  // namespace

Result<JobRunStats> Executor::Execute(const PlanNodePtr& root) {
  if (!root->bound()) {
    return Status::InvalidArgument("plan must be bound before execution");
  }
  JobRunStats stats;
  ExecState state;
  state.pool =
      ctx_.options.worker_threads > 1 ? ctx_.pool : nullptr;
  state.morsel_rows =
      ctx_.options.morsel_rows > 0
          ? static_cast<size_t>(ctx_.options.morsel_rows)
          : size_t{1};
  state.clock = ctx_.clock != nullptr ? ctx_.clock : MonotonicClock::Real();
  if (ctx_.metrics != nullptr) {
    state.morsels = ctx_.metrics->GetCounter(
        "cv_exec_morsels_total", {}, "Morsels processed by all operators");
    state.rows = ctx_.metrics->GetCounter(
        "cv_exec_rows_total", {}, "Rows produced by all operators");
    state.bytes = ctx_.metrics->GetCounter(
        "cv_exec_bytes_total", {}, "Bytes produced by all operators");
  }
  state.stats = &stats;

  // DAG support: any node reachable through more than one parent gets a
  // run-once latch so its cpu_seconds is attributed exactly once.
  std::unordered_map<const PlanNode*, int> edge_counts;
  CountParentEdges(root.get(), &edge_counts);
  // order-insensitive: only populates the keyed shared-node map; nothing
  // downstream observes the visitation order.
  for (const auto& [node, count] : edge_counts) {
    if (count > 1) {
      state.shared_nodes.emplace(node,
                                 std::make_unique<SharedNodeState>());
    }
  }

  double start = state.clock->NowSeconds();

  // Shared subtrees run up front, children-first, from the submitting
  // thread (each still uses the pool internally). By the time the main
  // walk — or any pool task — reaches one, its latch is already done.
  // This matters for correctness, not just latency: the help-while-wait
  // scheduler may lend the thread *executing* a shared node to the other
  // parent's task, and if that task then blocked on the same latch the
  // pool would deadlock on its own stack.
  if (!state.shared_nodes.empty()) {
    std::unordered_set<const PlanNode*> visited;
    std::vector<PlanNode*> shared_order;
    CollectSharedPostOrder(root.get(), edge_counts, &visited,
                           &shared_order);
    for (PlanNode* node : shared_order) {
      auto r = ExecuteNode(node, &state);
      if (!r.ok()) return r.status();
    }
  }

  CV_ASSIGN_OR_RETURN(MorselSet result, ExecuteNode(root.get(), &state));
  stats.latency_seconds = state.clock->NowSeconds() - start;
  for (const auto& [id, op] : stats.operators) {
    stats.cpu_seconds += op.cpu_seconds;
  }
  stats.output_rows = static_cast<double>(MorselRowCount(result));
  stats.output_bytes = static_cast<double>(MorselByteSize(result));
  return stats;
}

Result<MorselSet> Executor::ExecuteNode(PlanNode* node, ExecState* state) {
  auto it = state->shared_nodes.find(node);
  if (it == state->shared_nodes.end()) {
    return ExecuteNodeImpl(node, state);
  }
  SharedNodeState* shared = it->second.get();
  {
    MutexLock lock(shared->mu);
    if (shared->started) {
      // The subtree already ran (shared nodes are pre-executed before the
      // main walk, so within one Execute this is always an immediate
      // memoized read; the wait only spins if a future caller races two
      // Execute calls over one latch, which per-Execute state precludes).
      while (!shared->done) shared->cv.Wait(shared->mu);
      if (!shared->status.ok()) return shared->status;
      return shared->result;
    }
    shared->started = true;
  }
  Result<MorselSet> r = ExecuteNodeImpl(node, state);
  MutexLock lock(shared->mu);
  if (r.ok()) {
    shared->result = std::move(r).ValueOrDie();
  } else {
    shared->status = r.status();
  }
  shared->done = true;
  shared->cv.NotifyAll();
  if (!shared->status.ok()) return shared->status;
  return shared->result;
}

Result<MorselSet> Executor::ExecuteNodeImpl(PlanNode* node,
                                            ExecState* state) {
  double subtree_start = state->clock->NowSeconds();

  // Execute children — independent subtrees — concurrently when a pool is
  // available. Error reporting is deterministic: the lowest-index failing
  // child wins regardless of completion order.
  size_t num_children = node->children().size();
  std::vector<MorselSet> inputs(num_children);
  std::vector<Status> child_status(num_children, Status::OK());
  if (state->pool != nullptr && num_children > 1) {
    TaskGroup group(state->pool);
    for (size_t i = 0; i < num_children; ++i) {
      group.Spawn([this, node, state, i, &inputs, &child_status] {
        auto r = ExecuteNode(node->children()[i].get(), state);
        if (r.ok()) {
          inputs[i] = std::move(r).ValueOrDie();
        } else {
          child_status[i] = r.status();
        }
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < num_children; ++i) {
      auto r = ExecuteNode(node->children()[i].get(), state);
      if (r.ok()) {
        inputs[i] = std::move(r).ValueOrDie();
      } else {
        child_status[i] = r.status();
      }
    }
  }
  for (auto& s : child_status) CV_RETURN_NOT_OK(s);

  // The operator's own work: open, phased morsel processing, close. Every
  // callback is wrapped in a thread-CPU timer; cpu_seconds is the sum of
  // the deltas across all workers that touched this operator.
  CpuAccumulator cpu;
  OperatorContext octx;
  octx.exec = &ctx_;
  octx.pool = state->pool;
  octx.morsel_rows = state->morsel_rows;
  octx.cpu = &cpu;

  double own_start = state->clock->NowSeconds();
  CV_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOperator> op,
                      MakePhysicalOperator(node));
  {
    ScopedThreadCpuTimer timer(&cpu);
    CV_RETURN_NOT_OK(op->Open(octx, std::move(inputs)));
  }
  uint64_t total_morsels = 0;
  for (size_t phase = 0; phase < op->num_phases(); ++phase) {
    {
      ScopedThreadCpuTimer timer(&cpu);
      CV_RETURN_NOT_OK(op->PreparePhase(octx, phase));
    }
    size_t n = op->NumMorsels(phase);
    total_morsels += n;
    std::vector<Status> morsel_status(n, Status::OK());
    ParallelFor(state->pool, n, [&](size_t m) {
      ScopedThreadCpuTimer timer(&cpu);
      if (ctx_.fault != nullptr) {
        Status injected = ctx_.fault->MaybeInject(
            fault::points::kExecMorsel,
            std::to_string(ctx_.job_id) + ":" +
                std::to_string(node->id()) + ":" + std::to_string(phase) +
                ":" + std::to_string(m));
        if (!injected.ok()) {
          morsel_status[m] = std::move(injected);
          return;
        }
      }
      morsel_status[m] = op->ProcessMorsel(octx, phase, m);
    });
    // Deterministic error selection: lowest morsel index wins.
    for (auto& s : morsel_status) CV_RETURN_NOT_OK(s);
  }
  MorselSet out;
  {
    ScopedThreadCpuTimer timer(&cpu);
    CV_ASSIGN_OR_RETURN(out, op->Close(octx));
  }

  double end = state->clock->NowSeconds();
  OperatorRuntimeStats op_stats;
  op_stats.node_id = node->id();
  op_stats.kind = node->kind();
  op_stats.rows = static_cast<double>(MorselRowCount(out));
  op_stats.bytes = static_cast<double>(MorselByteSize(out));
  op_stats.exclusive_seconds = end - own_start;
  // Wall span of the whole subtree. With parallel children this is the
  // real elapsed time (not the sum of child times), so the invariant
  // job latency >= root inclusive >= any exclusive still holds.
  op_stats.inclusive_seconds = end - subtree_start;
  op_stats.cpu_seconds = cpu.seconds();
  if (state->morsels != nullptr) {
    state->morsels->Increment(total_morsels);
    state->rows->Increment(static_cast<uint64_t>(op_stats.rows));
    state->bytes->Increment(static_cast<uint64_t>(op_stats.bytes));
  }
  {
    MutexLock lock(state->mu);
    state->stats->operators[node->id()] = op_stats;
  }
  return out;
}

}  // namespace cloudviews
