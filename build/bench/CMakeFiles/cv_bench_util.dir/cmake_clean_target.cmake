file(REMOVE_RECURSE
  "libcv_bench_util.a"
)
