#ifndef CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_
#define CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_

#include <set>
#include <string>
#include <vector>

#include "tools/token.h"

namespace cloudviews {
namespace lint {

/// One lint finding: file, 1-based line (0 for whole-file rules), the rule
/// slug, and a human-readable message.
struct Violation {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Everything a rule needs about one file. Rules are token-level: the
/// lexer has already removed comments and string/char literal *contents*
/// from `code`, so prose can never trigger a ban and a banned call can
/// never hide in a multi-line raw string. Directive bodies stay in `code`
/// (a macro that expands to srand() is still a violation); `comments`
/// carries the justification comments some rules look for.
struct FileCtx {
  std::string display_path;
  std::string rel_path;
  const std::string* content = nullptr;  // raw bytes (header-guard rule)
  std::vector<Token> code;               // everything but comments
  std::vector<Token> comments;
  std::set<int> suppressed_lines;  // lines carrying a reasoned NOLINT
  bool is_header = false;
};

/// One registered rule. Registration is data-driven: AllRules() is the
/// single table, and docs/lint_rules.md must list exactly these rows (a
/// test asserts the counts match).
struct LintRule {
  const char* name;     // rule slug reported in Violation::rule
  const char* summary;  // one-line description (mirrors the docs table)
  const char* fixture;  // file under tools/lint_fixtures/ proving it
  void (*fn)(const FileCtx&, std::vector<Violation>*);
};

/// The rule table (see DESIGN.md "Correctness tooling"):
///  banned-random      std::rand / srand / random_device / time(nullptr)
///                     outside common/random (use cloudviews::Rng)
///  banned-clock       ad-hoc std::chrono clocks outside common/clock.h
///                     and src/obs (use MonotonicClock)
///  banned-sleep       sleep_for / sleep_until / usleep / nanosleep
///                     outside fault/backoff (use RetryWithBackoff)
///  banned-sync        raw std sync primitives outside common/mutex.h
///                     (use the annotated Mutex / MutexLock / CondVar)
///  naked-new          `new` outside a smart-pointer factory
///  mutex-guarded      a header declaring a Mutex member must annotate the
///                     state it protects with GUARDED_BY / PT_GUARDED_BY
///  metadata-map-stripe a GUARDED_BY'd map member in a src/metadata/
///                     header needs a "shard-stripe" justification
///  compensation-comment a PlanNode construction in view_matcher.* /
///                     view_rewriter.* needs a "// compensation: <why>"
///  assert-side-effect assert() whose argument mutates state
///  header-guard       include guards must be CLOUDVIEWS_<PATH>_H_
///  nolint-reason      NOLINT must carry a category and reason
///
/// A line carrying a reasoned NOLINT(rule): why marker is exempt from the
/// other rules.
const std::vector<LintRule>& AllRules();

/// Lints one file. `rel_path` is the repo-relative path ("src/...",
/// "tests/...") used for per-path rule exemptions and the expected header
/// guard; `display_path` is what violations report.
std::vector<Violation> LintFile(const std::string& display_path,
                                const std::string& rel_path,
                                const std::string& content);

/// Recursively lints every .h/.cc/.cpp under each root directory. Paths
/// inside the roots are made repo-relative by prefixing the root's
/// basename (passing "/repo/src" yields rel paths "src/...").
/// Unreadable roots are reported as violations with rule "io-error".
std::vector<Violation> LintTree(const std::vector<std::string>& roots);

/// Line-oriented comment/string stripper kept for callers that work on
/// single lines. The rules themselves no longer use it — they run on the
/// Tokenize() stream, which handles what this function cannot (multi-line
/// raw strings, line splices).
std::string SanitizeLine(const std::string& line, bool* in_block_comment);

}  // namespace lint
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_REPO_LINT_LIB_H_
