file(REMOVE_RECURSE
  "CMakeFiles/tpcds_test.dir/tpcds_test.cc.o"
  "CMakeFiles/tpcds_test.dir/tpcds_test.cc.o.d"
  "tpcds_test"
  "tpcds_test.pdb"
  "tpcds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
