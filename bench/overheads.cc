// Reproduces the Sec 7.3 overheads study: analyzer runtime, metadata
// lookup latency (1 vs 5 service threads), and the optimization-time
// impact of creating vs using materialized views.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "tpcds/tpcds.h"

namespace cloudviews {
namespace bench {
namespace {

int Run() {
  FigureHeader(
      "Section 7.3", "CloudViews overheads",
      "analyzer: couple of hours for tens of thousands of jobs (run only "
      "on workload change); metadata lookup 19ms (1 thread) -> 14.3ms (5 "
      "threads); optimization time +28% when creating a view, -17% when "
      "using one");

  // --- Analyzer cost --------------------------------------------------------
  {
    ClusterRun run =
        RunClusterInstance(BusinessUnitProfile(), "2018-01-01");
    CloudViewsAnalyzer analyzer;
    auto analysis = analyzer.Analyze(run.cv->repository()->Jobs());
    std::printf("\nanalyzer cost\n");
    TablePrinter table({"jobs analyzed", "subgraphs mined", "seconds",
                        "us per job"});
    table.AddRow({StrFormat("%zu", analysis.jobs_analyzed),
                  StrFormat("%zu", analysis.subgraphs_mined),
                  StrFormat("%.3f", analysis.analysis_seconds),
                  StrFormat("%.1f", 1e6 * analysis.analysis_seconds /
                                        static_cast<double>(std::max<size_t>(
                                            1, analysis.jobs_analyzed)))});
    table.Print(std::cout);
    PaperVsMeasured("analysis scales linearly in jobs",
                    "~2h for 10k-100k jobs",
                    StrFormat("%.0fus/job here",
                              1e6 * analysis.analysis_seconds /
                                  static_cast<double>(std::max<size_t>(
                                      1, analysis.jobs_analyzed))));
  }

  // --- Metadata lookup latency ----------------------------------------------
  {
    std::printf("\nmetadata service lookup latency (simulated AzureSQL "
                "backend)\n");
    TablePrinter table({"service threads", "latency (ms)"});
    SimulatedClock clock;
    StorageManager storage(&clock);
    double one = 0, five = 0;
    for (int threads : {1, 2, 3, 4, 5}) {
      MetadataServiceConfig config;
      config.service_threads = threads;
      MetadataService service(&clock, &storage, config);
      double ms = service.SimulatedLookupLatency() * 1000;
      if (threads == 1) one = ms;
      if (threads == 5) five = ms;
      table.AddRow({StrFormat("%d", threads), StrFormat("%.1f", ms)});
    }
    table.Print(std::cout);
    PaperVsMeasured("lookup latency, 1 thread", "19ms",
                    StrFormat("%.1fms", one));
    PaperVsMeasured("lookup latency, 5 threads", "14.3ms",
                    StrFormat("%.1fms", five));
  }

  // --- Optimization time: create vs use --------------------------------------
  {
    CloudViewsConfig config;
    config.analyzer.selection.top_k = 10;
    config.analyzer.selection.min_frequency = 3;
    CloudViews cv(config);
    tpcds::TpcdsGenerator gen;
    (void)gen.WriteTables(cv.storage());

    // History + annotations + materialized views.
    for (int q = 1; q <= tpcds::kNumQueries; ++q) {
      (void)cv.Submit(tpcds::MakeQueryJob(q), false);
    }
    cv.RunAnalyzerAndLoad();
    for (int q = 1; q <= tpcds::kNumQueries; ++q) {
      (void)cv.Submit(tpcds::MakeQueryJob(q), true);
    }

    // A catalog that always grants the build lock and never finds a view:
    // every compile against it exercises the "creating" path, repeatably.
    class AlwaysCreateCatalog : public ViewCatalogInterface {
     public:
      std::optional<MaterializedViewInfo> FindMaterialized(
          const Hash128&, const Hash128&) override {
        return std::nullopt;
      }
      bool ProposeMaterialize(const Hash128&, const Hash128&, uint64_t,
                              double) override {
        return true;
      }
    };
    AlwaysCreateCatalog create_catalog;

    Optimizer optimizer(config.optimizer);
    auto min_compile = [&](const PlanNodePtr& logical,
                           const OptimizeContext& ctx, int* built,
                           int* used) {
      double best = 1e18;
      for (int rep = 0; rep < 5; ++rep) {
        auto r = optimizer.Optimize(logical, ctx);
        if (!r.ok()) return 0.0;
        best = std::min(best, r->optimize_seconds);
        if (built != nullptr) *built = r->views_materialized;
        if (used != nullptr) *used = r->views_reused;
      }
      return best;
    };

    double create_sum = 0, use_sum = 0, create_base = 0, use_base = 0;
    int creates = 0, uses = 0;
    for (int q = 1; q <= tpcds::kNumQueries; ++q) {
      JobDefinition def = tpcds::MakeQueryJob(q);
      OptimizeContext plain_ctx;
      plain_ctx.storage = cv.storage();
      plain_ctx.feedback = cv.repository();
      double plain = min_compile(def.logical_plan, plain_ctx, nullptr,
                                 nullptr);

      OptimizeContext cv_ctx = plain_ctx;
      cv_ctx.annotations =
          cv.metadata()->GetRelevantViews(JobService::DefaultTags(def));
      if (cv_ctx.annotations.empty()) continue;

      // Using: the real metadata service holds the materialized views.
      cv_ctx.view_catalog = cv.metadata();
      int used = 0;
      double with_use = min_compile(def.logical_plan, cv_ctx, nullptr,
                                    &used);
      if (used > 0) {
        use_sum += with_use;
        use_base += plain;
        ++uses;
      }

      // Creating: the grant-everything catalog forces the build path.
      cv_ctx.view_catalog = &create_catalog;
      int built = 0;
      double with_create = min_compile(def.logical_plan, cv_ctx, &built,
                                       nullptr);
      if (built > 0) {
        create_sum += with_create;
        create_base += plain;
        ++creates;
      }
    }
    std::printf("\noptimization time impact (TPC-DS, min of 5 compiles per "
                "query)\n");
    TablePrinter table({"mode", "queries", "avg plain (us)",
                        "avg with CloudViews (us)", "change %"});
    if (creates > 0) {
      table.AddRow({"creating a view", StrFormat("%d", creates),
                    StrFormat("%.0f", 1e6 * create_base / creates),
                    StrFormat("%.0f", 1e6 * create_sum / creates),
                    StrFormat("%+.0f",
                              -PctImprovement(create_base, create_sum))});
    }
    if (uses > 0) {
      table.AddRow({"using a view", StrFormat("%d", uses),
                    StrFormat("%.0f", 1e6 * use_base / uses),
                    StrFormat("%.0f", 1e6 * use_sum / uses),
                    StrFormat("%+.0f", -PctImprovement(use_base, use_sum))});
    }
    table.Print(std::cout);
    PaperVsMeasured(
        "optimization time when creating", "+28%",
        creates ? StrFormat("%+.0f%%",
                            -PctImprovement(create_base, create_sum))
                : "n/a");
    PaperVsMeasured(
        "optimization time when using", "-17%",
        uses ? StrFormat("%+.0f%%", -PctImprovement(use_base, use_sum))
             : "n/a");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
