#ifndef CLOUDVIEWS_OPTIMIZER_PHYSICAL_PLANNER_H_
#define CLOUDVIEWS_OPTIMIZER_PHYSICAL_PLANNER_H_

#include "common/result.h"
#include "plan/plan_node.h"

namespace cloudviews {

struct PhysicalPlannerConfig {
  /// Partition count used for inserted hash exchanges.
  int default_partition_count = 16;
};

/// \brief Turns a logical tree into an executable physical tree.
///
/// Deterministically (1) picks join / aggregate algorithms from the
/// children's delivered properties (merge/stream when sorted inputs are
/// already available, hash otherwise), and (2) inserts Exchange / Sort
/// enforcers wherever a child does not deliver its parent's required
/// properties. Determinism matters: recurring instances must compile to
/// identical trees for signatures to match (Sec 3).
class PhysicalPlanner {
 public:
  explicit PhysicalPlanner(PhysicalPlannerConfig config = {})
      : config_(config) {}

  /// The input must be bound; the output is re-bound.
  Result<PlanNodePtr> Plan(PlanNodePtr root) const;

  /// Re-runs only the enforcer-insertion step; used after view substitution
  /// when a ViewRead's delivered design may not satisfy its parent
  /// (Sec 7.1, factor (iii): extra partitioning/sorting for views).
  Result<PlanNodePtr> RepairProperties(PlanNodePtr root) const;

 private:
  PlanNodePtr ChooseAlgorithms(PlanNodePtr node) const;
  PlanNodePtr InsertEnforcers(PlanNodePtr node) const;

  PhysicalPlannerConfig config_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_OPTIMIZER_PHYSICAL_PLANNER_H_
