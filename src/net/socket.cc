#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cloudviews {
namespace net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Status MakeAddr(const std::string& address, uint16_t port,
                sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + address);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Listen(const std::string& address, uint16_t port,
                              int backlog) {
  sockaddr_in addr;
  CV_RETURN_NOT_OK(MakeAddr(address, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kIOError, Errno("socket"));
  Socket sock(fd);
  int one = 1;
  // Best-effort: a failed REUSEADDR only matters for fast restarts.
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status(StatusCode::kIOError, Errno("bind"));
  }
  if (::listen(fd, backlog) != 0) {
    return Status(StatusCode::kIOError, Errno("listen"));
  }
  return sock;
}

Result<Socket> Socket::Connect(const std::string& address, uint16_t port) {
  sockaddr_in addr;
  CV_RETURN_NOT_OK(MakeAddr(address, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kIOError, Errno("socket"));
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Status(StatusCode::kIOError, Errno("connect"));
  int one = 1;
  // Latency over throughput for a request/response protocol.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<Socket> Socket::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    // EINVAL: the listener was shut down to stop the accept loop.
    StatusCode code = errno == EINVAL ? StatusCode::kAborted
                                      : StatusCode::kIOError;
    return Status(code, Errno("accept"));
  }
}

Result<uint16_t> Socket::BoundPort() const {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status(StatusCode::kIOError, Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Status Socket::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kIOError, Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvExactly(size_t n, std::string* out) {
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, &(*out)[got], n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kIOError, Errno("recv"));
    }
    if (r == 0) {
      if (got == 0) return Status(StatusCode::kAborted, "connection closed");
      return Status(StatusCode::kParseError, "wire: truncated frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Status SendFrame(Socket* sock, MsgType type, std::string_view payload) {
  return sock->SendAll(EncodeFrame(type, payload));
}

Status RecvFrame(Socket* sock, FrameHeader* header, std::string* payload) {
  std::string head;
  CV_RETURN_NOT_OK(sock->RecvExactly(kFrameHeaderBytes, &head));
  CV_RETURN_NOT_OK(DecodeFrameHeader(head.data(), header));
  if (header->payload_len == 0) {
    payload->clear();
    return Status::OK();
  }
  return sock->RecvExactly(header->payload_len, payload);
}

}  // namespace net
}  // namespace cloudviews
