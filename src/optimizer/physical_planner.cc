#include "optimizer/physical_planner.h"

namespace cloudviews {

PlanNodePtr PhysicalPlanner::ChooseAlgorithms(PlanNodePtr node) const {
  for (auto& c : node->mutable_children()) c = ChooseAlgorithms(c);

  if (node->kind() == OpKind::kJoin) {
    auto* join = static_cast<JoinNode*>(node.get());
    if (join->algorithm() == JoinAlgorithm::kUnspecified) {
      // Merge join only pays off when both inputs already arrive sorted on
      // the keys (and it cannot produce LEFT OUTER in this engine).
      SortOrder left_needed, right_needed;
      for (const auto& k : join->LeftKeys()) {
        left_needed.keys.push_back({k, true});
      }
      for (const auto& k : join->RightKeys()) {
        right_needed.keys.push_back({k, true});
      }
      bool sorted_inputs =
          join->children()[0]->bound() && join->children()[1]->bound() &&
          join->children()[0]->Delivered().sort_order.Satisfies(
              left_needed) &&
          join->children()[1]->Delivered().sort_order.Satisfies(
              right_needed);
      if (sorted_inputs && join->join_type() == JoinType::kInner) {
        join->set_algorithm(JoinAlgorithm::kMerge);
      } else {
        join->set_algorithm(JoinAlgorithm::kHash);
      }
    }
  }

  if (node->kind() == OpKind::kAggregate) {
    auto* agg = static_cast<AggregateNode*>(node.get());
    if (agg->algorithm() == AggAlgorithm::kUnspecified) {
      SortOrder needed;
      for (const auto& k : agg->group_keys()) needed.keys.push_back({k, true});
      bool sorted = !agg->group_keys().empty() && agg->child()->bound() &&
                    agg->child()->Delivered().sort_order.Satisfies(needed);
      agg->set_algorithm(sorted ? AggAlgorithm::kStream : AggAlgorithm::kHash);
    }
  }

  return node;
}

PlanNodePtr PhysicalPlanner::InsertEnforcers(PlanNodePtr node) const {
  for (auto& c : node->mutable_children()) c = InsertEnforcers(c);

  for (size_t i = 0; i < node->children().size(); ++i) {
    PhysicalProperties required = node->RequiredFromChild(i);
    if (!required.IsSpecified()) continue;
    PlanNodePtr child = node->children()[i];
    if (!child->bound()) continue;  // freshly inserted; delivered unknown yet
    PhysicalProperties delivered = child->Delivered();

    if (!delivered.partitioning.Satisfies(required.partitioning)) {
      Partitioning target = required.partitioning;
      if (target.partition_count == 0 &&
          target.scheme != PartitionScheme::kSingleton) {
        target.partition_count = config_.default_partition_count;
      }
      child = std::make_shared<ExchangeNode>(child, target);
      // A fresh shuffle destroys any sort order the child delivered.
      delivered = PhysicalProperties{};
      delivered.partitioning = target;
      // Bind the new node so a subsequent Sort insertion can inspect it.
      Status st = child->Bind();
      if (!st.ok()) return node;  // leave untouched; caller's Bind will fail
    }
    if (!delivered.sort_order.Satisfies(required.sort_order) &&
        required.sort_order.IsSorted()) {
      child = std::make_shared<SortNode>(child, required.sort_order.keys);
      Status st = child->Bind();
      if (!st.ok()) return node;
    }
    node->mutable_children()[i] = child;
  }
  return node;
}

Result<PlanNodePtr> PhysicalPlanner::Plan(PlanNodePtr root) const {
  if (!root->bound()) {
    return Status::InvalidArgument("physical planner needs a bound plan");
  }
  root = ChooseAlgorithms(std::move(root));
  root = InsertEnforcers(std::move(root));
  CV_RETURN_NOT_OK(root->Bind());
  return root;
}

Result<PlanNodePtr> PhysicalPlanner::RepairProperties(PlanNodePtr root) const {
  root = InsertEnforcers(std::move(root));
  CV_RETURN_NOT_OK(root->Bind());
  return root;
}

}  // namespace cloudviews
