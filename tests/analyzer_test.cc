#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "core/cloudviews.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

/// Builds a small executed workload: `n_sharing` jobs containing the shared
/// aggregate + one unrelated job, all executed for real so runtime stats
/// exist.
class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WriteClickStream(cv_.storage(), "clicks_2018-01-01", 1500, 7,
                     "2018-01-01");
    WriteClickStream(cv_.storage(), "other_2018-01-01", 300, 9,
                     "2018-01-01");
  }

  void RunSharingJob(const std::string& name, const std::string& vc,
                     const std::string& user,
                     LogicalTime period = kSecondsPerDay) {
    JobDefinition def;
    def.template_id = name;
    def.vc = vc;
    def.user = user;
    def.recurrence_period = period;
    def.logical_plan = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                           .Output(name + "_out")
                           .Build();
    auto r = cv_.Submit(def, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  void RunUnrelatedJob() {
    JobDefinition def;
    def.template_id = "unrelated";
    def.vc = "vc9";
    def.user = "carol";
    def.logical_plan =
        PlanBuilder::Extract("other_{date}", "other_2018-01-01",
                             "guid-other", testing_util::ClickSchema())
            .Filter(Lt(Col("latency"), Lit(int64_t{100})))
            .Output("unrelated_out")
            .Build();
    auto r = cv_.Submit(def, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  CloudViews cv_;
};

TEST_F(AnalyzerTest, AggregatesCountFrequencyAndJobs) {
  RunSharingJob("t1", "vc1", "alice");
  RunSharingJob("t2", "vc2", "bob");
  RunUnrelatedJob();

  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());

  // Find the shared aggregate subgraph (frequency 2, two jobs).
  bool found = false;
  for (const auto& [sig, agg] : overlap.aggregates()) {
    if (agg.root_kind == OpKind::kAggregate && agg.frequency == 2) {
      found = true;
      EXPECT_EQ(agg.jobs.size(), 2u);
      EXPECT_EQ(agg.users.size(), 2u);
      EXPECT_EQ(agg.vcs.size(), 2u);
      EXPECT_EQ(agg.input_templates.size(), 1u);
      EXPECT_EQ(*agg.input_templates.begin(), "clicks_{date}");
      EXPECT_GT(agg.AvgLatency(), 0);
      EXPECT_GT(agg.AvgRows(), 0);
      EXPECT_GT(agg.ViewToQueryCostRatio(), 0);
      EXPECT_LE(agg.ViewToQueryCostRatio(), 1.01);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AnalyzerTest, ReportPercentagesOnCraftedWorkload) {
  RunSharingJob("t1", "vc1", "alice");
  RunSharingJob("t2", "vc2", "bob");
  RunUnrelatedJob();

  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  EXPECT_EQ(report.total_jobs, 3u);
  EXPECT_EQ(report.overlapping_jobs, 2u);
  EXPECT_NEAR(report.PctOverlappingJobs(), 66.7, 0.1);
  EXPECT_EQ(report.total_users, 3u);
  EXPECT_EQ(report.users_with_overlap, 2u);
  EXPECT_GT(report.PctOverlappingSubgraphs(), 0);
  ASSERT_EQ(report.per_vc.size(), 3u);
  EXPECT_EQ(report.per_vc.at("vc1").overlapping_jobs, 1u);
  EXPECT_EQ(report.per_vc.at("vc9").overlapping_jobs, 0u);
  // Both sharing jobs have the same overlapping subgraph chain.
  EXPECT_EQ(report.overlaps_per_job.size(), 2u);
  EXPECT_FALSE(report.frequencies.empty());
  EXPECT_FALSE(report.overlap_occurrences_by_operator.empty());
}

TEST_F(AnalyzerTest, PhysicalDesignPopularityWins) {
  RunSharingJob("t1", "vc1", "alice");
  RunSharingJob("t2", "vc2", "bob");
  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());
  for (const auto& [sig, agg] : overlap.aggregates()) {
    if (agg.root_kind == OpKind::kAggregate && agg.frequency == 2) {
      // Both occurrences deliver hash(page); it must be the popular design.
      PhysicalProperties design = agg.PopularDesign();
      EXPECT_EQ(design.partitioning.scheme, PartitionScheme::kHash);
      ASSERT_EQ(design.partitioning.columns.size(), 1u);
      EXPECT_EQ(design.partitioning.columns[0], "page");
    }
  }
}

TEST_F(AnalyzerTest, LifetimeIsMaxRecurrencePeriod) {
  RunSharingJob("hourly", "vc1", "alice", kSecondsPerHour);
  RunSharingJob("weekly", "vc2", "bob", kSecondsPerWeek);
  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());
  for (const auto& [sig, agg] : overlap.aggregates()) {
    if (agg.frequency == 2) {
      // Hourly views consumed by weekly jobs must live a week (Sec 5.4).
      EXPECT_EQ(agg.max_recurrence_period, kSecondsPerWeek);
    }
  }
}

TEST_F(AnalyzerTest, AnalyzerProducesAnnotationsWithTags) {
  RunSharingJob("t1", "vc1", "alice");
  RunSharingJob("t2", "vc2", "bob");
  AnalyzerConfig config;
  config.selection.top_k = 1;
  CloudViewsAnalyzer analyzer(config);
  AnalysisResult result = analyzer.Analyze(cv_.repository()->Jobs());
  ASSERT_EQ(result.annotations.size(), 1u);
  const auto& ann = result.annotations[0];
  EXPECT_GE(ann.annotation.frequency, 2);
  EXPECT_GT(ann.annotation.avg_runtime_seconds, 0);
  EXPECT_EQ(ann.annotation.lifetime_seconds, kSecondsPerDay);
  // Tags cover both containing templates.
  EXPECT_EQ(ann.tags.size(), 2u);
  EXPECT_NE(std::find(ann.tags.begin(), ann.tags.end(), "template:t1"),
            ann.tags.end());
  EXPECT_GT(result.analysis_seconds, 0);
  EXPECT_EQ(result.jobs_analyzed, 2u);
}

// --- Selection policies ------------------------------------------------------------

SubgraphAggregate MakeAgg(uint64_t sig, int64_t freq, double latency,
                          double bytes, OpKind kind = OpKind::kAggregate,
                          std::set<uint64_t> jobs = {}) {
  SubgraphAggregate agg;
  agg.normalized = Hash128{sig, 0};
  agg.root_kind = kind;
  agg.frequency = freq;
  agg.sum_latency = latency * static_cast<double>(freq);
  agg.sum_bytes = bytes * static_cast<double>(freq);
  agg.sum_job_latency = 10.0 * static_cast<double>(freq);
  agg.jobs = std::move(jobs);
  return agg;
}

using AggMap =
    std::unordered_map<Hash128, SubgraphAggregate, Hash128Hasher>;

AggMap ToMap(std::vector<SubgraphAggregate> aggs) {
  AggMap map;
  for (auto& a : aggs) map.emplace(a.normalized, std::move(a));
  return map;
}

TEST(ViewSelectorTest, TopKUtilityOrdersAndTruncates) {
  AggMap aggs = ToMap({MakeAgg(1, 5, 2.0, 100),     // utility 8
                       MakeAgg(2, 10, 1.0, 100),    // utility 9
                       MakeAgg(3, 2, 10.0, 100)});  // utility 10
  SelectionConfig config;
  config.top_k = 2;
  ViewSelector selector(config);
  auto selected = selector.Select(aggs);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->normalized.hi, 3u);
  EXPECT_EQ(selected[1]->normalized.hi, 2u);
}

TEST(ViewSelectorTest, FiltersApply) {
  AggMap aggs = ToMap({
      MakeAgg(1, 1, 100.0, 10),                      // below min frequency
      MakeAgg(2, 5, 0.001, 10),                      // below min runtime
      MakeAgg(3, 5, 100.0, 10, OpKind::kExtract),    // extract root
      MakeAgg(4, 5, 100.0, 10),                      // survives
  });
  SelectionConfig config;
  config.min_frequency = 2;
  config.min_runtime_seconds = 0.01;
  ViewSelector selector(config);
  auto selected = selector.Select(aggs);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0]->normalized.hi, 4u);
}

TEST(ViewSelectorTest, MinCostFractionFiltersCheapViews) {
  auto cheap = MakeAgg(1, 5, 1.0, 10);
  cheap.sum_job_latency = 1000.0 * 5;  // ratio 0.001
  auto pricey = MakeAgg(2, 5, 5.0, 10);  // ratio 0.5
  AggMap aggs = ToMap({cheap, pricey});
  SelectionConfig config;
  config.min_cost_fraction_of_job = 0.2;
  ViewSelector selector(config);
  auto selected = selector.Select(aggs);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0]->normalized.hi, 2u);
}

TEST(ViewSelectorTest, PerJobCapLimitsSelections) {
  AggMap aggs = ToMap({MakeAgg(1, 5, 10.0, 10, OpKind::kAggregate, {1, 2}),
                       MakeAgg(2, 5, 5.0, 10, OpKind::kAggregate, {1, 3})});
  SelectionConfig config;
  config.max_per_job = 1;
  ViewSelector selector(config);
  auto selected = selector.Select(aggs);
  // Both contain job 1; only the higher-utility one is kept.
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0]->normalized.hi, 1u);
}

TEST(ViewSelectorTest, GreedyPackingRespectsBudget) {
  AggMap aggs = ToMap({MakeAgg(1, 5, 10.0, 600),
                       MakeAgg(2, 5, 9.0, 500),
                       MakeAgg(3, 5, 1.0, 50)});
  SelectionConfig config;
  config.policy = SelectionConfig::Policy::kPackGreedy;
  config.storage_budget_bytes = 1000;
  ViewSelector selector(config);
  auto selected = selector.Select(aggs);
  double used = 0;
  for (const auto* a : selected) used += a->AvgBytes();
  EXPECT_LE(used, 1000);
  EXPECT_GE(selected.size(), 1u);
}

TEST(ViewSelectorTest, KnapsackBeatsGreedyOnDensityTrap) {
  // Classic greedy trap: the dense small item blocks the big valuable one.
  AggMap aggs = ToMap({MakeAgg(1, 2, 10.0, 20),      // utility 10, density .5
                       MakeAgg(2, 2, 100.0, 990)});  // utility 100, density .1
  SelectionConfig config;
  config.storage_budget_bytes = 1000;
  config.knapsack_granularity_bytes = 10;

  config.policy = SelectionConfig::Policy::kPackGreedy;
  auto greedy = ViewSelector(config).Select(aggs);
  config.policy = SelectionConfig::Policy::kPackKnapsack;
  auto knapsack = ViewSelector(config).Select(aggs);

  auto total = [](const std::vector<const SubgraphAggregate*>& v) {
    double u = 0;
    for (const auto* a : v) u += a->TotalUtility();
    return u;
  };
  EXPECT_DOUBLE_EQ(total(greedy), 10.0);  // dense item blocks the budget
  EXPECT_DOUBLE_EQ(total(knapsack), 100.0);
}

TEST(ViewSelectorTest, EvictionPicksMinimumUtility) {
  auto a1 = MakeAgg(1, 5, 10.0, 100);
  auto a2 = MakeAgg(2, 5, 1.0, 100);
  auto a3 = MakeAgg(3, 5, 5.0, 100);
  std::vector<const SubgraphAggregate*> selected{&a1, &a2, &a3};
  auto evict = ViewSelector::SelectForEviction(selected, 150);
  ASSERT_EQ(evict.size(), 2u);
  EXPECT_EQ(evict[0]->normalized.hi, 2u);  // lowest utility first
  EXPECT_EQ(evict[1]->normalized.hi, 3u);
}

TEST_F(AnalyzerTest, SubmissionOrderPutsBuildersFirst) {
  RunSharingJob("t1", "vc1", "alice");
  RunSharingJob("t2", "vc2", "bob");
  RunUnrelatedJob();
  AnalyzerConfig config;
  config.selection.top_k = 1;
  CloudViewsAnalyzer analyzer(config);
  AnalysisResult result = analyzer.Analyze(cv_.repository()->Jobs());
  ASSERT_EQ(result.submission_order.size(), 3u);
  // The first job in the order must be one of the two sharing jobs.
  ASSERT_FALSE(result.selected.empty());
  const auto& jobs = result.selected[0].jobs;
  EXPECT_TRUE(jobs.count(result.submission_order[0]) > 0);
}

}  // namespace
}  // namespace cloudviews
