#include <gtest/gtest.h>

#include "plan/plan_builder.h"
#include "plan/plan_node.h"
#include "signature/signature.h"

namespace cloudviews {
namespace {

Schema ClickSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

PlanBuilder Clicks(const std::string& date = "2018-01-01",
                   const std::string& guid = "g1") {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date, guid,
                              ClickSchema());
}

// --- Physical properties -------------------------------------------------------

TEST(PhysicalPropsTest, HashPartitioningSatisfaction) {
  auto p = Partitioning::Hash({"a"}, 8);
  EXPECT_TRUE(p.Satisfies(Partitioning::Hash({"a"}, 0)));
  EXPECT_TRUE(p.Satisfies(Partitioning::Hash({"a"}, 8)));
  EXPECT_FALSE(p.Satisfies(Partitioning::Hash({"a"}, 16)));
  EXPECT_FALSE(p.Satisfies(Partitioning::Hash({"b"}, 0)));
  EXPECT_TRUE(p.Satisfies(Partitioning{}));  // kAny
}

TEST(PhysicalPropsTest, SortPrefixSatisfaction) {
  SortOrder ab{{{"a", true}, {"b", true}}};
  SortOrder a{{{"a", true}}};
  SortOrder a_desc{{{"a", false}}};
  EXPECT_TRUE(ab.Satisfies(a));
  EXPECT_FALSE(a.Satisfies(ab));
  EXPECT_FALSE(a.Satisfies(a_desc));
  EXPECT_TRUE(a.Satisfies(SortOrder{}));
}

TEST(PhysicalPropsTest, FingerprintGroupsIdenticalDesigns) {
  PhysicalProperties a{Partitioning::Hash({"x"}, 4), {{{"x", true}}}};
  PhysicalProperties b{Partitioning::Hash({"x"}, 4), {{{"x", true}}}};
  PhysicalProperties c{Partitioning::Hash({"x"}, 8), {{{"x", true}}}};
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

// --- Binding / schema derivation ---------------------------------------------------

TEST(PlanBindTest, FilterPreservesSchema) {
  auto plan = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_TRUE(plan->output_schema() == ClickSchema());
}

TEST(PlanBindTest, FilterRequiresBoolPredicate) {
  auto plan = Clicks().Filter(Add(Col("latency"), Lit(int64_t{1}))).Build();
  EXPECT_TRUE(plan->Bind().IsTypeError());
}

TEST(PlanBindTest, ProjectBuildsSchema) {
  auto plan = Clicks()
                  .Project({{Col("user"), "user"},
                            {Mul(Col("latency"), Lit(int64_t{2})), "lat2"}})
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_EQ(plan->output_schema().ToString(), "user:int64, lat2:int64");
}

TEST(PlanBindTest, ProjectRejectsDuplicateNames) {
  auto plan =
      Clicks().Project({{Col("user"), "x"}, {Col("page"), "x"}}).Build();
  EXPECT_TRUE(plan->Bind().IsInvalidArgument());
}

TEST(PlanBindTest, JoinSchemaConcatenates) {
  Schema users({{"uid", DataType::kInt64}, {"country", DataType::kString}});
  auto plan = Clicks()
                  .Join(PlanBuilder::Extract("users", "users", "g2", users),
                        JoinType::kInner, {{"user", "uid"}})
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_EQ(plan->output_schema().num_fields(), 6u);
}

TEST(PlanBindTest, JoinRejectsAmbiguousColumns) {
  auto plan = Clicks().Join(Clicks(), JoinType::kInner, {{"user", "user"}})
                  .Build();
  EXPECT_TRUE(plan->Bind().IsInvalidArgument());
}

TEST(PlanBindTest, JoinRejectsMissingKey) {
  Schema users({{"uid", DataType::kInt64}});
  auto plan = Clicks()
                  .Join(PlanBuilder::Extract("users", "users", "g2", users),
                        JoinType::kInner, {{"nope", "uid"}})
                  .Build();
  EXPECT_TRUE(plan->Bind().IsInvalidArgument());
}

TEST(PlanBindTest, AggregateSchema) {
  auto plan = Clicks()
                  .Aggregate({"page"},
                             {{AggFunc::kCount, nullptr, "n"},
                              {AggFunc::kAvg, Col("latency"), "avg_lat"}})
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_EQ(plan->output_schema().ToString(),
            "page:string, n:int64, avg_lat:double");
}

TEST(PlanBindTest, UnionRequiresMatchingSchemas) {
  auto a = Clicks().Select({"user"});
  auto b = Clicks("2018-01-02", "g9").Select({"page"});
  auto plan = std::move(a).UnionAll(std::move(b)).Build();
  EXPECT_TRUE(plan->Bind().IsTypeError());
}

TEST(PlanBindTest, SortAndExchangeValidateColumns) {
  auto s = Clicks().Sort({{"nope", true}}).Build();
  EXPECT_TRUE(s->Bind().IsInvalidArgument());
  auto e = Clicks().Exchange(Partitioning::Hash({"nope"}, 4)).Build();
  EXPECT_TRUE(e->Bind().IsInvalidArgument());
}

// --- Node ids / traversal -------------------------------------------------------

TEST(PlanTest, AssignNodeIdsPreOrder) {
  auto plan = Clicks()
                  .Filter(Gt(Col("latency"), Lit(int64_t{5})))
                  .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                  .Output("out")
                  .Build();
  int count = AssignNodeIds(plan.get());
  EXPECT_EQ(count, 4);
  EXPECT_EQ(plan->id(), 0);  // Output is the root
  std::vector<PlanNode*> nodes;
  CollectNodes(plan, &nodes);
  ASSERT_EQ(nodes.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(nodes[static_cast<size_t>(i)]->id(), i);
}

TEST(PlanTest, SubtreeSizeAndTreeString) {
  auto plan = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{5}))).Build();
  EXPECT_EQ(plan->SubtreeSize(), 2u);
  std::string s = plan->TreeString();
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Extract clicks_2018-01-01"), std::string::npos);
}

TEST(PlanTest, CloneIsDeepAndEquivalent) {
  auto plan = Clicks()
                  .Filter(Gt(Col("latency"), Lit(int64_t{5})))
                  .Aggregate({"page"}, {{AggFunc::kSum, Col("latency"), "s"}})
                  .Build();
  auto clone = plan->Clone();
  ASSERT_TRUE(clone->Bind().ok());
  EXPECT_FALSE(plan->bound());
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_EQ(ComputeSignatures(*plan).precise,
            ComputeSignatures(*clone).precise);
}

// --- Delivered / required properties ------------------------------------------------

TEST(PlanPropsTest, ExchangeDeliversItsPartitioning) {
  auto plan = Clicks().Exchange(Partitioning::Hash({"user"}, 16)).Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_TRUE(plan->Delivered().partitioning ==
              Partitioning::Hash({"user"}, 16));
}

TEST(PlanPropsTest, SortDeliversOrderAndKeepsPartitioning) {
  auto plan = Clicks()
                  .Exchange(Partitioning::Hash({"user"}, 8))
                  .Sort({{"user", true}, {"latency", false}})
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  auto props = plan->Delivered();
  EXPECT_TRUE(props.sort_order.IsSorted());
  EXPECT_EQ(props.sort_order.keys[1].column, "latency");
  EXPECT_EQ(props.partitioning.scheme, PartitionScheme::kHash);
}

TEST(PlanPropsTest, ProjectDropsDestroyedProperties) {
  auto plan = Clicks()
                  .Exchange(Partitioning::Hash({"user"}, 8))
                  .Select({"page"})  // user disappears
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  EXPECT_FALSE(plan->Delivered().partitioning.IsSpecified());
}

TEST(PlanPropsTest, AggregateRequiresPartitioningOnKeys) {
  auto agg = std::make_shared<AggregateNode>(
      Clicks().Build(), std::vector<std::string>{"page"},
      std::vector<AggregateSpec>{{AggFunc::kCount, nullptr, "n"}});
  auto req = agg->RequiredFromChild(0);
  EXPECT_TRUE(req.partitioning == Partitioning::Hash({"page"}, 0));
}

TEST(PlanPropsTest, GlobalAggregateRequiresSingleton) {
  auto agg = std::make_shared<AggregateNode>(
      Clicks().Build(), std::vector<std::string>{},
      std::vector<AggregateSpec>{{AggFunc::kCount, nullptr, "n"}});
  EXPECT_EQ(agg->RequiredFromChild(0).partitioning.scheme,
            PartitionScheme::kSingleton);
}

TEST(PlanPropsTest, MergeJoinRequiresSortedInputs) {
  Schema users({{"uid", DataType::kInt64}});
  auto join = std::make_shared<JoinNode>(
      Clicks().Build(),
      PlanBuilder::Extract("users", "users", "g2", users).Build(),
      JoinType::kInner,
      std::vector<std::pair<std::string, std::string>>{{"user", "uid"}});
  join->set_algorithm(JoinAlgorithm::kMerge);
  auto req_left = join->RequiredFromChild(0);
  auto req_right = join->RequiredFromChild(1);
  EXPECT_TRUE(req_left.sort_order.IsSorted());
  EXPECT_EQ(req_right.sort_order.keys[0].column, "uid");
  EXPECT_TRUE(req_left.partitioning == Partitioning::Hash({"user"}, 0));
}

TEST(PlanBindTest, ReduceValidatesKeysAndSchema) {
  auto good = std::make_shared<ReduceNode>(
      Clicks().Build(), std::vector<std::string>{"page"}, "first_of_group",
      "lib", "1.0", Schema());
  ASSERT_TRUE(good->Bind().ok());
  EXPECT_TRUE(good->output_schema() == ClickSchema());  // empty PRODUCE

  auto bad_key = std::make_shared<ReduceNode>(
      Clicks().Build(), std::vector<std::string>{"nope"}, "p", "lib", "1.0",
      Schema());
  EXPECT_TRUE(bad_key->Bind().IsInvalidArgument());

  auto no_keys = std::make_shared<ReduceNode>(
      Clicks().Build(), std::vector<std::string>{}, "p", "lib", "1.0",
      Schema());
  EXPECT_TRUE(no_keys->Bind().IsInvalidArgument());
}

TEST(PlanPropsTest, ReduceRequiresColocatedSortedGroups) {
  auto reduce = std::make_shared<ReduceNode>(
      Clicks().Build(), std::vector<std::string>{"page", "user"}, "p", "lib",
      "1.0", Schema());
  auto req = reduce->RequiredFromChild(0);
  EXPECT_TRUE(req.partitioning ==
              Partitioning::Hash({"page", "user"}, 0));
  ASSERT_EQ(req.sort_order.keys.size(), 2u);
  EXPECT_TRUE(reduce->Delivered().partitioning ==
              Partitioning::Hash({"page", "user"}, 0));
}

TEST(PlanHashTest, ReduceVersionOnlyInPreciseMode) {
  auto make = [&](const char* version) {
    return std::make_shared<ReduceNode>(
        Clicks().Build(), std::vector<std::string>{"page"}, "p", "lib",
        version, Schema());
  };
  auto v1 = make("1.0");
  auto v2 = make("2.0");
  EXPECT_EQ(v1->SubtreeHash(SignatureMode::kNormalized),
            v2->SubtreeHash(SignatureMode::kNormalized));
  EXPECT_NE(v1->SubtreeHash(SignatureMode::kPrecise),
            v2->SubtreeHash(SignatureMode::kPrecise));
}

TEST(PlanBindTest, OutputDesignValidatedAndRequired) {
  auto out = std::make_shared<OutputNode>(Clicks().Build(), "dest");
  PhysicalProperties design{Partitioning::Hash({"user"}, 8),
                            {{{"latency", false}}}};
  out->set_declared_design(design);
  ASSERT_TRUE(out->Bind().ok());
  EXPECT_TRUE(out->RequiredFromChild(0) == design);

  auto bad = std::make_shared<OutputNode>(Clicks().Build(), "dest");
  bad->set_declared_design(
      PhysicalProperties{Partitioning::Hash({"nope"}, 4), {}});
  EXPECT_TRUE(bad->Bind().IsInvalidArgument());
}

TEST(PlanHashTest, OutputDesignIsPartOfTheTemplate) {
  // Two templates that differ only in output layout are different
  // computations downstream consumers care about.
  auto plain = std::make_shared<OutputNode>(Clicks().Build(), "dest");
  auto designed = std::make_shared<OutputNode>(Clicks().Build(), "dest");
  designed->set_declared_design(
      PhysicalProperties{Partitioning::Hash({"user"}, 8), {}});
  EXPECT_NE(plain->SubtreeHash(SignatureMode::kNormalized),
            designed->SubtreeHash(SignatureMode::kNormalized));
}

// --- Signatures ---------------------------------------------------------------------

TEST(SignatureTest, IdenticalPlansShareBothSignatures) {
  auto make = [] {
    auto p = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
    EXPECT_TRUE(p->Bind().ok());
    return p;
  };
  auto a = make();
  auto b = make();
  EXPECT_EQ(ComputeSignatures(*a).precise, ComputeSignatures(*b).precise);
  EXPECT_EQ(ComputeSignatures(*a).normalized,
            ComputeSignatures(*b).normalized);
}

TEST(SignatureTest, RecurringInstanceChangesPreciseOnly) {
  auto day1 = Clicks("2018-01-01", "g1")
                  .Filter(Ge(Col("when"),
                             Param("date", Value::DateFromString("2018-01-01"))))
                  .Build();
  auto day2 = Clicks("2018-01-02", "g2")
                  .Filter(Ge(Col("when"),
                             Param("date", Value::DateFromString("2018-01-02"))))
                  .Build();
  ASSERT_TRUE(day1->Bind().ok());
  ASSERT_TRUE(day2->Bind().ok());
  auto s1 = ComputeSignatures(*day1);
  auto s2 = ComputeSignatures(*day2);
  EXPECT_EQ(s1.normalized, s2.normalized);
  EXPECT_NE(s1.precise, s2.precise);
}

TEST(SignatureTest, NewGuidSameNameChangesPrecise) {
  // A GDPR-style in-place rewrite: same stream name, new data version.
  auto v1 = Clicks("2018-01-01", "g1").Build();
  auto v2 = Clicks("2018-01-01", "g-new").Build();
  ASSERT_TRUE(v1->Bind().ok());
  ASSERT_TRUE(v2->Bind().ok());
  EXPECT_NE(ComputeSignatures(*v1).precise, ComputeSignatures(*v2).precise);
  EXPECT_EQ(ComputeSignatures(*v1).normalized,
            ComputeSignatures(*v2).normalized);
}

TEST(SignatureTest, DifferentComputationsDiffer) {
  auto a = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  auto b = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{20}))).Build();
  ASSERT_TRUE(a->Bind().ok());
  ASSERT_TRUE(b->Bind().ok());
  EXPECT_NE(ComputeSignatures(*a).precise, ComputeSignatures(*b).precise);
  EXPECT_NE(ComputeSignatures(*a).normalized,
            ComputeSignatures(*b).normalized);
}

TEST(SignatureTest, SpoolIsTransparent) {
  auto base = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(base->Bind().ok());
  auto sigs = ComputeSignatures(*base);
  auto spooled = std::make_shared<SpoolNode>(
      base, "/views/x/y.ss", sigs.normalized, sigs.precise,
      PhysicalProperties{});
  ASSERT_TRUE(spooled->Bind().ok());
  EXPECT_EQ(ComputeSignatures(*spooled).precise, sigs.precise);
  EXPECT_EQ(ComputeSignatures(*spooled).normalized, sigs.normalized);
}

TEST(SignatureTest, ViewReadHashesAsReplacedComputation) {
  auto computation =
      Clicks().Filter(Gt(Col("latency"), Lit(int64_t{10}))).Build();
  ASSERT_TRUE(computation->Bind().ok());
  auto sigs = ComputeSignatures(*computation);

  auto inline_agg =
      PlanBuilder::From(computation->Clone())
          .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
          .Build();
  ASSERT_TRUE(inline_agg->Bind().ok());

  auto view_read = std::make_shared<ViewReadNode>(
      "/views/v.ss", sigs.normalized, sigs.precise,
      computation->output_schema(), PhysicalProperties{}, 100, 1000);
  auto rewritten_agg =
      PlanBuilder::From(view_read)
          .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
          .Build();
  ASSERT_TRUE(rewritten_agg->Bind().ok());

  EXPECT_EQ(ComputeSignatures(*inline_agg).precise,
            ComputeSignatures(*rewritten_agg).precise);
  EXPECT_EQ(ComputeSignatures(*inline_agg).normalized,
            ComputeSignatures(*rewritten_agg).normalized);
}

TEST(SignatureTest, EnumerationSkipsReuseOps) {
  auto base = Clicks().Filter(Gt(Col("latency"), Lit(int64_t{1}))).Build();
  ASSERT_TRUE(base->Bind().ok());
  auto sigs = ComputeSignatures(*base);
  auto plan = PlanBuilder::From(std::make_shared<SpoolNode>(
                  base, "/views/a.ss", sigs.normalized, sigs.precise,
                  PhysicalProperties{}))
                  .Output("out")
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  auto subgraphs = EnumerateSubgraphs(plan);
  // Output, Filter, Extract — the Spool is skipped.
  EXPECT_EQ(subgraphs.size(), 3u);
  for (const auto& sg : subgraphs) {
    EXPECT_NE(sg.node->kind(), OpKind::kSpool);
  }
}

TEST(SignatureTest, EnumerationCoversEveryOperator) {
  Schema users({{"uid", DataType::kInt64}});
  auto plan = Clicks()
                  .Join(PlanBuilder::Extract("users", "users", "g2", users),
                        JoinType::kInner, {{"user", "uid"}})
                  .Aggregate({"page"}, {{AggFunc::kCount, nullptr, "n"}})
                  .Output("out")
                  .Build();
  ASSERT_TRUE(plan->Bind().ok());
  auto subgraphs = EnumerateSubgraphs(plan);
  EXPECT_EQ(subgraphs.size(), plan->SubtreeSize());
  // Inner subgraphs of equal computations must have equal signatures:
  // enumerate twice and compare.
  auto again = EnumerateSubgraphs(plan);
  for (size_t i = 0; i < subgraphs.size(); ++i) {
    EXPECT_EQ(subgraphs[i].sigs.precise, again[i].sigs.precise);
  }
}

}  // namespace
}  // namespace cloudviews
