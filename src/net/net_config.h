#ifndef CLOUDVIEWS_NET_NET_CONFIG_H_
#define CLOUDVIEWS_NET_NET_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cloudviews {
namespace net {

/// \brief Tuning knobs for the job-service network front door.
///
/// Header-only so CloudViewsConfig can embed it without cv_core linking
/// cv_net; the server binary and tests construct a JobServiceServer from
/// `CloudViewsConfig::net` (or a standalone copy).
struct NetServerConfig {
  /// Listen address. The default binds loopback only: the front door is an
  /// intra-host protocol until authentication exists.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (the bound port is
  /// returned by JobServiceServer::Start so tests and benches can connect).
  uint16_t port = 0;
  /// Listen backlog passed to ::listen.
  int listen_backlog = 64;
  /// Maximum concurrently open client connections; accepts beyond the cap
  /// are closed immediately after accept (counted as sheds).
  int max_connections = 64;
  /// Per-connection cap on submissions admitted but not yet responded to.
  /// A connection exceeding it gets RETRY_AFTER(CONN_CAP).
  int per_connection_inflight_cap = 8;
  /// Bound on the submission queue between the wire and JobService. A full
  /// queue sheds with RETRY_AFTER(QUEUE_FULL) instead of queuing unboundedly.
  size_t submission_queue_capacity = 256;
  /// Worker threads draining the submission queue into JobService::SubmitJob.
  int submission_workers = 4;
  /// Hint returned in RETRY_AFTER responses; clients should back off at
  /// least this long before resubmitting.
  uint32_t retry_after_ms = 25;
  /// Completed-job records kept for status/profile-fetch polling; the
  /// oldest finished records are evicted past this bound so a long-lived
  /// server holds bounded memory.
  size_t job_table_capacity = 1 << 16;
};

}  // namespace net
}  // namespace cloudviews

#endif  // CLOUDVIEWS_NET_NET_CONFIG_H_
