file(REMOVE_RECURSE
  "CMakeFiles/cv_types.dir/batch.cc.o"
  "CMakeFiles/cv_types.dir/batch.cc.o.d"
  "CMakeFiles/cv_types.dir/data_type.cc.o"
  "CMakeFiles/cv_types.dir/data_type.cc.o.d"
  "CMakeFiles/cv_types.dir/schema.cc.o"
  "CMakeFiles/cv_types.dir/schema.cc.o.d"
  "CMakeFiles/cv_types.dir/value.cc.o"
  "CMakeFiles/cv_types.dir/value.cc.o.d"
  "libcv_types.a"
  "libcv_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
