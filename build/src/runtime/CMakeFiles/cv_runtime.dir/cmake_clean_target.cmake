file(REMOVE_RECURSE
  "libcv_runtime.a"
)
