// Reuse-coverage microbenchmark for the staged containment matcher: a
// recurring template plus filter/group-by perturbed variants of it are
// replayed over many dates with containment matching on vs off. Reports
// per-category submit latency (exact hit / subsumed hit / miss), the
// match-funnel counters, and the reuse-coverage ratio — the paper's
// motivation for subsumption-based matching is exactly that perturbed
// recurrences of a shared computation should still hit the materialized
// view. Writes BENCH_reuse.json for the CI bench-smoke artifact.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/export.h"
#include "plan/plan_builder.h"

namespace cloudviews {
namespace bench {
namespace {

Schema ClickSchema() {
  return Schema({{"user", DataType::kInt64},
                 {"page", DataType::kString},
                 {"latency", DataType::kInt64},
                 {"when", DataType::kDate}});
}

void WriteClicks(StorageManager* storage, const std::string& date,
                 size_t rows) {
  Rng rng(Hash128Hasher()(Hash128{7, 3}) + rows);
  Batch b(ClickSchema());
  int64_t day = 0;
  ParseDate(date, &day);
  static const char* kPages[] = {"/home", "/search", "/cart", "/about"};
  for (size_t i = 0; i < rows; ++i) {
    (void)b.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
                       Value::String(kPages[rng.Uniform(4)]),
                       Value::Int64(static_cast<int64_t>(rng.Uniform(500))),
                       Value::Date(day)});
  }
  (void)storage->WriteStream(MakeStreamData(
      "clicks_" + date, "guid-clicks_" + date, ClickSchema(), {b},
      storage->clock()->Now()));
}

PlanBuilder Clicks(const std::string& date) {
  return PlanBuilder::Extract("clicks_{date}", "clicks_" + date,
                              "guid-clicks_" + date, ClickSchema());
}

std::vector<AggregateSpec> SharedSpecs() {
  return {{AggFunc::kCount, nullptr, "n"},
          {AggFunc::kSum, Col("latency"), "total"}};
}

PlanNodePtr SharedAgg(const std::string& date) {
  return Clicks(date)
      .Filter(Gt(Col("latency"), Lit(int64_t{50})))
      .Aggregate({"page"}, SharedSpecs())
      .Build();
}

JobDefinition MakeJob(const std::string& id, PlanNodePtr plan) {
  JobDefinition def;
  def.template_id = id;
  def.vc = "vc-" + id;
  def.user = "u-" + id;
  def.logical_plan = std::move(plan);
  return def;
}

JobDefinition BuilderJob(const std::string& date) {
  return MakeJob("builder", PlanBuilder::From(SharedAgg(date))
                                .Sort({{"n", false}})
                                .Output("builder_" + date)
                                .Build());
}

/// The perturbed recurring family. "exact" recurs with the shared subplan
/// verbatim; the others vary the filter or the group-by inside the cap, so
/// only containment matching can serve them from the view. The last two
/// are deliberate non-matches (weaker predicate; no covering sort).
struct Variant {
  const char* name;
  PlanNodePtr (*make)(const std::string& date);
};
const Variant kVariants[] = {
    {"exact",
     [](const std::string& d) {
       return PlanBuilder::From(SharedAgg(d))
           .Filter(Gt(Col("n"), Lit(int64_t{0})))
           .Output("exact_" + d)
           .Build();
     }},
    {"page_eq",
     [](const std::string& d) {
       return Clicks(d)
           .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                       Eq(Col("page"), Lit("/cart"))))
           .Aggregate({"page"}, SharedSpecs())
           .Sort({{"page", true}})
           .Output("page_eq_" + d)
           .Build();
     }},
    {"page_range",
     [](const std::string& d) {
       return Clicks(d)
           .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                       Ge(Col("page"), Lit("/c"))))
           .Aggregate({"page"}, SharedSpecs())
           .Sort({{"page", true}})
           .Output("page_range_" + d)
           .Build();
     }},
    {"global_rollup",
     [](const std::string& d) {
       return Clicks(d)
           .Filter(Gt(Col("latency"), Lit(int64_t{50})))
           .Aggregate({}, {{AggFunc::kCount, nullptr, "rows"}})
           .Sort({{"rows", true}})
           .Output("global_" + d)
           .Build();
     }},
    {"weaker_filter",
     [](const std::string& d) {
       return Clicks(d)
           .Filter(Gt(Col("latency"), Lit(int64_t{10})))
           .Aggregate({"page"}, SharedSpecs())
           .Sort({{"page", true}})
           .Output("weaker_" + d)
           .Build();
     }},
    {"unsorted",
     [](const std::string& d) {
       return Clicks(d)
           .Filter(And(Gt(Col("latency"), Lit(int64_t{50})),
                       Eq(Col("page"), Lit("/search"))))
           .Aggregate({"page"}, SharedSpecs())
           .Output("unsorted_" + d)
           .Build();
     }},
};

std::string Date(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2018-%02d-%02d", 3 + i / 28, 1 + i % 28);
  return buf;
}

struct Sample {
  int jobs = 0;
  double total_seconds = 0;
  double min_seconds = 1e100;
  double max_seconds = 0;

  void Add(double s) {
    ++jobs;
    total_seconds += s;
    min_seconds = std::min(min_seconds, s);
    max_seconds = std::max(max_seconds, s);
  }
  double MeanMs() const { return jobs > 0 ? 1e3 * total_seconds / jobs : 0; }
};

struct ModeResult {
  std::string mode;
  int eligible_jobs = 0;
  int exact_hits = 0;
  int subsumed_hits = 0;
  int misses = 0;
  long long candidates_filtered = 0;
  long long containment_verified = 0;
  long long containment_rejected = 0;
  long long compensation_nodes = 0;
  Sample exact_latency;
  Sample subsumed_latency;
  Sample miss_latency;

  double Coverage() const {
    return eligible_jobs > 0
               ? static_cast<double>(exact_hits + subsumed_hits) /
                     eligible_jobs
               : 0;
  }
};

ModeResult RunMode(const std::string& mode, bool containment, int days,
                   std::string* metrics_json) {
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 1;
  config.analyzer.selection.min_frequency = 2;
  config.optimizer.enable_containment_matching = containment;
  CloudViews cv(config);
  for (int d = 0; d < days; ++d) WriteClicks(cv.storage(), Date(d), 400);

  // Day-0 history seeds the analyzer with the shared aggregate. The
  // second seed recurs under the same template id as the day-N "exact"
  // variant so the tag-scoped exact lookup sees the annotation even with
  // containment (and its table-set prefetch) disabled.
  (void)cv.Submit(BuilderJob(Date(0)), false);
  (void)cv.Submit(MakeJob("q_exact", kVariants[0].make(Date(0))), false);
  cv.RunAnalyzerAndLoad();

  ModeResult result;
  result.mode = mode;
  for (int d = 1; d < days; ++d) {
    std::string date = Date(d);
    // The builder materializes the view for this date; the perturbed
    // family behind it is what we score.
    auto built = cv.Submit(BuilderJob(date));
    if (!built.ok() || built->views_materialized != 1) {
      std::fprintf(stderr, "view build failed on %s\n", date.c_str());
      std::exit(1);
    }
    for (const Variant& v : kVariants) {
      double start = MonotonicNowSeconds();
      auto r = cv.Submit(MakeJob(std::string("q_") + v.name, v.make(date)));
      double elapsed = MonotonicNowSeconds() - start;
      if (!r.ok()) {
        std::fprintf(stderr, "submit failed (%s, %s): %s\n", mode.c_str(),
                     v.name, r.status().ToString().c_str());
        std::exit(1);
      }
      ++result.eligible_jobs;
      result.candidates_filtered += r->candidates_filtered;
      result.containment_verified += r->containment_verified;
      result.containment_rejected += r->containment_rejected;
      result.compensation_nodes += r->compensation_nodes_added;
      if (r->views_reused_subsumed > 0) {
        ++result.subsumed_hits;
        result.subsumed_latency.Add(elapsed);
      } else if (r->views_reused > 0) {
        ++result.exact_hits;
        result.exact_latency.Add(elapsed);
      } else {
        ++result.misses;
        result.miss_latency.Add(elapsed);
      }
    }
  }
  if (metrics_json != nullptr) {
    *metrics_json = obs::RenderMetricsJson(*cv.metrics());
  }
  return result;
}

void PrintMode(const ModeResult& m) {
  std::printf(
      "  %-16s coverage=%4.0f%%  exact=%d subsumed=%d miss=%d  "
      "(filtered=%lld verified=%lld rejected=%lld comp_nodes=%lld)\n",
      m.mode.c_str(), 100 * m.Coverage(), m.exact_hits, m.subsumed_hits,
      m.misses, m.candidates_filtered, m.containment_verified,
      m.containment_rejected, m.compensation_nodes);
  std::printf(
      "  %-16s latency: exact=%.3fms subsumed=%.3fms miss=%.3fms\n", "",
      m.exact_latency.MeanMs(), m.subsumed_latency.MeanMs(),
      m.miss_latency.MeanMs());
}

void WriteSample(FILE* f, const char* name, const Sample& s,
                 const char* trailer) {
  std::fprintf(f,
               "      {\"category\": \"%s\", \"samples\": %d, \"mean_ms\": "
               "%.4f, \"min_ms\": %.4f, \"max_ms\": %.4f}%s\n",
               name, s.jobs, s.MeanMs(),
               s.jobs > 0 ? s.min_seconds * 1e3 : 0, s.max_seconds * 1e3,
               trailer);
}

void WriteMode(FILE* f, const ModeResult& m, const char* trailer) {
  std::fprintf(f, "    {\"mode\": \"%s\",\n", m.mode.c_str());
  std::fprintf(f, "     \"eligible_jobs\": %d,\n", m.eligible_jobs);
  std::fprintf(f, "     \"exact_hits\": %d,\n", m.exact_hits);
  std::fprintf(f, "     \"subsumed_hits\": %d,\n", m.subsumed_hits);
  std::fprintf(f, "     \"misses\": %d,\n", m.misses);
  std::fprintf(f, "     \"reuse_coverage\": %.4f,\n", m.Coverage());
  std::fprintf(f,
               "     \"funnel\": {\"candidates_filtered\": %lld, "
               "\"containment_verified\": %lld, \"containment_rejected\": "
               "%lld, \"compensation_nodes_added\": %lld},\n",
               m.candidates_filtered, m.containment_verified,
               m.containment_rejected, m.compensation_nodes);
  std::fprintf(f, "     \"latency\": [\n");
  WriteSample(f, "exact_hit", m.exact_latency, ",");
  WriteSample(f, "subsumed_hit", m.subsumed_latency, ",");
  WriteSample(f, "miss", m.miss_latency, "");
  std::fprintf(f, "     ]}%s\n", trailer);
}

int Run() {
  FigureHeader("micro",
               "reuse coverage: staged containment matcher",
               "perturbed recurrences of a shared computation are served "
               "from the materialized view via containment + compensation "
               "(Sec 5: normalized signatures over-conservatively miss "
               "perturbed matches)");

  constexpr int kDays = 12;
  std::string metrics_json;
  ModeResult off = RunMode("containment_off", false, kDays, nullptr);
  ModeResult on = RunMode("containment_on", true, kDays, &metrics_json);
  PrintMode(off);
  PrintMode(on);
  PaperVsMeasured("reuse coverage (perturbed workload)",
                  "subsumption recovers misses",
                  std::to_string(static_cast<int>(100 * off.Coverage())) +
                      "% -> " +
                      std::to_string(static_cast<int>(100 * on.Coverage())) +
                      "%");

  FILE* f = std::fopen("BENCH_reuse.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_reuse.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"containment_reuse\",\n");
  std::fprintf(f, "  \"dates\": %d,\n", kDays);
  std::fprintf(f, "  \"variants_per_date\": %d,\n",
               static_cast<int>(sizeof(kVariants) / sizeof(kVariants[0])));
  std::fprintf(f, "  \"modes\": [\n");
  WriteMode(f, off, ",");
  WriteMode(f, on, "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n", metrics_json.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote BENCH_reuse.json\n");

  // Smoke gates: containment must actually recover perturbed misses, and
  // must never lose coverage relative to exact-only matching.
  if (on.subsumed_hits == 0) {
    std::fprintf(stderr, "containment_on produced no subsumed hits\n");
    return 1;
  }
  if (off.subsumed_hits != 0) {
    std::fprintf(stderr, "containment_off produced subsumed hits\n");
    return 1;
  }
  if (on.Coverage() < off.Coverage()) {
    std::fprintf(stderr, "containment reduced reuse coverage\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
