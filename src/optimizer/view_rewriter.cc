#include "optimizer/view_rewriter.h"

#include <algorithm>
#include <memory>

#include "signature/signature.h"
#include "storage/storage_manager.h"

namespace cloudviews {

AnnotationIndex IndexAnnotations(const std::vector<ViewAnnotation>& anns) {
  AnnotationIndex index;
  for (const auto& a : anns) {
    index.emplace(a.normalized_signature, a);
  }
  return index;
}

PlanNodePtr ViewRewriter::ApplyReuse(PlanNodePtr root,
                                     const AnnotationIndex& annotations,
                                     ReuseStats* stats,
                                     const ReuseOptions& options) {
  if (annotations.empty() || catalog_ == nullptr) return root;
  std::unique_ptr<CandidateMatcher> matcher;
  if (options.enable_containment) {
    matcher = std::make_unique<CandidateMatcher>(
        annotations, catalog_, cost_model_, options.parent_span);
    if (!matcher->has_candidates()) matcher.reset();
  }
  std::vector<const PlanNode*> ancestors;
  root = ReuseInternal(std::move(root), annotations, stats, matcher.get(),
                       &ancestors);
  if (matcher != nullptr) {
    matcher->FinishSpan();
    matcher->funnel().AddTo(&stats->funnel);
  }
  return root;
}

PlanNodePtr ViewRewriter::ReuseInternal(
    PlanNodePtr node, const AnnotationIndex& annotations, ReuseStats* stats,
    CandidateMatcher* matcher, std::vector<const PlanNode*>* ancestors) {
  // Top-down: try the largest subgraph first (Sec 6.3).
  if (IsReusableRoot(*node) && node->kind() != OpKind::kOutput) {
    Hash128 normalized = node->SubtreeHash(SignatureMode::kNormalized);
    auto it = annotations.find(normalized);
    if (it != annotations.end()) {
      Hash128 precise = node->SubtreeHash(SignatureMode::kPrecise);
      auto view = catalog_->FindMaterialized(normalized, precise);
      if (view.has_value()) {
        // Cost-based acceptance: reading the view must beat recomputing
        // the subtree (the optimizer may discard an expensive view,
        // Sec 4 requirement 4). View scans parallelize like any other
        // partitioned stage, so compare at the same DOP as subtree costs.
        double read_cost =
            cost_model_->ViewReadCost(view->rows, view->bytes) /
            std::max(1, cost_model_->config().default_dop);
        double compute_cost = node->estimates().cost;
        if (read_cost < compute_cost) {
          // compensation: none — exact tier-0 match; the view read alone
          // reproduces the subtree byte-for-byte.
          auto replacement = std::make_shared<ViewReadNode>(
              view->path, normalized, precise, node->output_schema(),
              view->design, view->rows, view->bytes);
          Status st = replacement->Bind();
          if (st.ok()) {
            ++stats->views_reused;
            return replacement;
          }
        } else {
          ++stats->rejected_by_cost;
        }
      }
    }
    // Tier 0 missed: try the staged containment matcher (tiers 1-3).
    if (matcher != nullptr) {
      PlanNodePtr compensated = matcher->TryContainment(
          node, normalized, *ancestors, &stats->rejected_by_cost);
      if (compensated != nullptr) {
        ++stats->views_reused;
        return compensated;
      }
    }
  }
  ancestors->push_back(node.get());
  for (auto& c : node->mutable_children()) {
    c = ReuseInternal(c, annotations, stats, matcher, ancestors);
  }
  ancestors->pop_back();
  return node;
}

PlanNodePtr ViewRewriter::ApplyMaterialization(
    PlanNodePtr root, const AnnotationIndex& annotations, uint64_t job_id,
    int max_per_job, double job_cost, double max_cost_fraction,
    MaterializeStats* stats) {
  if (annotations.empty() || catalog_ == nullptr || max_per_job <= 0) {
    return root;
  }
  int budget = max_per_job;
  double max_spool_cost = max_cost_fraction > 0 && job_cost > 0
                              ? max_cost_fraction * job_cost
                              : 0;  // 0 = no gate
  return MaterializeInternal(std::move(root), annotations, job_id,
                             max_per_job, max_spool_cost, &budget, stats);
}

PlanNodePtr ViewRewriter::MaterializeInternal(
    PlanNodePtr node, const AnnotationIndex& annotations, uint64_t job_id,
    int max_per_job, double max_spool_cost, int* budget,
    MaterializeStats* stats) {
  // Bottom-up: smaller views first, as they typically have more overlaps
  // (Sec 6.2).
  for (auto& c : node->mutable_children()) {
    c = MaterializeInternal(c, annotations, job_id, max_per_job,
                            max_spool_cost, budget, stats);
  }
  if (*budget <= 0) return node;
  if (!IsReusableRoot(*node) || node->kind() == OpKind::kOutput) return node;
  // Never spool a bare input scan: that would only copy the input.
  if (node->kind() == OpKind::kExtract) return node;

  Hash128 normalized = node->SubtreeHash(SignatureMode::kNormalized);
  auto it = annotations.find(normalized);
  if (it == annotations.end()) return node;
  const ViewAnnotation& ann = it->second;
  if (ann.offline) return node;  // built by a dedicated offline job instead

  // Cost gate: don't let a cheap job pay for an expensive view build; a
  // later job containing the same computation will build it instead.
  if (max_spool_cost > 0) {
    double rows = node->estimates().rows;
    double bytes = node->estimates().bytes;
    double spool_cost =
        (rows * cost_model_->config().spool_weight +
         bytes * cost_model_->config().bytes_weight) /
        std::max(1, cost_model_->config().default_dop);
    if (spool_cost > max_spool_cost) {
      ++stats->skipped_by_cost;
      return node;
    }
  }

  Hash128 precise = node->SubtreeHash(SignatureMode::kPrecise);
  if (catalog_->FindMaterialized(normalized, precise).has_value()) {
    // Already available: the reuse pass either used it or rejected it on
    // cost; re-materializing would be pure waste.
    return node;
  }
  if (!catalog_->ProposeMaterialize(normalized, precise, job_id,
                                    ann.avg_runtime_seconds)) {
    ++stats->lock_denied;
    stats->lock_denied_sigs.emplace_back(normalized, precise);
    return node;
  }
  std::string path = EncodeViewPath(normalized, precise, job_id);
  // compensation: none — Spool is a materialization side-effect wrapper,
  // not a compensation operator; it passes its input through unchanged.
  auto spool = std::make_shared<SpoolNode>(node, path, normalized, precise,
                                           ann.design);
  spool->set_lifetime_seconds(ann.lifetime_seconds);
  --*budget;
  ++stats->views_materialized;
  return spool;
}

}  // namespace cloudviews
