#ifndef CLOUDVIEWS_SIGNATURE_CONTAINMENT_H_
#define CLOUDVIEWS_SIGNATURE_CONTAINMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "plan/plan_node.h"
#include "types/value.h"

namespace cloudviews {

/// \file
/// Feature vectors and structural decomposition for containment-based view
/// matching (the tier-1/tier-2 stages of the staged CandidateMatcher; see
/// DESIGN.md "Containment-based reuse"). Everything here is pure
/// read-only analysis of plan subtrees — the compensation rewrite itself
/// lives in src/optimizer/view_matcher.cc.

/// \brief The value range a conjunction of comparisons admits for one
/// column. Missing bounds are infinite.
struct ColumnInterval {
  std::string column;
  bool has_lower = false;
  bool has_upper = false;
  bool lower_inclusive = false;
  bool upper_inclusive = false;
  Value lower;
  Value upper;

  /// Tightens this interval with another bound of the same column.
  void IntersectLower(const Value& v, bool inclusive);
  void IntersectUpper(const Value& v, bool inclusive);

  /// True if every value admitted by `inner` is admitted by this interval
  /// (this is the "view predicate is weaker" direction). Bounds compare
  /// with Value::Compare, so mixed numeric types are fine.
  bool Contains(const ColumnInterval& inner) const;
};

/// \brief A filter predicate split into per-column intervals plus the
/// conjuncts the interval analysis cannot interpret.
///
/// A conjunct `col <op> literal` (or reversed) with op in {=, <, <=, >, >=}
/// and a non-null constant becomes an interval bound; everything else —
/// OR trees, column-to-column comparisons, UDFs, null constants — is
/// *opaque* and can only be matched by exact precise-hash equality.
/// Because a comparison evaluates to NULL when its column is NULL (and the
/// filter drops non-true rows), an interval bound on a column also implies
/// the predicate is NULL-filtering on that column; containment therefore
/// requires the query to constrain every column the view constrains.
struct PredicateFeatures {
  std::vector<ColumnInterval> intervals;  // sorted by column name
  std::vector<Hash128> opaque;            // precise hashes, sorted
  /// Precise hashes of *all* top-level conjuncts (interval + opaque),
  /// sorted. Used to decide which query conjuncts the view already
  /// applied (they need no residual filter).
  std::vector<Hash128> conjuncts;

  const ColumnInterval* FindInterval(const std::string& column) const;

  /// True if this predicate (the view's) admits every row the `query`
  /// predicate admits: every view interval contains the query interval on
  /// the same column, and every opaque view conjunct appears verbatim
  /// (precise-hash) among the query's conjuncts.
  bool Contains(const PredicateFeatures& query) const;
};

/// Flattens a predicate's top-level AND tree into conjuncts.
void FlattenConjuncts(const ExprPtr& predicate, std::vector<ExprPtr>* out);

/// Standalone precise hash of one expression.
Hash128 ExprPreciseHash(const Expr& e);

/// True if the expression tree contains a ParameterExpr anywhere. Exprs
/// with parameters change value across recurring instances, so structural
/// (template-level) expression matching is only sound for parameter-free
/// exprs; parameterized conjuncts are still matched per-instance via their
/// precise hashes.
bool ContainsParameter(const Expr& e);

/// Computes predicate features for a (possibly null) filter predicate.
PredicateFeatures ComputePredicateFeatures(const ExprPtr& predicate);

/// \brief A subgraph decomposed as cap ops over a core subtree:
///
///   [Aggregate] -> (enforcers) -> [Project] -> [Filter] -> core
///
/// Each cap op is optional; Exchange/Sort enforcers directly below an
/// Aggregate are skipped (they only redistribute/reorder the aggregate's
/// input multiset, which a hash re-aggregation is insensitive to). When no
/// cap op is present the core is the whole subtree and only the exact
/// tier can match.
struct CapDecomposition {
  const AggregateNode* aggregate = nullptr;
  const ProjectNode* project = nullptr;
  const FilterNode* filter = nullptr;
  const PlanNode* core = nullptr;

  bool HasCap() const {
    return aggregate != nullptr || project != nullptr || filter != nullptr;
  }
};

CapDecomposition DecomposeCap(const PlanNode& root);

/// \brief Compact feature vector of one view / subgraph for cheap tier-1
/// candidate filtering and per-instance containment checks (tier 2.5).
///
/// At the *annotation* level (computed from the definition skeleton) only
/// the instance-independent fields are meaningful: table_set_key, output
/// columns, group-by set, interval column set, core_normalized. At the
/// *instance* level (computed from the producer's spool subtree when the
/// view is registered) the interval bounds, opaque hashes, and
/// core_precise are concrete.
struct ViewFeatures {
  /// Hash of the sorted distinct input template names under the subtree;
  /// candidate enumeration is indexed by this key so it never scans the
  /// full catalog.
  Hash128 table_set_key;
  std::vector<std::string> tables;  // sorted distinct template names

  /// Output column names of the subtree root, in schema order.
  std::vector<std::string> output_columns;

  bool has_aggregate = false;
  std::vector<std::string> group_by;  // cap aggregate keys ({} if none)

  /// Cap filter features; empty when the cap has no Filter (the view then
  /// admits every core row).
  PredicateFeatures predicate;

  Hash128 core_normalized;
  Hash128 core_precise;
};

/// Computes the feature vector of the subtree rooted at `root`. Works on
/// bound and unbound trees (output columns come from output_schema(), so
/// the tree must at least derive schemas — every analyzer/runtime call
/// site passes bound trees).
ViewFeatures ComputeViewFeatures(const PlanNode& root);

/// Hash of a sorted distinct table-name set (the ViewFeatures
/// table_set_key construction, exposed for index probes).
Hash128 TableSetKey(const std::vector<std::string>& sorted_tables);

/// Collects the distinct table-set keys of every reuse-candidate subgraph
/// in the plan (one key per distinct input-template set). The runtime uses
/// this to ask the metadata service for containment candidates relevant to
/// a job without enumerating the catalog.
std::vector<Hash128> CollectTableSetKeys(const PlanNodePtr& root);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_SIGNATURE_CONTAINMENT_H_
