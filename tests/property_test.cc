// Property-based tests (parameterized sweeps over plan generators and
// engine configurations) for the system's core invariants:
//  - logical rewrites never change query results
//  - CloudViews reuse never changes query results (correctness goal, Sec 4)
//  - partitioning preserves the row multiset for every scheme
//  - signatures are deterministic and normalization is sound
#include <gtest/gtest.h>

#include "core/cloudviews.h"
#include "exec/executor.h"
#include "tests/test_util.h"
#include "tpcds/tpcds.h"
#include "workload/synthetic.h"

namespace cloudviews {
namespace {

/// Canonical string rendering of a batch with rows sorted, for
/// order-insensitive result comparison.
std::string CanonicalRows(const Batch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      row += batch.column(c).GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (auto& r : rows) {
    out += r;
    out += "\n";
  }
  return out;
}

std::string OutputOf(CloudViews* cv, const std::string& stream) {
  auto handle = cv->storage()->OpenStream(stream);
  EXPECT_TRUE(handle.ok()) << stream;
  if (!handle.ok()) return "";
  return CanonicalRows(CombineBatches((*handle)->schema, (*handle)->batches));
}

// --- Rewrite equivalence over all 99 TPC-DS queries ---------------------------

class TpcdsRewriteEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TpcdsRewriteEquivalence, LogicalRewritesPreserveResults) {
  int q = GetParam();
  tpcds::TpcdsOptions options;
  options.store_sales_rows = 1500;
  options.web_sales_rows = 600;
  options.catalog_sales_rows = 700;
  options.customers = 150;

  auto run = [&](bool rewrites) {
    CloudViewsConfig config;
    config.optimizer.enable_logical_rewrites = rewrites;
    CloudViews cv(config);
    tpcds::TpcdsGenerator gen(options);
    EXPECT_TRUE(gen.WriteTables(cv.storage()).ok());
    auto r = cv.Submit(tpcds::MakeQueryJob(q), false);
    EXPECT_TRUE(r.ok()) << "q" << q << ": " << r.status().ToString();
    return OutputOf(&cv, "tpcds_q" + std::to_string(q) + "_out");
  };

  std::string with = run(true);
  std::string without = run(false);
  // Some queries legitimately produce zero rows (aggressive HAVING-style
  // tails); equivalence of empty results still counts.
  EXPECT_EQ(with, without) << "q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpcdsRewriteEquivalence,
                         ::testing::Range(1, tpcds::kNumQueries + 1));

// --- Reuse equivalence over synthetic recurring templates ----------------------

class ReuseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReuseEquivalence, ViewReuseNeverChangesResults) {
  int seed = GetParam();
  ClusterProfile profile;
  profile.name = "prop";
  profile.num_templates = 12;
  profile.num_shared_fragments = 3;
  profile.p_share = 1.0;
  profile.isolated_vc_fraction = 0;
  profile.rows_per_input = 250;
  profile.seed = static_cast<uint64_t>(seed);
  SyntheticWorkloadGenerator gen(profile);

  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 2;
  config.optimizer.max_materialized_views_per_job = 2;
  CloudViews cv(config);

  gen.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : gen.Instance("2018-01-01")) {
    ASSERT_TRUE(cv.Submit(def, false).ok()) << def.template_id;
  }
  cv.RunAnalyzerAndLoad();

  // Day 2: baseline pass first (recording outputs), then the CloudViews
  // pass over the same inputs; every job's output must be identical.
  gen.WriteInputs(cv.storage(), "2018-01-02");
  auto day2 = gen.Instance("2018-01-02");
  std::vector<std::string> baseline;
  for (const auto& def : day2) {
    ASSERT_TRUE(cv.Submit(def, false).ok());
    auto* output = static_cast<OutputNode*>(def.logical_plan.get());
    baseline.push_back(OutputOf(&cv, output->stream_name()));
  }
  int reused = 0;
  for (size_t i = 0; i < day2.size(); ++i) {
    auto r = cv.Submit(day2[i], true);
    ASSERT_TRUE(r.ok()) << day2[i].template_id;
    reused += r->views_reused;
    auto* output = static_cast<OutputNode*>(day2[i].logical_plan.get());
    EXPECT_EQ(OutputOf(&cv, output->stream_name()), baseline[i])
        << day2[i].template_id;
  }
  EXPECT_GT(reused, 0);  // the property run must actually exercise reuse
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseEquivalence, ::testing::Range(1, 9));

// --- Partitioning invariants -----------------------------------------------------

struct PartitionCase {
  PartitionScheme scheme;
  int count;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionProperty, PreservesRowMultiset) {
  PartitionCase param = GetParam();
  Schema schema({{"k", DataType::kInt64}, {"s", DataType::kString}});
  Rng rng(99);
  Batch data(schema);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        data.AppendRow({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                        Value::String(rng.Identifier(3))})
            .ok());
  }
  Partitioning partitioning;
  partitioning.scheme = param.scheme;
  partitioning.partition_count = param.count;
  if (param.scheme == PartitionScheme::kHash ||
      param.scheme == PartitionScheme::kRange) {
    partitioning.columns = {"k"};
  }
  auto parts = PartitionBatch(data, partitioning);
  ASSERT_TRUE(parts.ok());
  if (param.scheme != PartitionScheme::kAny &&
      param.scheme != PartitionScheme::kSingleton) {
    EXPECT_EQ(parts->size(), static_cast<size_t>(std::max(param.count, 1)));
  }
  Batch recombined = CombineBatches(schema, *parts);
  EXPECT_EQ(CanonicalRows(recombined), CanonicalRows(data));

  // Hash partitions must agree on keys: the same key never lands in two
  // partitions.
  if (param.scheme == PartitionScheme::kHash) {
    std::map<int64_t, size_t> owner;
    for (size_t p = 0; p < parts->size(); ++p) {
      const Batch& part = (*parts)[p];
      for (size_t r = 0; r < part.num_rows(); ++r) {
        int64_t k = part.column(0).GetValue(r).int64_value();
        auto [it, inserted] = owner.emplace(k, p);
        EXPECT_EQ(it->second, p) << "key " << k << " split across partitions";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PartitionProperty,
    ::testing::Values(PartitionCase{PartitionScheme::kSingleton, 1},
                      PartitionCase{PartitionScheme::kHash, 1},
                      PartitionCase{PartitionScheme::kHash, 4},
                      PartitionCase{PartitionScheme::kHash, 16},
                      PartitionCase{PartitionScheme::kRoundRobin, 4},
                      PartitionCase{PartitionScheme::kRoundRobin, 7},
                      PartitionCase{PartitionScheme::kRange, 4},
                      PartitionCase{PartitionScheme::kRange, 16}));

// --- Sort invariants --------------------------------------------------------------

class SortProperty : public ::testing::TestWithParam<int> {};

TEST_P(SortProperty, SortedOutputIsOrderedPermutation) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Schema schema({{"a", DataType::kInt64},
                 {"b", DataType::kString},
                 {"c", DataType::kDouble}});
  Batch data(schema);
  size_t n = 50 + rng.Uniform(300);
  for (size_t i = 0; i < n; ++i) {
    // Sprinkle nulls: they must sort first, consistently.
    std::vector<Value> row{Value::Int64(static_cast<int64_t>(rng.Uniform(9))),
                           Value::String(rng.Identifier(2)),
                           Value::Double(rng.NextDouble())};
    if (rng.Bernoulli(0.05)) row[0] = Value::Null(DataType::kInt64);
    ASSERT_TRUE(data.AppendRow(row).ok());
  }
  std::vector<SortKey> keys{{"a", true}, {"b", false}, {"c", true}};
  Batch sorted = SortBatch(data, keys);
  ASSERT_EQ(sorted.num_rows(), data.num_rows());
  EXPECT_EQ(CanonicalRows(sorted), CanonicalRows(data));  // permutation
  for (size_t r = 1; r < sorted.num_rows(); ++r) {
    // Lexicographic comparison under the key directions.
    int cmp_a = sorted.column(0).GetValue(r - 1).Compare(
        sorted.column(0).GetValue(r));
    ASSERT_LE(cmp_a, 0);
    if (cmp_a != 0) continue;
    int cmp_b = sorted.column(1).GetValue(r - 1).Compare(
        sorted.column(1).GetValue(r));
    ASSERT_GE(cmp_b, 0);  // b is descending
    if (cmp_b != 0) continue;
    ASSERT_LE(sorted.column(2).GetValue(r - 1).Compare(
                  sorted.column(2).GetValue(r)),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty, ::testing::Range(1, 6));

// --- Signature determinism over the synthetic generator ---------------------------

class SignatureProperty : public ::testing::TestWithParam<int> {};

TEST_P(SignatureProperty, TemplatesNormalizeAcrossInstancesAndProcesses) {
  ClusterProfile profile;
  profile.num_templates = 15;
  profile.seed = static_cast<uint64_t>(GetParam());
  SyntheticWorkloadGenerator gen(profile);
  auto a = gen.Instance("2018-03-01");
  auto b = gen.Instance("2018-03-02");
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].logical_plan->Bind().ok());
    ASSERT_TRUE(b[i].logical_plan->Bind().ok());
    EXPECT_EQ(a[i].logical_plan->SubtreeHash(SignatureMode::kNormalized),
              b[i].logical_plan->SubtreeHash(SignatureMode::kNormalized));
    EXPECT_NE(a[i].logical_plan->SubtreeHash(SignatureMode::kPrecise),
              b[i].logical_plan->SubtreeHash(SignatureMode::kPrecise));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignatureProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace cloudviews
