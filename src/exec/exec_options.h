#ifndef CLOUDVIEWS_EXEC_EXEC_OPTIONS_H_
#define CLOUDVIEWS_EXEC_EXEC_OPTIONS_H_

namespace cloudviews {

/// \brief Knobs of the morsel-driven execution engine.
///
/// Results are bit-identical for every setting of both knobs: parallel
/// operators precompute (evaluate, hash, compare) per morsel on the pool
/// and then merge or accumulate in a deterministic global row order, so a
/// multi-worker run reproduces the single-threaded engine byte for byte.
struct ExecOptions {
  /// Worker threads executing one job's plan. 1 = run everything inline on
  /// the submitting thread (the legacy operator-at-a-time schedule).
  int worker_threads = 1;

  /// Maximum rows per morsel, the scheduling granule for intra-operator
  /// parallelism. Values < 1 fall back to the default.
  int morsel_rows = 4096;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_EXEC_EXEC_OPTIONS_H_
