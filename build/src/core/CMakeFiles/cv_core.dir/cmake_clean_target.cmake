file(REMOVE_RECURSE
  "libcv_core.a"
)
