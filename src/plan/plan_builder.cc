#include "plan/plan_builder.h"

namespace cloudviews {

PlanBuilder PlanBuilder::Extract(std::string template_name,
                                 std::string stream_name, std::string guid,
                                 Schema schema) {
  return PlanBuilder(std::make_shared<ExtractNode>(
      std::move(template_name), std::move(stream_name), std::move(guid),
      std::move(schema)));
}

PlanBuilder PlanBuilder::From(PlanNodePtr node) {
  return PlanBuilder(std::move(node));
}

PlanBuilder PlanBuilder::Filter(ExprPtr predicate) && {
  return PlanBuilder(
      std::make_shared<FilterNode>(std::move(root_), std::move(predicate)));
}

PlanBuilder PlanBuilder::Project(std::vector<NamedExpr> exprs) && {
  return PlanBuilder(
      std::make_shared<ProjectNode>(std::move(root_), std::move(exprs)));
}

PlanBuilder PlanBuilder::Select(const std::vector<std::string>& columns) && {
  std::vector<NamedExpr> exprs;
  exprs.reserve(columns.size());
  for (const auto& c : columns) exprs.push_back({Col(c), c});
  return std::move(*this).Project(std::move(exprs));
}

PlanBuilder PlanBuilder::Join(
    PlanBuilder right, JoinType type,
    std::vector<std::pair<std::string, std::string>> keys) && {
  return PlanBuilder(std::make_shared<JoinNode>(
      std::move(root_), std::move(right.root_), type, std::move(keys)));
}

PlanBuilder PlanBuilder::Aggregate(
    std::vector<std::string> group_keys,
    std::vector<AggregateSpec> aggregates) && {
  return PlanBuilder(std::make_shared<AggregateNode>(
      std::move(root_), std::move(group_keys), std::move(aggregates)));
}

PlanBuilder PlanBuilder::Sort(std::vector<SortKey> keys) && {
  return PlanBuilder(
      std::make_shared<SortNode>(std::move(root_), std::move(keys)));
}

PlanBuilder PlanBuilder::Exchange(Partitioning partitioning) && {
  return PlanBuilder(std::make_shared<ExchangeNode>(std::move(root_),
                                                    std::move(partitioning)));
}

PlanBuilder PlanBuilder::UnionAll(PlanBuilder other) && {
  std::vector<PlanNodePtr> kids{std::move(root_), std::move(other.root_)};
  return PlanBuilder(std::make_shared<UnionAllNode>(std::move(kids)));
}

PlanBuilder PlanBuilder::Process(std::string processor, std::string library,
                                 std::string version,
                                 Schema output_schema) && {
  return PlanBuilder(std::make_shared<ProcessNode>(
      std::move(root_), std::move(processor), std::move(library),
      std::move(version), std::move(output_schema)));
}

PlanBuilder PlanBuilder::Top(int64_t limit) && {
  return PlanBuilder(std::make_shared<TopNode>(std::move(root_), limit));
}

PlanBuilder PlanBuilder::Output(std::string stream_name) && {
  return PlanBuilder(
      std::make_shared<OutputNode>(std::move(root_), std::move(stream_name)));
}

PlanNodePtr PlanBuilder::Build() && { return std::move(root_); }

}  // namespace cloudviews
