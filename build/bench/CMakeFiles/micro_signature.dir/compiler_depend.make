# Empty compiler generated dependencies file for micro_signature.
# This may be replaced when dependencies are built.
