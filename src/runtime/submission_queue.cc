#include "runtime/submission_queue.h"

#include <utility>

#include "common/clock.h"

namespace cloudviews {

SubmissionQueue::SubmissionQueue(const Options& options,
                                 obs::MetricsRegistry* metrics)
    : capacity_(options.capacity > 0 ? options.capacity : 1) {
  if (metrics != nullptr) {
    obs::Labels labels{{"queue", options.name}};
    depth_gauge_ = metrics->GetGauge(
        "cv_submission_queue_depth", labels,
        "Tasks queued, not yet picked up by a worker (excludes running "
        "tasks — see cv_submission_queue_running for work in flight)");
    running_gauge_ = metrics->GetGauge(
        "cv_submission_queue_running", labels,
        "Tasks currently executing on a worker thread; depth + running is "
        "the total admitted-but-unfinished work");
    admitted_counter_ =
        metrics->GetCounter("cv_submission_queue_admitted_total", labels,
                            "Tasks admitted into the bounded queue");
    rejected_counter_ =
        metrics->GetCounter("cv_submission_queue_rejected_total", labels,
                            "Enqueue attempts refused (full or shutdown)");
    queue_wait_ =
        metrics->GetHistogram("cv_submission_queue_wait_seconds", labels, {},
                              "Enqueue-to-dequeue wait");
  }
  int workers = options.workers > 0 ? options.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SubmissionQueue::~SubmissionQueue() { Shutdown(); }

SubmissionQueue::Admit SubmissionQueue::TryEnqueue(
    std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return Admit::kShuttingDown;
    }
    if (queue_.size() >= capacity_) {
      if (rejected_counter_ != nullptr) rejected_counter_->Increment();
      return Admit::kQueueFull;
    }
    double now = MonotonicNowSeconds();
    queue_.push_back([this, now, task = std::move(task)] {
      if (queue_wait_ != nullptr) {
        queue_wait_->Observe(MonotonicNowSeconds() - now);
      }
      task();
    });
    ++admitted_;
    // The admitted counter moves inside the same critical section as the
    // queue push: a metrics scrape racing an admit must never observe
    // admitted/rejected totals inconsistent with the depth gauge.
    if (admitted_counter_ != nullptr) admitted_counter_->Increment();
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  work_cv_.NotifyOne();
  return Admit::kAdmitted;
}

void SubmissionQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      if (depth_gauge_ != nullptr) {
        depth_gauge_->Set(static_cast<double>(queue_.size()));
      }
      if (running_gauge_ != nullptr) {
        running_gauge_->Set(static_cast<double>(running_));
      }
    }
    task();
    {
      MutexLock lock(mu_);
      --running_;
      ++finished_;
      if (running_gauge_ != nullptr) {
        running_gauge_->Set(static_cast<double>(running_));
      }
    }
    drain_cv_.NotifyAll();
  }
}

void SubmissionQueue::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_ > 0) drain_cv_.Wait(mu_);
}

void SubmissionQueue::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!shutdown_) shutdown_ = true;
    // Workers exit once the queue is empty; everything already admitted
    // still runs (shutdown drains, it does not drop).
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t SubmissionQueue::depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

uint64_t SubmissionQueue::admitted() const {
  MutexLock lock(mu_);
  return admitted_;
}

size_t SubmissionQueue::running() const {
  MutexLock lock(mu_);
  return running_;
}

}  // namespace cloudviews
