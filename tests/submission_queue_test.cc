// SubmissionQueue metrics tests: the admitted counter moves atomically
// with the queue push (a scrape must never see totals inconsistent with
// the depth gauge), and the running gauge tracks in-flight tasks so
// depth + running is the full admitted-but-unfinished backlog.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "obs/metrics.h"
#include "runtime/submission_queue.h"

namespace cloudviews {
namespace {

TEST(SubmissionQueueTest, RunningGaugeTracksInFlightTasks) {
  obs::MetricsRegistry metrics;
  SubmissionQueue::Options options;
  options.capacity = 16;
  options.workers = 2;
  options.name = "gauge_test";
  SubmissionQueue queue(options, &metrics);
  obs::Labels labels{{"queue", "gauge_test"}};
  obs::Gauge* running =
      metrics.GetGauge("cv_submission_queue_running", labels, "");
  obs::Gauge* depth = metrics.GetGauge("cv_submission_queue_depth", labels, "");

  // Block both workers, then queue one more task behind them.
  Mutex mu;
  CondVar release_cv;
  bool released = false;
  std::atomic<int> started{0};
  auto blocker = [&] {
    ++started;
    MutexLock lock(mu);
    while (!released) release_cv.Wait(mu);
  };
  ASSERT_EQ(queue.TryEnqueue(blocker), SubmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryEnqueue(blocker), SubmissionQueue::Admit::kAdmitted);
  std::atomic<bool> third_ran{false};
  ASSERT_EQ(queue.TryEnqueue([&] { third_ran = true; }),
            SubmissionQueue::Admit::kAdmitted);
  while (started.load() < 2) std::this_thread::yield();

  // Both workers are inside tasks; the third task is still queued. During
  // a drain this is exactly the state where depth alone under-reports the
  // outstanding work.
  EXPECT_EQ(queue.running(), 2u);
  EXPECT_EQ(running->value(), 2.0);
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_EQ(depth->value(), 1.0);
  EXPECT_FALSE(third_ran.load());

  {
    MutexLock lock(mu);
    released = true;
  }
  release_cv.NotifyAll();
  queue.Drain();
  EXPECT_TRUE(third_ran.load());
  EXPECT_EQ(queue.running(), 0u);
  EXPECT_EQ(running->value(), 0.0);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.admitted(), 3u);
}

TEST(SubmissionQueueTest, AdmittedCounterMatchesAdmissionsUnderContention) {
  obs::MetricsRegistry metrics;
  SubmissionQueue::Options options;
  options.capacity = 8;  // small: force plenty of kQueueFull rejections
  options.workers = 2;
  options.name = "counter_test";
  SubmissionQueue queue(options, &metrics);
  obs::Labels labels{{"queue", "counter_test"}};
  obs::Counter* admitted_counter =
      metrics.GetCounter("cv_submission_queue_admitted_total", labels, "");
  obs::Counter* rejected_counter =
      metrics.GetCounter("cv_submission_queue_rejected_total", labels, "");

  std::atomic<uint64_t> accepted{0}, rejected{0}, executed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto admit = queue.TryEnqueue([&executed] { ++executed; });
        if (admit == SubmissionQueue::Admit::kAdmitted) {
          ++accepted;
        } else {
          ++rejected;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Drain();

  EXPECT_EQ(queue.admitted(), accepted.load());
  EXPECT_EQ(admitted_counter->value(), accepted.load());
  EXPECT_EQ(rejected_counter->value(), rejected.load());
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_EQ(queue.running(), 0u);
}

TEST(SubmissionQueueTest, ScrapeNeverSeesCounterBehindQueueState) {
  // Regression for the counter moving outside the critical section: a
  // concurrent reader snapshotting (admitted counter, depth, running) must
  // never observe more outstanding work than admissions that explain it.
  obs::MetricsRegistry metrics;
  SubmissionQueue::Options options;
  options.capacity = 32;
  options.workers = 2;
  options.name = "scrape_test";
  SubmissionQueue queue(options, &metrics);
  obs::Labels labels{{"queue", "scrape_test"}};
  obs::Counter* admitted_counter =
      metrics.GetCounter("cv_submission_queue_admitted_total", labels, "");

  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread scraper([&] {
    while (!stop.load()) {
      // With the counter incremented inside the push's critical section,
      // the queue depth at any instant is at most the admissions counted
      // by then — and the counter only grows, so reading it AFTER the
      // depth can only make the bound looser. The old code (increment
      // after unlock) allowed depth == 1 with the counter still at 0.
      size_t depth_now = queue.depth();
      uint64_t counted_after = admitted_counter->value();
      if (static_cast<uint64_t>(depth_now) > counted_after) violated = true;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    (void)queue.TryEnqueue([] {
      // A touch of work so the queue actually backs up under the scraper.
      std::atomic<int> spin{0};
      while (spin.fetch_add(1, std::memory_order_relaxed) < 64) {
      }
    });
  }
  stop = true;
  scraper.join();
  queue.Drain();
  EXPECT_FALSE(violated.load());
}

}  // namespace
}  // namespace cloudviews
