# Empty dependencies file for cv_expr.
# This may be replaced when dependencies are built.
