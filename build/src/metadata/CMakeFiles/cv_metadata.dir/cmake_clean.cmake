file(REMOVE_RECURSE
  "CMakeFiles/cv_metadata.dir/metadata_service.cc.o"
  "CMakeFiles/cv_metadata.dir/metadata_service.cc.o.d"
  "libcv_metadata.a"
  "libcv_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
