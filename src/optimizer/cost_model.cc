#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "signature/signature.h"

namespace cloudviews {

double CostModel::PredicateSelectivity(const Expr& predicate) {
  switch (predicate.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(predicate);
      switch (cmp.op()) {
        case CompareOp::kEq:
          return 0.1;
        case CompareOp::kNe:
          return 0.9;
        default:
          return 0.33;  // range predicates
      }
    }
    case ExprKind::kLogical: {
      const auto& lg = static_cast<const LogicalExpr&>(predicate);
      if (lg.op() == LogicalOp::kNot) {
        return 1.0 - PredicateSelectivity(*lg.children()[0]);
      }
      double a = PredicateSelectivity(*lg.children()[0]);
      double b = PredicateSelectivity(*lg.children()[1]);
      if (lg.op() == LogicalOp::kAnd) return a * b;
      return std::min(1.0, a + b - a * b);
    }
    case ExprKind::kUdfCall:
      return 0.5;  // opaque user code
    default:
      return 0.5;
  }
}

double CostModel::ViewReadCost(double rows, double bytes) const {
  return rows * config_.view_read_weight + bytes * config_.bytes_weight;
}

double CostModel::LocalCost(const PlanNode& node, double input_rows,
                            double input_bytes) const {
  const double out_rows = node.estimates().rows;
  const double out_bytes = node.estimates().bytes;
  switch (node.kind()) {
    case OpKind::kExtract:
      return out_rows * config_.scan_weight + out_bytes * config_.bytes_weight;
    case OpKind::kViewRead:
      return ViewReadCost(out_rows, out_bytes);
    case OpKind::kFilter:
      return input_rows * config_.filter_weight;
    case OpKind::kProject:
      return input_rows * config_.project_weight;
    case OpKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      double w = join.algorithm() == JoinAlgorithm::kMerge
                     ? config_.merge_join_weight
                     : config_.hash_join_weight;
      return input_rows * w + out_rows * 0.1;
    }
    case OpKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      double w = agg.algorithm() == AggAlgorithm::kStream
                     ? config_.stream_agg_weight
                     : config_.hash_agg_weight;
      return input_rows * w;
    }
    case OpKind::kSort:
      return input_rows * config_.sort_weight *
             std::log2(std::max(2.0, input_rows));
    case OpKind::kExchange:
      return input_rows * config_.shuffle_weight +
             input_bytes * config_.bytes_weight;
    case OpKind::kUnionAll:
      return input_rows * 0.05;
    case OpKind::kProcess:
      return input_rows * config_.process_weight;
    case OpKind::kReduce:
      // Group-wise user code: per-row processing plus group bookkeeping.
      return input_rows * config_.process_weight * 1.2;
    case OpKind::kTop:
      return out_rows * config_.top_weight;
    case OpKind::kSpool: {
      // Writing the view plus enforcing its physical design.
      const auto& spool = static_cast<const SpoolNode&>(node);
      double cost = input_rows * config_.spool_weight +
                    input_bytes * config_.bytes_weight;
      if (spool.design().partitioning.IsSpecified()) {
        cost += input_rows * config_.shuffle_weight * 0.5;
      }
      if (spool.design().sort_order.IsSorted()) {
        cost += input_rows * config_.sort_weight *
                std::log2(std::max(2.0, input_rows)) * 0.5;
      }
      return cost;
    }
    case OpKind::kOutput:
      return input_rows * config_.output_weight +
             input_bytes * config_.bytes_weight;
  }
  return 0;
}

namespace {

/// Effective parallelism of an operator: bounded by the partition count of
/// its delivered distribution (singleton stages run at dop 1).
int EffectiveDop(const PlanNode& node, int default_dop) {
  Partitioning p = node.Delivered().partitioning;
  if (p.scheme == PartitionScheme::kSingleton) return 1;
  if (p.partition_count > 0) return std::min(default_dop, p.partition_count);
  return default_dop;
}

void AnnotateInternal(PlanNode* node, const CostModel& model,
                      const StatsProviderInterface* feedback,
                      const StorageManager* storage) {
  double input_rows = 0;
  double input_bytes = 0;
  double children_cost = 0;
  for (auto& c : node->mutable_children()) {
    AnnotateInternal(c.get(), model, feedback, storage);
    input_rows += c->estimates().rows;
    input_bytes += c->estimates().bytes;
    children_cost += c->estimates().cost;
  }

  NodeEstimates& est = node->estimates();
  est.from_feedback = false;
  double row_width =
      static_cast<double>(node->output_schema().EstimatedRowWidth());

  switch (node->kind()) {
    case OpKind::kExtract: {
      auto* extract = static_cast<ExtractNode*>(node);
      est.rows = 1000;  // default guess for unknown inputs
      est.bytes = est.rows * row_width;
      if (storage != nullptr) {
        auto stream = storage->OpenStream(extract->stream_name());
        if (stream.ok()) {
          est.rows = static_cast<double>((*stream)->total_rows);
          est.bytes = static_cast<double>((*stream)->total_bytes);
        }
      }
      break;
    }
    case OpKind::kViewRead: {
      auto* view = static_cast<ViewReadNode*>(node);
      est.rows = view->actual_rows();
      est.bytes = view->actual_bytes();
      est.from_feedback = true;  // actuals from the materialized instance
      break;
    }
    case OpKind::kFilter: {
      auto* filter = static_cast<FilterNode*>(node);
      est.rows = input_rows *
                 CostModel::PredicateSelectivity(*filter->predicate());
      est.bytes = est.rows * row_width;
      break;
    }
    case OpKind::kProject:
      est.rows = input_rows;
      est.bytes = est.rows * row_width;
      break;
    case OpKind::kJoin: {
      double l = node->children()[0]->estimates().rows;
      double r = node->children()[1]->estimates().rows;
      est.rows = std::max(1.0, l * r / std::max({l, r, 1.0})) * 1.2;
      auto* join = static_cast<JoinNode*>(node);
      if (join->join_type() == JoinType::kLeftOuter) {
        est.rows = std::max(est.rows, l);
      }
      est.bytes = est.rows * row_width;
      break;
    }
    case OpKind::kAggregate: {
      auto* agg = static_cast<AggregateNode*>(node);
      if (agg->group_keys().empty()) {
        est.rows = 1;
      } else {
        est.rows = std::max(1.0, std::pow(input_rows, 0.8));
      }
      est.bytes = est.rows * row_width;
      break;
    }
    case OpKind::kTop: {
      auto* top = static_cast<TopNode*>(node);
      est.rows = std::min(input_rows, static_cast<double>(top->limit()));
      est.bytes = est.rows * row_width;
      break;
    }
    case OpKind::kUnionAll:
      est.rows = input_rows;
      est.bytes = input_bytes;
      break;
    case OpKind::kProcess:
      est.rows = input_rows;  // opaque: assume 1:1 until feedback corrects
      est.bytes = est.rows * row_width;
      break;
    case OpKind::kReduce:
      // Opaque group-wise code: assume roughly one output run per group.
      est.rows = std::max(1.0, std::pow(input_rows, 0.8));
      est.bytes = est.rows * row_width;
      break;
    case OpKind::kSort:
    case OpKind::kExchange:
    case OpKind::kSpool:
    case OpKind::kOutput:
      est.rows = input_rows;
      est.bytes = input_bytes;
      break;
  }

  // The feedback loop: replace estimates with observed statistics for this
  // computation template when prior runs exist (Sec 5.1).
  if (feedback != nullptr && IsReusableRoot(*node)) {
    Hash128 normalized = node->SubtreeHash(SignatureMode::kNormalized);
    if (auto observed = feedback->Lookup(normalized)) {
      est.rows = observed->rows;
      est.bytes = observed->bytes;
      est.from_feedback = true;
    }
  }

  int dop = EffectiveDop(*node, model.config().default_dop);
  est.cost = children_cost +
             model.LocalCost(*node, input_rows, input_bytes) /
                 static_cast<double>(dop);
}

}  // namespace

void CostModel::Annotate(PlanNode* root,
                         const StatsProviderInterface* feedback,
                         const StorageManager* storage) const {
  AnnotateInternal(root, *this, feedback, storage);
}

}  // namespace cloudviews
