#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "core/cloudviews.h"
#include "signature/signature.h"
#include "workload/production_workload.h"
#include "workload/synthetic.h"

namespace cloudviews {
namespace {

TEST(SyntheticWorkloadTest, InstanceShapeAndDeterminism) {
  ClusterProfile profile = Fig1ClusterProfile(0);
  profile.num_templates = 40;
  SyntheticWorkloadGenerator gen_a(profile);
  SyntheticWorkloadGenerator gen_b(profile);

  auto jobs_a = gen_a.Instance("2018-01-01");
  auto jobs_b = gen_b.Instance("2018-01-01");
  ASSERT_EQ(jobs_a.size(), 40u);
  for (size_t i = 0; i < jobs_a.size(); ++i) {
    ASSERT_NE(jobs_a[i].logical_plan, nullptr);
    ASSERT_TRUE(jobs_a[i].logical_plan->Bind().ok());
    ASSERT_TRUE(jobs_b[i].logical_plan->Bind().ok());
    EXPECT_EQ(
        jobs_a[i].logical_plan->SubtreeHash(SignatureMode::kPrecise),
        jobs_b[i].logical_plan->SubtreeHash(SignatureMode::kPrecise));
  }
}

TEST(SyntheticWorkloadTest, RecurringInstancesNormalizeAcrossDays) {
  ClusterProfile profile = Fig1ClusterProfile(0);
  profile.num_templates = 20;
  SyntheticWorkloadGenerator gen(profile);
  auto day1 = gen.Instance("2018-01-01");
  auto day2 = gen.Instance("2018-01-02");
  for (size_t i = 0; i < day1.size(); ++i) {
    ASSERT_TRUE(day1[i].logical_plan->Bind().ok());
    ASSERT_TRUE(day2[i].logical_plan->Bind().ok());
    EXPECT_EQ(
        day1[i].logical_plan->SubtreeHash(SignatureMode::kNormalized),
        day2[i].logical_plan->SubtreeHash(SignatureMode::kNormalized));
    EXPECT_NE(day1[i].logical_plan->SubtreeHash(SignatureMode::kPrecise),
              day2[i].logical_plan->SubtreeHash(SignatureMode::kPrecise));
  }
}

TEST(SyntheticWorkloadTest, AllJobsExecute) {
  ClusterProfile profile = Fig1ClusterProfile(1);
  profile.num_templates = 60;
  profile.rows_per_input = 100;
  SyntheticWorkloadGenerator gen(profile);
  CloudViews cv;
  gen.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : gen.Instance("2018-01-01")) {
    auto result = cv.Submit(def, false);
    ASSERT_TRUE(result.ok())
        << def.template_id << ": " << result.status().ToString();
  }
  EXPECT_EQ(cv.repository()->NumJobs(), 60u);
}

TEST(SyntheticWorkloadTest, SharedFragmentsCreateOverlap) {
  ClusterProfile profile = Fig1ClusterProfile(0);
  profile.num_templates = 80;
  profile.rows_per_input = 100;
  SyntheticWorkloadGenerator gen(profile);
  CloudViews cv;
  gen.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : gen.Instance("2018-01-01")) {
    ASSERT_TRUE(cv.Submit(def, false).ok());
  }
  OverlapAnalyzer overlap;
  overlap.AddJobs(cv.repository()->Jobs());
  OverlapReport report = overlap.BuildReport();
  EXPECT_GT(report.PctOverlappingJobs(), 30.0);
  EXPECT_GT(report.PctUsersWithOverlap(), 30.0);
  EXPECT_GT(report.overlapping_subgraph_templates, 0u);
}

TEST(SyntheticWorkloadTest, Cluster3HasLowestOverlap) {
  auto measure = [](int cluster) {
    ClusterProfile profile = Fig1ClusterProfile(cluster);
    profile.num_templates = 60;
    profile.rows_per_input = 60;
    SyntheticWorkloadGenerator gen(profile);
    CloudViews cv;
    gen.WriteInputs(cv.storage(), "2018-01-01");
    for (const auto& def : gen.Instance("2018-01-01")) {
      EXPECT_TRUE(cv.Submit(def, false).ok());
    }
    OverlapAnalyzer overlap;
    overlap.AddJobs(cv.repository()->Jobs());
    return overlap.BuildReport().PctOverlappingJobs();
  };
  double c1 = measure(0);
  double c3 = measure(2);
  EXPECT_LT(c3, c1);
}

TEST(ProductionWorkloadTest, ThirtyTwoJobsInThreeGroups) {
  ProductionWorkload workload;
  auto jobs = workload.Instance("2018-01-01");
  ASSERT_EQ(jobs.size(), 32u);
  std::map<int, int> group_counts;
  for (int g : workload.job_groups()) ++group_counts[g];
  EXPECT_EQ(group_counts[0], 16);
  EXPECT_EQ(group_counts[1], 12);
  EXPECT_EQ(group_counts[2], 4);
}

TEST(ProductionWorkloadTest, GroupsShareTheirComputation) {
  ProductionWorkload::Options options;
  options.rows_per_input = 500;
  ProductionWorkload workload(options);
  CloudViews cv;
  workload.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : workload.Instance("2018-01-01")) {
    auto r = cv.Submit(def, false);
    ASSERT_TRUE(r.ok()) << def.template_id << ": "
                        << r.status().ToString();
  }
  OverlapAnalyzer overlap;
  overlap.AddJobs(cv.repository()->Jobs());
  // Each group's shared computation must appear exactly group-size times.
  std::set<int64_t> group_frequencies;
  for (const auto& [sig, agg] : overlap.aggregates()) {
    if (agg.root_kind == OpKind::kAggregate && agg.frequency >= 4 &&
        agg.jobs.size() == static_cast<size_t>(agg.frequency)) {
      group_frequencies.insert(agg.frequency);
    }
  }
  EXPECT_TRUE(group_frequencies.count(16) == 1);
  EXPECT_TRUE(group_frequencies.count(12) == 1);
  EXPECT_TRUE(group_frequencies.count(4) == 1);
}

TEST(ProductionWorkloadTest, EndToEndReuseAcrossTheWorkload) {
  ProductionWorkload::Options options;
  options.rows_per_input = 500;
  ProductionWorkload workload(options);
  CloudViewsConfig config;
  config.analyzer.selection.top_k = 3;
  config.analyzer.selection.min_frequency = 3;
  config.analyzer.selection.min_cost_fraction_of_job = 0.2;
  config.analyzer.selection.max_per_job = 1;
  CloudViews cv(config);

  workload.WriteInputs(cv.storage(), "2018-01-01");
  for (const auto& def : workload.Instance("2018-01-01")) {
    ASSERT_TRUE(cv.Submit(def, false).ok());
  }
  auto analysis = cv.RunAnalyzerAndLoad();
  EXPECT_EQ(analysis.annotations.size(), 3u);

  workload.WriteInputs(cv.storage(), "2018-01-02");
  int reused = 0, built = 0;
  for (const auto& def : workload.Instance("2018-01-02")) {
    auto r = cv.Submit(def);
    ASSERT_TRUE(r.ok()) << def.template_id;
    reused += r->views_reused;
    built += r->views_materialized;
  }
  EXPECT_EQ(built, 3);
  // All other group members reuse: 15 + 11 + 3 = 29.
  EXPECT_EQ(reused, 29);
}

}  // namespace
}  // namespace cloudviews
