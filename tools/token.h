#ifndef CLOUDVIEWS_TOOLS_TOKEN_H_
#define CLOUDVIEWS_TOOLS_TOKEN_H_

#include <string>
#include <vector>

namespace cloudviews {
namespace lint {

/// Token kinds emitted by Tokenize(). Comments and preprocessor directive
/// names are emitted as tokens (not discarded) because the analyzer reads
/// justification comments (sig-skip, order-insensitive, NOLINT) and the
/// lint rules need to know a `#include` line from code.
enum class TokenKind {
  kIdentifier,    // foo, operator (keywords are identifiers here)
  kNumber,        // 42, 0x1f, 1'000'000, 3.14e-2
  kString,        // "..." or R"delim(...)delim", prefix included in text
  kCharLit,       // 'c', u8'x'
  kPunct,         // one maximal-munch punctuator: :: -> <=> += ...
  kComment,       // // ... (text w/o newline) or /* ... */ (may span lines)
  kPreprocessor,  // the directive head only: "#include", "#define", "# if"
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  // True for every token on a preprocessor logical line (the directive head
  // and the code tokens after it). Lint rules still scan these — a macro
  // body calling srand() is a violation — but the declaration parser must
  // not feed `#include <map>` into class/member recognition.
  bool in_directive = false;

  bool Is(TokenKind k, const char* t) const {
    return kind == k && text == t;
  }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdentifier, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

/// Lexes C++ source into a token stream. Handles:
///  - backslash-newline line splices (anywhere, including inside literals
///    and comments; spliced tokens report the line they start on)
///  - // and non-nesting /* */ comments, emitted as kComment tokens
///  - string/char literals with escapes and encoding prefixes
///    (u8 u U L), so banned identifiers inside prose never lint
///  - raw strings R"delim( ... )delim" (any prefix) spanning lines
///  - pp-numbers with digit separators (1'000) and exponent signs (1e-9)
///  - preprocessor directives: the `#name` head becomes one kPreprocessor
///    token and the rest of the logical line is lexed as ordinary code, so
///    a macro body defining `srand(...)` still produces a `srand` token
///  - maximal-munch punctuation (::, ->, <=>, <<=, ..., etc.)
/// Unterminated literals are closed at end of file rather than dropped.
std::vector<Token> Tokenize(const std::string& content);

/// True if `text` names an identifier-like token character.
bool IsIdentChar(char c);

}  // namespace lint
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_TOKEN_H_
