file(REMOVE_RECURSE
  "CMakeFiles/cv_expr.dir/aggregate.cc.o"
  "CMakeFiles/cv_expr.dir/aggregate.cc.o.d"
  "CMakeFiles/cv_expr.dir/expr.cc.o"
  "CMakeFiles/cv_expr.dir/expr.cc.o.d"
  "CMakeFiles/cv_expr.dir/function_registry.cc.o"
  "CMakeFiles/cv_expr.dir/function_registry.cc.o.d"
  "libcv_expr.a"
  "libcv_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
