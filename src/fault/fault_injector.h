#ifndef CLOUDVIEWS_FAULT_FAULT_INJECTOR_H_
#define CLOUDVIEWS_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace cloudviews {
namespace fault {

/// Named injection points threaded through the reuse pipeline. A point is
/// just a string key: components call MaybeInject(point, key) at the
/// matching seam and armed specs decide whether that call fails.
namespace points {
/// StorageManager::OpenStream on a non-view stream.
inline constexpr char kStorageRead[] = "storage.read";
/// StorageManager::OpenStream on a materialized-view stream (/views/...).
inline constexpr char kStorageViewRead[] = "storage.view_read";
/// StorageManager::WriteStream on a non-view stream (job output).
inline constexpr char kStorageWrite[] = "storage.write";
/// StorageManager::WriteStream on a view stream; nothing is stored.
inline constexpr char kStorageViewWrite[] = "storage.view_write";
/// StorageManager::WriteStream on a view stream; a torn (truncated,
/// incomplete-flagged) partial is left behind and the write still fails.
inline constexpr char kStorageViewWriteTorn[] = "storage.view_write.torn";
/// MetadataService::TryGetRelevantViews (lookup timeout).
inline constexpr char kMetadataLookup[] = "metadata.lookup";
/// MetadataService::ProposeMaterialize; an injected fault is surfaced as a
/// build-lock denial (the job runs, just without materializing).
inline constexpr char kMetadataPropose[] = "metadata.propose";
/// SpoolOperator after the view bytes are durable but before the producer
/// registers them: models a builder process dying while holding the build
/// lock, with an orphaned (complete but unregistered) view file on disk.
inline constexpr char kBuilderCrash[] = "builder.crash";
/// Executor, per morsel, keyed "job:node:phase:morsel".
inline constexpr char kExecMorsel[] = "exec.morsel";
/// JobServiceServer accept loop, after ::accept returns a connection: an
/// injected fault closes the new socket before a session starts (models a
/// front-door drop under SYN pressure).
inline constexpr char kNetAccept[] = "net.accept";
/// Connection read path, keyed by connection id, before each frame read:
/// an injected fault tears the connection down mid-stream.
inline constexpr char kNetRead[] = "net.read";
/// Connection write path, keyed by connection id, before each response
/// frame: an injected fault drops the connection with the response unsent.
inline constexpr char kNetWrite[] = "net.write";
/// AdmissionController::TryAdmit, keyed by connection id: an injected
/// fault sheds the request with a RETRY_AFTER as if the queue were full.
inline constexpr char kNetQueueAdmit[] = "net.queue_admit";
/// InflightSharing leader, after executing but before fanning the result
/// out to followers, keyed by the share signature: an injected fault makes
/// the leader publish failure so every follower degrades to independent
/// execution. With crash=true the leader job itself also fails (a leader
/// process dying mid-share); without it only the fan-out is lost.
inline constexpr char kSharingLeaderCrash[] = "sharing.leader_crash";
/// MetadataService::WaitForMaterialized entry, keyed by the precise
/// signature: an injected fault forces the piggyback wait to time out
/// immediately, so the job falls back to its already-compiled reuse-blind
/// plan (the pre-sharing behavior).
inline constexpr char kSharingPiggybackTimeout[] =
    "sharing.piggyback_timeout";
}  // namespace points

/// \brief What an armed injection point does. Exactly one of `probability`
/// and `trigger_every` should be set; `trigger_every` wins when both are.
struct FaultSpec {
  /// Probability in [0,1] that any single hit fires. Draws are a pure
  /// function of (injector seed, point, key, per-key hit ordinal), so a
  /// given key sees the same fire/no-fire sequence on every run regardless
  /// of thread interleaving — and a retry of the same operation is a new
  /// ordinal, i.e. a fresh draw.
  double probability = 0;
  /// Fire on every N-th hit of the point (global hit counter), e.g. 1 =
  /// always, 3 = hits 3, 6, 9, ... Deterministic sequencing for tests.
  uint64_t trigger_every = 0;
  /// Stop firing after this many fires (the point stays armed and keeps
  /// counting hits).
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
  /// Status code of the injected failure.
  StatusCode code = StatusCode::kIOError;
  /// Appended to the generated message, for test assertions.
  std::string message;
  /// Marks the failure as a simulated process crash: cleanup that a dead
  /// process could not have run (lock abandonment, partial deletion) must
  /// be skipped by the caller. See IsInjectedCrash().
  bool crash = false;
};

/// \brief Deterministic fault-injection registry.
///
/// One injector is shared by every component of a CloudViews instance
/// (wired through CloudViewsConfig::fault). Components call MaybeInject at
/// named seams; the injector returns OK unless the point is armed and this
/// hit draws a failure. All decisions derive from the constructor seed —
/// re-running the same single-threaded workload with the same seed yields
/// the identical fault schedule, and per-key draw sequences stay stable
/// even under concurrent jobs.
///
/// Thread-safe. A bounded event log records every fire for post-mortem
/// artifacts (EventsJson / WriteEventsJson).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : seed_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// (Re)arms `point` with a fresh spec. The point's hit/fire counters and
  /// per-key ordinals restart so the new spec gets a full schedule; the
  /// global event log is unaffected.
  void Arm(const std::string& point, FaultSpec spec) EXCLUDES(mu_);
  void Disarm(const std::string& point) EXCLUDES(mu_);
  /// Disarms every point and clears all counters and events.
  void Reset() EXCLUDES(mu_);

  /// Returns OK, or the armed failure for `point` if this hit fires.
  /// `key` identifies the operation instance (stream name, signature, ...);
  /// unkeyed hits share the key "".
  Status MaybeInject(const std::string& point, const std::string& key = "")
      EXCLUDES(mu_);

  uint64_t hits(const std::string& point) const EXCLUDES(mu_);
  uint64_t fires(const std::string& point) const EXCLUDES(mu_);
  uint64_t total_fires() const EXCLUDES(mu_);

  struct Event {
    uint64_t sequence = 0;  ///< global fire ordinal, 1-based
    std::string point;
    std::string key;
    uint64_t point_hit = 0;  ///< value of the point's hit counter
    StatusCode code = StatusCode::kOk;
    bool crash = false;
  };
  /// The retained fire log, oldest first (bounded; see dropped_events()).
  std::vector<Event> events() const EXCLUDES(mu_);
  uint64_t dropped_events() const EXCLUDES(mu_);

  /// JSON artifact: seed, per-point hit/fire counts, and the event log.
  std::string EventsJson() const EXCLUDES(mu_);
  /// Writes EventsJson() to `path` (for CI artifact upload on failure).
  Status WriteEventsJson(const std::string& path) const;

  /// Registers `cv_fault_injections_total{point=...}` counters; safe to
  /// call before or after arming. Null unregisters.
  void SetMetrics(obs::MetricsRegistry* metrics) EXCLUDES(mu_);

 private:
  struct PointState {
    FaultSpec spec;
    bool armed = false;
    uint64_t hit_count = 0;
    uint64_t fire_count = 0;
    /// Per-key hit ordinals driving the deterministic probability draws.
    std::unordered_map<std::string, uint64_t> key_hits;
    obs::Counter* fires_counter = nullptr;
  };

  static constexpr size_t kMaxEvents = 4096;

  const uint64_t seed_;
  mutable Mutex mu_;
  /// std::map: EventsJson renders points in a stable order.
  std::map<std::string, PointState> points_ GUARDED_BY(mu_);
  std::vector<Event> events_ GUARDED_BY(mu_);
  uint64_t total_fires_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_events_ GUARDED_BY(mu_) = 0;
  obs::MetricsRegistry* metrics_ GUARDED_BY(mu_) = nullptr;
};

/// True when `status` was produced by a FaultInjector (any armed spec).
bool IsInjectedFault(const Status& status);
/// True when `status` came from a spec with crash=true — the component it
/// hit is modeling a dead process, so owners must NOT run the usual
/// failure-path cleanup (that is exactly what the lease machinery covers).
bool IsInjectedCrash(const Status& status);

}  // namespace fault
}  // namespace cloudviews

#endif  // CLOUDVIEWS_FAULT_FAULT_INJECTOR_H_
