// Reproduces Figure 4: operator-wise breakdown of overlapping subgraphs
// (4a) and per-operator overlap-frequency CDFs for shuffle, filter, and
// user-defined processors (4b-4d).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analyzer/overlap_analyzer.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

void PrintOperatorCdf(const char* figure, const char* name,
                      const std::vector<double>& freqs) {
  DistributionSummary summary;
  summary.AddAll(freqs);
  std::printf("\n%s: overlap frequency CDF for %s (n=%zu)\n", figure, name,
              summary.count());
  TablePrinter table({"frequency", "fraction <= x"});
  for (double x : {2.0, 5.0, 10.0, 50.0, 100.0, 1000.0}) {
    table.AddRow(StrFormat("%.0f", x), {summary.CdfAt(x)}, 3);
  }
  table.Print(std::cout);
}

int Run() {
  FigureHeader(
      "Figure 4", "Operator-wise overlap (business unit)",
      "sort and exchange (shuffle) are the top overlapping computations; "
      "UDO frequency distributions are flatter than shuffles (shared "
      "libraries)");

  ClusterRun run = RunClusterInstance(BusinessUnitProfile(), "2018-01-01");
  OverlapAnalyzer overlap;
  overlap.AddJobs(run.cv->repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  int64_t total = 0;
  for (const auto& [kind, count] : report.overlap_occurrences_by_operator) {
    total += count;
  }
  std::printf("\nFig 4(a): share of overlapping subgraph occurrences\n");
  std::vector<std::pair<OpKind, int64_t>> rows(
      report.overlap_occurrences_by_operator.begin(),
      report.overlap_occurrences_by_operator.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  TablePrinter table({"operator", "occurrences", "% of overlaps"});
  for (const auto& [kind, count] : rows) {
    table.AddRow(OpKindToString(kind),
                 {static_cast<double>(count),
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(total)},
                 2);
  }
  table.Print(std::cout);

  auto freqs_of = [&](OpKind kind) -> std::vector<double> {
    auto it = report.frequency_by_operator.find(kind);
    return it == report.frequency_by_operator.end() ? std::vector<double>{}
                                                    : it->second;
  };
  PrintOperatorCdf("Fig 4(b)", "Exchange (shuffle)",
                   freqs_of(OpKind::kExchange));
  PrintOperatorCdf("Fig 4(c)", "Filter", freqs_of(OpKind::kFilter));
  PrintOperatorCdf("Fig 4(d)", "Processor (UDO)",
                   freqs_of(OpKind::kProcess));

  // Top-two check.
  std::string top_two = rows.size() >= 2
                            ? std::string(OpKindToString(rows[0].first)) +
                                  ", " + OpKindToString(rows[1].first)
                            : "n/a";
  DistributionSummary shuffle_freqs;
  shuffle_freqs.AddAll(freqs_of(OpKind::kExchange));
  std::printf("\nsummary\n");
  PaperVsMeasured("top overlapping operators", "Sort, Exchange", top_two);
  PaperVsMeasured(
      "shuffles with frequency > 10", "small fraction",
      StrFormat("%.0f%%", 100 * shuffle_freqs.FractionAtLeast(11)));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
