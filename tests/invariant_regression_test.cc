// Regression tests for bugs surfaced by the invariant analyzer
// (tools/invariant_analyzer): determinism of result-producing paths that
// used to leak std::unordered_* iteration order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analyzer/analyzer.h"
#include "core/cloudviews.h"
#include "tests/test_util.h"

namespace cloudviews {
namespace {

using testing_util::ClickSchema;
using testing_util::SharedAggPlan;
using testing_util::WriteClickStream;

class InvariantRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WriteClickStream(cv_.storage(), "clicks_2018-01-01", 600, 7,
                     "2018-01-01");
    WriteClickStream(cv_.storage(), "zeta_2018-01-01", 200, 9,
                     "2018-01-01");
    WriteClickStream(cv_.storage(), "alpha_2018-01-01", 200, 11,
                     "2018-01-01");
  }

  void RunSharedJob(const std::string& name) {
    JobDefinition def;
    def.template_id = name;
    def.vc = "vc1";
    def.user = "alice";
    def.logical_plan = PlanBuilder::From(SharedAggPlan("2018-01-01"))
                           .Output(name + "_out")
                           .Build();
    auto r = cv_.Submit(def, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  void RunScanJob(const std::string& name, const std::string& tmpl,
                  const std::string& stream) {
    JobDefinition def;
    def.template_id = name;
    def.vc = "vc2";
    def.user = "bob";
    def.logical_plan =
        PlanBuilder::Extract(tmpl, stream, "guid-" + name, ClickSchema())
            .Filter(Lt(Col("latency"), Lit(int64_t{100})))
            .Output(name + "_out")
            .Build();
    auto r = cv_.Submit(def, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  CloudViews cv_;
};

// BuildReport() used to emit per_input_max_frequency by iterating a
// std::unordered_map<std::string, double>, so the CDF sample order
// depended on the string hash; the report was not byte-stable across
// libraries or runs. The samples must come out ordered by input template
// name.
TEST_F(InvariantRegressionTest, PerInputFrequencySamplesAreNameOrdered) {
  RunSharedJob("t1");
  RunSharedJob("t2");
  RunScanJob("z", "zeta_{date}", "zeta_2018-01-01");
  RunScanJob("a", "alpha_{date}", "alpha_2018-01-01");

  OverlapAnalyzer overlap;
  overlap.AddJobs(cv_.repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  // Inputs sorted by template name: alpha (freq 1), clicks (the shared
  // aggregate, freq 2), zeta (freq 1).
  std::vector<double> expected = {1.0, 2.0, 1.0};
  EXPECT_EQ(report.per_input_max_frequency, expected);
}

// The same workload fed in any order must produce the identical report
// vector: insertion order must never reach the result.
TEST_F(InvariantRegressionTest, ReportIsInsensitiveToJobOrder) {
  RunSharedJob("t1");
  RunSharedJob("t2");
  RunScanJob("z", "zeta_{date}", "zeta_2018-01-01");
  RunScanJob("a", "alpha_{date}", "alpha_2018-01-01");

  auto jobs = cv_.repository()->Jobs();
  OverlapAnalyzer forward;
  forward.AddJobs(jobs);

  std::reverse(jobs.begin(), jobs.end());
  OverlapAnalyzer backward;
  backward.AddJobs(jobs);

  EXPECT_EQ(forward.BuildReport().per_input_max_frequency,
            backward.BuildReport().per_input_max_frequency);
}

}  // namespace
}  // namespace cloudviews
