
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/cv_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/cv_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/processor_registry.cc" "src/exec/CMakeFiles/cv_exec.dir/processor_registry.cc.o" "gcc" "src/exec/CMakeFiles/cv_exec.dir/processor_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/cv_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/cv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/cv_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
