// Fixture: malformed sig-skips — an unknown group slug and a skip with no
// reason. Both are errors regardless of coverage.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_UNKNOWN_SIG_SKIP_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_UNKNOWN_SIG_SKIP_H_

#include <string>

namespace fixture {

class HashBuilder;

class UnknownSkipNode {
 public:
  void HashInto(HashBuilder* b) const {
    (void)b;
    (void)covered_;
  }

 private:
  std::string covered_;
  std::string a_;  // sig-skip(hsah): typo'd group name
  std::string b_;  // sig-skip(hash)
};

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_UNKNOWN_SIG_SKIP_H_
