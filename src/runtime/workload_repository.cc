#include "runtime/workload_repository.h"

#include <algorithm>

#include "signature/signature.h"

namespace cloudviews {

double SubtreeCpuSeconds(const PlanNode& node, const PlanRuntimeStats& stats) {
  // Pre-order ids: the subtree of a node with id i and size s occupies
  // exactly ids [i, i + s).
  int first = node.id();
  int last = first + static_cast<int>(node.SubtreeSize());
  double cpu = 0;
  for (int id = first; id < last; ++id) {
    auto it = stats.find(id);
    if (it != stats.end()) cpu += it->second.cpu_seconds;
  }
  return cpu;
}

void WorkloadRepository::SetMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  Instruments inst;
  inst.jobs_ingested =
      metrics->GetCounter("cv_repository_jobs_ingested_total", {},
                          "Executed jobs added to the workload repository");
  inst.subgraphs_observed = metrics->GetCounter(
      "cv_repository_subgraph_observations_total", {},
      "Per-subgraph statistic rows folded into the feedback index");
  inst.lookups =
      metrics->GetCounter("cv_repository_lookups_total", {},
                          "Feedback-index lookups by normalized signature");
  inst.lookup_hits = metrics->GetCounter(
      "cv_repository_lookup_hits_total", {},
      "Feedback-index lookups that found observed statistics");
  inst.indexed_subgraphs =
      metrics->GetGauge("cv_repository_indexed_subgraphs", {},
                        "Distinct subgraph templates with statistics");
  SetInstruments(inst);
}

void WorkloadRepository::SetInstruments(const Instruments& instruments) {
  MutexLock lock(mu_);
  obs_ = instruments;
}

void WorkloadRepository::AddJob(JobRecord record) {
  auto shared = std::make_shared<const JobRecord>(std::move(record));

  // Maintain the feedback index: every subgraph of the executed plan
  // contributes its observed statistics under its normalized signature.
  // Subgraph enumeration, signature hashing, and CPU attribution are pure
  // computation over the immutable record — done before taking mu_ so
  // repository ingest does not serialize concurrent job completions.
  struct Observation {
    Hash128 signature;
    double rows = 0, bytes = 0, latency = 0, cpu = 0;
  };
  std::vector<Observation> observed;
  if (shared->plan != nullptr) {
    const PlanRuntimeStats& stats = shared->run_stats.operators;
    std::vector<SubgraphEntry> entries = EnumerateSubgraphs(shared->plan);
    // Inclusive CPU for all subtrees in one pass: pre-order ids make each
    // subtree the id range [i, i + size), so a prefix sum over per-id CPU
    // answers every range in O(1) (the per-subtree re-walk made ingest
    // O(n²) in plan size — while holding mu_).
    int bound = 0;
    for (const auto& entry : entries) {
      bound = std::max(bound, entry.node->id() +
                                  static_cast<int>(entry.node->SubtreeSize()));
    }
    std::vector<double> prefix(static_cast<size_t>(bound) + 1, 0.0);
    for (const auto& [id, op] : stats) {
      if (id >= 0 && id < bound) {
        prefix[static_cast<size_t>(id) + 1] = op.cpu_seconds;
      }
    }
    for (size_t i = 1; i < prefix.size(); ++i) prefix[i] += prefix[i - 1];
    observed.reserve(entries.size());
    for (const auto& entry : entries) {
      auto it = stats.find(entry.node->id());
      if (it == stats.end()) continue;
      int first = std::clamp(entry.node->id(), 0, bound);
      int last = std::clamp(
          entry.node->id() + static_cast<int>(entry.node->SubtreeSize()), 0,
          bound);
      Observation o;
      o.signature = entry.sigs.normalized;
      o.rows = it->second.rows;
      o.bytes = it->second.bytes;
      o.latency = it->second.inclusive_seconds;
      o.cpu = prefix[static_cast<size_t>(last)] -
              prefix[static_cast<size_t>(first)];
      observed.push_back(o);
    }
  }

  MutexLock lock(mu_);
  jobs_.push_back(shared);
  if (obs_.jobs_ingested != nullptr) obs_.jobs_ingested->Increment();
  for (const Observation& o : observed) {
    Accumulator& acc = feedback_[o.signature];
    acc.rows += o.rows;
    acc.bytes += o.bytes;
    acc.latency += o.latency;
    acc.cpu += o.cpu;
    ++acc.n;
  }
  if (obs_.subgraphs_observed != nullptr) {
    obs_.subgraphs_observed->Increment(observed.size());
  }
  if (obs_.indexed_subgraphs != nullptr) {
    obs_.indexed_subgraphs->Set(static_cast<double>(feedback_.size()));
  }
}

size_t WorkloadRepository::NumJobs() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

std::vector<std::shared_ptr<const JobRecord>> WorkloadRepository::Jobs()
    const {
  MutexLock lock(mu_);
  return jobs_;
}

std::vector<std::shared_ptr<const JobRecord>>
WorkloadRepository::JobsInWindow(LogicalTime from, LogicalTime to) const {
  MutexLock lock(mu_);
  std::vector<std::shared_ptr<const JobRecord>> out;
  for (const auto& j : jobs_) {
    if (j->submit_time >= from && j->submit_time < to) out.push_back(j);
  }
  return out;
}

std::optional<SubgraphObservedStats> WorkloadRepository::Lookup(
    const Hash128& normalized_signature) const {
  MutexLock lock(mu_);
  if (obs_.lookups != nullptr) obs_.lookups->Increment();
  auto it = feedback_.find(normalized_signature);
  if (it == feedback_.end()) return std::nullopt;
  if (obs_.lookup_hits != nullptr) obs_.lookup_hits->Increment();
  const Accumulator& acc = it->second;
  double n = static_cast<double>(acc.n);
  SubgraphObservedStats stats;
  stats.rows = acc.rows / n;
  stats.bytes = acc.bytes / n;
  stats.latency_seconds = acc.latency / n;
  stats.cpu_seconds = acc.cpu / n;
  stats.observations = acc.n;
  return stats;
}

size_t WorkloadRepository::NumIndexedSubgraphs() const {
  MutexLock lock(mu_);
  return feedback_.size();
}

}  // namespace cloudviews
