#ifndef CLOUDVIEWS_TOOLS_INVARIANT_ANALYZER_LIB_H_
#define CLOUDVIEWS_TOOLS_INVARIANT_ANALYZER_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "tools/repo_lint_lib.h"

namespace cloudviews {
namespace lint {

/// The invariant-function groups the field-coverage analyzer audits. A
/// class participates in a group when it declares one of the group's
/// functions with a body (pure-virtual declarations and classes that do
/// not implement the group are not audited for it). For every audited
/// group, every declared instance data member must be referenced —
/// directly or through a same-class/ancestor method the invariant function
/// calls — or carry a reasoned `// sig-skip(<group>): <why>` annotation.
///
///   group      functions
///   hash       Hash, HashInto, HashLocal, SubtreeHash, Fingerprint,
///              Normalize
///   equals     operator==, Equals
///   clone      Clone
///   rebind     RebindInstance
///   serialize  Serialize, SerializeTo, ToJson
///
/// `= default` for a group function counts as covering every member (the
/// compiler generates memberwise semantics).
///
/// Rules reported (all share the Violation struct with repo_lint):
///   field-coverage     member not referenced by an implemented invariant
///                      group and not sig-skip'd for it
///   unknown-sig-skip   sig-skip names an unknown group, lists no group,
///                      or has an empty reason
///   stale-sig-skip     sig-skip on a member that IS referenced by the
///                      group, on a group the class does not implement, or
///                      a sig-skip comment attached to no member at all
///   unordered-iteration range-for over a std::unordered_{map,set,...}
///                      variable without a nearby `order-insensitive:`
///                      justification comment — hash order must never
///                      reach signatures or results
struct AnalyzerRule {
  const char* name;
  const char* summary;
  const char* fixture;  // file under tools/analyzer_fixtures/ proving it
};

/// The analyzer's rule table, for the docs/lint_rules.md consistency test.
const std::vector<AnalyzerRule>& AllAnalyzerRules();

/// One parsed member declaration.
struct MemberSkip {
  std::string group;
  std::string reason;
  int line = 0;
};

struct Member {
  std::string name;
  int line = 0;
  std::string file;  // display path of the declaring file
  std::vector<MemberSkip> skips;
};

struct Function {
  std::string name;
  bool has_body = false;
  bool defaulted = false;
  int line = 0;
  std::string file;
  std::vector<std::string> body_idents;  // identifiers in params + body
};

struct ClassInfo {
  std::string name;  // qualified by enclosing classes: "Outer::Inner"
  std::vector<std::string> bases;
  std::vector<Member> members;
  std::vector<Function> functions;
};

/// One source file handed to the analyzer.
struct SourceFile {
  std::string display_path;
  std::string rel_path;  // repo-relative ("src/...") for scoping decisions
  std::string content;
};

/// Parses class/struct declarations out of one file: members, inline and
/// out-of-line method bodies (merged into the named class), base classes.
/// Exposed for tests; AnalyzeSources drives it over every file and merges
/// classes by qualified name across files.
void ParseClasses(const SourceFile& file,
                  std::map<std::string, ClassInfo>* classes);

/// Runs the field-coverage audit + sig-skip validation + determinism lint
/// over the given sources (one logical tree: headers and their .cc files
/// should be passed together so out-of-line bodies are seen).
std::vector<Violation> AnalyzeSources(const std::vector<SourceFile>& files);

/// Recursively analyzes every .h/.cc/.cpp under each root (same tree
/// walking and rel-path rules as LintTree). Fixture directories are
/// skipped.
std::vector<Violation> AnalyzeTree(const std::vector<std::string>& roots);

/// Renders violations as a JSON array (stable field order: path, line,
/// rule, message) for the CI artifact.
std::string ViolationsToJson(const std::vector<Violation>& violations);

}  // namespace lint
}  // namespace cloudviews

#endif  // CLOUDVIEWS_TOOLS_INVARIANT_ANALYZER_LIB_H_
