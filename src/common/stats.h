#ifndef CLOUDVIEWS_COMMON_STATS_H_
#define CLOUDVIEWS_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cloudviews {

/// \brief Accumulates samples and answers percentile / CDF queries.
///
/// Used by the workload analysis benches that reproduce the paper's
/// cumulative-distribution figures (Figs 3-5) and by the analyzer's
/// overlap-impact summaries.
class DistributionSummary {
 public:
  void Add(double sample) { samples_.push_back(sample); }
  void AddAll(const std::vector<double>& samples);

  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;

  /// Percentile in [0, 100] via linear interpolation on the sorted samples.
  /// Returns 0 for an empty summary.
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }

  /// Fraction of samples <= x (empirical CDF). Returns 0 when empty.
  double CdfAt(double x) const;

  /// Fraction of samples >= x (complementary CDF). Returns 0 when empty.
  double FractionAtLeast(double x) const;

  /// Evaluates the CDF at each x in xs; convenient for printing figure
  /// series.
  std::vector<double> CdfSeries(const std::vector<double>& xs) const;

  /// "n=... mean=... p50=... p95=... max=..." for logs and benches.
  std::string ToString() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Log-spaced values from lo to hi inclusive, points_per_decade per decade.
/// Used as x-axes for the paper's log-scale CDF plots.
std::vector<double> LogSpace(double lo, double hi, int points_per_decade);

}  // namespace cloudviews

#endif  // CLOUDVIEWS_COMMON_STATS_H_
