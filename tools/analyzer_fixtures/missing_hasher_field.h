// Fixture: ShareKey's hashing lives in the external ShareKeyHasher functor
// (std::unordered_map key idiom), but operator() folds in only `normalized`
// — two keys differing in `mode` collide, so concurrent submissions that
// must NOT share an execution would be batched together. The analyzer must
// flag `mode` under the hasher-coverage rule; `tag` carries a reasoned
// skip annotation and must stay silent, and `normalized` is covered.
#ifndef CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASHER_FIELD_H_
#define CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASHER_FIELD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fixture {

struct ShareKey {
  uint64_t normalized = 0;
  int mode = 0;
  // sig-skip(hash, equals): display label only, never compared for identity
  std::string tag;

  bool operator==(const ShareKey& other) const {
    return normalized == other.normalized && mode == other.mode;
  }
};

struct ShareKeyHasher {
  size_t operator()(const ShareKey& key) const {
    return static_cast<size_t>(key.normalized * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace fixture

#endif  // CLOUDVIEWS_TOOLS_ANALYZER_FIXTURES_MISSING_HASHER_FIELD_H_
