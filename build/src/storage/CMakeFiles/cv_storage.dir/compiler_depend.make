# Empty compiler generated dependencies file for cv_storage.
# This may be replaced when dependencies are built.
