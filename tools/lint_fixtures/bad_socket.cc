// Seeded raw-socket violations: direct BSD socket API calls outside
// net/socket.cc. The member calls and std::bind at the bottom must stay
// clean (they are not the C API).
#include <functional>

struct Sock;

int Leaky(int port) {
  int fd = ::socket(2, 1, 0);            // violation (global-qualified)
  bind(fd, nullptr, 0);                  // violation (unqualified)
  listen(fd, 16);                        // violation
  int c = accept(fd, nullptr, nullptr);  // violation
  send(c, "hi", 2, 0);                   // violation
  recv(c, nullptr, 0, 0);                // violation
  shutdown(c, 2);                        // violation
  return fd;
}

int Clean(Sock* s, Sock& local, int (*handler)(int)) {
  s->connect(7433);       // member call: fine
  local.send("payload");  // member call: fine
  auto f = std::bind(handler, 7433);  // namespace-qualified: fine
  return f();
}
