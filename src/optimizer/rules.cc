#include "optimizer/rules.h"

#include <set>
#include <unordered_map>

namespace cloudviews {

namespace {

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kLogical) {
    const auto& lg = static_cast<const LogicalExpr&>(*expr);
    if (lg.op() == LogicalOp::kAnd) {
      SplitConjuncts(expr->children()[0], out);
      SplitConjuncts(expr->children()[1], out);
      return;
    }
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

bool RefsSubsetOf(const Expr& expr, const Schema& schema) {
  std::set<std::string> refs;
  CollectColumnRefs(expr, &refs);
  for (const auto& r : refs) {
    if (!schema.HasField(r)) return false;
  }
  return true;
}

}  // namespace

PlanNodePtr MergeAdjacentFilters(PlanNodePtr node) {
  for (auto& c : node->mutable_children()) c = MergeAdjacentFilters(c);
  if (node->kind() != OpKind::kFilter) return node;
  auto* filter = static_cast<FilterNode*>(node.get());
  if (filter->child()->kind() != OpKind::kFilter) return node;
  auto* inner = static_cast<FilterNode*>(filter->child().get());
  auto merged = std::make_shared<FilterNode>(
      inner->child(), And(filter->predicate(), inner->predicate()));
  return MergeAdjacentFilters(merged);
}

PlanNodePtr PushDownFilters(PlanNodePtr node) {
  for (auto& c : node->mutable_children()) c = PushDownFilters(c);
  if (node->kind() != OpKind::kFilter) return node;

  auto* filter = static_cast<FilterNode*>(node.get());
  PlanNodePtr child = filter->child();
  ExprPtr pred = filter->predicate();

  switch (child->kind()) {
    case OpKind::kSort:
    case OpKind::kExchange: {
      // filter(enforcer(x)) -> enforcer(filter(x)); the enforcer's
      // properties are unaffected by removing rows.
      PlanNodePtr grandchild = child->child();
      auto pushed = PushDownFilters(
          std::make_shared<FilterNode>(grandchild, pred));
      child->mutable_children()[0] = pushed;
      return child;
    }

    case OpKind::kProject: {
      // Rewrite the predicate in terms of the project's input by inlining
      // the projected expressions.
      auto* project = static_cast<ProjectNode*>(child.get());
      std::unordered_map<std::string, const NamedExpr*> by_name;
      for (const auto& ne : project->exprs()) by_name[ne.name] = &ne;
      ExprPtr substituted = SubstituteColumnRefs(
          *pred, [&](const std::string& name) -> ExprPtr {
            auto it = by_name.find(name);
            return it == by_name.end() ? nullptr : it->second->expr->Clone();
          });
      if (substituted == nullptr) return node;
      auto pushed = PushDownFilters(
          std::make_shared<FilterNode>(project->child(), substituted));
      child->mutable_children()[0] = pushed;
      return child;
    }

    case OpKind::kAggregate: {
      // Only predicates over the group keys commute with the aggregate.
      auto* agg = static_cast<AggregateNode*>(child.get());
      Schema key_schema;
      const Schema& in = agg->child()->output_schema();
      for (const auto& k : agg->group_keys()) {
        int idx = in.FieldIndex(k);
        if (idx >= 0) key_schema.AddField(k, in.field(idx).type);
      }
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(pred, &conjuncts);
      std::vector<ExprPtr> pushable, remaining;
      for (const auto& c : conjuncts) {
        (RefsSubsetOf(*c, key_schema) ? pushable : remaining).push_back(c);
      }
      if (pushable.empty()) return node;
      auto pushed = PushDownFilters(std::make_shared<FilterNode>(
          agg->child(), CombineConjuncts(pushable)));
      child->mutable_children()[0] = pushed;
      if (remaining.empty()) return child;
      return std::make_shared<FilterNode>(child,
                                          CombineConjuncts(remaining));
    }

    case OpKind::kJoin: {
      auto* join = static_cast<JoinNode*>(child.get());
      const Schema& ls = join->children()[0]->output_schema();
      const Schema& rs = join->children()[1]->output_schema();
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(pred, &conjuncts);
      std::vector<ExprPtr> to_left, to_right, remaining;
      bool left_outer = join->join_type() == JoinType::kLeftOuter;
      for (const auto& c : conjuncts) {
        if (RefsSubsetOf(*c, ls)) {
          to_left.push_back(c);
        } else if (!left_outer && RefsSubsetOf(*c, rs)) {
          // Pushing below the null-padding side of an outer join would
          // change semantics, so only inner joins push right.
          to_right.push_back(c);
        } else {
          remaining.push_back(c);
        }
      }
      if (to_left.empty() && to_right.empty()) return node;
      if (!to_left.empty()) {
        join->mutable_children()[0] = PushDownFilters(
            std::make_shared<FilterNode>(join->children()[0],
                                         CombineConjuncts(to_left)));
      }
      if (!to_right.empty()) {
        join->mutable_children()[1] = PushDownFilters(
            std::make_shared<FilterNode>(join->children()[1],
                                         CombineConjuncts(to_right)));
      }
      if (remaining.empty()) return child;
      return std::make_shared<FilterNode>(child,
                                          CombineConjuncts(remaining));
    }

    case OpKind::kUnionAll: {
      auto union_node = child;
      for (auto& branch : union_node->mutable_children()) {
        branch = PushDownFilters(
            std::make_shared<FilterNode>(branch, pred->Clone()));
      }
      return union_node;
    }

    default:
      return node;
  }
}

PlanNodePtr RemoveRedundantEnforcers(PlanNodePtr node) {
  for (auto& c : node->mutable_children()) c = RemoveRedundantEnforcers(c);
  if (node->kind() == OpKind::kExchange) {
    auto* exchange = static_cast<ExchangeNode*>(node.get());
    if (exchange->child()->bound() &&
        exchange->child()->Delivered().partitioning.Satisfies(
            exchange->partitioning())) {
      return exchange->child();
    }
  }
  if (node->kind() == OpKind::kSort) {
    auto* sort = static_cast<SortNode*>(node.get());
    if (sort->child()->bound() &&
        sort->child()->Delivered().sort_order.Satisfies(
            SortOrder{sort->keys()})) {
      return sort->child();
    }
  }
  return node;
}

}  // namespace cloudviews
