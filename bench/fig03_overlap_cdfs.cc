// Reproduces Figure 3: cumulative distributions of overlap by jobs, inputs,
// users, and VCs in one of the largest business units.
#include <cstdio>
#include <iostream>

#include "analyzer/overlap_analyzer.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cloudviews {
namespace bench {
namespace {

void PrintCdf(const char* name, const std::vector<double>& samples,
              double lo, double hi) {
  DistributionSummary summary;
  summary.AddAll(samples);
  std::printf("\n%s (n=%zu)\n", name, summary.count());
  TablePrinter table({"x", "fraction <= x"});
  for (double x : LogSpace(lo, hi, 1)) {
    table.AddRow(StrFormat("%.0f", x), {summary.CdfAt(x)}, 3);
  }
  table.Print(std::cout);
}

int Run() {
  FigureHeader(
      "Figure 3", "Cumulative distributions of overlap (business unit)",
      "jobs have 10s-100s of overlapping subgraphs; >90% of inputs are "
      "consumed in the same subgraphs at least twice, 40% >= 5 times, 25% "
      ">= 10 times; top users have 1000s of overlaps");

  ClusterRun run = RunClusterInstance(BusinessUnitProfile(), "2018-01-01");
  OverlapAnalyzer overlap;
  overlap.AddJobs(run.cv->repository()->Jobs());
  OverlapReport report = overlap.BuildReport();

  PrintCdf("Fig 3(a): overlapping subgraphs per job",
           report.overlaps_per_job, 1, 1000);
  PrintCdf("Fig 3(b): per-input max overlap frequency",
           report.per_input_max_frequency, 1, 1000);
  PrintCdf("Fig 3(c): overlapping subgraphs per user",
           report.overlaps_per_user, 1, 10000);
  PrintCdf("Fig 3(d): overlapping subgraphs per VC", report.overlaps_per_vc,
           1, 10000);

  DistributionSummary inputs;
  inputs.AddAll(report.per_input_max_frequency);
  DistributionSummary per_job;
  per_job.AddAll(report.overlaps_per_job);
  DistributionSummary per_user;
  per_user.AddAll(report.overlaps_per_user);

  std::printf("\nsummary\n");
  PaperVsMeasured("inputs consumed in same subgraphs >= 2x", "> 90%",
                  StrFormat("%.0f%%", 100 * inputs.FractionAtLeast(2)));
  PaperVsMeasured("inputs >= 5x", "40%",
                  StrFormat("%.0f%%", 100 * inputs.FractionAtLeast(5)));
  PaperVsMeasured("inputs >= 10x", "25%",
                  StrFormat("%.0f%%", 100 * inputs.FractionAtLeast(10)));
  PaperVsMeasured("median overlaps per job", "10s",
                  StrFormat("%.0f", per_job.Median()));
  PaperVsMeasured("p90 overlaps per user", "100s+",
                  StrFormat("%.0f", per_user.Percentile(90)));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cloudviews

int main() { return cloudviews::bench::Run(); }
