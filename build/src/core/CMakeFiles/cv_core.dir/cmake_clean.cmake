file(REMOVE_RECURSE
  "CMakeFiles/cv_core.dir/cloudviews.cc.o"
  "CMakeFiles/cv_core.dir/cloudviews.cc.o.d"
  "CMakeFiles/cv_core.dir/explain.cc.o"
  "CMakeFiles/cv_core.dir/explain.cc.o.d"
  "libcv_core.a"
  "libcv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
