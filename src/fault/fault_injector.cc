#include "fault/fault_injector.h"

#include <fstream>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/json.h"

namespace cloudviews {
namespace fault {

namespace {

constexpr char kFaultPrefix[] = "injected fault at ";
constexpr char kCrashPrefix[] = "injected crash at ";

bool HasPrefix(const std::string& s, const char* prefix) {
  return StartsWith(s, prefix);
}

}  // namespace

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(mu_);
  PointState& state = points_[point];
  state.spec = std::move(spec);
  state.armed = true;
  // A fresh spec starts a fresh schedule: counters and key ordinals
  // restart (the retained event log is unaffected).
  state.hit_count = 0;
  state.fire_count = 0;
  state.key_hits.clear();
  if (metrics_ != nullptr && state.fires_counter == nullptr) {
    state.fires_counter = metrics_->GetCounter(
        "cv_fault_injections_total", {{"point", point}},
        "Injected faults fired, by injection point.");
  }
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  points_.clear();
  events_.clear();
  total_fires_ = 0;
  dropped_events_ = 0;
}

Status FaultInjector::MaybeInject(const std::string& point,
                                  const std::string& key) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return Status::OK();
  PointState& state = it->second;
  ++state.hit_count;
  const uint64_t key_hit = ++state.key_hits[key];

  bool fire = false;
  if (state.spec.trigger_every > 0) {
    fire = state.hit_count % state.spec.trigger_every == 0;
  } else if (state.spec.probability > 0) {
    // Deterministic Bernoulli draw: a pure function of (seed, point, key,
    // per-key ordinal), so each key replays the same fail/succeed sequence
    // on every run and a retry (next ordinal) gets an independent draw.
    const Hash128 h =
        HashBuilder(seed_).Add(point).Add(key).Add(key_hit).Finish();
    const double u =
        static_cast<double>(h.lo >> 11) * 0x1.0p-53;  // uniform [0,1)
    fire = u < state.spec.probability;
  }
  if (fire && state.fire_count >= state.spec.max_fires) fire = false;
  if (!fire) return Status::OK();

  ++state.fire_count;
  ++total_fires_;
  if (state.fires_counter != nullptr) state.fires_counter->Increment();
  if (events_.size() < kMaxEvents) {
    events_.push_back(Event{total_fires_, point, key, state.hit_count,
                            state.spec.code, state.spec.crash});
  } else {
    ++dropped_events_;
  }

  std::string msg = (state.spec.crash ? kCrashPrefix : kFaultPrefix) + point;
  if (!key.empty()) msg += " [" + key + "]";
  msg += " (hit " + std::to_string(state.hit_count) + ")";
  if (!state.spec.message.empty()) msg += ": " + state.spec.message;
  return Status(state.spec.code, std::move(msg));
}

uint64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hit_count;
}

uint64_t FaultInjector::fires(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fire_count;
}

uint64_t FaultInjector::total_fires() const {
  MutexLock lock(mu_);
  return total_fires_;
}

std::vector<FaultInjector::Event> FaultInjector::events() const {
  MutexLock lock(mu_);
  return events_;
}

uint64_t FaultInjector::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_events_;
}

std::string FaultInjector::EventsJson() const {
  MutexLock lock(mu_);
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("seed").Uint(seed_);
  w.Key("total_fires").Uint(total_fires_);
  w.Key("dropped_events").Uint(dropped_events_);
  w.Key("points").BeginArray();
  for (const auto& [point, state] : points_) {
    w.BeginObject();
    w.Key("point").String(point);
    w.Key("armed").Bool(state.armed);
    w.Key("hits").Uint(state.hit_count);
    w.Key("fires").Uint(state.fire_count);
    w.Key("probability").Double(state.spec.probability);
    w.Key("trigger_every").Uint(state.spec.trigger_every);
    w.Key("crash").Bool(state.spec.crash);
    w.EndObject();
  }
  w.EndArray();
  w.Key("events").BeginArray();
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("sequence").Uint(e.sequence);
    w.Key("point").String(e.point);
    w.Key("key").String(e.key);
    w.Key("point_hit").Uint(e.point_hit);
    w.Key("code").String(StatusCodeToString(e.code));
    w.Key("crash").Bool(e.crash);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status FaultInjector::WriteEventsJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << EventsJson() << "\n";
  out.flush();
  if (!out) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

void FaultInjector::SetMetrics(obs::MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  metrics_ = metrics;
  for (auto& [point, state] : points_) {
    state.fires_counter =
        metrics == nullptr
            ? nullptr
            : metrics->GetCounter("cv_fault_injections_total",
                                  {{"point", point}},
                                  "Injected faults fired, by injection point.");
  }
}

bool IsInjectedFault(const Status& status) {
  return !status.ok() && (HasPrefix(status.message(), kFaultPrefix) ||
                          HasPrefix(status.message(), kCrashPrefix));
}

bool IsInjectedCrash(const Status& status) {
  return !status.ok() && HasPrefix(status.message(), kCrashPrefix);
}

}  // namespace fault
}  // namespace cloudviews
