# Empty dependencies file for fig02_vc_overlap.
# This may be replaced when dependencies are built.
