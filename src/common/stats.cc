#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cloudviews {

void DistributionSummary::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

double DistributionSummary::Sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double DistributionSummary::Mean() const {
  return samples_.empty() ? 0 : Sum() / static_cast<double>(samples_.size());
}

double DistributionSummary::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0 : samples_.front();
}

double DistributionSummary::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0 : samples_.back();
}

void DistributionSummary::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double DistributionSummary::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1 - frac) + samples_[lo + 1] * frac;
}

double DistributionSummary::CdfAt(double x) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double DistributionSummary::FractionAtLeast(double x) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<double> DistributionSummary::CdfSeries(
    const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(CdfAt(x));
  return out;
}

std::string DistributionSummary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p75=%.3f p95=%.3f p99=%.3f "
                "max=%.3f",
                count(), Mean(), Percentile(50), Percentile(75),
                Percentile(95), Percentile(99), Max());
  return buf;
}

std::vector<double> LogSpace(double lo, double hi, int points_per_decade) {
  std::vector<double> xs;
  double log_lo = std::log10(lo);
  double log_hi = std::log10(hi);
  int n = static_cast<int>((log_hi - log_lo) * points_per_decade) + 1;
  for (int i = 0; i < n; ++i) {
    xs.push_back(std::pow(10.0, log_lo + static_cast<double>(i) /
                                             points_per_decade));
  }
  if (xs.empty() || xs.back() < hi) xs.push_back(hi);
  return xs;
}

}  // namespace cloudviews
