// Seeded metadata-map-stripe violation: a GUARDED_BY'd map member in a
// metadata header with no nearby justification comment. The test lints
// this with the fabricated rel_path "src/metadata/bad_metadata_map.h".
#ifndef CLOUDVIEWS_METADATA_BAD_METADATA_MAP_H_
#define CLOUDVIEWS_METADATA_BAD_METADATA_MAP_H_

#include <map>
#include <string>
#include <unordered_map>

#include "common/mutex.h"

namespace cloudviews {

class BadMetadataMap {
 private:
  mutable Mutex mu_;

  // VIOLATION: a whole-keyspace map serialized on one mutex, with no
  // justification comment nearby.
  std::unordered_map<std::string, int> views_ GUARDED_BY(mu_);

  // shard-stripe: fixture stand-in for a per-stripe map guarded by its own
  // stripe mutex rather than a service-wide lock.
  std::map<std::string, int> locks_ GUARDED_BY(mu_);

  int counter_ GUARDED_BY(mu_) = 0;

  // An unguarded map never fires: nothing serializes on it.
  std::unordered_map<std::string, int> cache_;
};

}  // namespace cloudviews

#endif  // CLOUDVIEWS_METADATA_BAD_METADATA_MAP_H_
